//! **Bench E8/E9/E10 — extension experiments**: shot-allocation ablation,
//! multi-cut scaling and Werner mixed resources, with artefact
//! regeneration at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{allocation, multicut, werner};

fn allocation_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/allocation");
    group.sample_size(10);
    let cfg = allocation::AllocationConfig {
        overlaps: vec![0.6],
        shots: 1000,
        num_states: 8,
        repetitions: 10,
        seed: 1,
        threads: 1,
    };
    group.bench_function("ablation_kernel", |b| b.iter(|| allocation::run(&cfg)));
    group.finish();
    let table = allocation::run(&allocation::AllocationConfig {
        num_states: 16,
        repetitions: 16,
        ..Default::default()
    });
    table
        .write_csv(&experiments::results_dir().join("bench_allocation_ablation.csv"))
        .unwrap();
}

fn multicut_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/multicut");
    group.sample_size(10);
    let cfg = multicut::MultiCutConfig {
        wire_counts: vec![1, 2],
        overlaps: vec![0.5, 1.0],
        shots: 1000,
        num_states: 3,
        repetitions: 4,
        seed: 1,
        threads: 1,
    };
    group.bench_function("double_cut_kernel", |b| b.iter(|| multicut::run(&cfg)));
    group.finish();
    let table = multicut::run(&multicut::MultiCutConfig {
        num_states: 4,
        repetitions: 6,
        ..Default::default()
    });
    table
        .write_csv(&experiments::results_dir().join("bench_multicut_scaling.csv"))
        .unwrap();
}

fn werner_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/werner");
    group.sample_size(10);
    let cfg = werner::WernerConfig {
        p_values: vec![0.6, 1.0],
        shots: 1000,
        num_states: 4,
        repetitions: 6,
        seed: 1,
        threads: 1,
    };
    group.bench_function("werner_kernel", |b| b.iter(|| werner::run(&cfg)));
    group.finish();
    let table = werner::run(&werner::WernerConfig {
        num_states: 8,
        repetitions: 10,
        ..Default::default()
    });
    table
        .write_csv(&experiments::results_dir().join("bench_werner_resources.csv"))
        .unwrap();
}

criterion_group!(benches, allocation_bench, multicut_bench, werner_bench);
criterion_main!(benches);

//! **Bench E1 — Figure 6**: times the full error-vs-shots pipeline at
//! several scales and, once per run, regenerates a reduced-scale Figure 6
//! table so `cargo bench` leaves a fresh artefact in `results/`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::fig6::{run, Fig6Config};

fn per_state_kernel(c: &mut Criterion) {
    // One Haar state through all six entanglement levels with the paper's
    // 20 checkpoints — the unit of work Figure 6 parallelises over.
    let mut group = c.benchmark_group("fig6/per_state");
    group.sample_size(20);
    for &states in &[1usize, 8, 32] {
        let cfg = Fig6Config {
            num_states: states,
            threads: 1,
            ..Fig6Config::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(states), &cfg, |b, cfg| {
            b.iter(|| run(cfg));
        });
    }
    group.finish();
}

fn parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/threads");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        let cfg = Fig6Config {
            num_states: 128,
            threads,
            ..Fig6Config::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            b.iter(|| run(cfg));
        });
    }
    group.finish();
}

fn regenerate_artifact(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/full_table");
    group.sample_size(10);
    let cfg = Fig6Config {
        num_states: 200,
        ..Fig6Config::default()
    };
    group.bench_function("200_states", |b| b.iter(|| run(&cfg)));
    group.finish();
    // Leave a fresh artefact behind.
    let res = run(&Fig6Config {
        num_states: 200,
        ..Fig6Config::default()
    });
    let path = experiments::results_dir().join("bench_fig6_error_vs_shots.csv");
    res.to_table().write_csv(&path).expect("write csv");
    assert!(res.final_errors_ordered_by_entanglement());
}

criterion_group!(
    benches,
    per_state_kernel,
    parallel_scaling,
    regenerate_artifact
);
criterion_main!(benches);

//! **Bench E2 — Theorem 1/Corollary 1**: times the overhead-measurement
//! pipeline and regenerates the comparison artefact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::overhead::{run, to_table, OverheadConfig};

fn overhead_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead/pipeline");
    group.sample_size(10);
    for &shots in &[500u64, 2000] {
        let cfg = OverheadConfig {
            k_values: vec![0.0, 0.5, 1.0],
            shots,
            repetitions: 30,
            num_states: 4,
            seed: 1,
            threads: 1,
        };
        group.bench_with_input(BenchmarkId::from_parameter(shots), &cfg, |b, cfg| {
            b.iter(|| run(cfg));
        });
    }
    group.finish();
    let rows = run(&OverheadConfig {
        repetitions: 60,
        num_states: 8,
        ..OverheadConfig::default()
    });
    let path = experiments::results_dir().join("bench_overhead_vs_entanglement.csv");
    to_table(&rows).write_csv(&path).expect("write csv");
}

criterion_group!(benches, overhead_pipeline);
criterion_main!(benches);

//! **Bench E3/E4/E6/E7**: times the closed-form verification tables
//! (Eq. 10 / Appendix A, Eq. 55–58, pair consumption, endpoints) and
//! regenerates all four artefacts.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::tables::{bell_overlap_table, consumption_table, endpoints_table, overlap_table};

fn tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(20);
    group.bench_function("overlap_eq10_appendixA", |b| b.iter(|| overlap_table(21)));
    group.bench_function("bell_overlaps_eq55_58", |b| {
        b.iter(|| bell_overlap_table(21))
    });
    group.bench_function("pair_consumption", |b| b.iter(|| consumption_table(21)));
    group.bench_function("endpoints_channel_checks", |b| b.iter(endpoints_table));
    group.finish();

    let dir = experiments::results_dir();
    overlap_table(21)
        .write_csv(&dir.join("bench_overlap_formulas.csv"))
        .unwrap();
    bell_overlap_table(21)
        .write_csv(&dir.join("bench_bell_overlaps.csv"))
        .unwrap();
    consumption_table(21)
        .write_csv(&dir.join("bench_pair_consumption.csv"))
        .unwrap();
    endpoints_table()
        .write_csv(&dir.join("bench_endpoints.csv"))
        .unwrap();
}

criterion_group!(benches, tables);
criterion_main!(benches);

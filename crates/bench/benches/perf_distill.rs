//! Performance benches for the distill-then-cut pipeline (E16): the
//! closed-form recurrence map, the `DistillThenCut` planner, and the
//! sharded `(p, m)` sweep at 1/2/4/8 worker threads.
//!
//! The recurrence and the composed κ figures are pure arithmetic on
//! four weights, so the headline question is whether the dense map
//! stays sampler-bound (it does: `recurrence`/`planner` run orders of
//! magnitude under one E16 grid cell's binomial budget), and how the
//! sweep scales with workers (same contract as `perf_grid` — every
//! thread count produces byte-identical tables, so timings are directly
//! comparable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use entangle::{DistillationSchedule, RecurrenceProtocol};
use experiments::distill_cut::{self, DistillCutConfig};
use wirecut::mixed::{optimal_rounds, rounds_to_close_gap, DistillThenCut, OverheadMetric};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The raw recurrence map: 8-round DEJMPS and BBPSSW schedules across a
/// dense Werner grid (one element = one full schedule).
fn recurrence(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_distill/recurrence");
    let p_grid: Vec<f64> = (1..=256)
        .map(|i| 1.0 / 3.0 + (2.0 / 3.0) * i as f64 / 256.0)
        .collect();
    for protocol in [RecurrenceProtocol::Dejmps, RecurrenceProtocol::Bbpssw] {
        group.throughput(Throughput::Elements(p_grid.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("schedule8", format!("{protocol:?}")),
            &protocol,
            |b, &protocol| {
                b.iter(|| {
                    p_grid
                        .iter()
                        .map(|&p| {
                            let rest = (1.0 - p) / 4.0;
                            let q = [p + rest, rest, rest, rest];
                            DistillationSchedule::new(q, 8, protocol).fidelity()
                        })
                        .sum::<f64>()
                });
            },
        );
    }
    group.finish();
}

/// The planner closed forms per (p, m) point: pipeline construction,
/// κ_eff/κ_pair, and the per-p argmin/gap-closing scans.
fn planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_distill/planner");
    let p_grid: Vec<f64> = (1..=64)
        .map(|i| 1.0 / 3.0 + (2.0 / 3.0) * i as f64 / 64.0)
        .collect();
    group.throughput(Throughput::Elements(p_grid.len() as u64));
    group.bench_function("kappa_map_m0_4", |b| {
        b.iter(|| {
            p_grid
                .iter()
                .flat_map(|&p| (0..=4).map(move |m| DistillThenCut::werner(p, m).kappa_pair()))
                .sum::<f64>()
        });
    });
    group.bench_function("argmin_and_gap_scan", |b| {
        b.iter(|| {
            p_grid
                .iter()
                .map(|&p| {
                    let raw = DistillThenCut::werner(p, 0);
                    let (m, _) = optimal_rounds(
                        raw.raw_weights(),
                        4,
                        RecurrenceProtocol::Dejmps,
                        OverheadMetric::PerSample,
                    );
                    let gap = rounds_to_close_gap(raw.raw_weights(), 4, RecurrenceProtocol::Dejmps);
                    m + gap.unwrap_or(0)
                })
                .sum::<usize>()
        });
    });
    group.finish();
}

/// The sharded E16 sweep per thread count (closed-form batched
/// samplers — cheap shards at fine granularity, like E15, but with the
/// extra m dimension).
fn e16_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_distill/e16_sweep");
    group.sample_size(10);
    for &threads in &THREADS {
        let config = DistillCutConfig {
            p_steps: 11,
            max_rounds: 3,
            num_states: 6,
            repetitions: 16,
            threads,
            ..Default::default()
        };
        let points = (config.p_steps * (config.max_rounds + 1) * config.num_states) as u64;
        group.throughput(Throughput::Elements(points));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &config,
            |b, config| {
                b.iter(|| distill_cut::run(config));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, recurrence, planner, e16_sweep);
criterion_main!(benches);

//! Performance benches for the configuration-grid sharding engine
//! (`experiments::grid::ShardedGrid`): wall-clock scaling of whole
//! experiment grids at 1/2/4/8 worker threads.
//!
//! The headline group runs the **joint_scaling crossover workload** (the
//! finite-shot (wires, state, shots) grid behind
//! `joint_scaling_shots.csv`) at each thread count; because every shard
//! derives its randomness from the configuration identity, all thread
//! counts produce byte-identical tables, so the timings are directly
//! comparable. On hardware with ≥ 8 cores the 8-thread point lands ≥ 3×
//! under the 1-thread point (the shards are compute-bound and
//! embarrassingly parallel); on smaller machines the curve flattens at
//! the core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use experiments::grid::ShardedGrid;
use experiments::{joint_scaling, werner_sweep};
use rand::RngCore;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The joint_scaling finite-shot crossover grid (E13's expensive table)
/// at each worker count.
fn joint_scaling_shots(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_grid/joint_scaling_shots");
    group.sample_size(10);
    for &threads in &THREADS {
        let config = joint_scaling::JointScalingConfig {
            shot_wires: vec![1, 2, 3],
            shot_grid: vec![100, 1_000, 10_000],
            num_states: 6,
            repetitions: 6,
            threads,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &config,
            |b, config| {
                b.iter(|| joint_scaling::shots_table(config));
            },
        );
    }
    group.finish();
}

/// The NME basis-pursuit sweep — strongly heterogeneous shard costs
/// (n = 1 next to n = 3), the work-stealing stress case.
fn joint_scaling_nme(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_grid/joint_scaling_nme");
    group.sample_size(10);
    for &threads in &THREADS {
        let config = joint_scaling::JointScalingConfig {
            nme_max_wires: 3,
            threads,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &config,
            |b, config| {
                b.iter(|| joint_scaling::nme_sweep_table(config));
            },
        );
    }
    group.finish();
}

/// The full-scale E15 Werner p-sweep per thread count (closed-form
/// batched samplers — cheap shards, so this measures engine overhead
/// at fine granularity).
fn werner_sweep_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_grid/werner_sweep");
    group.sample_size(10);
    for &threads in &THREADS {
        let config = werner_sweep::WernerSweepConfig {
            threads,
            ..Default::default()
        };
        let points = (config.p_steps * config.num_states) as u64;
        group.throughput(Throughput::Elements(points));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &config,
            |b, config| {
                b.iter(|| werner_sweep::run(config));
            },
        );
    }
    group.finish();
}

/// Raw engine overhead: a synthetic grid whose shards do a fixed amount
/// of PRF work, isolating scheduling + stream-derivation cost from
/// experiment physics.
fn engine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_grid/engine");
    group.sample_size(10);
    let configs: Vec<u64> = (0..512).collect();
    for &threads in &THREADS {
        group.throughput(Throughput::Elements(configs.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    ShardedGrid::new(configs.clone(), 42)
                        .with_threads(threads)
                        .run(|_, ctx| {
                            let rng = ctx.rng();
                            let mut acc = 0u64;
                            for _ in 0..2_000 {
                                acc = acc.wrapping_add(rng.next_u64());
                            }
                            acc
                        })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    joint_scaling_shots,
    joint_scaling_nme,
    werner_sweep_grid,
    engine_overhead
);
criterion_main!(benches);

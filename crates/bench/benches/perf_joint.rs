//! Performance benches for the joint multi-wire cutting stack: MUB
//! construction, QPD compilation, the batched estimate path across the
//! κ-crossover grid (n = 1..5, shots 10²..10⁵), sparse-vs-dense channel
//! verification, and the NME joint-cut basis-pursuit solve.
//!
//! The `estimate` group *is* the κ-crossover table in time form: for each
//! wire count it runs the joint cut (κ = 2^{n+1}−1) and the independent
//! product cut (κ = 3ⁿ) on the same GHZ-type workload and shot budgets,
//! all through the batched multinomial sampler path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpd::{estimate_allocated, Allocator};
use qsim::{Circuit, PauliString};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wirecut::joint::JointWireCut;
use wirecut::joint_nme::explore_joint_nme;
use wirecut::mub::mub_bases_fresh;
use wirecut::multi::{ParallelWireCut, PreparedMultiCut};
use wirecut::NmeCut;

fn ghz_prep(w: usize) -> Circuit {
    let mut c = Circuit::new(w, 0);
    c.ry(0.9, 0);
    for q in 0..w.saturating_sub(1) {
        c.cx(q, q + 1);
    }
    c
}

fn all_z(w: usize) -> PauliString {
    PauliString::new(vec![qsim::Pauli::Z; w])
}

/// Batched estimation across the κ-crossover grid: joint vs product cuts,
/// n = 1..5 wires, 10²..10⁵ shots (compilation hoisted out of the loop).
fn estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_joint/estimate");
    for n in 1..=5usize {
        let prep = ghz_prep(n);
        let joint = JointWireCut::new(n);
        let compiled_joint =
            PreparedMultiCut::from_terms(joint.spec(), &joint.terms(), &prep, &all_z(n));
        let product = ParallelWireCut::uniform(NmeCut::new(0.0), n);
        let compiled_product = PreparedMultiCut::new(&product, &prep, &all_z(n));
        for &shots in &[100u64, 1_000, 10_000, 100_000] {
            group.throughput(Throughput::Elements(shots));
            group.bench_with_input(
                BenchmarkId::new(format!("joint/n{n}"), shots),
                &shots,
                |b, &shots| {
                    let mut rng = StdRng::seed_from_u64(13);
                    b.iter(|| {
                        estimate_allocated(
                            &compiled_joint.spec,
                            &compiled_joint.samplers(),
                            shots,
                            Allocator::Proportional,
                            &mut rng,
                        )
                    });
                },
            );
            // The 3ⁿ-term product decomposition explodes combinatorially;
            // keep the head-to-head to the practical range.
            if n <= 3 {
                group.bench_with_input(
                    BenchmarkId::new(format!("product/n{n}"), shots),
                    &shots,
                    |b, &shots| {
                        let mut rng = StdRng::seed_from_u64(13);
                        b.iter(|| {
                            estimate_allocated(
                                &compiled_product.spec,
                                &compiled_product.samplers(),
                                shots,
                                Allocator::Proportional,
                                &mut rng,
                            )
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

/// Branch-tree compilation of the full joint-cut QPD.
fn compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_joint/compile");
    for n in 1..=3usize {
        let prep = ghz_prep(n);
        let joint = JointWireCut::new(n);
        let spec = joint.spec();
        let terms = joint.terms();
        group.bench_with_input(BenchmarkId::new("joint", n), &n, |b, _| {
            b.iter(|| PreparedMultiCut::from_terms(spec.clone(), &terms, &prep, &all_z(n)));
        });
    }
    group.finish();
}

/// Galois-field MUB-set construction (uncached path; production calls hit
/// the per-n memo).
fn mub_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_joint/mub_construction");
    for n in 2..=5usize {
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, &n| {
            b.iter(|| mub_bases_fresh(n));
        });
    }
    group.finish();
}

/// Sparse per-term Kraus verification vs the dense superoperator
/// tomography it replaced (dense only runs at n = 2 — it is already
/// ~10³× slower there and grows as 2^{4n}).
fn verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_joint/verify");
    for n in 2..=4usize {
        let cut = JointWireCut::new(n);
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |b, _| {
            b.iter(|| cut.verify_deviation());
        });
    }
    let cut = JointWireCut::new(2);
    group.bench_with_input(BenchmarkId::new("dense_tomography", 2usize), &2, |b, _| {
        b.iter(|| wirecut::joint::joint_identity_distance(&cut));
    });
    group.finish();
}

/// The NME joint-cut basis-pursuit solve (Pauli-transfer eigenvalues +
/// IRLS + support shrink).
fn nme_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_joint/nme_solve");
    for n in 1..=3usize {
        group.bench_with_input(BenchmarkId::new("explore", n), &n, |b, &n| {
            b.iter(|| explore_joint_nme(n, 0.7));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    estimate,
    compile,
    mub_construction,
    verification,
    nme_solve
);
criterion_main!(benches);

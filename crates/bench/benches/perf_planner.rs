//! Performance benches for the arbitrary-circuit cut planner
//! (`wirecut::planner`): the cost of planning + compiling a multi-cut
//! execution plan, the cost of sampling from a compiled plan, the
//! cut-count scaling of the contracted fragment-block backend against
//! monolithic stitching, and the wall-clock scaling of the full E17
//! sweep at 1/2/4/8 worker threads.
//!
//! Planning itself (DAG analysis + fragmentation + protocol choice) is
//! microseconds; the dominant costs are term-circuit compilation
//! (`Σ 6^incoming` fragment variants contracted, `Π terms(group)`
//! stitched circuits monolithic) and batched sampling. All workloads
//! derive their circuits from fixed seeds so every run and every thread
//! count measures identical work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use experiments::plan_cut::{self, tractable_random_circuit, PlanCutConfig};
use qpd::Allocator;
use qsim::{Circuit, PauliString};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wirecut::contract::FragmentBlocks;
use wirecut::planner::{CompiledPlan, CutPlanner};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Plan construction alone (fragmentation + cut grouping + protocol
/// choice) on random 6-qubit circuits — the pure planning overhead.
fn plan_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_planner/plan");
    let planner = CutPlanner::new(4).with_overlap(0.8);
    let mut rng = StdRng::seed_from_u64(11);
    let circuits: Vec<_> = (0..32)
        .map(|_| tractable_random_circuit(6, 8, &planner, 4, &mut rng).0)
        .collect();
    group.throughput(Throughput::Elements(circuits.len() as u64));
    group.bench_function("random_6q", |b| {
        b.iter(|| {
            circuits
                .iter()
                .map(|circuit| planner.plan(circuit).kappa())
                .sum::<f64>()
        })
    });
    group.finish();
}

/// Plan compilation: stitching every product term into a branched
/// statevector sampler (the expensive half of `CompiledPlan::compile`).
fn plan_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_planner/compile");
    group.sample_size(10);
    let planner = CutPlanner::new(3).with_overlap(0.8);
    let mut rng = StdRng::seed_from_u64(17);
    let (circuit, plan) = tractable_random_circuit(4, 6, &planner, 3, &mut rng);
    let observable = PauliString::from_label(&"Z".repeat(circuit.num_qubits()));
    group.bench_function("random_4q", |b| {
        b.iter(|| CompiledPlan::compile(&plan, &observable).spec.len())
    });
    group.finish();
}

/// Batched sampling from an already-compiled plan — the steady-state
/// cost of the estimator loop.
fn compiled_plan_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_planner/sample");
    let planner = CutPlanner::new(3).with_overlap(0.8);
    let mut rng = StdRng::seed_from_u64(17);
    let (circuit, plan) = tractable_random_circuit(4, 6, &planner, 3, &mut rng);
    let observable = PauliString::from_label(&"Z".repeat(circuit.num_qubits()));
    let compiled = CompiledPlan::compile(&plan, &observable);
    let shots = 4096u64;
    group.throughput(Throughput::Elements(shots));
    group.bench_function("4096_shots", |b| {
        let mut rng = StdRng::seed_from_u64(23);
        b.iter(|| {
            qpd::estimate_allocated(
                &compiled.spec,
                &compiled.samplers(),
                shots,
                Allocator::Proportional,
                &mut rng,
            )
        })
    });
    group.finish();
}

/// Compilation cost vs cut count, contracted fragment blocks against
/// monolithic stitching, plus the prefix-cache payoff on the term
/// sweep. A CX ladder on `k + 2` qubits planned at width budget 2
/// yields exactly `k` single-wire NME cuts, so the monolithic backend
/// stitches `3^k` product circuits while the contracted backend
/// compiles `Σ 6^incoming` fragment variants (linear in `k` here).
/// Monolithic is capped at 4 cuts — past that its exponential bill
/// dominates the whole bench run, which is precisely the regression the
/// contracted series guards against. The `sweep_cached` /
/// `sweep_uncached` pair isolates term evaluation over the full `3^k`
/// odometer on prebuilt fragment blocks: cached rides the prefix stack
/// (amortized one fused multiplication per term), uncached re-contracts
/// every frontier from scratch — the `perf-diff` series that tracks the
/// cache payoff on every PR.
fn cut_count_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_planner/cut_scaling");
    group.sample_size(10);
    let planner = CutPlanner::new(2).with_overlap(0.8);
    for cuts in 1..=8usize {
        let n = cuts + 2;
        let mut circuit = Circuit::new(n, 0);
        circuit.ry(0.4, 0);
        for q in 0..n - 1 {
            circuit.cx(q, q + 1);
        }
        let plan = planner.plan(&circuit);
        assert_eq!(plan.num_cuts(), cuts, "ladder plan shape drifted");
        let observable = PauliString::from_label(&"Z".repeat(n));
        group.bench_with_input(BenchmarkId::new("contracted", cuts), &plan, |b, plan| {
            b.iter(|| {
                CompiledPlan::compile_contracted(plan, &observable)
                    .spec
                    .len()
            })
        });
        if cuts <= 4 {
            group.bench_with_input(BenchmarkId::new("monolithic", cuts), &plan, |b, plan| {
                b.iter(|| {
                    CompiledPlan::compile_monolithic(plan, &observable)
                        .spec
                        .len()
                })
            });
        }
        let blocks = FragmentBlocks::build(&plan, &observable);
        let lens = blocks.group_lens();
        let total: usize = lens.iter().product();
        let picks: Vec<Vec<usize>> = (0..total)
            .map(|combo| {
                let mut rem = combo;
                let mut pick = vec![0usize; lens.len()];
                for g in (0..lens.len()).rev() {
                    pick[g] = rem % lens[g];
                    rem /= lens[g];
                }
                pick
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("sweep_cached", cuts),
            &picks,
            |b, picks| {
                b.iter(|| {
                    let mut sweep = blocks.sweep();
                    picks.iter().map(|p| sweep.term_value(p)).sum::<f64>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sweep_uncached", cuts),
            &picks,
            |b, picks| b.iter(|| picks.iter().map(|p| blocks.term_value(p)).sum::<f64>()),
        );
    }
    group.finish();
}

/// The full E17 planner sweep per worker count — plan + compile +
/// sample across the (overlap, circuit) grid, byte-identical output at
/// every thread count so the timings are directly comparable.
fn plan_cut_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_planner/e17_sweep");
    group.sample_size(10);
    for &threads in &THREADS {
        let config = PlanCutConfig {
            overlaps: vec![0.52, 0.75, 1.0],
            num_circuits: 4,
            repetitions: 8,
            threads,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &config,
            |b, config| {
                b.iter(|| plan_cut::run(config));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    plan_construction,
    plan_compilation,
    compiled_plan_sampling,
    cut_count_scaling,
    plan_cut_sweep
);
criterion_main!(benches);

//! Performance benches for the arbitrary-circuit cut planner
//! (`wirecut::planner`): the cost of planning + compiling a multi-cut
//! execution plan, the cost of sampling from a compiled plan, and the
//! wall-clock scaling of the full E17 sweep at 1/2/4/8 worker threads.
//!
//! Planning itself (DAG analysis + fragmentation + protocol choice) is
//! microseconds; the dominant costs are term-circuit compilation (one
//! branching statevector simulation per product term) and batched
//! sampling. All workloads derive their circuits from fixed seeds so
//! every run and every thread count measures identical work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use experiments::plan_cut::{self, tractable_random_circuit, PlanCutConfig};
use qpd::Allocator;
use qsim::PauliString;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wirecut::planner::{CompiledPlan, CutPlanner};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Plan construction alone (fragmentation + cut grouping + protocol
/// choice) on random 6-qubit circuits — the pure planning overhead.
fn plan_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_planner/plan");
    let planner = CutPlanner::new(4).with_overlap(0.8);
    let mut rng = StdRng::seed_from_u64(11);
    let circuits: Vec<_> = (0..32)
        .map(|_| tractable_random_circuit(6, 8, &planner, 4, &mut rng).0)
        .collect();
    group.throughput(Throughput::Elements(circuits.len() as u64));
    group.bench_function("random_6q", |b| {
        b.iter(|| {
            circuits
                .iter()
                .map(|circuit| planner.plan(circuit).kappa())
                .sum::<f64>()
        })
    });
    group.finish();
}

/// Plan compilation: stitching every product term into a branched
/// statevector sampler (the expensive half of `CompiledPlan::compile`).
fn plan_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_planner/compile");
    group.sample_size(10);
    let planner = CutPlanner::new(3).with_overlap(0.8);
    let mut rng = StdRng::seed_from_u64(17);
    let (circuit, plan) = tractable_random_circuit(4, 6, &planner, 3, &mut rng);
    let observable = PauliString::from_label(&"Z".repeat(circuit.num_qubits()));
    group.bench_function("random_4q", |b| {
        b.iter(|| CompiledPlan::compile(&plan, &observable).spec.len())
    });
    group.finish();
}

/// Batched sampling from an already-compiled plan — the steady-state
/// cost of the estimator loop.
fn compiled_plan_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_planner/sample");
    let planner = CutPlanner::new(3).with_overlap(0.8);
    let mut rng = StdRng::seed_from_u64(17);
    let (circuit, plan) = tractable_random_circuit(4, 6, &planner, 3, &mut rng);
    let observable = PauliString::from_label(&"Z".repeat(circuit.num_qubits()));
    let compiled = CompiledPlan::compile(&plan, &observable);
    let shots = 4096u64;
    group.throughput(Throughput::Elements(shots));
    group.bench_function("4096_shots", |b| {
        let mut rng = StdRng::seed_from_u64(23);
        b.iter(|| {
            qpd::estimate_allocated(
                &compiled.spec,
                &compiled.samplers(),
                shots,
                Allocator::Proportional,
                &mut rng,
            )
        })
    });
    group.finish();
}

/// The full E17 planner sweep per worker count — plan + compile +
/// sample across the (overlap, circuit) grid, byte-identical output at
/// every thread count so the timings are directly comparable.
fn plan_cut_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_planner/e17_sweep");
    group.sample_size(10);
    for &threads in &THREADS {
        let config = PlanCutConfig {
            overlaps: vec![0.52, 0.75, 1.0],
            num_circuits: 4,
            repetitions: 8,
            threads,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &config,
            |b, config| {
                b.iter(|| plan_cut::run(config));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    plan_construction,
    plan_compilation,
    compiled_plan_sampling,
    plan_cut_sweep
);
criterion_main!(benches);

//! Performance microbenches for the QPD sampling stack: compiled
//! branch-tree shot sampling, the estimators, the checkpointed sweep and
//! the parallel experiment runner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpd::{estimate_allocated, estimate_stochastic, proportional_sweep, Allocator, TermSampler};
use qsim::Pauli;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wirecut::{NmeCut, PreparedCut};

fn prepared_cut() -> PreparedCut {
    let mut rng = StdRng::seed_from_u64(3);
    let w = qsim::haar_unitary(2, &mut rng);
    PreparedCut::new(&NmeCut::new(0.5), &w, Pauli::Z)
}

/// Wrapper hiding a term's batched `sample_observable_sum` override, so
/// the estimator falls back to the per-shot default — the pre-batching
/// baseline the `shot_sampling` group compares against.
struct PerShotOnly<'a>(&'a dyn TermSampler);

impl TermSampler for PerShotOnly<'_> {
    fn sample_observable(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.0.sample_observable(rng)
    }

    fn exact_expectation(&self) -> f64 {
        self.0.exact_expectation()
    }
}

/// Head-to-head of the two sampling paths on the paper's Figure 6
/// workload (NME cut of a Haar-random single-qubit wire, proportional
/// allocation): identical estimates in distribution, ≥10× throughput for
/// the batched path at 10⁴ shots is this workspace's ROADMAP target.
fn shot_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shot_sampling");
    let prepared = prepared_cut();
    let samplers = prepared.samplers();
    let per_shot: Vec<PerShotOnly> = prepared.terms.iter().map(|t| PerShotOnly(t)).collect();
    let per_shot_refs: Vec<&dyn TermSampler> =
        per_shot.iter().map(|t| t as &dyn TermSampler).collect();
    for &shots in &[1000u64, 10_000, 100_000] {
        group.throughput(Throughput::Elements(shots));
        group.bench_with_input(BenchmarkId::new("per_shot", shots), &shots, |b, &shots| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                estimate_allocated(
                    &prepared.spec,
                    &per_shot_refs,
                    shots,
                    Allocator::Proportional,
                    &mut rng,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", shots), &shots, |b, &shots| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| {
                estimate_allocated(
                    &prepared.spec,
                    &samplers,
                    shots,
                    Allocator::Proportional,
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

fn estimator_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("qpd/shots");
    let prepared = prepared_cut();
    let samplers = prepared.samplers();
    for &shots in &[1000u64, 10_000] {
        group.throughput(Throughput::Elements(shots));
        group.bench_with_input(
            BenchmarkId::new("proportional", shots),
            &shots,
            |b, &shots| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    estimate_allocated(
                        &prepared.spec,
                        &samplers,
                        shots,
                        Allocator::Proportional,
                        &mut rng,
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stochastic", shots),
            &shots,
            |b, &shots| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| estimate_stochastic(&prepared.spec, &samplers, shots, &mut rng));
            },
        );
    }
    group.finish();
}

fn sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("qpd/sweep");
    let prepared = prepared_cut();
    let samplers = prepared.samplers();
    let checkpoints: Vec<u64> = (1..=20).map(|i| i * 250).collect();
    group.throughput(Throughput::Elements(5000));
    group.bench_function("20_checkpoints_to_5000", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        b.iter(|| proportional_sweep(&prepared.spec, &samplers, &checkpoints, &mut rng));
    });
    group.finish();
}

fn cut_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("qpd/compile");
    let mut rng = StdRng::seed_from_u64(13);
    let w = qsim::haar_unitary(2, &mut rng);
    group.bench_function("prepare_nme_cut", |b| {
        b.iter(|| PreparedCut::new(&NmeCut::new(0.5), &w, Pauli::Z));
    });
    group.bench_function("prepare_harada_cut", |b| {
        b.iter(|| PreparedCut::new(&wirecut::HaradaCut, &w, Pauli::Z));
    });
    group.bench_function("prepare_peng_cut", |b| {
        b.iter(|| PreparedCut::new(&wirecut::PengCut, &w, Pauli::Z));
    });
    group.finish();
}

fn parallel_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("qpd/parallel_map");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    experiments::parallel_map_indexed(64, threads, |i| {
                        let mut rng = StdRng::seed_from_u64(experiments::item_seed(1, i as u64));
                        let w = qsim::haar_unitary(2, &mut rng);
                        let p = PreparedCut::new(&NmeCut::new(0.5), &w, Pauli::Z);
                        estimate_allocated(
                            &p.spec,
                            &p.samplers(),
                            500,
                            Allocator::Proportional,
                            &mut rng,
                        )
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    shot_sampling,
    estimator_modes,
    sweep,
    cut_compilation,
    parallel_runner
);
criterion_main!(benches);

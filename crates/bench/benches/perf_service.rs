//! Performance benches for the cutting-as-a-service layer
//! (`wirecut::service::CutService`): compiled-plan cache payoff and job
//! fleet throughput at 1/2/4/8 worker threads.
//!
//! The cache group is the ISSUE's headline number: submitting a job whose
//! plan is already compiled must be **≥ 10× faster** than submitting it
//! to a cold service, because the cold path re-runs the cut planner and
//! fragment compilation while the warm path only samples. Both paths
//! produce byte-identical results (the service determinism contract), so
//! the timings compare like for like.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use experiments::service_load::{build_jobs, ServiceLoadConfig};
use qsim::{Circuit, PauliString};
use wirecut::planner::CutPlanner;
use wirecut::service::{CutService, EstimationJob};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn planner() -> CutPlanner {
    CutPlanner::new(2).with_overlap(0.8)
}

fn chain_circuit() -> Circuit {
    let mut c = Circuit::new(4, 0);
    c.x(0);
    c.ry(0.3, 1);
    c.cx(0, 1);
    c.cx(1, 2);
    c.ry(0.2, 2);
    c.cx(2, 3);
    c
}

fn chain_job(shots: u64) -> EstimationJob {
    EstimationJob::new(chain_circuit(), PauliString::from_label("ZZZZ"), shots, 7)
}

/// Cold vs cached plan: the same job against a fresh service (planner +
/// compile + sample every iteration) and against a pre-warmed one
/// (sample only). A tiny shot budget keeps the sampling cost marginal so
/// the gap isolates plan compilation.
fn plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_service/plan_cache");
    let job = chain_job(16);
    group.bench_function("cold", |b| {
        b.iter(|| CutService::new(planner()).run_job(&job));
    });
    let warm = CutService::new(planner());
    warm.run_job(&job);
    group.bench_function("cached", |b| {
        b.iter(|| warm.run_job(&job));
    });
    group.finish();
}

/// Jobs/second through one shared service: the E18 fleet (many seeds ×
/// two allocation modes over planner-cut random circuits) at each worker
/// count. Plans compile once on first contact; every later job is a
/// cache hit, so this measures scheduler + sampling throughput.
fn fleet_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf_service/fleet_throughput");
    group.sample_size(10);
    let config = ServiceLoadConfig {
        num_circuits: 3,
        repetitions: 12,
        shots: 1024,
        ..Default::default()
    };
    let jobs = build_jobs(&config);
    group.throughput(Throughput::Elements(jobs.len() as u64));
    for &threads in &THREADS {
        group.bench_with_input(BenchmarkId::new("threads", threads), &jobs, |b, jobs| {
            let service =
                CutService::new(CutPlanner::new(config.width_budget).with_overlap(config.overlap));
            service.run_jobs(jobs, threads); // pre-warm the plan cache
            b.iter(|| service.run_jobs(jobs, threads));
        });
    }
    group.finish();
}

criterion_group!(benches, plan_cache, fleet_throughput);
criterion_main!(benches);

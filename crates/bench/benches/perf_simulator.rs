//! Performance microbenches for the `qsim` substrate: strided gate
//! kernels, circuit execution, measurement branching and density-matrix
//! tomography — the hot paths every experiment sits on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qsim::{
    fuse_single_qubit_runs, haar_unitary, Circuit, CompiledSampler, DensityMatrix, Gate,
    StateVector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gate_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/gate_kernels");
    for &n in &[8usize, 12, 16] {
        let dim = 1u64 << n;
        group.throughput(Throughput::Elements(dim));
        group.bench_with_input(BenchmarkId::new("h_mid_qubit", n), &n, |b, &n| {
            let mut sv = StateVector::new(n);
            b.iter(|| sv.apply_gate(&Gate::H, &[n / 2]));
        });
        group.bench_with_input(BenchmarkId::new("x_fast_path", n), &n, |b, &n| {
            let mut sv = StateVector::new(n);
            b.iter(|| sv.apply_gate(&Gate::X, &[n / 2]));
        });
        group.bench_with_input(BenchmarkId::new("cx", n), &n, |b, &n| {
            let mut sv = StateVector::new(n);
            b.iter(|| sv.apply_gate(&Gate::CX, &[0, n - 1]));
        });
        group.bench_with_input(BenchmarkId::new("dense_2q_unitary", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(5);
            let u = haar_unitary(4, &mut rng);
            let mut sv = StateVector::new(n);
            b.iter(|| sv.apply_matrix2(&u, 1, n - 2));
        });
    }
    group.finish();
}

fn circuit_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/circuits");
    group.bench_function("ghz_12q", |b| {
        let mut circ = Circuit::new(12, 0);
        circ.h(0);
        for q in 0..11 {
            circ.cx(q, q + 1);
        }
        b.iter(|| {
            let mut sv = StateVector::new(12);
            sv.apply_circuit(&circ);
            sv
        });
    });
    group.bench_function("teleport_compile", |b| {
        let mut circ = Circuit::new(3, 2);
        circ.ry(0.9, 0);
        circ.ry(1.1, 1).cx(1, 2);
        circ.cx(0, 1).h(0);
        circ.measure(0, 0).measure(1, 1);
        circ.x_if(2, 1).z_if(2, 0);
        b.iter(|| CompiledSampler::compile(&circ, None));
    });
    group.finish();
}

fn density_tomography(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/density");
    group.sample_size(20);
    group.bench_function("nme_term_channel_tomography", |b| {
        use wirecut::WireCut;
        let cut = wirecut::NmeCut::new(0.5);
        let terms = cut.terms();
        b.iter(|| wirecut::term_channel(&terms[0]));
    });
    group.bench_function("density_execute_3q_branching", |b| {
        let mut circ = Circuit::new(3, 2);
        circ.ry(0.9, 0);
        circ.h(1).cx(1, 2);
        circ.cx(0, 1).h(0);
        circ.measure(0, 0).measure(1, 1);
        circ.x_if(2, 1).z_if(2, 0);
        let rho = DensityMatrix::new(3);
        b.iter(|| qsim::execute_density(&circ, &rho));
    });
    group.finish();
}

/// An entanglement-distillation round: Bell pairs, a transversal local
/// Clifford twirl, bilateral CNOTs and parity measurements with
/// feed-forward — entirely Clifford, the stabilizer fast path's home turf.
fn distillation_workload(pairs: usize) -> Circuit {
    let n = 2 * pairs;
    let mut c = Circuit::new(n, pairs - 1);
    for i in 0..pairs {
        c.h(2 * i);
        c.cx(2 * i, 2 * i + 1);
    }
    for q in 0..n {
        c.s(q);
        c.h(q);
    }
    for i in 0..pairs - 1 {
        c.cx(2 * i, 2 * (i + 1));
        c.cx(2 * i + 1, 2 * (i + 1) + 1);
        c.measure(2 * (i + 1) + 1, i);
        c.x_if(2 * i + 1, i);
    }
    c
}

/// A stabilizer MUB rotation (layers of S/H with CX ladders) followed by
/// a small dense readout rotation and measurements: a long Clifford
/// prefix with a short dense suffix, exercising the prefix split.
fn mub_rotation_workload(n: usize) -> Circuit {
    let mut c = Circuit::new(n, 2);
    for q in 0..n {
        c.h(q);
    }
    for layer in 0..3 {
        for q in 0..n {
            c.s(q);
            if (q + layer) % 2 == 0 {
                c.h(q);
            }
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c.ry(0.3, 0);
    c.measure(0, 0);
    c.measure(n / 2, 1);
    c
}

fn clifford_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/clifford_vs_dense");
    group.sample_size(20);
    let distill = distillation_workload(6); // 12 qubits, 5 measurements
    group.bench_function("distillation_12q_hybrid", |b| {
        b.iter(|| CompiledSampler::compile(&distill, None))
    });
    group.bench_function("distillation_12q_dense", |b| {
        b.iter(|| CompiledSampler::compile_dense(&distill, None))
    });
    let mub = mub_rotation_workload(12);
    group.bench_function("mub_rotation_12q_hybrid", |b| {
        b.iter(|| CompiledSampler::compile(&mub, None))
    });
    group.bench_function("mub_rotation_12q_dense", |b| {
        b.iter(|| CompiledSampler::compile_dense(&mub, None))
    });
    group.finish();
}

fn gate_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/fusion");
    // A single-qubit-heavy circuit: interleaved rotation runs broken up
    // by a sparse CX ladder, the shape fusion targets.
    let n = 14;
    let mut circ = Circuit::new(n, 0);
    for round in 0..8 {
        for q in 0..n {
            circ.rz(0.1 * (round + 1) as f64, q);
            circ.ry(0.2, q);
            circ.rz(-0.1, q);
        }
        circ.cx(round % n, (round + 1) % n);
    }
    let (fused, _) = fuse_single_qubit_runs(&circ);
    group.bench_function("unfused_apply_14q", |b| {
        let mut sv = StateVector::new(n);
        b.iter(|| sv.apply_circuit(&circ));
    });
    group.bench_function("fused_apply_14q", |b| {
        let mut sv = StateVector::new(n);
        b.iter(|| sv.apply_circuit(&fused));
    });
    group.bench_function("fusion_pass_344_gates", |b| {
        b.iter(|| fuse_single_qubit_runs(&circ))
    });
    group.finish();
}

fn haar_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/haar");
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("unitary", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| haar_unitary(n, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    gate_kernels,
    circuit_execution,
    clifford_vs_dense,
    gate_fusion,
    density_tomography,
    haar_sampling
);
criterion_main!(benches);

//! **Bench E5 — Eq. 22/59 tomography**: times full process tomography of
//! the teleportation circuit (measurement branching included) and the
//! closed-form construction, regenerating the comparison artefact.

use criterion::{criterion_group, criterion_main, Criterion};
use entangle::PhiK;
use wirecut::teleport::{
    phi_k_resource_prep, teleportation_channel_closed_form, teleportation_channel_simulated,
};

fn tomography(c: &mut Criterion) {
    let mut group = c.benchmark_group("teleport_channel");
    group.sample_size(20);
    group.bench_function("simulated_tomography_k0.5", |b| {
        let prep = phi_k_resource_prep(0.5);
        b.iter(|| teleportation_channel_simulated(&prep));
    });
    group.bench_function("closed_form_k0.5", |b| {
        let rho = PhiK::new(0.5).density();
        b.iter(|| teleportation_channel_closed_form(&rho));
    });
    group.bench_function("full_k_grid_comparison", |b| {
        b.iter(|| experiments::teleport_channel::run(9));
    });
    group.finish();

    let rows = experiments::teleport_channel::run(21);
    let path = experiments::results_dir().join("bench_teleport_channel.csv");
    experiments::teleport_channel::to_table(&rows)
        .write_csv(&path)
        .unwrap();
}

criterion_group!(benches, tomography);
criterion_main!(benches);

//! **Per-fragment tensor-block compilation** for the cut planner — the
//! scalable alternative to stitching one monolithic circuit per product
//! term ([`crate::planner::CompiledPlan`]).
//!
//! Wire cutting's value proposition is that fragments are simulated
//! *independently* and recombined classically. The monolithic compiler
//! inverts that: every combination of per-group QPD terms stitches and
//! simulates its own carrier-threaded circuit, so compilation cost grows
//! as `Π terms(group)` — intractable past ~4 cuts. This module restores
//! the fragment-local structure in the Pauli-transfer picture:
//!
//! * **Group transfer matrices** — each cut group's term `t` realises a
//!   channel `C_t` on the cut wires; its Pauli transfer matrix
//!   `R_t[a, b] = Tr[P_a · C_t(P_b)] / d` is computed once per group
//!   (per *wire* for NME groups, whose channels factorise; via the
//!   sparse MUB appliers [`crate::joint::apply_basis_term`] /
//!   [`crate::joint::apply_flip_term`] for joint groups).
//! * **Fragment blocks** — each fragment `F` is compiled once per local
//!   *variant*: every incoming cut wire is prepared in each of the six
//!   Pauli eigenstates (a basis input plus H/S Clifford prep, riding the
//!   [`CompiledSampler`] hybrid-stabilizer machinery), the fragment runs
//!   as a statevector, and all outgoing-Pauli ⊗ local-Z expectations are
//!   read off with [`StateVector::expval_pauli`]. Eigenstate weights
//!   fold the variants into the block tensor
//!   `F[a_in, b_out] = Tr[(P_{b_out} ⊗ Z_local) · E_F(σ_{a_in}/2 ⊗ |0⟩⟨0|)]`.
//! * **Per-term contraction** — a product term's exact expectation is
//!   the frontier contraction `Σ F_dest[a] · R[a, b] · F_src[b]` chained
//!   through the fragments in program order. No extra normalisation:
//!   with `σ_a/2 = P_a/d` receiver inputs the block entries *are* Pauli
//!   coefficients, and `C†(P_a) = Σ_b R[a, b] P_b`.
//!
//! Total cost is `Σ_F 6^{in(F)}` fragment simulations plus a cheap
//! tensor contraction per term — `Σ variants(fragment)` instead of
//! `Π terms(group)` — so plans with 6+ cuts compile where the monolithic
//! path blows up. The monolithic compiler stays as the pristine
//! differential-testing reference (`tests/fragment_contraction.rs`),
//! mirroring how `compile_dense` fences the hybrid sampler.

use crate::joint::{apply_basis_term, apply_flip_term, JointWireCut};
use crate::nme::NmeCut;
use crate::planner::{BackendReport, CutGroup, CutPlan, Protocol};
use crate::term::{term_channel, WireCut};
use qlinalg::Matrix;
use qsim::{
    fragment_circuit, Circuit, CompiledSampler, Pauli, PauliString, StateVector, Superoperator,
};

/// Hard cap on incoming cut wires per fragment for the contracted path
/// (`6^incoming` prep variants per fragment).
pub const MAX_INCOMING: usize = 5;

/// Hard cap on joint-MUB group width for the contracted path (the dense
/// group transfer matrix is `4^n × 4^n`).
pub const MAX_JOINT_WIRES: usize = 4;

/// `true` when `plan` can compile through the contracted fragment-block
/// path: at least one cut, a purely unitary planned circuit (measurement
/// or feed-forward would thread classical bits *between* fragments,
/// breaking their independence), and the variant/transfer size caps.
pub fn supports_contraction(plan: &CutPlan) -> bool {
    if plan.groups.is_empty() || !plan.circuit().is_unitary() {
        return false;
    }
    if plan
        .groups
        .iter()
        .any(|g| g.protocol == Protocol::JointMub && g.num_wires() > MAX_JOINT_WIRES)
    {
        return false;
    }
    let mut incoming = vec![0usize; plan.fragments.len()];
    for g in &plan.groups {
        incoming[g.cuts[0].dest_fragment] += g.num_wires();
    }
    incoming.iter().all(|&c| c <= MAX_INCOMING)
}

/// One cut group's Pauli transfer matrices, one per QPD term, in the
/// exact order [`CutGroup::terms`] enumerates them.
enum GroupTransfer {
    /// NME groups factorise per wire: every wire shares the same
    /// single-wire term family (`[[f64; 4]; 4]` PTM per term), and the
    /// group term index decodes with the **last wire fastest** — the
    /// [`crate::multi::ParallelWireCut`] combination order.
    PerWire {
        wires: usize,
        per_term: Vec<[[f64; 4]; 4]>,
    },
    /// Joint-MUB groups: a dense `4^n × 4^n` PTM per term (row-major,
    /// `r[a * 4^n + b]`; slot 0 = least-significant base-4 digit).
    Dense { wires: usize, ptms: Vec<Vec<f64>> },
}

impl GroupTransfer {
    fn num_terms(&self) -> usize {
        match self {
            GroupTransfer::PerWire { wires, per_term } => per_term.len().pow(*wires as u32),
            GroupTransfer::Dense { ptms, .. } => ptms.len(),
        }
    }
}

/// The single-wire PTM `r[a][b] = Re Tr[P_a · C(P_b)] / 2` of a channel.
fn ptm_1q(ch: &Superoperator) -> [[f64; 4]; 4] {
    let paulis: Vec<Matrix> = (0..4).map(|i| Pauli::from_index(i).matrix()).collect();
    let mut r = [[0.0; 4]; 4];
    for (b, pb) in paulis.iter().enumerate() {
        let image = ch.apply(pb);
        for (a, pa) in paulis.iter().enumerate() {
            r[a][b] = pa.matmul(&image).trace().re * 0.5;
        }
    }
    r
}

/// Dense PTM of an `n`-wire channel given its sparse applier.
fn ptm_dense(apply: impl Fn(&Matrix) -> Matrix, paulis: &[Matrix], d: usize) -> Vec<f64> {
    let dim4 = paulis.len();
    let mut r = vec![0.0; dim4 * dim4];
    for (b, pb) in paulis.iter().enumerate() {
        let image = apply(pb);
        for (a, pa) in paulis.iter().enumerate() {
            r[a * dim4 + b] = pa.matmul(&image).trace().re / d as f64;
        }
    }
    r
}

/// Builds one group's transfer matrices from its protocol.
fn group_transfer(group: &CutGroup) -> GroupTransfer {
    match group.protocol {
        Protocol::Nme { k } => {
            let per_term: Vec<[[f64; 4]; 4]> = NmeCut::new(k)
                .terms()
                .iter()
                .map(|t| ptm_1q(&term_channel(t)))
                .collect();
            GroupTransfer::PerWire {
                wires: group.num_wires(),
                per_term,
            }
        }
        Protocol::JointMub => {
            let n = group.num_wires();
            let jw = JointWireCut::new(n);
            let d = 1usize << n;
            let dim4 = 1usize << (2 * n);
            let paulis: Vec<Matrix> = (0..dim4)
                .map(|code| qsim::pauli::pauli_string_from_code(code, n).matrix())
                .collect();
            let mut ptms = Vec::with_capacity(d + 1);
            for u in jw.bases().iter().skip(1) {
                ptms.push(ptm_dense(|p| apply_basis_term(u, p), &paulis, d));
            }
            ptms.push(ptm_dense(apply_flip_term, &paulis, d));
            GroupTransfer::Dense { wires: n, ptms }
        }
    }
}

/// One fragment's compiled expectation block.
struct FragmentBlock {
    /// Incoming cut slots `(group, slot)`, ascending; slot `i` is the
    /// `i`-th base-4 digit of the tensor's `a` index.
    in_slots: Vec<(usize, usize)>,
    /// Outgoing cut slots, ascending; slot `i` is the `i`-th base-4
    /// digit of the tensor's `b` index.
    out_slots: Vec<(usize, usize)>,
    /// `tensor[a * 4^out + b]`.
    tensor: Vec<f64>,
}

/// Public per-fragment compilation summary (introspection for the
/// service and experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentBlockSummary {
    /// Fragment index in plan order.
    pub fragment: usize,
    /// Fragment width (local qubits).
    pub width: usize,
    /// Incoming cut wires.
    pub incoming: usize,
    /// Outgoing cut wires.
    pub outgoing: usize,
    /// Compiled prep variants (`6^incoming`).
    pub variants: usize,
}

/// All per-fragment blocks and per-group transfer matrices of one plan —
/// everything needed to evaluate any product term by contraction. Built
/// once per plan ([`FragmentBlocks::build`]); cached inside the compiled
/// plan, so the service's compiled-plan cache shares the blocks across
/// every job hitting the same [`crate::planner::PlanKey`].
pub struct FragmentBlocks {
    blocks: Vec<FragmentBlock>,
    transfers: Vec<GroupTransfer>,
    /// Per fragment: indices of groups whose source is that fragment.
    groups_at_source: Vec<Vec<usize>>,
    summaries: Vec<FragmentBlockSummary>,
    backend: BackendReport,
}

/// Six Pauli eigenstate preps per incoming wire, indexed `0..6`:
/// `|0⟩, |1⟩, |+⟩, |−⟩, |+i⟩, |−i⟩`. Odd indices set the input basis
/// bit; `{2,3}` append H; `{4,5}` append H then S (`S·H|1⟩ = |−i⟩`).
const NUM_PREPS: usize = 6;

/// `σ_a/2` expanded over eigenstate preps: `WEIGHTS[a]` lists the two
/// `(prep, weight)` entries with `σ_a/2 = Σ w·|s⟩⟨s|`.
const WEIGHTS: [[(usize, f64); 2]; 4] = [
    [(0, 0.5), (1, 0.5)],  // I/2
    [(2, 0.5), (3, -0.5)], // X/2
    [(4, 0.5), (5, -0.5)], // Y/2
    [(0, 0.5), (1, -0.5)], // Z/2
];

impl FragmentBlocks {
    /// Compiles every fragment variant and every group transfer matrix
    /// for `plan` against a diagonal (Z/I) `observable`. Deterministic:
    /// identical plans produce bit-identical blocks.
    ///
    /// # Panics
    /// Panics when `!supports_contraction(plan)` or the observable does
    /// not match the planned circuit.
    pub fn build(plan: &CutPlan, observable: &PauliString) -> Self {
        assert!(
            supports_contraction(plan),
            "plan does not support contracted compilation"
        );
        let circuit = plan.circuit();
        assert_eq!(observable.num_qubits(), circuit.num_qubits());
        assert!(observable.is_diagonal());
        let transfers: Vec<GroupTransfer> = plan.groups.iter().map(group_transfer).collect();
        let mut groups_at_source = vec![Vec::new(); plan.fragments.len()];
        for (gi, g) in plan.groups.iter().enumerate() {
            groups_at_source[g.cuts[0].source_fragment].push(gi);
        }
        let mut blocks = Vec::with_capacity(plan.fragments.len());
        let mut summaries = Vec::with_capacity(plan.fragments.len());
        let mut backend = BackendReport::default();
        for (fi, frag) in plan.fragments.iter().enumerate() {
            let mut local = vec![usize::MAX; circuit.num_qubits()];
            for (i, &w) in frag.wires.iter().enumerate() {
                local[w] = i;
            }
            let width = frag.wires.len().max(1);
            // Ascending (group, slot) — the canonical axis order.
            let mut in_slots: Vec<((usize, usize), usize)> = Vec::new();
            let mut out_slots: Vec<((usize, usize), usize)> = Vec::new();
            let mut out_wires: Vec<usize> = Vec::new();
            for (gi, g) in plan.groups.iter().enumerate() {
                for (si, cut) in g.cuts.iter().enumerate() {
                    if cut.dest_fragment == fi {
                        in_slots.push(((gi, si), local[cut.wire]));
                    }
                    if cut.source_fragment == fi {
                        out_slots.push(((gi, si), local[cut.wire]));
                        out_wires.push(cut.wire);
                    }
                }
            }
            // Z factors terminate on the wire's *last* fragment — any
            // wire still outgoing defers its Z through the cut channel.
            let z_locals: Vec<usize> = frag
                .wires
                .iter()
                .filter(|&&w| observable.op(w) == Pauli::Z && !out_wires.contains(&w))
                .map(|&w| local[w])
                .collect();
            let base = fragment_circuit(circuit, frag);
            let n_in = in_slots.len();
            let n_out = out_slots.len();
            let dim_out = 1usize << (2 * n_out);
            let num_variants = NUM_PREPS.pow(n_in as u32);
            let mut vals = vec![vec![0.0f64; dim_out]; num_variants];
            for (v, val) in vals.iter_mut().enumerate() {
                let mut c = Circuit::new(width, base.num_clbits());
                let mut basis_mask = 0usize;
                let mut rem = v;
                for &(_, q) in &in_slots {
                    let s = rem % NUM_PREPS;
                    rem /= NUM_PREPS;
                    if s % 2 == 1 {
                        basis_mask |= 1 << q;
                    }
                    if s >= 2 {
                        c.h(q);
                    }
                    if s >= 4 {
                        c.s(q);
                    }
                }
                c.compose(&base);
                let input = if basis_mask == 0 {
                    None
                } else {
                    let mut amps = vec![qlinalg::c64(0.0, 0.0); 1 << width];
                    amps[basis_mask] = qlinalg::c64(1.0, 0.0);
                    Some(StateVector::from_amplitudes(width, amps))
                };
                let sampler = CompiledSampler::compile(&c, input.as_ref());
                let prefix = sampler.clifford_prefix();
                backend.terms += 1;
                if prefix.prefix_len > 0 {
                    backend.hybrid_terms += 1;
                }
                backend.total_instructions += prefix.total;
                backend.clifford_instructions += prefix.prefix_len;
                backend.gates_fused += sampler.fusion_stats().gates_fused;
                debug_assert_eq!(
                    sampler.leaves().len(),
                    1,
                    "unitary fragment must not branch"
                );
                let state = &sampler.leaves()[0].state;
                for (b, slot) in val.iter_mut().enumerate() {
                    let mut ops = vec![Pauli::I; width];
                    for &q in &z_locals {
                        ops[q] = Pauli::Z;
                    }
                    for (i, &(_, q)) in out_slots.iter().enumerate() {
                        ops[q] = Pauli::from_index((b >> (2 * i)) & 3);
                    }
                    *slot = state.expval_pauli(&PauliString::new(ops));
                }
            }
            // Fold eigenstate weights into the block tensor.
            let mut tensor = vec![0.0f64; (1usize << (2 * n_in)) * dim_out];
            for a in 0..(1usize << (2 * n_in)) {
                for choice in 0..(1usize << n_in) {
                    let mut weight = 1.0f64;
                    let mut v = 0usize;
                    let mut scale = 1usize;
                    for i in 0..n_in {
                        let (prep, w) = WEIGHTS[(a >> (2 * i)) & 3][(choice >> i) & 1];
                        weight *= w;
                        v += prep * scale;
                        scale *= NUM_PREPS;
                    }
                    for (b, &x) in vals[v].iter().enumerate() {
                        tensor[a * dim_out + b] += weight * x;
                    }
                }
            }
            summaries.push(FragmentBlockSummary {
                fragment: fi,
                width: frag.width(),
                incoming: n_in,
                outgoing: n_out,
                variants: num_variants,
            });
            blocks.push(FragmentBlock {
                in_slots: in_slots.into_iter().map(|(k, _)| k).collect(),
                out_slots: out_slots.into_iter().map(|(k, _)| k).collect(),
                tensor,
            });
        }
        Self {
            blocks,
            transfers,
            groups_at_source,
            summaries,
            backend,
        }
    }

    /// Term counts per group, aligned with the plan's group order.
    pub fn group_lens(&self) -> Vec<usize> {
        self.transfers.iter().map(|t| t.num_terms()).collect()
    }

    /// Backend aggregation over every compiled fragment variant (the
    /// contracted analogue of the monolithic per-term report).
    pub fn backend_report(&self) -> BackendReport {
        self.backend
    }

    /// Per-fragment compilation summaries.
    pub fn summaries(&self) -> &[FragmentBlockSummary] {
        &self.summaries
    }

    /// Exact expectation of one product term: `pick[g]` selects group
    /// `g`'s QPD term. Pure contraction — no circuit simulation.
    pub fn term_value(&self, pick: &[usize]) -> f64 {
        assert_eq!(pick.len(), self.transfers.len());
        let mut keys: Vec<(usize, usize)> = Vec::new();
        let mut vals = vec![1.0f64];
        for (fi, block) in self.blocks.iter().enumerate() {
            absorb_block(&mut keys, &mut vals, block);
            for &gi in &self.groups_at_source[fi] {
                match &self.transfers[gi] {
                    GroupTransfer::PerWire { wires, per_term } => {
                        let nt = per_term.len();
                        let mut rem = pick[gi];
                        let mut idx = vec![0usize; *wires];
                        // Last wire fastest — ParallelWireCut order.
                        for slot in (0..*wires).rev() {
                            idx[slot] = rem % nt;
                            rem /= nt;
                        }
                        for (slot, &ti) in idx.iter().enumerate() {
                            let p = axis_of(&keys, (gi, slot));
                            apply_axis_4(&mut vals, p, &per_term[ti]);
                        }
                    }
                    GroupTransfer::Dense { wires, ptms } => {
                        let axes: Vec<usize> =
                            (0..*wires).map(|slot| axis_of(&keys, (gi, slot))).collect();
                        apply_axes_dense(&mut vals, &axes, &ptms[pick[gi]]);
                    }
                }
            }
        }
        assert!(keys.is_empty(), "unconsumed cut axes after contraction");
        vals[0]
    }
}

/// Position of a cut slot in the frontier's axis list.
fn axis_of(keys: &[(usize, usize)], key: (usize, usize)) -> usize {
    keys.iter()
        .position(|&k| k == key)
        .expect("cut slot missing from contraction frontier")
}

/// Contracts one fragment block into the frontier: sums out the
/// fragment's incoming axes against the frontier and appends its
/// outgoing axes. Frontier index: axis `k` is base-4 digit `k`.
fn absorb_block(keys: &mut Vec<(usize, usize)>, vals: &mut Vec<f64>, block: &FragmentBlock) {
    let in_pos: Vec<usize> = block.in_slots.iter().map(|&k| axis_of(keys, k)).collect();
    let n_out = block.out_slots.len();
    let dim_out = 1usize << (2 * n_out);
    let rest_pos: Vec<usize> = (0..keys.len()).filter(|p| !in_pos.contains(p)).collect();
    let n_rest = rest_pos.len();
    let mut next = vec![0.0f64; 1usize << (2 * (n_rest + n_out))];
    for (o, &v) in vals.iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        let mut a = 0usize;
        for (slot, &p) in in_pos.iter().enumerate() {
            a |= ((o >> (2 * p)) & 3) << (2 * slot);
        }
        let mut rest = 0usize;
        for (r, &p) in rest_pos.iter().enumerate() {
            rest |= ((o >> (2 * p)) & 3) << (2 * r);
        }
        for b in 0..dim_out {
            let t = block.tensor[a * dim_out + b];
            if t != 0.0 {
                next[rest | (b << (2 * n_rest))] += t * v;
            }
        }
    }
    let mut next_keys: Vec<(usize, usize)> = rest_pos.iter().map(|&p| keys[p]).collect();
    next_keys.extend(block.out_slots.iter().copied());
    *keys = next_keys;
    *vals = next;
}

/// In-place single-axis PTM application: `val'[.., a, ..] =
/// Σ_b m[a][b]·val[.., b, ..]` on base-4 axis `axis`.
fn apply_axis_4(vals: &mut [f64], axis: usize, m: &[[f64; 4]; 4]) {
    let stride = 1usize << (2 * axis);
    let mut base = 0;
    while base < vals.len() {
        for low in base..base + stride {
            let x = [
                vals[low],
                vals[low + stride],
                vals[low + 2 * stride],
                vals[low + 3 * stride],
            ];
            for (a, row) in m.iter().enumerate() {
                vals[low + a * stride] =
                    row[0] * x[0] + row[1] * x[1] + row[2] * x[2] + row[3] * x[3];
            }
        }
        base += 4 * stride;
    }
}

/// Dense multi-axis PTM application over the listed axes (`axes[k]` is
/// base-4 digit `k` of the transfer index).
fn apply_axes_dense(vals: &mut Vec<f64>, axes: &[usize], r: &[f64]) {
    let dim = 1usize << (2 * axes.len());
    debug_assert_eq!(r.len(), dim * dim);
    let mut next = vec![0.0f64; vals.len()];
    for (o, &v) in vals.iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        let mut bidx = 0usize;
        let mut base = o;
        for (k, &p) in axes.iter().enumerate() {
            bidx |= ((o >> (2 * p)) & 3) << (2 * k);
            base &= !(3usize << (2 * p));
        }
        for a in 0..dim {
            let coeff = r[a * dim + bidx];
            if coeff == 0.0 {
                continue;
            }
            let mut target = base;
            for (k, &p) in axes.iter().enumerate() {
                target |= ((a >> (2 * k)) & 3) << (2 * p);
            }
            next[target] += coeff * v;
        }
    }
    *vals = next;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::CutPlanner;

    fn ladder(n: usize) -> Circuit {
        let mut c = Circuit::new(n, 0);
        c.ry(0.4, 0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    #[test]
    fn nme_teleport_ptm_is_identity_at_full_overlap() {
        // f = 1 ⇒ the NME family's signed PTM sum must be exactly 1 on
        // each term-family member weighted by coefficients... simplest
        // invariant: Σ cᵢ·Rᵢ = I for the single-wire cut.
        let cut = NmeCut::new(1.0);
        let terms = cut.terms();
        let mut sum = [[0.0f64; 4]; 4];
        for t in &terms {
            let r = ptm_1q(&term_channel(t));
            for a in 0..4 {
                for b in 0..4 {
                    sum[a][b] += t.coefficient * r[a][b];
                }
            }
        }
        for (a, row) in sum.iter().enumerate() {
            for (b, &entry) in row.iter().enumerate() {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((entry - expect).abs() < 1e-9, "Σ cᵢ·R[{a}][{b}] = {entry}");
            }
        }
    }

    #[test]
    fn joint_transfer_sums_to_identity() {
        for n in 1..=2usize {
            let group = CutGroup {
                cuts: (0..n)
                    .map(|w| crate::planner::PlannedCut {
                        wire: w,
                        source_fragment: 0,
                        dest_fragment: 1,
                    })
                    .collect(),
                protocol: Protocol::JointMub,
                kappa: JointWireCut::new(n).kappa(),
            };
            let spec = group.spec();
            let transfer = group_transfer(&group);
            let GroupTransfer::Dense { ptms, .. } = transfer else {
                panic!("joint group must build a dense transfer");
            };
            let dim4 = 1usize << (2 * n);
            for a in 0..dim4 {
                for b in 0..dim4 {
                    let sum: f64 = ptms
                        .iter()
                        .zip(spec.terms().iter())
                        .map(|(r, t)| t.coefficient * r[a * dim4 + b])
                        .sum();
                    let expect = if a == b { 1.0 } else { 0.0 };
                    assert!(
                        (sum - expect).abs() < 1e-9,
                        "n={n}: Σ cᵢ·R[{a}][{b}] = {sum}"
                    );
                }
            }
        }
    }

    #[test]
    fn contracted_terms_match_uncut_on_a_ladder() {
        let c = ladder(4);
        let obs = PauliString::from_label("ZZZZ");
        let plan = CutPlanner::new(2).with_overlap(0.8).plan(&c);
        assert!(supports_contraction(&plan));
        let blocks = FragmentBlocks::build(&plan, &obs);
        let lens = blocks.group_lens();
        let total: usize = lens.iter().product();
        // Σ cᵢ·termᵢ over the full odometer must equal the uncut value.
        let spec = qpd::QpdSpec::product(&plan.groups.iter().map(|g| g.spec()).collect::<Vec<_>>());
        assert_eq!(spec.len(), total);
        let mut value = 0.0;
        for combo in 0..total {
            let mut rem = combo;
            let mut pick = vec![0usize; lens.len()];
            for g in (0..lens.len()).rev() {
                pick[g] = rem % lens[g];
                rem /= lens[g];
            }
            value += spec.terms()[combo].coefficient * blocks.term_value(&pick);
        }
        let uncut = crate::planner::uncut_plan_expectation(&c, &obs);
        assert!(
            (value - uncut).abs() < 1e-8,
            "contracted {value} vs uncut {uncut}"
        );
    }

    #[test]
    fn measurement_circuits_fall_back_to_monolithic() {
        let mut c = Circuit::new(3, 1);
        c.ry(0.4, 0).cx(0, 1).cx(1, 2).measure(2, 0);
        let plan = CutPlanner::new(2).plan(&c);
        assert!(!supports_contraction(&plan));
    }

    #[test]
    fn uncut_plans_fall_back_to_monolithic() {
        let c = ladder(3);
        let plan = CutPlanner::new(3).plan(&c);
        assert!(plan.groups.is_empty());
        assert!(!supports_contraction(&plan));
    }
}

//! **Per-fragment tensor-block compilation** for the cut planner — the
//! scalable alternative to stitching one monolithic circuit per product
//! term ([`crate::planner::CompiledPlan`]).
//!
//! Wire cutting's value proposition is that fragments are simulated
//! *independently* and recombined classically. The monolithic compiler
//! inverts that: every combination of per-group QPD terms stitches and
//! simulates its own carrier-threaded circuit, so compilation cost grows
//! as `Π terms(group)` — intractable past ~4 cuts. This module restores
//! the fragment-local structure in the Pauli-transfer picture:
//!
//! * **Group transfer matrices** — each cut group's term `t` realises a
//!   channel `C_t` on the cut wires; its Pauli transfer matrix
//!   `R_t[a, b] = Tr[P_a · C_t(P_b)] / d` is computed once per group.
//!   NME groups factorise per wire (`[[f64; 4]; 4]` per term); joint-MUB
//!   terms are dephasing-type channels whose PTM is **diagonal** in the
//!   Pauli basis, so the nominal `4ⁿ × 4ⁿ` transfer collapses to its
//!   `4ⁿ` diagonal, built directly from the GF(2ⁿ) Pauli-class structure
//!   ([`crate::mub::mub_error_pauli`]) without ever materialising a
//!   matrix. That sparse form is what lifts [`MAX_JOINT_WIRES`] to 6:
//!   the dense transfer at `n = 6` alone would hold `16⁶ ≈ 1.7·10⁷`
//!   entries per term and cost `O(d⁵)` tomography to build.
//! * **Fragment blocks** — each fragment `F` is compiled once per local
//!   *variant*: every incoming cut wire is prepared in each of the six
//!   Pauli eigenstates (a basis input plus H/S Clifford prep, riding the
//!   [`CompiledSampler`] hybrid-stabilizer machinery), the fragment runs
//!   as a statevector, and all outgoing-Pauli ⊗ local-Z expectations are
//!   read off with [`StateVector::expval_pauli`]. Eigenstate weights
//!   fold the variants into the block tensor
//!   `F[a_in, b_out] = Tr[(P_{b_out} ⊗ Z_local) · E_F(σ_{a_in}/2 ⊗ |0⟩⟨0|)]`,
//!   stored in **CSR form** over the incoming index `a` (Clifford-heavy
//!   fragments have near-permutation Pauli-transfer rows, so most
//!   entries vanish). Fragments containing mid-circuit **measurement or
//!   feed-forward** are admitted: the channel `E_F` then branches over
//!   classical outcomes, and the block entry is the
//!   outcome-probability-weighted sum over the sampler's branch leaves —
//!   one sub-block per outcome, folded on the spot. Only a classical bit
//!   *shared between fragments* breaks fragment independence and forces
//!   the monolithic fallback ([`contraction_ineligibility`]).
//! * **Prefix-cached frontier contraction** — a product term's exact
//!   expectation is the frontier contraction `Σ F_dest[a] · R[a, b] ·
//!   F_src[b]` chained through the fragments in program order. The walk
//!   is precompiled into a pick-independent **schedule** of
//!   absorb/apply steps (frontier axis bookkeeping is the same for
//!   every term; only the applied transfer entries depend on the
//!   odometer pick). Because [`qpd::QpdSpec::product`] enumerates terms
//!   row-major with the **last group fastest**, consecutive terms share
//!   all but the fastest-varying group's frontier: [`FrontierSweep`]
//!   snapshots the frontier before each group's apply step and resumes
//!   each term at its first odometer digit that differs from the
//!   previous term, turning a full sweep from `O(terms × groups)`
//!   frontier multiplications into amortized `O(terms)`. The
//!   pick-independent tail *after* the last group's apply is folded
//!   into one precomputed vector per last-group term, so the hot path —
//!   only the fastest digit changed — is a single dot product.
//!   Hit/rebuild and frontier-op counters surface through
//!   [`crate::planner::BackendReport`].
//!
//! Total cost is `Σ_F 6^{in(F)}` fragment simulations plus an amortized
//! O(1) frontier contraction per term — `Σ variants(fragment)` instead
//! of `Π terms(group)` — so plans with 6+ cuts compile where the
//! monolithic path blows up. The monolithic compiler stays as the
//! pristine differential-testing reference
//! (`tests/fragment_contraction.rs`), mirroring how `compile_dense`
//! fences the hybrid sampler.

use crate::mub::{mub_error_pauli, MubField};
use crate::nme::NmeCut;
use crate::planner::{BackendReport, CutGroup, CutPlan, Protocol};
use crate::term::{term_channel, WireCut};
use qlinalg::Matrix;
use qsim::{
    fragment_circuit, Circuit, CompiledSampler, Op, Pauli, PauliString, StateVector, Superoperator,
};

/// Hard cap on incoming cut wires per fragment for the contracted path
/// (`6^incoming` prep variants per fragment).
pub const MAX_INCOMING: usize = 8;

/// Hard cap on joint-MUB group width for the contracted path. The
/// diagonal sparse transfer is `4ⁿ` per term, so the binding cost at
/// `n = 6` is the flip-term ancilla simulation, not the transfer.
pub const MAX_JOINT_WIRES: usize = 6;

/// Magnitude below which a folded block-tensor entry is dropped when
/// sparsifying to CSR. Well under every differential tolerance in the
/// suite (1e−8 against monolithic, 1e−12 cached-vs-uncached) and above
/// the ~1e−16 float noise of exactly-zero entries, so sparsification
/// never moves a term value observably.
const SPARSE_CUTOFF: f64 = 1e-14;

/// Six Pauli eigenstate preps per incoming wire, indexed `0..6`:
/// `|0⟩, |1⟩, |+⟩, |−⟩, |+i⟩, |−i⟩`. Odd indices set the input basis
/// bit; `{2,3}` append H; `{4,5}` append H then S (`S·H|1⟩ = |−i⟩`).
const NUM_PREPS: usize = 6;

/// `σ_a/2` expanded over eigenstate preps: `WEIGHTS[a]` lists the two
/// `(prep, weight)` entries with `σ_a/2 = Σ w·|s⟩⟨s|`.
const WEIGHTS: [[(usize, f64); 2]; 4] = [
    [(0, 0.5), (1, 0.5)],  // I/2
    [(2, 0.5), (3, -0.5)], // X/2
    [(4, 0.5), (5, -0.5)], // Y/2
    [(0, 0.5), (1, -0.5)], // Z/2
];

/// `true` when `plan` can compile through the contracted fragment-block
/// path — see [`contraction_ineligibility`] for the full rule set and
/// the named reason when it cannot.
pub fn supports_contraction(plan: &CutPlan) -> bool {
    contraction_ineligibility(plan).is_none()
}

/// Why `plan` cannot ride the contracted fragment-block path, or `None`
/// when it can. The checks, in order:
///
/// 1. at least one cut (an uncut plan has nothing to contract);
/// 2. **classical locality** — measurement and feed-forward are fine
///    *within* a fragment (the block sums over outcome branches), but a
///    classical bit measured in one fragment and read (or re-measured)
///    in another threads a side channel the independent per-fragment
///    blocks cannot express;
/// 3. joint-MUB group width ≤ [`MAX_JOINT_WIRES`];
/// 4. incoming cut wires per fragment ≤ [`MAX_INCOMING`], with the
///    `6^incoming` variant count computed via `checked_pow` so a wide
///    fragment is rejected by name instead of wrapping in release
///    builds;
/// 5. per-group term counts and their running product stay inside
///    `usize` (same `checked_pow`/`checked_mul` discipline — the
///    odometer sweep indexes `Π terms(group)` combinations).
pub fn contraction_ineligibility(plan: &CutPlan) -> Option<String> {
    if plan.groups.is_empty() {
        return Some("plan has no cuts — nothing to contract".to_string());
    }
    let circuit = plan.circuit();
    let mut owner: Vec<Option<usize>> = vec![None; circuit.num_clbits()];
    for (fi, frag) in plan.fragments.iter().enumerate() {
        for &idx in &frag.instructions {
            let instr = &circuit.instructions()[idx];
            let measured = match instr.op {
                Op::Measure { clbit, .. } => Some(clbit),
                _ => None,
            };
            let read = instr.condition.map(|c| c.bit);
            for clbit in measured.into_iter().chain(read) {
                match owner[clbit] {
                    Some(prev) if prev != fi => {
                        return Some(format!(
                            "classical bit {clbit} is shared between fragments {prev} and \
                             {fi} — cross-fragment feed-forward cannot contract"
                        ));
                    }
                    _ => owner[clbit] = Some(fi),
                }
            }
        }
    }
    for (gi, g) in plan.groups.iter().enumerate() {
        if g.protocol == Protocol::JointMub && g.num_wires() > MAX_JOINT_WIRES {
            return Some(format!(
                "group {gi} cuts {} wires jointly, above the MAX_JOINT_WIRES = \
                 {MAX_JOINT_WIRES} transfer cap",
                g.num_wires()
            ));
        }
    }
    let mut incoming = vec![0usize; plan.fragments.len()];
    for g in &plan.groups {
        incoming[g.cuts[0].dest_fragment] += g.num_wires();
    }
    for (fi, &n_in) in incoming.iter().enumerate() {
        if n_in > MAX_INCOMING {
            return Some(format!(
                "fragment {fi} receives {n_in} cut wires, above the MAX_INCOMING = \
                 {MAX_INCOMING} variant cap"
            ));
        }
        if NUM_PREPS.checked_pow(n_in as u32).is_none() {
            return Some(format!(
                "fragment {fi}: prep variant count {NUM_PREPS}^{n_in} overflows usize"
            ));
        }
    }
    let mut total = 1usize;
    for (gi, g) in plan.groups.iter().enumerate() {
        let n = g.num_wires();
        let len = match g.protocol {
            Protocol::Nme { k } => {
                let per_wire = NmeCut::new(k).terms().len();
                match per_wire.checked_pow(n as u32) {
                    Some(len) => len,
                    None => {
                        return Some(format!(
                            "group {gi}: NME term count {per_wire}^{n} overflows usize"
                        ))
                    }
                }
            }
            Protocol::JointMub => (1usize << n) + 1,
        };
        total = match total.checked_mul(len) {
            Some(t) => t,
            None => {
                return Some(format!(
                    "product term count overflows usize at group {gi} \
                     ({total} terms so far × {len})"
                ))
            }
        };
    }
    None
}

/// One cut group's Pauli transfer matrices, one per QPD term, in the
/// exact order [`CutGroup::terms`] enumerates them.
enum GroupTransfer {
    /// NME groups factorise per wire: every wire shares the same
    /// single-wire term family (`[[f64; 4]; 4]` PTM per term), and the
    /// group term index decodes with the **last wire fastest** — the
    /// [`crate::multi::ParallelWireCut`] combination order.
    PerWire {
        wires: usize,
        per_term: Vec<[[f64; 4]; 4]>,
    },
    /// Joint-MUB groups: every term is a dephasing-type channel, whose
    /// PTM is diagonal in the Pauli basis — `diags[t][a]` is the
    /// eigenvalue of Pauli `a` under term `t` (slot 0 = least
    /// significant base-4 digit). The diagonal *is* the fully sparse
    /// form of the `4ⁿ × 4ⁿ` transfer: `16ⁿ` entries collapse to `4ⁿ`.
    Joint { diags: Vec<Vec<f64>> },
}

impl GroupTransfer {
    fn num_terms(&self) -> usize {
        match self {
            GroupTransfer::PerWire { wires, per_term } => per_term
                .len()
                .checked_pow(*wires as u32)
                .expect("per-wire term count overflows usize — eligibility admitted a plan it must reject"),
            GroupTransfer::Joint { diags, .. } => diags.len(),
        }
    }
}

/// The single-wire PTM `r[a][b] = Re Tr[P_a · C(P_b)] / 2` of a channel.
fn ptm_1q(ch: &Superoperator) -> [[f64; 4]; 4] {
    let paulis: Vec<Matrix> = (0..4).map(|i| Pauli::from_index(i).matrix()).collect();
    let mut r = [[0.0; 4]; 4];
    for (b, pb) in paulis.iter().enumerate() {
        let image = ch.apply(pb);
        for (a, pa) in paulis.iter().enumerate() {
            r[a][b] = pa.matmul(&image).trace().re * 0.5;
        }
    }
    r
}

/// Base-4 Pauli code of a symplectic `(x, z)` pair: slot `q`'s digit is
/// `I/X/Y/Z = 0/1/2/3` from the bit pair `(x_q, z_q)` — the
/// [`qsim::pauli::pauli_string_from_code`] convention.
fn pauli_code(p: (u64, u64), n: usize) -> usize {
    let (x, z) = p;
    let mut code = 0usize;
    for q in 0..n {
        let digit = match ((x >> q) & 1, (z >> q) & 1) {
            (0, 0) => 0,
            (1, 0) => 1,
            (1, 1) => 2,
            _ => 3,
        };
        code |= digit << (2 * q);
    }
    code
}

/// The diagonal PTMs of the `d + 1` joint-MUB QPD terms over `n` wires,
/// in [`crate::joint::JointWireCut::terms`] order. Dephasing in MUB `b`
/// fixes exactly the Paulis of its stabilizer class `{U_b Z^z U_b†}`
/// (eigenvalue 1) and annihilates every Pauli that anticommutes with
/// some class member — which is every other non-identity Pauli, the
/// class being maximal abelian. The flip term maps `I ↦ I`, each
/// Z-string to `−1/(d−1)` times itself, and kills all off-diagonal
/// Paulis. Built from the GF(2ⁿ) class structure — `O((d+1)·d)` integer
/// work, no `d × d` matrix and no dense `16ⁿ`-entry tomography — and
/// pinned against the dense [`ptm_dense`] reference for `n ≤ 2` in
/// tests.
fn joint_transfer_diagonals(n: usize) -> Vec<Vec<f64>> {
    let field = MubField::new(n);
    let d = 1usize << n;
    let dim4 = 1usize << (2 * n);
    let mut diags = Vec::with_capacity(d + 1);
    for b in 1..=d {
        let mut diag = vec![0.0f64; dim4];
        for z in 0..d as u64 {
            diag[pauli_code(mub_error_pauli(&field, b, z), n)] = 1.0;
        }
        diags.push(diag);
    }
    let mut flip = vec![0.0f64; dim4];
    flip[0] = 1.0;
    for z in 1..d as u64 {
        flip[pauli_code((0, z), n)] = -1.0 / (d - 1) as f64;
    }
    diags.push(flip);
    diags
}

/// Builds one group's transfer matrices from its protocol.
fn group_transfer(group: &CutGroup) -> GroupTransfer {
    match group.protocol {
        Protocol::Nme { k } => {
            let per_term: Vec<[[f64; 4]; 4]> = NmeCut::new(k)
                .terms()
                .iter()
                .map(|t| ptm_1q(&term_channel(t)))
                .collect();
            GroupTransfer::PerWire {
                wires: group.num_wires(),
                per_term,
            }
        }
        Protocol::JointMub => GroupTransfer::Joint {
            diags: joint_transfer_diagonals(group.num_wires()),
        },
    }
}

/// One fragment's compiled expectation block, in CSR form over the
/// incoming index `a`: row `a` lists the surviving `(b_out, value)`
/// pairs of `F[a, b]`.
struct FragmentBlock {
    /// Incoming cut slots `(group, slot)`, ascending; slot `i` is the
    /// `i`-th base-4 digit of the row index `a`.
    in_slots: Vec<(usize, usize)>,
    /// Outgoing cut slots, ascending; slot `i` is the `i`-th base-4
    /// digit of the column index `b`.
    out_slots: Vec<(usize, usize)>,
    /// CSR row offsets, length `4^in + 1`.
    row_ptr: Vec<usize>,
    /// Column (outgoing) indices of the stored entries.
    cols: Vec<u32>,
    /// Stored entry values.
    vals: Vec<f64>,
}

/// Public per-fragment compilation summary (introspection for the
/// service and experiments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentBlockSummary {
    /// Fragment index in plan order.
    pub fragment: usize,
    /// Fragment width (local qubits).
    pub width: usize,
    /// Incoming cut wires.
    pub incoming: usize,
    /// Outgoing cut wires.
    pub outgoing: usize,
    /// Compiled prep variants (`6^incoming`).
    pub variants: usize,
    /// Entries surviving CSR sparsification, out of `4^(in+out)`.
    pub nnz: usize,
    /// Largest classical-outcome branch count across variants (1 for a
    /// unitary fragment; measurement fragments block over each outcome).
    pub outcome_branches: usize,
}

/// One step of the precompiled contraction schedule. The frontier's
/// axis bookkeeping is pick-independent — every product term runs the
/// same ops in the same order; only the transfer entries picked inside
/// an `Apply` vary — which is what makes prefix caching sound.
enum SweepOp {
    /// Contract fragment `fragment`'s block into the frontier.
    Absorb {
        fragment: usize,
        /// Frontier axis of each incoming slot at this walk position.
        in_pos: Vec<usize>,
        /// Surviving (non-incoming) frontier axes, in order.
        rest_pos: Vec<usize>,
    },
    /// Apply cut group `group`'s picked term to the frontier.
    Apply {
        group: usize,
        /// Frontier axis of each of the group's slots.
        axes: Vec<usize>,
    },
}

/// The precompiled contraction schedule plus the fused tail (see
/// [`FrontierSweep`]).
struct Schedule {
    ops: Vec<SweepOp>,
    /// `ops` index of each group's `Apply`, ascending in both.
    group_op: Vec<usize>,
    /// Frontier multiplications of one from-scratch, unfused term
    /// evaluation: 1 per absorb, 1 per wire of a per-wire apply, 1 per
    /// joint apply.
    ops_per_term: usize,
    /// For the last (fastest-varying) group: the pick-independent tail
    /// after its apply — all remaining absorbs — folded through each of
    /// its terms' (transposed) transfers. `fused_tail[t]` dotted with
    /// the frontier before the last apply is the term value, so the hot
    /// path of the sweep is one multiplication. `None` when the fold
    /// would be larger than the work it saves.
    fused_tail: Option<Vec<Vec<f64>>>,
}

/// Prefix-cache hit/op counters of one [`FrontierSweep`] (mirrored into
/// [`BackendReport`] by the contracted compile path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Terms evaluated.
    pub terms: usize,
    /// Frontier matrix multiplications actually performed.
    pub frontier_ops: usize,
    /// Frontier multiplications a cache-disabled evaluation of the same
    /// terms would perform (`ops_per_term × terms`).
    pub frontier_ops_uncached: usize,
    /// Σ resume depths: odometer digits whose partial frontier was
    /// served from the prefix stack.
    pub prefix_hits: usize,
    /// Σ re-applied groups: odometer digits whose partial frontier had
    /// to be rebuilt.
    pub prefix_rebuilds: usize,
}

/// All per-fragment blocks and per-group transfer matrices of one plan —
/// everything needed to evaluate any product term by contraction. Built
/// once per plan ([`FragmentBlocks::build`]); cached inside the compiled
/// plan, so the service's compiled-plan cache shares the blocks across
/// every job hitting the same [`crate::planner::PlanKey`].
pub struct FragmentBlocks {
    blocks: Vec<FragmentBlock>,
    transfers: Vec<GroupTransfer>,
    /// Per group: member wire ids, slot-aligned (diagnostics).
    group_wires: Vec<Vec<usize>>,
    schedule: Schedule,
    summaries: Vec<FragmentBlockSummary>,
    backend: BackendReport,
}

impl FragmentBlocks {
    /// Compiles every fragment variant and every group transfer matrix
    /// for `plan` against a diagonal (Z/I) `observable`. Deterministic:
    /// identical plans produce bit-identical blocks.
    ///
    /// # Panics
    /// Panics when `!supports_contraction(plan)` (with the
    /// [`contraction_ineligibility`] reason) or the observable does not
    /// match the planned circuit.
    pub fn build(plan: &CutPlan, observable: &PauliString) -> Self {
        if let Some(reason) = contraction_ineligibility(plan) {
            panic!("plan does not support contracted compilation: {reason}");
        }
        let circuit = plan.circuit();
        assert_eq!(observable.num_qubits(), circuit.num_qubits());
        assert!(observable.is_diagonal());
        let transfers: Vec<GroupTransfer> = plan.groups.iter().map(group_transfer).collect();
        let group_wires: Vec<Vec<usize>> = plan
            .groups
            .iter()
            .map(|g| g.cuts.iter().map(|c| c.wire).collect())
            .collect();
        let mut groups_at_source = vec![Vec::new(); plan.fragments.len()];
        for (gi, g) in plan.groups.iter().enumerate() {
            groups_at_source[g.cuts[0].source_fragment].push(gi);
        }
        let mut blocks = Vec::with_capacity(plan.fragments.len());
        let mut summaries = Vec::with_capacity(plan.fragments.len());
        let mut backend = BackendReport::default();
        for (fi, frag) in plan.fragments.iter().enumerate() {
            let mut local = vec![usize::MAX; circuit.num_qubits()];
            for (i, &w) in frag.wires.iter().enumerate() {
                local[w] = i;
            }
            let width = frag.wires.len().max(1);
            // Ascending (group, slot) — the canonical axis order.
            let mut in_slots: Vec<((usize, usize), usize)> = Vec::new();
            let mut out_slots: Vec<((usize, usize), usize)> = Vec::new();
            let mut out_wires: Vec<usize> = Vec::new();
            for (gi, g) in plan.groups.iter().enumerate() {
                for (si, cut) in g.cuts.iter().enumerate() {
                    if cut.dest_fragment == fi {
                        in_slots.push(((gi, si), local[cut.wire]));
                    }
                    if cut.source_fragment == fi {
                        out_slots.push(((gi, si), local[cut.wire]));
                        out_wires.push(cut.wire);
                    }
                }
            }
            // Z factors terminate on the wire's *last* fragment — any
            // wire still outgoing defers its Z through the cut channel.
            let z_locals: Vec<usize> = frag
                .wires
                .iter()
                .filter(|&&w| observable.op(w) == Pauli::Z && !out_wires.contains(&w))
                .map(|&w| local[w])
                .collect();
            let base = fragment_circuit(circuit, frag);
            let n_in = in_slots.len();
            let n_out = out_slots.len();
            let dim_out = 1usize << (2 * n_out);
            let num_variants = NUM_PREPS.checked_pow(n_in as u32).expect(
                "variant count overflows usize — eligibility admitted a plan it must reject",
            );
            let mut outcome_branches = 1usize;
            let mut vals = vec![vec![0.0f64; dim_out]; num_variants];
            for (v, val) in vals.iter_mut().enumerate() {
                let mut c = Circuit::new(width, base.num_clbits());
                let mut basis_mask = 0usize;
                let mut rem = v;
                for &(_, q) in &in_slots {
                    let s = rem % NUM_PREPS;
                    rem /= NUM_PREPS;
                    if s % 2 == 1 {
                        basis_mask |= 1 << q;
                    }
                    if s >= 2 {
                        c.h(q);
                    }
                    if s >= 4 {
                        c.s(q);
                    }
                }
                c.compose(&base);
                let input = if basis_mask == 0 {
                    None
                } else {
                    let mut amps = vec![qlinalg::c64(0.0, 0.0); 1 << width];
                    amps[basis_mask] = qlinalg::c64(1.0, 0.0);
                    Some(StateVector::from_amplitudes(width, amps))
                };
                let sampler = CompiledSampler::compile(&c, input.as_ref());
                let prefix = sampler.clifford_prefix();
                backend.terms += 1;
                if prefix.prefix_len > 0 {
                    backend.hybrid_terms += 1;
                }
                backend.total_instructions += prefix.total;
                backend.clifford_instructions += prefix.prefix_len;
                backend.gates_fused += sampler.fusion_stats().gates_fused;
                // Measurement fragments branch over classical outcomes;
                // the channel expectation is the probability-weighted
                // sum over the branch leaves (one sub-block per
                // outcome). A unitary fragment has exactly one leaf.
                let leaves = sampler.leaves();
                outcome_branches = outcome_branches.max(leaves.len());
                for (b, slot) in val.iter_mut().enumerate() {
                    let mut ops = vec![Pauli::I; width];
                    for &q in &z_locals {
                        ops[q] = Pauli::Z;
                    }
                    for (i, &(_, q)) in out_slots.iter().enumerate() {
                        ops[q] = Pauli::from_index((b >> (2 * i)) & 3);
                    }
                    let obs = PauliString::new(ops);
                    *slot = leaves
                        .iter()
                        .map(|l| l.probability * l.state.expval_pauli(&obs))
                        .sum();
                }
            }
            // Fold eigenstate weights into CSR rows, one incoming index
            // `a` at a time (never materialising the dense tensor).
            let dim_in = 1usize << (2 * n_in);
            let mut row_ptr = Vec::with_capacity(dim_in + 1);
            let mut cols: Vec<u32> = Vec::new();
            let mut csr_vals: Vec<f64> = Vec::new();
            row_ptr.push(0);
            let mut row = vec![0.0f64; dim_out];
            for a in 0..dim_in {
                row.fill(0.0);
                for choice in 0..(1usize << n_in) {
                    let mut weight = 1.0f64;
                    let mut v = 0usize;
                    let mut scale = 1usize;
                    for i in 0..n_in {
                        let (prep, w) = WEIGHTS[(a >> (2 * i)) & 3][(choice >> i) & 1];
                        weight *= w;
                        v += prep * scale;
                        scale *= NUM_PREPS;
                    }
                    for (b, &x) in vals[v].iter().enumerate() {
                        row[b] += weight * x;
                    }
                }
                for (b, &x) in row.iter().enumerate() {
                    if x.abs() > SPARSE_CUTOFF {
                        cols.push(b as u32);
                        csr_vals.push(x);
                    }
                }
                row_ptr.push(cols.len());
            }
            summaries.push(FragmentBlockSummary {
                fragment: fi,
                width: frag.width(),
                incoming: n_in,
                outgoing: n_out,
                variants: num_variants,
                nnz: cols.len(),
                outcome_branches,
            });
            blocks.push(FragmentBlock {
                in_slots: in_slots.into_iter().map(|(k, _)| k).collect(),
                out_slots: out_slots.into_iter().map(|(k, _)| k).collect(),
                row_ptr,
                cols,
                vals: csr_vals,
            });
        }
        let schedule = build_schedule(&blocks, &transfers, &groups_at_source, &group_wires);
        Self {
            blocks,
            transfers,
            group_wires,
            schedule,
            summaries,
            backend,
        }
    }

    /// Term counts per group, aligned with the plan's group order.
    pub fn group_lens(&self) -> Vec<usize> {
        self.transfers.iter().map(|t| t.num_terms()).collect()
    }

    /// Backend aggregation over every compiled fragment variant (the
    /// contracted analogue of the monolithic per-term report). Frontier
    /// and prefix-cache counters stay zero here — they belong to the
    /// sweep that actually evaluates terms ([`FrontierSweep::stats`]).
    pub fn backend_report(&self) -> BackendReport {
        self.backend
    }

    /// Per-fragment compilation summaries.
    pub fn summaries(&self) -> &[FragmentBlockSummary] {
        &self.summaries
    }

    /// Exact expectation of one product term: `pick[g]` selects group
    /// `g`'s QPD term. Pure contraction — no circuit simulation, no
    /// prefix cache, no fused tail: every op of the schedule runs from
    /// scratch. This is the cache-disabled reference the differential
    /// suite holds [`FrontierSweep`] against.
    pub fn term_value(&self, pick: &[usize]) -> f64 {
        assert_eq!(pick.len(), self.transfers.len());
        let mut vals = vec![1.0f64];
        for op in &self.schedule.ops {
            self.exec_op(op, pick, &mut vals);
        }
        debug_assert_eq!(vals.len(), 1);
        vals[0]
    }

    /// A fresh prefix-cached sweep over this plan's product terms. Feed
    /// it picks in [`qpd::QpdSpec::product`] odometer order (last group
    /// fastest) for amortized O(1) frontier work per term; any order is
    /// correct, just slower.
    pub fn sweep(&self) -> FrontierSweep<'_> {
        FrontierSweep {
            blocks: self,
            last_pick: vec![0; self.transfers.len()],
            has_pick: false,
            snapshots: vec![Vec::new(); self.transfers.len()],
            stats: SweepStats::default(),
        }
    }

    /// Executes one schedule op against the frontier, returning the
    /// frontier multiplications performed.
    fn exec_op(&self, op: &SweepOp, pick: &[usize], vals: &mut Vec<f64>) -> usize {
        match op {
            SweepOp::Absorb {
                fragment,
                in_pos,
                rest_pos,
            } => {
                absorb_sparse(&self.blocks[*fragment], in_pos, rest_pos, vals);
                1
            }
            SweepOp::Apply { group, axes } => self.apply_group(*group, pick, axes, vals),
        }
    }

    /// Applies group `gi`'s picked term along the frontier axes.
    fn apply_group(&self, gi: usize, pick: &[usize], axes: &[usize], vals: &mut [f64]) -> usize {
        let t = pick[gi];
        let nt = self.transfers[gi].num_terms();
        assert!(
            t < nt,
            "odometer pick {pick:?} selects term {t} for group {gi} (wires {:?}), \
             which has only {nt} terms",
            self.group_wires[gi]
        );
        match &self.transfers[gi] {
            GroupTransfer::PerWire { wires, per_term } => {
                let n = per_term.len();
                let mut rem = t;
                let mut idx = vec![0usize; *wires];
                // Last wire fastest — ParallelWireCut order.
                for slot in (0..*wires).rev() {
                    idx[slot] = rem % n;
                    rem /= n;
                }
                for (slot, &ti) in idx.iter().enumerate() {
                    apply_axis_4(vals, axes[slot], &per_term[ti]);
                }
                *wires
            }
            GroupTransfer::Joint { diags, .. } => {
                apply_joint_diag(vals, axes, &diags[t]);
                1
            }
        }
    }
}

/// A prefix-cached evaluator over one plan's product terms.
///
/// [`qpd::QpdSpec::product`] enumerates terms row-major with the last
/// group's digit varying fastest, so consecutive picks share a long
/// odometer prefix. The sweep keeps one frontier snapshot per group —
/// the state just before that group's apply step, a pure function of
/// the digits *before* it — and evaluates each term by resuming at its
/// first digit that differs from the previous pick. The
/// pick-independent tail after the last apply is pre-folded into a
/// per-term dot table, so the common case (only the fastest
/// digit moved) is a single dot product against the last snapshot.
pub struct FrontierSweep<'a> {
    blocks: &'a FragmentBlocks,
    last_pick: Vec<usize>,
    has_pick: bool,
    /// `snapshots[g]`: frontier values before group `g`'s apply, valid
    /// for the current `last_pick` prefix of length `g`.
    snapshots: Vec<Vec<f64>>,
    stats: SweepStats,
}

impl FrontierSweep<'_> {
    /// Exact expectation of one product term, reusing every partial
    /// frontier shared with the previous pick. Bit-for-bit
    /// deterministic: the value depends only on `pick`, never on the
    /// call sequence (resumed and from-scratch evaluations run the
    /// identical op sequence on identical snapshots).
    pub fn term_value(&mut self, pick: &[usize]) -> f64 {
        let sched = &self.blocks.schedule;
        let num_groups = self.blocks.transfers.len();
        assert_eq!(pick.len(), num_groups);
        let last = num_groups - 1;
        // Resume at the first differing digit; snapshots[r] depends
        // only on pick[0..r], so a common prefix of length ≥ r keeps it
        // valid. Identical picks re-run just the fastest digit.
        let resume = if self.has_pick {
            let mut c = 0;
            while c < num_groups && pick[c] == self.last_pick[c] {
                c += 1;
            }
            c.min(last)
        } else {
            0
        };
        self.stats.terms += 1;
        self.stats.prefix_hits += resume;
        self.stats.prefix_rebuilds += num_groups - resume;
        self.stats.frontier_ops_uncached += sched.ops_per_term;
        let from_scratch = !self.has_pick;
        let (mut vals, start_op) = if from_scratch {
            (vec![1.0f64], 0)
        } else {
            (self.snapshots[resume].clone(), sched.group_op[resume])
        };
        // Replay ops up to (excluding) the last group's apply,
        // refreshing the snapshots the new digits invalidated.
        let end_op = sched.group_op[last];
        for op_i in start_op..end_op {
            let op = &sched.ops[op_i];
            if let SweepOp::Apply { group, .. } = op {
                if *group > resume || from_scratch {
                    self.snapshots[*group] = vals.clone();
                }
            }
            self.stats.frontier_ops += self.blocks.exec_op(op, pick, &mut vals);
        }
        if last > resume || from_scratch {
            self.snapshots[last] = vals.clone();
        }
        self.last_pick.copy_from_slice(pick);
        self.has_pick = true;
        let before_last = &self.snapshots[last];
        if let Some(fused) = &sched.fused_tail {
            self.stats.frontier_ops += 1;
            fused[pick[last]]
                .iter()
                .zip(before_last)
                .map(|(w, v)| w * v)
                .sum()
        } else {
            // Tail too large to fuse: run the last apply and the
            // trailing absorbs on a scratch frontier.
            let mut tail = before_last.clone();
            for op in &sched.ops[end_op..] {
                self.stats.frontier_ops += self.blocks.exec_op(op, pick, &mut tail);
            }
            debug_assert_eq!(tail.len(), 1);
            tail[0]
        }
    }

    /// The sweep's hit/op counters so far.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }
}

/// Cap on the fused-tail fold: skip fusing when the frontier before the
/// last apply or the per-term fold table would outgrow the work saved.
const MAX_FUSED_DIM: usize = 1 << 16;
const MAX_FUSED_TABLE: usize = 1 << 22;

/// Precompiles the contraction walk: simulates the frontier's axis
/// bookkeeping once (it is pick-independent) and records one op per
/// fragment absorb and per group apply, in program order. Structural
/// frontier corruption — a cut slot consumed before its source produced
/// it, or never consumed at all — panics here, naming the fragment,
/// group, slot and wire involved.
fn build_schedule(
    blocks: &[FragmentBlock],
    transfers: &[GroupTransfer],
    groups_at_source: &[Vec<usize>],
    group_wires: &[Vec<usize>],
) -> Schedule {
    let mut keys: Vec<(usize, usize)> = Vec::new();
    let mut ops = Vec::new();
    let mut group_op = vec![usize::MAX; transfers.len()];
    let mut ops_per_term = 0usize;
    let mut tail_dim = 1usize;
    for (fi, block) in blocks.iter().enumerate() {
        let in_pos: Vec<usize> = block
            .in_slots
            .iter()
            .map(|&(gi, si)| {
                keys.iter().position(|&k| k == (gi, si)).unwrap_or_else(|| {
                    panic!(
                        "contraction frontier corrupt: fragment {fi} consumes slot {si} of \
                         group {gi} (wire {}), which is not on the frontier {keys:?}",
                        group_wires[gi][si]
                    )
                })
            })
            .collect();
        let rest_pos: Vec<usize> = (0..keys.len()).filter(|p| !in_pos.contains(p)).collect();
        keys = rest_pos.iter().map(|&p| keys[p]).collect();
        keys.extend(block.out_slots.iter().copied());
        ops.push(SweepOp::Absorb {
            fragment: fi,
            in_pos,
            rest_pos,
        });
        ops_per_term += 1;
        for &gi in &groups_at_source[fi] {
            let axes: Vec<usize> = (0..group_wires[gi].len())
                .map(|si| {
                    keys.iter().position(|&k| k == (gi, si)).unwrap_or_else(|| {
                        panic!(
                            "contraction frontier corrupt: slot {si} of group {gi} (wire {}) \
                             missing from the frontier {keys:?} after absorbing fragment {fi}",
                            group_wires[gi][si]
                        )
                    })
                })
                .collect();
            group_op[gi] = ops.len();
            tail_dim = 1usize << (2 * keys.len());
            ops.push(SweepOp::Apply { group: gi, axes });
            ops_per_term += match &transfers[gi] {
                GroupTransfer::PerWire { wires, .. } => *wires,
                GroupTransfer::Joint { .. } => 1,
            };
        }
    }
    assert!(
        keys.is_empty(),
        "unconsumed cut axes after contraction: {keys:?}"
    );
    debug_assert!(group_op.windows(2).all(|w| w[0] < w[1]));
    let fused_tail = build_fused_tail(blocks, transfers, &ops, &group_op, tail_dim);
    Schedule {
        ops,
        group_op,
        ops_per_term,
        fused_tail,
    }
}

/// Folds the pick-independent tail after the last group's apply — all
/// remaining fragment absorbs, a linear functional `L` on the frontier —
/// through each last-group term's transposed transfer:
/// `⟨L, M_t·v⟩ = ⟨M_tᵀ·L, v⟩`, so each table row dotted with the
/// frontier before the last apply yields the term value in one
/// multiplication.
fn build_fused_tail(
    blocks: &[FragmentBlock],
    transfers: &[GroupTransfer],
    ops: &[SweepOp],
    group_op: &[usize],
    dim: usize,
) -> Option<Vec<Vec<f64>>> {
    let last = transfers.len() - 1;
    let nt = transfers[last].num_terms();
    if dim > MAX_FUSED_DIM || nt.saturating_mul(dim) > MAX_FUSED_TABLE {
        return None;
    }
    let apply_i = group_op[last];
    let SweepOp::Apply { axes, .. } = &ops[apply_i] else {
        unreachable!("group_op indexes an Apply op");
    };
    // The tail functional: run the trailing absorbs on each basis
    // vector of the frontier before the last apply.
    let mut tail = vec![0.0f64; dim];
    for (e, out) in tail.iter_mut().enumerate() {
        let mut vals = vec![0.0f64; dim];
        vals[e] = 1.0;
        for op in &ops[apply_i + 1..] {
            let SweepOp::Absorb {
                fragment,
                in_pos,
                rest_pos,
            } = op
            else {
                unreachable!("the last apply is the schedule's final Apply op");
            };
            absorb_sparse(&blocks[*fragment], in_pos, rest_pos, &mut vals);
        }
        debug_assert_eq!(vals.len(), 1);
        *out = vals[0];
    }
    let mut table = Vec::with_capacity(nt);
    for t in 0..nt {
        let mut w = tail.clone();
        match &transfers[last] {
            GroupTransfer::PerWire { wires, per_term } => {
                let n = per_term.len();
                let mut rem = t;
                let mut idx = vec![0usize; *wires];
                for slot in (0..*wires).rev() {
                    idx[slot] = rem % n;
                    rem /= n;
                }
                for (slot, &ti) in idx.iter().enumerate() {
                    let m = &per_term[ti];
                    let mut mt = [[0.0f64; 4]; 4];
                    for (a, row) in m.iter().enumerate() {
                        for (b, &x) in row.iter().enumerate() {
                            mt[b][a] = x;
                        }
                    }
                    apply_axis_4(&mut w, axes[slot], &mt);
                }
            }
            GroupTransfer::Joint { diags, .. } => {
                // Diagonal transfers are their own transpose.
                apply_joint_diag(&mut w, axes, &diags[t]);
            }
        }
        table.push(w);
    }
    Some(table)
}

/// Contracts one fragment's CSR block into the frontier: sums out the
/// fragment's incoming axes against the frontier and appends its
/// outgoing axes. Frontier index: axis `k` is base-4 digit `k`.
fn absorb_sparse(block: &FragmentBlock, in_pos: &[usize], rest_pos: &[usize], vals: &mut Vec<f64>) {
    let n_out = block.out_slots.len();
    let n_rest = rest_pos.len();
    let mut next = vec![0.0f64; 1usize << (2 * (n_rest + n_out))];
    for (o, &v) in vals.iter().enumerate() {
        if v == 0.0 {
            continue;
        }
        let mut a = 0usize;
        for (slot, &p) in in_pos.iter().enumerate() {
            a |= ((o >> (2 * p)) & 3) << (2 * slot);
        }
        let mut rest = 0usize;
        for (r, &p) in rest_pos.iter().enumerate() {
            rest |= ((o >> (2 * p)) & 3) << (2 * r);
        }
        for k in block.row_ptr[a]..block.row_ptr[a + 1] {
            next[rest | ((block.cols[k] as usize) << (2 * n_rest))] += block.vals[k] * v;
        }
    }
    *vals = next;
}

/// In-place single-axis PTM application: `val'[.., a, ..] =
/// Σ_b m[a][b]·val[.., b, ..]` on base-4 axis `axis`.
fn apply_axis_4(vals: &mut [f64], axis: usize, m: &[[f64; 4]; 4]) {
    let stride = 1usize << (2 * axis);
    let mut base = 0;
    while base < vals.len() {
        for low in base..base + stride {
            let x = [
                vals[low],
                vals[low + stride],
                vals[low + 2 * stride],
                vals[low + 3 * stride],
            ];
            for (a, row) in m.iter().enumerate() {
                vals[low + a * stride] =
                    row[0] * x[0] + row[1] * x[1] + row[2] * x[2] + row[3] * x[3];
            }
        }
        base += 4 * stride;
    }
}

/// In-place diagonal multi-axis transfer application: every frontier
/// entry is scaled by the diagonal eigenvalue of the Pauli its group
/// digits spell (`axes[k]` is base-4 digit `k` of the diagonal index).
fn apply_joint_diag(vals: &mut [f64], axes: &[usize], diag: &[f64]) {
    for (o, v) in vals.iter_mut().enumerate() {
        let mut bidx = 0usize;
        for (k, &p) in axes.iter().enumerate() {
            bidx |= ((o >> (2 * p)) & 3) << (2 * k);
        }
        *v *= diag[bidx];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::{apply_basis_term, apply_flip_term, JointWireCut};
    use crate::planner::CutPlanner;

    fn ladder(n: usize) -> Circuit {
        let mut c = Circuit::new(n, 0);
        c.ry(0.4, 0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    /// Dense PTM of an `n`-wire channel given its sparse applier — the
    /// tomography reference the sparse diagonals are pinned against.
    fn ptm_dense(apply: impl Fn(&Matrix) -> Matrix, paulis: &[Matrix], d: usize) -> Vec<f64> {
        let dim4 = paulis.len();
        let mut r = vec![0.0; dim4 * dim4];
        for (b, pb) in paulis.iter().enumerate() {
            let image = apply(pb);
            for (a, pa) in paulis.iter().enumerate() {
                r[a * dim4 + b] = pa.matmul(&image).trace().re / d as f64;
            }
        }
        r
    }

    #[test]
    fn nme_teleport_ptm_is_identity_at_full_overlap() {
        // f = 1 ⇒ the NME family's signed PTM sum must be exactly 1 on
        // each term-family member weighted by coefficients... simplest
        // invariant: Σ cᵢ·Rᵢ = I for the single-wire cut.
        let cut = NmeCut::new(1.0);
        let terms = cut.terms();
        let mut sum = [[0.0f64; 4]; 4];
        for t in &terms {
            let r = ptm_1q(&term_channel(t));
            for a in 0..4 {
                for b in 0..4 {
                    sum[a][b] += t.coefficient * r[a][b];
                }
            }
        }
        for (a, row) in sum.iter().enumerate() {
            for (b, &entry) in row.iter().enumerate() {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((entry - expect).abs() < 1e-9, "Σ cᵢ·R[{a}][{b}] = {entry}");
            }
        }
    }

    #[test]
    fn sparse_joint_diagonals_match_dense_tomography() {
        // The class-structure construction must agree entry-for-entry
        // with full dense PTM tomography of the actual term channels —
        // including that every off-diagonal entry is exactly zero.
        for n in 1..=2usize {
            let jw = JointWireCut::new(n);
            let d = 1usize << n;
            let dim4 = 1usize << (2 * n);
            let paulis: Vec<Matrix> = (0..dim4)
                .map(|code| qsim::pauli::pauli_string_from_code(code, n).matrix())
                .collect();
            let diags = joint_transfer_diagonals(n);
            assert_eq!(diags.len(), d + 1);
            let mut dense: Vec<Vec<f64>> = jw
                .bases()
                .iter()
                .skip(1)
                .map(|u| ptm_dense(|p| apply_basis_term(u, p), &paulis, d))
                .collect();
            dense.push(ptm_dense(apply_flip_term, &paulis, d));
            for (t, (diag, full)) in diags.iter().zip(dense.iter()).enumerate() {
                for a in 0..dim4 {
                    for b in 0..dim4 {
                        let expect = if a == b { diag[a] } else { 0.0 };
                        assert!(
                            (full[a * dim4 + b] - expect).abs() < 1e-9,
                            "n={n} term {t}: R[{a}][{b}] = {} vs sparse {expect}",
                            full[a * dim4 + b]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn joint_transfer_sums_to_identity() {
        for n in 1..=3usize {
            let group = CutGroup {
                cuts: (0..n)
                    .map(|w| crate::planner::PlannedCut {
                        wire: w,
                        source_fragment: 0,
                        dest_fragment: 1,
                    })
                    .collect(),
                protocol: Protocol::JointMub,
                kappa: JointWireCut::new(n).kappa(),
            };
            let spec = group.spec();
            let GroupTransfer::Joint { diags, .. } = group_transfer(&group) else {
                panic!("joint group must build a diagonal transfer");
            };
            let dim4 = 1usize << (2 * n);
            for a in 0..dim4 {
                let sum: f64 = diags
                    .iter()
                    .zip(spec.terms().iter())
                    .map(|(diag, t)| t.coefficient * diag[a])
                    .sum();
                assert!((sum - 1.0).abs() < 1e-9, "n={n}: Σ cᵢ·diag[{a}] = {sum}");
            }
        }
    }

    #[test]
    fn contracted_terms_match_uncut_on_a_ladder() {
        let c = ladder(4);
        let obs = PauliString::from_label("ZZZZ");
        let plan = CutPlanner::new(2).with_overlap(0.8).plan(&c);
        assert!(supports_contraction(&plan));
        let blocks = FragmentBlocks::build(&plan, &obs);
        let lens = blocks.group_lens();
        let total: usize = lens.iter().product();
        // Σ cᵢ·termᵢ over the full odometer must equal the uncut value.
        let spec = qpd::QpdSpec::product(&plan.groups.iter().map(|g| g.spec()).collect::<Vec<_>>());
        assert_eq!(spec.len(), total);
        let mut value = 0.0;
        for combo in 0..total {
            let mut rem = combo;
            let mut pick = vec![0usize; lens.len()];
            for g in (0..lens.len()).rev() {
                pick[g] = rem % lens[g];
                rem /= lens[g];
            }
            value += spec.terms()[combo].coefficient * blocks.term_value(&pick);
        }
        let uncut = crate::planner::uncut_plan_expectation(&c, &obs);
        assert!(
            (value - uncut).abs() < 1e-8,
            "contracted {value} vs uncut {uncut}"
        );
    }

    #[test]
    fn measurement_fragments_are_eligible_when_clbits_stay_local() {
        // Measurement at the end of the last fragment: the clbit never
        // crosses a fragment boundary, so the plan contracts (ISSUE 10's
        // behaviour change — this used to force the monolithic path).
        let mut c = Circuit::new(3, 1);
        c.ry(0.4, 0).cx(0, 1).cx(1, 2).measure(2, 0);
        let plan = CutPlanner::new(2).plan(&c);
        assert!(!plan.groups.is_empty());
        assert_eq!(contraction_ineligibility(&plan), None);
    }

    #[test]
    fn cross_fragment_feedforward_falls_back_to_monolithic() {
        // Measure in one fragment, condition in a later one: the shared
        // classical bit threads a side channel between fragments.
        let mut c = Circuit::new(3, 1);
        c.ry(0.4, 0).cx(0, 1).measure(1, 0).cx(1, 2).x_if(2, 0);
        let plan = CutPlanner::new(2).plan(&c);
        assert!(!plan.groups.is_empty());
        let reason = contraction_ineligibility(&plan).expect("cross-fragment clbit must block");
        assert!(
            reason.contains("classical bit 0"),
            "reason does not name the shared bit: {reason}"
        );
        assert!(!supports_contraction(&plan));
    }

    #[test]
    fn uncut_plans_fall_back_to_monolithic() {
        let c = ladder(3);
        let plan = CutPlanner::new(3).plan(&c);
        assert!(plan.groups.is_empty());
        assert!(!supports_contraction(&plan));
        let reason = contraction_ineligibility(&plan).unwrap();
        assert!(reason.contains("no cuts"), "{reason}");
    }

    #[test]
    fn sweep_matches_uncached_evaluation_on_a_ladder() {
        let c = ladder(5);
        let obs = PauliString::from_label("ZZZZZ");
        let plan = CutPlanner::new(2).with_overlap(0.8).plan(&c);
        let blocks = FragmentBlocks::build(&plan, &obs);
        let lens = blocks.group_lens();
        let total: usize = lens.iter().product();
        let mut sweep = blocks.sweep();
        for combo in 0..total {
            let mut rem = combo;
            let mut pick = vec![0usize; lens.len()];
            for g in (0..lens.len()).rev() {
                pick[g] = rem % lens[g];
                rem /= lens[g];
            }
            let cached = sweep.term_value(&pick);
            let fresh = blocks.term_value(&pick);
            assert!(
                (cached - fresh).abs() < 1e-12,
                "combo {combo}: cached {cached} vs fresh {fresh}"
            );
        }
        let s = sweep.stats();
        assert_eq!(s.terms, total);
        assert!(s.prefix_hits > 0, "odometer sweep never hit the cache");
        assert!(
            s.frontier_ops < s.frontier_ops_uncached,
            "cache did not save work: {} vs {}",
            s.frontier_ops,
            s.frontier_ops_uncached
        );
    }
}

//! Bridges wire cuts to the QPD estimators: compiles every
//! [`crate::term::WireCut`] term circuit (with a concrete input state
//! and observable) into a fast branch-tree sampler implementing
//! [`qpd::TermSampler`] (the multi-wire analogue lives in
//! [`crate::multi`]).
//!
//! This realises the paper's experimental procedure (Section IV): the
//! input `W|0⟩` enters the sender qubit, the three subcircuits of
//! Figure 5 are executed with shots split across them, and Pauli-Z is
//! measured on the receiver qubit.
//!
//! Terms serve whole shot allocations through the batched
//! [`TermSampler::sample_observable_sum`] path (one multinomial over the
//! compiled branch leaves plus one binomial per occupied leaf), so the
//! estimators never pay per-shot dispatch; the per-shot
//! [`TermSampler::sample_observable`] path remains as the reference for
//! equivalence tests.

use crate::term::{CutTerm, WireCut};
use qlinalg::Matrix;
use qpd::{QpdSpec, TermSampler};
use qsim::{Circuit, CompiledSampler, Gate, Pauli, StateVector};

/// An executable, compiled wire-cut term for a fixed input state and
/// observable.
pub struct PreparedTerm {
    sampler: CompiledSampler,
    observable_qubit: usize,
    exact: f64,
    label: String,
}

impl PreparedTerm {
    /// Compiles `term` for input `W|0⟩` (given by the 2×2 unitary `w`)
    /// and observable `obs` on the cut output.
    pub fn compile(term: &CutTerm, w: &Matrix, obs: Pauli) -> Self {
        let n = term.circuit.num_qubits();
        let clbits = term.circuit.num_clbits();
        let mut circuit = Circuit::new(n, clbits);
        // Input preparation on the sender qubit.
        circuit.unitary1(w.clone(), term.input_qubit);
        circuit.compose(&term.circuit);
        // Basis rotation so that measuring Z on the output measures `obs`.
        match obs {
            Pauli::Z => {}
            Pauli::X => {
                circuit.h(term.output_qubit);
            }
            Pauli::Y => {
                // Rotate Y onto Z: apply S† then H.
                circuit.sdg(term.output_qubit).h(term.output_qubit);
            }
            Pauli::I => panic!("identity observable is trivial"),
        }
        let sampler = CompiledSampler::compile(&circuit, None);
        let exact = sampler.exact_expval_z(term.output_qubit);
        Self {
            sampler,
            observable_qubit: term.output_qubit,
            exact,
            label: term.label.clone(),
        }
    }

    /// The term label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl TermSampler for PreparedTerm {
    fn sample_observable(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.sampler.sample_z(self.observable_qubit, rng)
    }

    fn sample_observable_sum(&self, shots: u64, rng: &mut dyn rand::RngCore) -> f64 {
        self.sampler
            .sample_z_batch(self.observable_qubit, shots, rng)
    }

    fn exact_expectation(&self) -> f64 {
        self.exact
    }
}

/// A wire cut compiled against a concrete input and observable, ready for
/// the `qpd` estimators.
pub struct PreparedCut {
    /// Coefficient structure.
    pub spec: QpdSpec,
    /// Compiled terms, index-aligned with `spec`.
    pub terms: Vec<PreparedTerm>,
}

impl PreparedCut {
    /// Compiles every term of `cut` for input `W|0⟩` and observable `obs`.
    pub fn new(cut: &dyn WireCut, w: &Matrix, obs: Pauli) -> Self {
        let spec = cut.spec();
        let terms = cut
            .terms()
            .iter()
            .map(|t| PreparedTerm::compile(t, w, obs))
            .collect();
        Self { spec, terms }
    }

    /// Term samplers as trait objects for the `qpd` estimator functions.
    pub fn samplers(&self) -> Vec<&dyn TermSampler> {
        self.terms.iter().map(|t| t as &dyn TermSampler).collect()
    }

    /// The exact (infinite-shot) decomposed expectation `Σᵢ cᵢ·⟨O⟩ᵢ`.
    pub fn exact_value(&self) -> f64 {
        qpd::exact_value(&self.spec, &self.samplers())
    }
}

/// The exact observable value on the *uncut* wire: `⟨0|W†·O·W|0⟩`.
pub fn uncut_expectation(w: &Matrix, obs: Pauli) -> f64 {
    let mut sv = StateVector::new(1);
    sv.apply_matrix1(w, 0);
    match obs {
        Pauli::Z => sv.expval_z(0),
        Pauli::X => {
            sv.apply_gate(&Gate::H, &[0]);
            sv.expval_z(0)
        }
        Pauli::Y => {
            sv.apply_gate(&Gate::Sdg, &[0]);
            sv.apply_gate(&Gate::H, &[0]);
            sv.expval_z(0)
        }
        Pauli::I => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harada::HaradaCut;
    use crate::nme::{NmeCut, TeleportationPassthrough};
    use crate::peng::PengCut;
    use qpd::Allocator;
    use qsim::haar_unitary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ry_matrix(theta: f64) -> Matrix {
        Gate::Ry(theta).matrix()
    }

    #[test]
    fn exact_value_equals_uncut_expectation_for_all_cuts() {
        // The defining property of a wire cut, checked end-to-end through
        // the compiled samplers: Σ cᵢ⟨Z⟩ᵢ = ⟨Z⟩ψ.
        let w = ry_matrix(1.234);
        let expect = uncut_expectation(&w, Pauli::Z);
        assert!((expect - (1.234f64).cos()).abs() < 1e-12);
        let cuts: Vec<Box<dyn crate::term::WireCut>> = vec![
            Box::new(HaradaCut),
            Box::new(PengCut),
            Box::new(NmeCut::new(0.0)),
            Box::new(NmeCut::new(0.5)),
            Box::new(NmeCut::new(1.0)),
            Box::new(TeleportationPassthrough),
        ];
        for cut in cuts {
            let prepared = PreparedCut::new(cut.as_ref(), &w, Pauli::Z);
            let got = prepared.exact_value();
            assert!(
                (got - expect).abs() < 1e-9,
                "{}: exact value {got} vs {expect}",
                cut.name()
            );
        }
    }

    #[test]
    fn exact_value_for_haar_random_inputs_and_observables() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            let w = haar_unitary(2, &mut rng);
            for obs in [Pauli::X, Pauli::Y, Pauli::Z] {
                let expect = uncut_expectation(&w, obs);
                let prepared = PreparedCut::new(&NmeCut::new(0.6), &w, obs);
                let got = prepared.exact_value();
                assert!(
                    (got - expect).abs() < 1e-9,
                    "obs {obs:?}: {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn estimator_converges_to_uncut_value() {
        let w = ry_matrix(0.9);
        let expect = (0.9f64).cos();
        let prepared = PreparedCut::new(&NmeCut::new(0.5), &w, Pauli::Z);
        let mut rng = StdRng::seed_from_u64(99);
        let reps = 60;
        let mean: f64 = (0..reps)
            .map(|_| {
                qpd::estimate_allocated(
                    &prepared.spec,
                    &prepared.samplers(),
                    4000,
                    Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>()
            / reps as f64;
        assert!((mean - expect).abs() < 0.02, "mean {mean} vs {expect}");
    }

    #[test]
    fn prepared_term_batched_and_per_shot_sampling_agree() {
        // Every term of the cut must give the same observable
        // distribution through both sampling paths.
        let w = ry_matrix(1.234);
        let prepared = PreparedCut::new(&NmeCut::new(0.4), &w, Pauli::Z);
        let shots = 40_000u64;
        for term in &prepared.terms {
            let t: &dyn TermSampler = term;
            let exact = t.exact_expectation();
            let mut rng = StdRng::seed_from_u64(401);
            let per_shot: f64 = (0..shots)
                .map(|_| t.sample_observable(&mut rng))
                .sum::<f64>()
                / shots as f64;
            let mut rng = StdRng::seed_from_u64(402);
            let batched = t.sample_observable_sum(shots, &mut rng) / shots as f64;
            // SE ≤ 1/√shots = 0.005; 5σ band around the exact value.
            assert!(
                (per_shot - exact).abs() < 0.025,
                "{}: per-shot {per_shot} vs {exact}",
                term.label()
            );
            assert!(
                (batched - exact).abs() < 0.025,
                "{}: batched {batched} vs {exact}",
                term.label()
            );
        }
    }

    #[test]
    fn teleportation_baseline_has_no_overhead_error_structure() {
        // With k = 1 the exact per-term expectations already equal the
        // uncut value; sampling error is pure binomial noise.
        let w = ry_matrix(0.7);
        let prepared = PreparedCut::new(&NmeCut::new(1.0), &w, Pauli::Z);
        for term in &prepared.terms {
            assert!(
                (term.exact_expectation() - (0.7f64).cos()).abs() < 1e-10,
                "term {} expectation deviates",
                term.label()
            );
        }
    }

    #[test]
    fn uncut_expectation_covers_all_paulis() {
        // |+⟩ = H|0⟩: ⟨X⟩ = 1, ⟨Y⟩ = 0, ⟨Z⟩ = 0.
        let h = Gate::H.matrix();
        assert!((uncut_expectation(&h, Pauli::X) - 1.0).abs() < 1e-12);
        assert!(uncut_expectation(&h, Pauli::Y).abs() < 1e-12);
        assert!(uncut_expectation(&h, Pauli::Z).abs() < 1e-12);
        assert!((uncut_expectation(&h, Pauli::I) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_entanglement_gives_lower_estimator_variance() {
        // The heart of Figure 6, asserted statistically: variance at
        // f = 0.9 is smaller than at f = 0.5 for the same budget.
        let w = ry_matrix(1.0);
        let mut rng = StdRng::seed_from_u64(2024);
        let reps = 120;
        let shots = 600;
        let variance_for = |f: f64, rng: &mut StdRng| -> f64 {
            let prepared = PreparedCut::new(&NmeCut::from_overlap(f), &w, Pauli::Z);
            let xs: Vec<f64> = (0..reps)
                .map(|_| {
                    qpd::estimate_allocated(
                        &prepared.spec,
                        &prepared.samplers(),
                        shots,
                        Allocator::Proportional,
                        rng,
                    )
                })
                .collect();
            let m = xs.iter().sum::<f64>() / reps as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (reps - 1) as f64
        };
        let v_low = variance_for(0.5, &mut rng);
        let v_high = variance_for(0.9, &mut rng);
        assert!(
            v_high < v_low,
            "variance did not drop with entanglement: f=0.5 → {v_low}, f=0.9 → {v_high}"
        );
    }
}

//! Context baseline: **gate cutting** of the CZ gate (Mitarai & Fujii,
//! paper reference \[12\]; Piveteau & Sutter, reference \[14\]).
//!
//! The paper's related-work section contrasts wire cutting with gate
//! cutting; this module provides the canonical CZ decomposition with
//! optimal overhead `γ(CZ) = 3` so experiments can compare both flavours.
//!
//! Writing `CZ = Π₀ᴬ⊗I + Π₁ᴬ⊗Z` and expanding the channel, the six-term
//! QPD over LOCC channels is
//!
//! `CZ·ρ·CZ = ½(S⊗S)ρ(S⊗S)† + ½(S†⊗S†)ρ(S†⊗S†)†
//!            + ½M₁(ρ) − ½M₀(ρ) + ½N₁(ρ) − ½N₀(ρ)`
//!
//! where `M₁` = *measure A in Z, apply Z on B when the outcome is 1*
//! (the "classical CZ"), `M₀` its outcome-flipped variant, and `N₁`/`N₀`
//! the same with the roles of A and B exchanged. Every term is LOCC; the
//! 1-norm is `6·½ = 3`. The derivation is verified *exactly* by channel
//! tomography in the tests, and the coefficients are independently
//! re-derived by least squares in `coefficients_recovered_by_lstsq`.

use qpd::{QpdSpec, TermSpec};
use qsim::{Circuit, Superoperator};

/// One gate-cut term: a two-qubit LOCC circuit replacing the CZ.
#[derive(Clone, Debug)]
pub struct GateCutTerm {
    /// Signed coefficient.
    pub coefficient: f64,
    /// Display label.
    pub label: String,
    /// Two-qubit circuit on qubits (0 = A, 1 = B) plus one classical bit.
    pub circuit: Circuit,
}

/// The six-term optimal CZ gate cut.
#[derive(Clone, Copy, Debug, Default)]
pub struct CzGateCut;

fn s_s_circuit(dagger: bool) -> Circuit {
    let mut c = Circuit::new(2, 1);
    if dagger {
        c.sdg(0).sdg(1);
    } else {
        c.s(0).s(1);
    }
    c
}

/// Measure qubit `meas` in Z; apply Z on the other qubit when the outcome
/// equals `on_outcome`.
fn measure_feedforward_circuit(meas: usize, on_outcome: bool) -> Circuit {
    let other = 1 - meas;
    let mut c = Circuit::new(2, 1);
    c.measure(meas, 0);
    c.gate_if(qsim::Gate::Z, &[other], 0, on_outcome);
    c
}

impl CzGateCut {
    /// The six terms.
    pub fn terms(&self) -> Vec<GateCutTerm> {
        vec![
            GateCutTerm {
                coefficient: 0.5,
                label: "S⊗S".into(),
                circuit: s_s_circuit(false),
            },
            GateCutTerm {
                coefficient: 0.5,
                label: "S†⊗S†".into(),
                circuit: s_s_circuit(true),
            },
            GateCutTerm {
                coefficient: 0.5,
                label: "measA-Z@1".into(),
                circuit: measure_feedforward_circuit(0, true),
            },
            GateCutTerm {
                coefficient: -0.5,
                label: "measA-Z@0".into(),
                circuit: measure_feedforward_circuit(0, false),
            },
            GateCutTerm {
                coefficient: 0.5,
                label: "measB-Z@1".into(),
                circuit: measure_feedforward_circuit(1, true),
            },
            GateCutTerm {
                coefficient: -0.5,
                label: "measB-Z@0".into(),
                circuit: measure_feedforward_circuit(1, false),
            },
        ]
    }

    /// Coefficient structure.
    pub fn spec(&self) -> QpdSpec {
        QpdSpec::new(
            self.terms()
                .iter()
                .map(|t| TermSpec {
                    coefficient: t.coefficient,
                    label: t.label.clone(),
                    pairs_consumed: 0.0,
                })
                .collect(),
        )
    }

    /// `κ = 3`, the optimal gate-cut overhead for CZ.
    pub fn kappa(&self) -> f64 {
        self.spec().kappa()
    }
}

/// The exact two-qubit channel of one gate-cut term.
pub fn gate_term_channel(term: &GateCutTerm) -> Superoperator {
    Superoperator::from_linear_map(4, 4, |rho_in| {
        let dm = qsim::DensityMatrix::from_matrix(2, rho_in.clone());
        qsim::execute_density(&term.circuit, &dm).into_matrix()
    })
}

/// The channel reconstructed by the full gate cut.
pub fn reconstructed_cz_channel(cut: &CzGateCut) -> Superoperator {
    let mut acc = Superoperator::zero(4, 4);
    for term in cut.terms() {
        acc.axpy(term.coefficient, &gate_term_channel(&term));
    }
    acc
}

/// The target: the exact CZ channel.
pub fn cz_channel() -> Superoperator {
    Superoperator::from_unitary(&qsim::Gate::CZ.matrix())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlinalg::{c64, lstsq, Complex64, Matrix};

    #[test]
    fn reconstructs_cz_channel_exactly() {
        let d = reconstructed_cz_channel(&CzGateCut).distance(&cz_channel());
        assert!(d < 1e-10, "CZ gate cut wrong: distance {d}");
    }

    #[test]
    fn kappa_is_three() {
        assert!((CzGateCut.kappa() - 3.0).abs() < 1e-12);
        assert!(CzGateCut.spec().validate(1e-12).is_ok());
    }

    #[test]
    fn has_six_locc_terms() {
        let terms = CzGateCut.terms();
        assert_eq!(terms.len(), 6);
        // No two-qubit gates anywhere: every term is trivially local +
        // classical feed-forward.
        for t in &terms {
            for instr in t.circuit.instructions() {
                if let qsim::Op::Gate(g, qs) = &instr.op {
                    assert_eq!(qs.len(), 1, "non-local gate {g} in term {}", t.label);
                }
            }
        }
    }

    #[test]
    fn every_term_is_trace_preserving() {
        for t in CzGateCut.terms() {
            assert!(
                gate_term_channel(&t).is_trace_preserving(1e-10),
                "term {} not TP",
                t.label
            );
        }
    }

    #[test]
    fn coefficients_recovered_by_lstsq() {
        // The six channels are linearly dependent (M₁ + M₀ = N₁ + N₀ =
        // twice the fully dephasing channel), so solve over the
        // independent five-channel dictionary {S⊗S, S†⊗S†, M₁, M₀, N₁}.
        // Eliminating N₀ from the hand-derived solution via
        // N₀ = M₁ + M₀ − N₁ predicts coefficients (½, ½, 0, −1, 1) —
        // still with 1-norm 3.
        let terms = CzGateCut.terms();
        let target = cz_channel();
        let rows = 16 * 16;
        let mut a = Matrix::zeros(rows, 5);
        for (j, t) in terms.iter().take(5).enumerate() {
            let ch = gate_term_channel(t);
            for r in 0..16 {
                for c in 0..16 {
                    a[(r * 16 + c, j)] = ch.matrix()[(r, c)];
                }
            }
        }
        let mut b: Vec<Complex64> = Vec::with_capacity(rows);
        for r in 0..16 {
            for c in 0..16 {
                b.push(target.matrix()[(r, c)]);
            }
        }
        let x = lstsq(&a, &b);
        let expect = [0.5, 0.5, 0.0, -1.0, 1.0];
        for (got, want) in x.iter().zip(expect.iter()) {
            assert!(
                got.approx_eq(c64(*want, 0.0), 1e-7),
                "lstsq coefficients {x:?} differ from {expect:?}"
            );
        }
        let one_norm: f64 = x.iter().map(|z| z.abs()).sum();
        assert!((one_norm - 3.0).abs() < 1e-7, "recovered 1-norm {one_norm}");
    }

    #[test]
    fn gate_cut_overhead_matches_wire_cut_overhead() {
        // γ(CZ) = γ(I) = 3: cutting one CZ costs as much as cutting one
        // wire without entanglement.
        assert!((CzGateCut.kappa() - crate::theory::GAMMA_NO_ENTANGLEMENT).abs() < 1e-12);
    }

    #[test]
    fn wrong_sign_fails_reconstruction() {
        // Sanity: flipping one sign must break the identity, proving the
        // test has teeth.
        let mut acc = Superoperator::zero(4, 4);
        for (i, term) in CzGateCut.terms().iter().enumerate() {
            let coeff = if i == 3 {
                -term.coefficient
            } else {
                term.coefficient
            };
            acc.axpy(coeff, &gate_term_channel(term));
        }
        assert!(acc.distance(&cz_channel()) > 0.1);
    }
}

//! The optimal entanglement-free wire cut (Harada et al., paper
//! reference \[26\]; Figure 2 / Eq. 20), achieving `γ(I) = 3`.
//!
//! `I(·) = Σ_{i∈{1,2}} Σ_j Tr[Uᵢ|j⟩⟨j|Uᵢ†(·)] Uᵢ|j⟩⟨j|Uᵢ†
//!         − Σ_j Tr[|j⟩⟨j|(·)] X|j⟩⟨j|X`
//!
//! with `U₁ = H`, `U₂ = SH`. Each positive term measures in the `Uᵢ`
//! basis and re-prepares the measured basis state on the receiver; the
//! negative term measures in Z and prepares the *flipped* state.
//!
//! This is the `k = 0` endpoint of the NME cut of [`crate::nme`]
//! (Theorem 2 degenerates to it, see
//! [`crate::theory::GAMMA_NO_ENTANGLEMENT`]), and its `U₁`/`U₂` are the
//! one-qubit complete MUB set that [`crate::joint`] generalises to `n`
//! wires ([`crate::joint::mub_bases_one_qubit`]).

use crate::term::{CutTerm, WireCut};
use qsim::Circuit;

/// The three-term optimal wire cut without entanglement.
#[derive(Clone, Copy, Debug, Default)]
pub struct HaradaCut;

/// Builds the measure-in-`Uᵢ`-basis / prepare-on-receiver term circuit of
/// Figure 2. Qubit 0 = sender (A), qubit 1 = receiver (B); one classical
/// bit carries the outcome.
///
/// `which` selects `U₁ = H` (1) or `U₂ = SH` (2).
fn basis_term_circuit(which: u8) -> Circuit {
    let mut c = Circuit::new(2, 1);
    // Sender: rotate Uᵢ-basis to Z-basis (apply Uᵢ†), measure.
    match which {
        1 => {
            c.h(0);
        }
        2 => {
            // U₂† = (SH)† = H·S†: apply S† then H.
            c.sdg(0).h(0);
        }
        _ => unreachable!(),
    }
    c.measure(0, 0);
    // Receiver: prepare |j⟩ then rotate back with Uᵢ.
    c.x_if(1, 0);
    match which {
        1 => {
            c.h(1);
        }
        2 => {
            // U₂ = S·H: apply H then S.
            c.h(1).s(1);
        }
        _ => unreachable!(),
    }
    c
}

/// The measure-and-prepare-flipped term (third circuit of Figure 2):
/// measure Z on the sender, prepare `X|j⟩⟨j|X = |1−j⟩` on the receiver.
pub(crate) fn measure_prepare_flipped_circuit() -> Circuit {
    let mut c = Circuit::new(2, 1);
    c.measure(0, 0);
    // Prepare |j⟩ (X when j = 1) then flip: net effect X when j = 0.
    c.x_if(1, 0);
    c.x(1);
    c
}

impl WireCut for HaradaCut {
    fn name(&self) -> String {
        "harada-optimal".into()
    }

    fn terms(&self) -> Vec<CutTerm> {
        vec![
            CutTerm {
                coefficient: 1.0,
                label: "meas-H".into(),
                pairs_consumed: 0.0,
                circuit: basis_term_circuit(1),
                input_qubit: 0,
                output_qubit: 1,
                resource_prep_len: 0,
            },
            CutTerm {
                coefficient: 1.0,
                label: "meas-SH".into(),
                pairs_consumed: 0.0,
                circuit: basis_term_circuit(2),
                input_qubit: 0,
                output_qubit: 1,
                resource_prep_len: 0,
            },
            CutTerm {
                coefficient: -1.0,
                label: "meas-prep-flip".into(),
                pairs_consumed: 0.0,
                circuit: measure_prepare_flipped_circuit(),
                input_qubit: 0,
                output_qubit: 1,
                resource_prep_len: 0,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{identity_distance, term_channel, verify_locc_structure};
    use qlinalg::Matrix;
    use qsim::{Gate, Superoperator};

    #[test]
    fn reconstructs_identity_channel() {
        let d = identity_distance(&HaradaCut);
        assert!(d < 1e-10, "Eq. 20 violated: distance {d}");
    }

    #[test]
    fn kappa_is_three() {
        assert!((HaradaCut.kappa() - 3.0).abs() < 1e-12);
        assert!(HaradaCut.spec().validate(1e-12).is_ok());
    }

    #[test]
    fn every_term_is_locc() {
        for term in HaradaCut.terms() {
            verify_locc_structure(&term, &[0]).expect("term not LOCC");
        }
    }

    #[test]
    fn positive_terms_are_dephasing_channels() {
        // Measure-in-basis + re-prepare = completely dephasing channel in
        // that basis: for U₁ = H it preserves ⟨X⟩ and kills ⟨Y⟩, ⟨Z⟩.
        let terms = HaradaCut.terms();
        let ch = term_channel(&terms[0]);
        let ptm = ch.pauli_transfer_matrix();
        assert!((ptm[(1, 1)].re - 1.0).abs() < 1e-10); // X preserved
        assert!(ptm[(2, 2)].abs() < 1e-10); // Y killed
        assert!(ptm[(3, 3)].abs() < 1e-10); // Z killed
    }

    #[test]
    fn sh_term_preserves_y() {
        let terms = HaradaCut.terms();
        let ch = term_channel(&terms[1]);
        let ptm = ch.pauli_transfer_matrix();
        assert!(ptm[(1, 1)].abs() < 1e-10);
        assert!((ptm[(2, 2)].re - 1.0).abs() < 1e-10); // Y preserved
        assert!(ptm[(3, 3)].abs() < 1e-10);
    }

    #[test]
    fn flip_term_matches_eq_20_negative_part() {
        // Σ_j Tr[|j⟩⟨j|ρ] X|j⟩⟨j|X as a Kraus channel: X·(dephase in Z).
        let terms = HaradaCut.terms();
        let ch = term_channel(&terms[2]);
        let k0 = Gate::X.matrix().matmul(&Matrix::from_fn(2, 2, |i, j| {
            if i == 0 && j == 0 {
                qlinalg::C_ONE
            } else {
                qlinalg::C_ZERO
            }
        }));
        let k1 = Gate::X.matrix().matmul(&Matrix::from_fn(2, 2, |i, j| {
            if i == 1 && j == 1 {
                qlinalg::C_ONE
            } else {
                qlinalg::C_ZERO
            }
        }));
        let expect = Superoperator::from_kraus(&[k0, k1]);
        assert!(ch.distance(&expect) < 1e-10);
    }

    #[test]
    fn all_terms_trace_preserving() {
        for term in HaradaCut.terms() {
            let ch = term_channel(&term);
            assert!(ch.is_trace_preserving(1e-10), "term {} not TP", term.label);
        }
    }
}

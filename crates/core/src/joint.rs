//! Extension: **joint parallel wire cutting** with mutually unbiased
//! bases (Harada et al., paper reference \[26\]; Brenner et al. \[11\]).
//!
//! Cutting `n` wires one-by-one costs `κ = 3ⁿ`; cutting them *jointly* —
//! the sender measures all `n` qubits together, which is still local to
//! the sender device — achieves the optimum `κ = 2d − 1`, `d = 2ⁿ`
//! (7 vs 9 at `n = 2`). The construction rests on the MUB identity for a
//! complete set of `d + 1` mutually unbiased bases `{B_b}`:
//!
//! `Σ_{b=0}^{d} D_b(ρ) = ρ + Tr(ρ)·I`
//!
//! where `D_b` dephases in basis `b`. Solving for ρ and folding the
//! computational-basis term into the subtraction gives
//!
//! `ρ = Σ_{b=1}^{d} D_b(ρ)  −  (d−1)·R(ρ)`,
//!
//! with `R(ρ) = Σ_j Tr[Π_j ρ]·(I − |j⟩⟨j|)/(d−1)` the *measure and
//! prepare a uniformly random other basis state* channel — the
//! multi-qubit generalisation of the Harada flip term. Every term is
//! measure-on-sender / prepare-on-receiver, so LOCC across the cut.
//! 1-norm: `d + (d−1) = 2d − 1`.
//!
//! The paper's §VI asks whether NME states help *joint* multi-wire cuts;
//! that combination is open — this module provides the entanglement-free
//! joint optimum as the baseline such work would compare against.

use crate::multi::MultiCutTerm;
use qlinalg::{c64, unitary_with_first_column, Matrix};
use qpd::{QpdSpec, TermSpec};
use qsim::{execute_density, Circuit, DensityMatrix, Gate, Pauli, Superoperator};

/// The complete MUB set for one qubit (`d = 2`): computational, Hadamard
/// (`X` eigenbasis) and `SH` (`Y` eigenbasis) — exactly the `U᷀ᵢ` of the
/// single-wire optimal cut.
pub fn mub_bases_one_qubit() -> Vec<Matrix> {
    vec![
        Matrix::identity(2),
        Gate::H.matrix(),
        Gate::S.matrix().matmul(&Gate::H.matrix()),
    ]
}

/// A complete set of five MUBs for two qubits (`d = 4`), built as the
/// common eigenbases of the five commuting-Pauli-triple partitions of the
/// 15 two-qubit Paulis. Eigenbases are extracted numerically: a generic
/// element `P₁ + 2P₂` of each maximal abelian triple has four distinct
/// eigenvalues, so its eigenvectors are the (unique) joint basis.
pub fn mub_bases_two_qubit() -> Vec<Matrix> {
    let p = |a: Pauli, b: Pauli| a.matrix().kron(&b.matrix());
    // Partition: {ZI,IZ,ZZ} (computational), {XI,IX,XX}, {YI,IY,YY},
    // {XY,YZ,ZX}, {YX,ZY,XZ}.
    let triples = [
        (p(Pauli::X, Pauli::I), p(Pauli::I, Pauli::X)),
        (p(Pauli::Y, Pauli::I), p(Pauli::I, Pauli::Y)),
        (p(Pauli::X, Pauli::Y), p(Pauli::Y, Pauli::Z)),
        (p(Pauli::Y, Pauli::X), p(Pauli::Z, Pauli::Y)),
    ];
    let mut bases = vec![Matrix::identity(4)];
    for (p1, p2) in triples {
        let m = p1.add(&p2.scale_re(2.0));
        let eig = qlinalg::eigh(&m);
        bases.push(eig.vectors);
    }
    bases
}

/// Checks that `a` and `b` are mutually unbiased: `|⟨aᵢ|bⱼ⟩|² = 1/d`.
pub fn are_mutually_unbiased(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    let d = a.rows();
    let overlap = a.dagger().matmul(b);
    (0..d).all(|i| (0..d).all(|j| (overlap[(i, j)].norm_sqr() - 1.0 / d as f64).abs() < tol))
}

/// Joint wire cut over `n ∈ {1, 2}` wires with `κ = 2^{n+1} − 1`.
#[derive(Clone, Copy, Debug)]
pub struct JointWireCut {
    n: usize,
}

impl JointWireCut {
    /// Creates the joint cut over `n` wires (currently `n ∈ {1, 2}`,
    /// limited by the explicit MUB constructions).
    pub fn new(n: usize) -> Self {
        assert!(n == 1 || n == 2, "joint cut implemented for 1 or 2 wires");
        Self { n }
    }

    /// Number of wires.
    pub fn num_wires(&self) -> usize {
        self.n
    }

    /// Hilbert-space dimension `d = 2ⁿ` of the cut.
    pub fn dim(&self) -> usize {
        1 << self.n
    }

    /// The optimal joint overhead `2d − 1`.
    pub fn kappa(&self) -> f64 {
        (2 * self.dim() - 1) as f64
    }

    fn bases(&self) -> Vec<Matrix> {
        match self.n {
            1 => mub_bases_one_qubit(),
            2 => mub_bases_two_qubit(),
            _ => unreachable!(),
        }
    }

    /// Positive term `b`: measure the sender pair in MUB `b`, prepare the
    /// measured basis state on the receiver pair. Layout: sender qubits
    /// `0..n`, receiver `n..2n`.
    fn basis_term_circuit(&self, u: &Matrix) -> Circuit {
        let n = self.n;
        let mut c = Circuit::new(2 * n, n);
        let sender: Vec<usize> = (0..n).collect();
        let receiver: Vec<usize> = (n..2 * n).collect();
        // Rotate MUB → computational on the sender.
        match n {
            1 => {
                c.gate(Gate::Unitary1(u.dagger()), &sender);
            }
            2 => {
                c.gate(Gate::Unitary2(u.dagger()), &sender);
            }
            _ => unreachable!(),
        }
        for q in 0..n {
            c.measure(q, q);
        }
        for (q, &r) in receiver.iter().enumerate().take(n) {
            c.x_if(r, q);
        }
        match n {
            1 => {
                c.gate(Gate::Unitary1(u.clone()), &receiver);
            }
            2 => {
                c.gate(Gate::Unitary2(u.clone()), &receiver);
            }
            _ => unreachable!(),
        }
        c
    }

    /// The negative term `R`: measure the sender in the computational
    /// basis, prepare a uniformly random *different* computational state
    /// on the receiver. The uniform offset `o ∈ {1, …, d−1}` comes from
    /// `n` ancilla qubits prepared in `Σ_{o≠0} |o⟩/√(d−1)` and XOR'd onto
    /// the receiver (ancillas are local to the receiver and traced out).
    fn flip_term_circuit(&self) -> Circuit {
        let n = self.n;
        let d = self.dim();
        let mut c = Circuit::new(3 * n, n);
        let receiver: Vec<usize> = (n..2 * n).collect();
        let ancilla: Vec<usize> = (2 * n..3 * n).collect();
        // Ancilla preparation.
        let amp = 1.0 / ((d - 1) as f64).sqrt();
        let target: Vec<qlinalg::Complex64> = (0..d)
            .map(|o| if o == 0 { c64(0.0, 0.0) } else { c64(amp, 0.0) })
            .collect();
        let prep = unitary_with_first_column(&target);
        match n {
            1 => {
                c.gate(Gate::Unitary1(prep), &ancilla);
            }
            2 => {
                c.gate(Gate::Unitary2(prep), &ancilla);
            }
            _ => unreachable!(),
        }
        // Sender measurement, receiver preparation of |j ⊕ o⟩.
        for q in 0..n {
            c.measure(q, q);
        }
        for (q, &r) in receiver.iter().enumerate().take(n) {
            c.x_if(r, q);
        }
        for q in 0..n {
            c.cx(ancilla[q], receiver[q]);
        }
        c
    }

    /// All `d + 1` terms as multi-wire cut terms.
    pub fn terms(&self) -> Vec<MultiCutTerm> {
        let n = self.n;
        let d = self.dim();
        let bases = self.bases();
        let input_qubits: Vec<usize> = (0..n).collect();
        let output_qubits: Vec<usize> = (n..2 * n).collect();
        let mut terms = Vec::with_capacity(d + 1);
        for (b, u) in bases.iter().enumerate().skip(1) {
            terms.push(MultiCutTerm {
                coefficient: 1.0,
                labels: vec![format!("mub-{b}")],
                circuit: self.basis_term_circuit(u),
                input_qubits: input_qubits.clone(),
                output_qubits: output_qubits.clone(),
                pairs_consumed: 0.0,
            });
        }
        terms.push(MultiCutTerm {
            coefficient: -((d - 1) as f64),
            labels: vec!["meas-prep-other".to_string()],
            circuit: self.flip_term_circuit(),
            input_qubits,
            output_qubits,
            pairs_consumed: 0.0,
        });
        terms
    }

    /// Coefficient structure.
    pub fn spec(&self) -> QpdSpec {
        QpdSpec::new(
            self.terms()
                .iter()
                .map(|t| TermSpec {
                    coefficient: t.coefficient,
                    label: t.labels.join("×"),
                    pairs_consumed: t.pairs_consumed,
                })
                .collect(),
        )
    }
}

/// Exact `d → d` channel of a multi-wire term: probe with matrix units on
/// the input qubits, trace to the output qubits.
pub fn joint_term_channel(term: &MultiCutTerm) -> Superoperator {
    let n_total = term.circuit.num_qubits();
    let d = 1 << term.input_qubits.len();
    Superoperator::from_linear_map(d, d, |rho_in| {
        let full = embed_input_multi(rho_in, &term.input_qubits, n_total);
        let out = execute_density(&term.circuit, &full);
        out.partial_trace(&term.output_qubits).into_matrix()
    })
}

/// Embeds a `d × d` operator on the listed qubits (`qubits[i]` = bit `i`)
/// with `|0⟩⟨0|` on every other qubit of an `n`-qubit register.
pub fn embed_input_multi(rho_in: &Matrix, qubits: &[usize], n: usize) -> DensityMatrix {
    let k = qubits.len();
    assert_eq!(rho_in.rows(), 1 << k);
    let dim = 1usize << n;
    let mut full = Matrix::zeros(dim, dim);
    let spread = |bits: usize| -> usize {
        let mut idx = 0usize;
        for (b, &q) in qubits.iter().enumerate() {
            idx |= ((bits >> b) & 1) << q;
        }
        idx
    };
    for r in 0..(1 << k) {
        for c in 0..(1 << k) {
            full[(spread(r), spread(c))] = rho_in[(r, c)];
        }
    }
    DensityMatrix::from_matrix(n, full)
}

/// Distance of the reconstructed joint-cut channel from the identity.
pub fn joint_identity_distance(cut: &JointWireCut) -> f64 {
    let d = cut.dim();
    let mut acc = Superoperator::zero(d, d);
    for term in cut.terms() {
        acc.axpy(term.coefficient, &joint_term_channel(&term));
    }
    acc.distance(&Superoperator::identity(d))
}

/// The MUB dephasing identity `Σ_b D_b(ρ) = ρ + Tr(ρ)·I`, checked as a
/// channel equation; returns the max-entry deviation (used by tests and
/// the joint-cut experiment as a preliminary validation).
pub fn mub_identity_deviation(bases: &[Matrix]) -> f64 {
    let d = bases[0].rows();
    let mut acc = Superoperator::zero(d, d);
    for u in bases {
        // Dephasing in basis U: Kraus {U Π_j U†}.
        let kraus: Vec<Matrix> = (0..d)
            .map(|j| {
                let mut pi = Matrix::zeros(d, d);
                pi[(j, j)] = qlinalg::C_ONE;
                u.matmul(&pi).matmul(&u.dagger())
            })
            .collect();
        acc.axpy(1.0, &Superoperator::from_kraus(&kraus));
    }
    // Target: ρ → ρ + Tr(ρ)·I  =  identity + d·(trace ∘ maximally-mixed·d)…
    // build directly: S_target = I_channel + |vec(I)⟩⟨vec(I)|-style map.
    let mut target = Superoperator::identity(d);
    let replace =
        Superoperator::from_linear_map(d, d, |rho| Matrix::identity(d).scale(rho.trace()));
    target.axpy(1.0, &replace);
    acc.distance(&target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::{ParallelWireCut, PreparedMultiCut};
    use crate::nme::NmeCut;
    use qsim::PauliString;

    #[test]
    fn one_qubit_mubs_are_unbiased() {
        let bases = mub_bases_one_qubit();
        for i in 0..bases.len() {
            assert!(bases[i].is_unitary(1e-12));
            for j in (i + 1)..bases.len() {
                assert!(
                    are_mutually_unbiased(&bases[i], &bases[j], 1e-10),
                    "bases {i},{j} not unbiased"
                );
            }
        }
    }

    #[test]
    fn two_qubit_mubs_are_complete_and_unbiased() {
        let bases = mub_bases_two_qubit();
        assert_eq!(bases.len(), 5);
        for i in 0..5 {
            assert!(bases[i].is_unitary(1e-9), "basis {i} not unitary");
            for j in (i + 1)..5 {
                assert!(
                    are_mutually_unbiased(&bases[i], &bases[j], 1e-8),
                    "bases {i},{j} not unbiased"
                );
            }
        }
    }

    #[test]
    fn mub_dephasing_identity_holds() {
        assert!(mub_identity_deviation(&mub_bases_one_qubit()) < 1e-9);
        assert!(mub_identity_deviation(&mub_bases_two_qubit()) < 1e-8);
    }

    #[test]
    fn joint_cut_kappa_values() {
        assert!((JointWireCut::new(1).kappa() - 3.0).abs() < 1e-12);
        assert!((JointWireCut::new(2).kappa() - 7.0).abs() < 1e-12);
        assert!(JointWireCut::new(2).spec().validate(1e-9).is_ok());
        assert!((JointWireCut::new(2).spec().kappa() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn joint_single_wire_reconstructs_identity() {
        let d = joint_identity_distance(&JointWireCut::new(1));
        assert!(d < 1e-9, "single-wire joint cut broken: {d}");
    }

    #[test]
    fn joint_double_wire_reconstructs_identity() {
        let d = joint_identity_distance(&JointWireCut::new(2));
        assert!(d < 1e-8, "double-wire joint cut broken: {d}");
    }

    #[test]
    fn joint_beats_product_cut() {
        let joint = JointWireCut::new(2).kappa();
        let product = ParallelWireCut::uniform(NmeCut::new(0.0), 2).kappa();
        assert!((product - 9.0).abs() < 1e-9);
        assert!(joint < product, "joint {joint} not below product {product}");
    }

    #[test]
    fn joint_cut_estimates_entangled_observable() {
        // End-to-end: sender prepares an entangled state across both cut
        // wires; the joint cut must reproduce ⟨ZZ⟩ exactly in expectation.
        let mut prep = qsim::Circuit::new(2, 0);
        prep.ry(0.9, 0).cx(0, 1);
        let cut = JointWireCut::new(2);
        let spec = cut.spec();
        let terms = cut.terms();
        let compiled =
            PreparedMultiCut::from_terms(spec, &terms, &prep, &PauliString::from_label("ZZ"));
        assert!(
            (compiled.exact_value() - 1.0).abs() < 1e-8,
            "joint cut ⟨ZZ⟩ = {}",
            compiled.exact_value()
        );
    }

    #[test]
    fn joint_cut_batched_estimate_converges() {
        // Finite-shot estimate through the batched multi-term path
        // (multinomial leaf occupancies + per-leaf parity binomials)
        // converges to the exact joint-cut value.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut prep = qsim::Circuit::new(2, 0);
        prep.ry(0.9, 0).cx(0, 1);
        let cut = JointWireCut::new(2);
        let compiled = PreparedMultiCut::from_terms(
            cut.spec(),
            &cut.terms(),
            &prep,
            &PauliString::from_label("ZZ"),
        );
        let exact = compiled.exact_value();
        let mut rng = StdRng::seed_from_u64(303);
        let reps = 30;
        let mean: f64 = (0..reps)
            .map(|_| {
                qpd::estimate_allocated(
                    &compiled.spec,
                    &compiled.samplers(),
                    4000,
                    qpd::Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>()
            / reps as f64;
        // SE ≈ κ/√(reps·shots) = 7/√120000 ≈ 0.02; allow ~4σ.
        assert!((mean - exact).abs() < 0.08, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn embed_input_multi_round_trip() {
        let rho = Matrix::from_fn(4, 4, |i, j| {
            c64((i + j) as f64 * 0.05, (i as f64 - j as f64) * 0.01)
        });
        let herm = rho.add(&rho.dagger()).scale_re(0.5);
        let full = embed_input_multi(&herm, &[0, 2], 4);
        let back = full.partial_trace(&[0, 2]);
        assert!(back.matrix().approx_eq(&herm, 1e-12));
    }

    #[test]
    fn flip_term_is_trace_preserving() {
        for n in [1usize, 2] {
            let cut = JointWireCut::new(n);
            let terms = cut.terms();
            for t in &terms {
                let ch = joint_term_channel(t);
                assert!(
                    ch.is_trace_preserving(1e-8),
                    "term {:?} of n={n} not TP",
                    t.labels
                );
            }
        }
    }
}

//! Extension: **joint parallel wire cutting** with mutually unbiased
//! bases (Harada et al., paper reference \[26\]; Brenner et al. \[11\];
//! scaled to arbitrary `n` following the joint-cutting extension paper
//! arXiv:2406.13315).
//!
//! Cutting `n` wires one-by-one costs `κ = 3ⁿ`; cutting them *jointly* —
//! the sender measures all `n` qubits together, which is still local to
//! the sender device — achieves the optimum `κ = 2d − 1`, `d = 2ⁿ`
//! (7 vs 9 at `n = 2`). The construction rests on the MUB identity for a
//! complete set of `d + 1` mutually unbiased bases `{B_b}`:
//!
//! `Σ_{b=0}^{d} D_b(ρ) = ρ + Tr(ρ)·I`
//!
//! where `D_b` dephases in basis `b`. Solving for ρ and folding the
//! computational-basis term into the subtraction gives
//!
//! `ρ = Σ_{b=1}^{d} D_b(ρ)  −  (d−1)·R(ρ)`,
//!
//! with `R(ρ) = Σ_j Tr[Π_j ρ]·(I − |j⟩⟨j|)/(d−1)` the *measure and
//! prepare a uniformly random other basis state* channel — the
//! multi-qubit generalisation of the Harada flip term. Every term is
//! measure-on-sender / prepare-on-receiver, so LOCC across the cut.
//! 1-norm: `d + (d−1) = 2d − 1`.
//!
//! The complete MUB sets come from the Galois-field /
//! commuting-Pauli-partition construction in [`crate::mub`], valid for
//! every `n ≤` [`mub::MAX_WIRES`] — no hardcoded case split. The
//! **estimate path never touches a dense superoperator**: term circuits
//! compile into branch-tree samplers ([`crate::multi::PreparedMultiCut`])
//! and correctness is checked by [`JointWireCut::verify`], which applies
//! each term's Kraus family **sparsely** (`O(d³)` per probe instead of
//! the `2^{2n} × 2^{2n}` process-tomography matrix). The dense
//! [`joint_identity_distance`] tomography survives for small-`n` tests
//! only.
//!
//! The paper's §VI asks whether NME states help *joint* multi-wire cuts;
//! [`crate::joint_nme`] explores that combination numerically — this
//! module provides the entanglement-free joint optimum it compares
//! against, alongside the independent-cut baseline `κ = γⁿ`
//! ([`crate::theory::gamma_phi_k`], Theorem 1).

use crate::mub;
use crate::multi::MultiCutTerm;
use qlinalg::{c64, unitary_with_first_column, Complex64, Matrix};
use qpd::{QpdSpec, TermSpec};
use qsim::{execute_density, Circuit, DensityMatrix, Gate, Superoperator};

/// The complete MUB set for one qubit (`d = 2`): computational, Hadamard
/// (`X` eigenbasis) and `SH` (`Y` eigenbasis) — exactly the `U᷀ᵢ` of the
/// single-wire optimal cut. Closed-form reference; identical (including
/// phases) to [`mub::mub_bases`]`(1)`.
pub fn mub_bases_one_qubit() -> Vec<Matrix> {
    vec![
        Matrix::identity(2),
        Gate::H.matrix(),
        Gate::S.matrix().matmul(&Gate::H.matrix()),
    ]
}

/// A complete set of five MUBs for two qubits (`d = 4`): the joint
/// eigenbases of the five commuting-Pauli-triple partitions of the 15
/// two-qubit Paulis, via the general construction of
/// [`mub::mub_bases`]`(2)` — memoized and fully deterministic (stabilizer
/// columns with a fixed phase convention, no numerical
/// eigendecomposition), so term ordering and seeded-count regressions
/// are stable across platforms.
pub fn mub_bases_two_qubit() -> Vec<Matrix> {
    mub::mub_bases(2)
}

/// Checks that `a` and `b` are mutually unbiased: `|⟨aᵢ|bⱼ⟩|² = 1/d`.
pub fn are_mutually_unbiased(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    let d = a.rows();
    let overlap = a.dagger().matmul(b);
    (0..d).all(|i| (0..d).all(|j| (overlap[(i, j)].norm_sqr() - 1.0 / d as f64).abs() < tol))
}

/// Joint wire cut over `n ≥ 1` wires with `κ = 2^{n+1} − 1`.
#[derive(Clone, Copy, Debug)]
pub struct JointWireCut {
    n: usize,
}

impl JointWireCut {
    /// Creates the joint cut over `n` wires, any `1 ≤ n ≤`
    /// [`mub::MAX_WIRES`]. (Circuit *simulation* cost grows as `2^{3n}`
    /// for the flip term, so estimates are practical up to `n ≈ 6`;
    /// construction and [`Self::verify`] stay cheap far beyond.)
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=mub::MAX_WIRES).contains(&n),
            "joint cut supports 1 ≤ n ≤ {}, got {n}",
            mub::MAX_WIRES
        );
        Self { n }
    }

    /// Number of wires.
    pub fn num_wires(&self) -> usize {
        self.n
    }

    /// Hilbert-space dimension `d = 2ⁿ` of the cut.
    pub fn dim(&self) -> usize {
        1 << self.n
    }

    /// The optimal joint overhead `2d − 1`.
    pub fn kappa(&self) -> f64 {
        (2 * self.dim() - 1) as f64
    }

    /// The complete MUB set used by this cut (`d + 1` bases, memoized).
    pub fn bases(&self) -> Vec<Matrix> {
        mub::mub_bases(self.n)
    }

    /// Positive term `b`: measure the sender block in MUB `b`, prepare the
    /// measured basis state on the receiver block. Layout: sender qubits
    /// `0..n`, receiver `n..2n`. (Shared with [`crate::joint_nme`], whose
    /// entanglement-free terms are the same measure-and-prepare channels.)
    pub(crate) fn basis_term_circuit(&self, u: &Matrix) -> Circuit {
        let n = self.n;
        let mut c = Circuit::new(2 * n, n);
        let sender: Vec<usize> = (0..n).collect();
        let receiver: Vec<usize> = (n..2 * n).collect();
        // Rotate MUB → computational on the sender.
        c.unitary(u.dagger(), &sender);
        for q in 0..n {
            c.measure(q, q);
        }
        for (q, &r) in receiver.iter().enumerate().take(n) {
            c.x_if(r, q);
        }
        c.unitary(u.clone(), &receiver);
        c
    }

    /// The negative term `R`: measure the sender in the computational
    /// basis, prepare a uniformly random *different* computational state
    /// on the receiver. The uniform offset `o ∈ {1, …, d−1}` comes from
    /// `n` ancilla qubits prepared in `Σ_{o≠0} |o⟩/√(d−1)` and XOR'd onto
    /// the receiver (ancillas are local to the receiver and traced out).
    pub(crate) fn flip_term_circuit(&self) -> Circuit {
        let n = self.n;
        let d = self.dim();
        let mut c = Circuit::new(3 * n, n);
        let receiver: Vec<usize> = (n..2 * n).collect();
        let ancilla: Vec<usize> = (2 * n..3 * n).collect();
        // Ancilla preparation.
        let amp = 1.0 / ((d - 1) as f64).sqrt();
        let target: Vec<Complex64> = (0..d)
            .map(|o| if o == 0 { c64(0.0, 0.0) } else { c64(amp, 0.0) })
            .collect();
        let prep = unitary_with_first_column(&target);
        c.unitary(prep, &ancilla);
        // Sender measurement, receiver preparation of |j ⊕ o⟩.
        for q in 0..n {
            c.measure(q, q);
        }
        for (q, &r) in receiver.iter().enumerate().take(n) {
            c.x_if(r, q);
        }
        for q in 0..n {
            c.cx(ancilla[q], receiver[q]);
        }
        c
    }

    /// All `d + 1` terms as multi-wire cut terms: one measure-and-prepare
    /// term per non-computational MUB (coefficient `+1`), then the flip
    /// term (coefficient `−(d−1)`).
    pub fn terms(&self) -> Vec<MultiCutTerm> {
        let n = self.n;
        let d = self.dim();
        let bases = self.bases();
        let input_qubits: Vec<usize> = (0..n).collect();
        let output_qubits: Vec<usize> = (n..2 * n).collect();
        let mut terms = Vec::with_capacity(d + 1);
        for (b, u) in bases.iter().enumerate().skip(1) {
            terms.push(MultiCutTerm {
                coefficient: 1.0,
                labels: vec![format!("mub-{b}")],
                circuit: self.basis_term_circuit(u),
                input_qubits: input_qubits.clone(),
                output_qubits: output_qubits.clone(),
                pairs_consumed: 0.0,
            });
        }
        terms.push(MultiCutTerm {
            coefficient: -((d - 1) as f64),
            labels: vec!["meas-prep-other".to_string()],
            circuit: self.flip_term_circuit(),
            input_qubits,
            output_qubits,
            pairs_consumed: 0.0,
        });
        terms
    }

    /// Coefficient structure.
    pub fn spec(&self) -> QpdSpec {
        QpdSpec::new(
            self.terms()
                .iter()
                .map(|t| TermSpec {
                    coefficient: t.coefficient,
                    label: t.labels.join("×"),
                    pairs_consumed: t.pairs_consumed,
                })
                .collect(),
        )
    }

    /// Applies the full reconstructed channel `Σᵢ cᵢ Fᵢ` to one operator
    /// via **sparse per-term Kraus application** — `O((d+1)·d³)` total,
    /// no `d² × d²` superoperator. Linear in `rho` (works on arbitrary
    /// matrices, not just states), so probing with a spanning set is
    /// complete process verification.
    pub fn apply_reconstructed(&self, rho: &Matrix) -> Matrix {
        let d = self.dim();
        assert_eq!(rho.rows(), d);
        let bases = self.bases();
        let mut acc = Matrix::zeros(d, d);
        for u in bases.iter().skip(1) {
            acc.axpy(qlinalg::C_ONE, &apply_basis_term(u, rho));
        }
        acc.axpy(c64(-((d - 1) as f64), 0.0), &apply_flip_term(rho));
        acc
    }

    /// Max-entry deviation of the reconstructed channel from the identity,
    /// measured sparsely on a spanning probe set: all `d²` matrix units
    /// for `n ≤ 3`, diagonal units plus seeded random Hermitian probes
    /// beyond (keeping the check `O(d³·probes)` at every `n`).
    pub fn verify_deviation(&self) -> f64 {
        let d = self.dim();
        let mut worst = 0.0f64;
        let mut probe = |rho: &Matrix| {
            let dev = self.apply_reconstructed(rho).sub(rho).max_abs();
            if dev > worst {
                worst = dev;
            }
        };
        if self.n <= 3 {
            for r in 0..d {
                for cidx in 0..d {
                    let mut unit = Matrix::zeros(d, d);
                    unit[(r, cidx)] = qlinalg::C_ONE;
                    probe(&unit);
                }
            }
        } else {
            for j in 0..d {
                let mut unit = Matrix::zeros(d, d);
                unit[(j, j)] = qlinalg::C_ONE;
                probe(&unit);
            }
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(0x006a_6f69_6e74);
            for _ in 0..6 {
                let raw = Matrix::from_fn(d, d, |_, _| {
                    c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
                });
                probe(&raw.add(&raw.dagger()).scale_re(0.5));
            }
        }
        worst
    }

    /// Verifies the joint cut end to end without dense superoperators:
    /// the QPD spec validates with `κ = 2d − 1`, all `d + 1` bases are
    /// unitary and pairwise mutually unbiased, the MUB dephasing identity
    /// holds on probes, and the sparse channel reconstruction is the
    /// identity to within `tol`. Intended for tests and experiment
    /// startup checks — the sampling hot path never calls this.
    pub fn verify(&self, tol: f64) -> Result<(), String> {
        let d = self.dim();
        let spec = self.spec();
        spec.validate(tol.max(1e-12))
            .map_err(|e| format!("spec invalid: {e}"))?;
        if (spec.kappa() - (2 * d - 1) as f64).abs() > 1e-9 {
            return Err(format!("κ = {} ≠ 2d−1 = {}", spec.kappa(), 2 * d - 1));
        }
        let bases = self.bases();
        if bases.len() != d + 1 {
            return Err(format!("{} bases, expected {}", bases.len(), d + 1));
        }
        for (i, u) in bases.iter().enumerate() {
            if !u.is_unitary(tol) {
                return Err(format!("basis {i} not unitary"));
            }
            for (j, v) in bases.iter().enumerate().skip(i + 1) {
                if !are_mutually_unbiased(u, v, tol) {
                    return Err(format!("bases {i},{j} not mutually unbiased"));
                }
            }
        }
        // Non-trivial probe: every dephasing channel fixes I/d, so the
        // maximally mixed state would accept ANY unitary set — use a
        // dense Hermitian with distinct diagonal and full off-diagonal
        // support instead.
        let probe = {
            let raw = Matrix::from_fn(d, d, |r, c| {
                c64(
                    1.0 / (1.0 + r as f64 + 2.0 * c as f64),
                    (r as f64 - c as f64) * 0.1,
                )
            });
            raw.add(&raw.dagger()).scale_re(0.5)
        };
        let dev = mub::dephasing_identity_deviation(&bases, &probe);
        if dev > tol {
            return Err(format!("MUB dephasing identity deviates by {dev}"));
        }
        let dev = self.verify_deviation();
        if dev > tol {
            return Err(format!("reconstructed channel deviates by {dev}"));
        }
        Ok(())
    }
}

/// Sparse Kraus application of a positive MUB term: *measure in basis `b`
/// and prepare the outcome*, `ρ ↦ Σⱼ ⟨uⱼ|ρ|uⱼ⟩ |uⱼ⟩⟨uⱼ| =
/// U·diag(U†ρU)·U†` — the dephasing channel `D_b` with Kraus family
/// `{|uⱼ⟩⟨uⱼ|}`, in `O(d³)` instead of superoperator `O(d⁶)`.
pub fn apply_basis_term(u: &Matrix, rho: &Matrix) -> Matrix {
    let d = rho.rows();
    let in_basis = u.dagger().matmul(rho).matmul(u);
    let diag: Vec<Complex64> = (0..d).map(|j| in_basis[(j, j)]).collect();
    u.matmul(&Matrix::diag(&diag)).matmul(&u.dagger())
}

/// Sparse Kraus application of the flip term `R`: *measure
/// computationally, prepare a uniformly random other basis state*,
/// `ρ ↦ Σⱼ ρⱼⱼ (I − |j⟩⟨j|)/(d−1)` — Kraus family
/// `{|m⟩⟨j|/√(d−1) : m ≠ j}`, in `O(d²)`.
pub fn apply_flip_term(rho: &Matrix) -> Matrix {
    let d = rho.rows();
    let total = rho.trace();
    let scale = 1.0 / (d - 1) as f64;
    Matrix::from_fn(d, d, |r, c| {
        if r == c {
            (total - rho[(r, r)]).scale(scale)
        } else {
            qlinalg::C_ZERO
        }
    })
}

/// Exact `d → d` channel of a multi-wire term: probe with matrix units on
/// the input qubits, trace to the output qubits. **Dense process
/// tomography — `O(d²)` circuit simulations — for small-`n` tests only;
/// the estimate path and [`JointWireCut::verify`] never call this.**
pub fn joint_term_channel(term: &MultiCutTerm) -> Superoperator {
    let n_total = term.circuit.num_qubits();
    let d = 1 << term.input_qubits.len();
    Superoperator::from_linear_map(d, d, |rho_in| {
        let full = embed_input_multi(rho_in, &term.input_qubits, n_total);
        let out = execute_density(&term.circuit, &full);
        out.partial_trace(&term.output_qubits).into_matrix()
    })
}

/// Embeds a `d × d` operator on the listed qubits (`qubits[i]` = bit `i`)
/// with `|0⟩⟨0|` on every other qubit of an `n`-qubit register.
pub fn embed_input_multi(rho_in: &Matrix, qubits: &[usize], n: usize) -> DensityMatrix {
    let k = qubits.len();
    assert_eq!(rho_in.rows(), 1 << k);
    let dim = 1usize << n;
    let mut full = Matrix::zeros(dim, dim);
    let spread = |bits: usize| -> usize {
        let mut idx = 0usize;
        for (b, &q) in qubits.iter().enumerate() {
            idx |= ((bits >> b) & 1) << q;
        }
        idx
    };
    for r in 0..(1 << k) {
        for c in 0..(1 << k) {
            full[(spread(r), spread(c))] = rho_in[(r, c)];
        }
    }
    DensityMatrix::from_matrix(n, full)
}

/// Distance of the reconstructed joint-cut channel from the identity via
/// **dense** circuit-level tomography (`2^{2n}` probes through the
/// density simulator). Exponentially expensive — test-only ground truth
/// for `n ≤ 2`; use [`JointWireCut::verify`] everywhere else.
pub fn joint_identity_distance(cut: &JointWireCut) -> f64 {
    let d = cut.dim();
    let mut acc = Superoperator::zero(d, d);
    for term in cut.terms() {
        acc.axpy(term.coefficient, &joint_term_channel(&term));
    }
    acc.distance(&Superoperator::identity(d))
}

/// The MUB dephasing identity `Σ_b D_b(ρ) = ρ + Tr(ρ)·I`, checked as a
/// dense channel equation; returns the max-entry deviation. Test-only —
/// the sparse per-probe form is
/// [`mub::dephasing_identity_deviation`].
pub fn mub_identity_deviation(bases: &[Matrix]) -> f64 {
    let d = bases[0].rows();
    let mut acc = Superoperator::zero(d, d);
    for u in bases {
        // Dephasing in basis U: Kraus {U Π_j U†}.
        let kraus: Vec<Matrix> = (0..d)
            .map(|j| {
                let mut pi = Matrix::zeros(d, d);
                pi[(j, j)] = qlinalg::C_ONE;
                u.matmul(&pi).matmul(&u.dagger())
            })
            .collect();
        acc.axpy(1.0, &Superoperator::from_kraus(&kraus));
    }
    // Target: ρ → ρ + Tr(ρ)·I  =  identity + d·(trace ∘ maximally-mixed·d)…
    // build directly: S_target = I_channel + |vec(I)⟩⟨vec(I)|-style map.
    let mut target = Superoperator::identity(d);
    let replace =
        Superoperator::from_linear_map(d, d, |rho| Matrix::identity(d).scale(rho.trace()));
    target.axpy(1.0, &replace);
    acc.distance(&target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::{ParallelWireCut, PreparedMultiCut};
    use crate::nme::NmeCut;
    use qsim::PauliString;

    #[test]
    fn one_qubit_mubs_are_unbiased() {
        let bases = mub_bases_one_qubit();
        for i in 0..bases.len() {
            assert!(bases[i].is_unitary(1e-12));
            for j in (i + 1)..bases.len() {
                assert!(
                    are_mutually_unbiased(&bases[i], &bases[j], 1e-10),
                    "bases {i},{j} not unbiased"
                );
            }
        }
    }

    #[test]
    fn two_qubit_mubs_are_complete_and_unbiased() {
        let bases = mub_bases_two_qubit();
        assert_eq!(bases.len(), 5);
        for i in 0..5 {
            assert!(bases[i].is_unitary(1e-9), "basis {i} not unitary");
            for j in (i + 1)..5 {
                assert!(
                    are_mutually_unbiased(&bases[i], &bases[j], 1e-8),
                    "bases {i},{j} not unbiased"
                );
            }
        }
    }

    #[test]
    fn two_qubit_mubs_are_deterministic_across_calls() {
        let a = mub_bases_two_qubit();
        let b = mub_bases_two_qubit();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.approx_eq(y, 0.0), "two-qubit MUB set not stable");
        }
    }

    #[test]
    fn mub_dephasing_identity_holds() {
        assert!(mub_identity_deviation(&mub_bases_one_qubit()) < 1e-9);
        assert!(mub_identity_deviation(&mub_bases_two_qubit()) < 1e-8);
    }

    #[test]
    fn joint_cut_kappa_values() {
        assert!((JointWireCut::new(1).kappa() - 3.0).abs() < 1e-12);
        assert!((JointWireCut::new(2).kappa() - 7.0).abs() < 1e-12);
        assert!(JointWireCut::new(2).spec().validate(1e-9).is_ok());
        assert!((JointWireCut::new(2).spec().kappa() - 7.0).abs() < 1e-12);
        // Closed form 2^{n+1} − 1 for every supported n.
        for n in 1..=5 {
            let cut = JointWireCut::new(n);
            assert!((cut.kappa() - ((1 << (n + 1)) - 1) as f64).abs() < 1e-12);
            assert_eq!(cut.terms().len(), (1 << n) + 1);
        }
    }

    #[test]
    fn joint_single_wire_reconstructs_identity() {
        let d = joint_identity_distance(&JointWireCut::new(1));
        assert!(d < 1e-9, "single-wire joint cut broken: {d}");
    }

    #[test]
    fn joint_double_wire_reconstructs_identity() {
        let d = joint_identity_distance(&JointWireCut::new(2));
        assert!(d < 1e-8, "double-wire joint cut broken: {d}");
    }

    #[test]
    fn sparse_verify_matches_dense_tomography_scale() {
        // The sparse verification deviation and the dense superoperator
        // distance agree on what "exact" means for n ≤ 2.
        for n in 1..=2 {
            let cut = JointWireCut::new(n);
            assert!(cut.verify_deviation() < 1e-10);
            assert!(joint_identity_distance(&cut) < 1e-8);
        }
    }

    #[test]
    fn verify_passes_for_one_to_five_wires() {
        for n in 1..=5 {
            JointWireCut::new(n)
                .verify(1e-8)
                .unwrap_or_else(|e| panic!("verify failed at n={n}: {e}"));
        }
    }

    #[test]
    fn sparse_term_application_matches_circuit_channels() {
        // apply_basis_term / apply_flip_term vs the exact circuit-level
        // term channels, on a random probe (n = 2 keeps tomography cheap).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let cut = JointWireCut::new(2);
        let bases = cut.bases();
        let terms = cut.terms();
        let mut rng = StdRng::seed_from_u64(404);
        let raw = Matrix::from_fn(4, 4, |_, _| {
            c64(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5)
        });
        let herm = raw.add(&raw.dagger()).scale_re(0.5);
        for (i, term) in terms.iter().enumerate() {
            let dense = joint_term_channel(term).apply(&herm);
            let sparse = if i + 1 < bases.len() {
                apply_basis_term(&bases[i + 1], &herm)
            } else {
                apply_flip_term(&herm)
            };
            assert!(
                dense.approx_eq(&sparse, 1e-9),
                "sparse/dense mismatch on term {i}"
            );
        }
    }

    #[test]
    fn joint_beats_product_cut() {
        let joint = JointWireCut::new(2).kappa();
        let product = ParallelWireCut::uniform(NmeCut::new(0.0), 2).kappa();
        assert!((product - 9.0).abs() < 1e-9);
        assert!(joint < product, "joint {joint} not below product {product}");
        // The gap widens exponentially with n: 2^{n+1}−1 vs 3ⁿ.
        for n in 2..=5 {
            let joint = JointWireCut::new(n).kappa();
            let product = 3.0f64.powi(n as i32);
            assert!(joint < product);
        }
    }

    #[test]
    fn joint_cut_estimates_entangled_observable() {
        // End-to-end: sender prepares an entangled state across both cut
        // wires; the joint cut must reproduce ⟨ZZ⟩ exactly in expectation.
        let mut prep = qsim::Circuit::new(2, 0);
        prep.ry(0.9, 0).cx(0, 1);
        let cut = JointWireCut::new(2);
        let spec = cut.spec();
        let terms = cut.terms();
        let compiled =
            PreparedMultiCut::from_terms(spec, &terms, &prep, &PauliString::from_label("ZZ"));
        assert!(
            (compiled.exact_value() - 1.0).abs() < 1e-8,
            "joint cut ⟨ZZ⟩ = {}",
            compiled.exact_value()
        );
    }

    #[test]
    fn three_wire_joint_cut_estimates_ghz_observable() {
        // GHZ-like sender state cos|000⟩ + sin|111⟩ across three jointly
        // cut wires: ⟨ZZZ⟩ = cos θ, κ = 15.
        let theta = 0.9f64;
        let mut prep = qsim::Circuit::new(3, 0);
        prep.ry(theta, 0).cx(0, 1).cx(1, 2);
        let cut = JointWireCut::new(3);
        assert!((cut.kappa() - 15.0).abs() < 1e-12);
        let compiled = PreparedMultiCut::from_terms(
            cut.spec(),
            &cut.terms(),
            &prep,
            &PauliString::from_label("ZZZ"),
        );
        assert!(
            (compiled.exact_value() - theta.cos()).abs() < 1e-8,
            "⟨ZZZ⟩ = {} vs {}",
            compiled.exact_value(),
            theta.cos()
        );
        // Mixed observable on a subset of the cut wires.
        let ziz = PreparedMultiCut::from_terms(
            cut.spec(),
            &cut.terms(),
            &prep,
            &PauliString::from_label("ZIZ"),
        );
        assert!(
            (ziz.exact_value() - 1.0).abs() < 1e-8,
            "⟨ZIZ⟩ = {}",
            ziz.exact_value()
        );
    }

    #[test]
    fn joint_cut_batched_estimate_converges() {
        // Finite-shot estimate through the batched multi-term path
        // (multinomial leaf occupancies + per-leaf parity binomials)
        // converges to the exact joint-cut value.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut prep = qsim::Circuit::new(2, 0);
        prep.ry(0.9, 0).cx(0, 1);
        let cut = JointWireCut::new(2);
        let compiled = PreparedMultiCut::from_terms(
            cut.spec(),
            &cut.terms(),
            &prep,
            &PauliString::from_label("ZZ"),
        );
        let exact = compiled.exact_value();
        let mut rng = StdRng::seed_from_u64(303);
        let reps = 30;
        let mean: f64 = (0..reps)
            .map(|_| {
                qpd::estimate_allocated(
                    &compiled.spec,
                    &compiled.samplers(),
                    4000,
                    qpd::Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>()
            / reps as f64;
        // SE ≈ κ/√(reps·shots) = 7/√120000 ≈ 0.02; allow ~4σ.
        assert!((mean - exact).abs() < 0.08, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn embed_input_multi_round_trip() {
        let rho = Matrix::from_fn(4, 4, |i, j| {
            c64((i + j) as f64 * 0.05, (i as f64 - j as f64) * 0.01)
        });
        let herm = rho.add(&rho.dagger()).scale_re(0.5);
        let full = embed_input_multi(&herm, &[0, 2], 4);
        let back = full.partial_trace(&[0, 2]);
        assert!(back.matrix().approx_eq(&herm, 1e-12));
    }

    #[test]
    fn flip_term_is_trace_preserving() {
        for n in [1usize, 2] {
            let cut = JointWireCut::new(n);
            let terms = cut.terms();
            for t in &terms {
                let ch = joint_term_channel(t);
                assert!(
                    ch.is_trace_preserving(1e-8),
                    "term {:?} of n={n} not TP",
                    t.labels
                );
            }
        }
    }
}

//! Numerical exploration of the paper's §VI open question: does
//! pre-shared NME entanglement help **joint** multi-wire cutting?
//!
//! Theory status: for *independent* cuts, Theorem 1 gives the optimum
//! `κ = γⁿ` with `γ = 2/f − 1` ([`crate::theory::gamma_from_overlap`]);
//! for *joint* cuts without entanglement, the MUB construction achieves
//! `κ = 2d − 1` ([`crate::joint::JointWireCut`]). The combination —
//! joint cutting assisted by `|Φ_k⟩` pairs — has no known closed form
//! (the joint-cutting extension paper arXiv:2406.13315 treats maximally
//! entangled resources; the NME case is open). This module explores it
//! numerically over a concrete LOCC-implementable term family:
//!
//! * **Tel(b)**, `b = 0..d` — teleport all `n` wires through `|Φ_k⟩^⊗n`,
//!   conjugated by MUB `U_b`: the Pauli channel
//!   `Σ_z w_z (U_b Z^z U_b†)·ρ·(…)†` with `w_z = q_I^{n−|z|} q_Z^{|z|}`
//!   from the per-wire teleportation error model (Eq. 22/59); consumes
//!   `n` pairs. Tracked **symplectically** via
//!   [`mub::mub_error_pauli`] — no matrices.
//! * **MeasPrep(b)**, `b = 0..d` — entanglement-free dephasing `D_b`
//!   (measure in MUB `b`, prepare the outcome).
//! * **Flip** — the measure-and-prepare-other channel `R` of the joint
//!   cut.
//!
//! All candidates are Pauli channels, so the QPD feasibility constraint
//! `Σᵢ cᵢ Fᵢ = id` reduces to `4ⁿ` linear equations on the Pauli-transfer
//! eigenvalues `λ_Q` (one per Pauli `Q`, all equal to 1 for the
//! identity). [`explore_joint_nme`] minimises the 1-norm `Σ|cᵢ|` over
//! that affine space by IRLS basis pursuit (iteratively reweighted least
//! squares on the SVD nullspace, then a support-refit polish), and
//! [`NmeJointCut`] turns the solved coefficients into executable LOCC
//! term circuits riding the batched sampler stack — cross-validating the
//! symplectic bookkeeping against honest circuit simulation.
//!
//! Findings reproduced by the `joint_scaling` experiment: at `n = 1` the
//! solve recovers the Theorem 2 optimum `γ(k)` for every `k` (smooth
//! interpolation), and at the endpoints it recovers the known optima
//! (`2d − 1` at `k = 0`, `1` at `k = 1`) for every `n`. The surprise is
//! in between: for `n ≥ 2` the achieved 1-norm stays **pinned at
//! `2d − 1` for all `k < 1`** — within this family, partially entangled
//! pairs do not help a *joint* cut at all. The mechanism: a MUB-rotated
//! `|Φ_k⟩^{⊗n}` teleportation carries error weights `w_z` that vary with
//! the Hamming weight `|z|`, which breaks the permutation symmetry the
//! MUB identity needs, so the `λ_Q` constraints within each Pauli class
//! force every teleportation coefficient to zero unless the channel is
//! error-free (`k = 1`). The practical joint-vs-independent frontier for
//! `n ≥ 2` is therefore `min(2d − 1, γ(k)ⁿ)`, exactly the crossover map
//! of the `joint_scaling` experiment.

use crate::joint::JointWireCut;
use crate::mub::{self, mub_error_pauli, symplectic_product, MubField};
use crate::multi::MultiCutTerm;
use crate::teleport::append_teleportation;
use crate::theory;
use entangle::PhiK;
use qlinalg::{c64, Complex64, Matrix, C_ZERO};
use qpd::{QpdSpec, TermSpec};
use qsim::Circuit;

/// One candidate term of the joint-NME family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JointNmeTermKind {
    /// Teleport all wires through `|Φ_k⟩^⊗n`, conjugated by MUB `b`
    /// (consumes `n` pairs).
    Teleport(usize),
    /// Entanglement-free dephasing in MUB `b` (measure and prepare).
    MeasPrep(usize),
    /// Measure computationally, prepare a uniformly random other state.
    Flip,
}

/// Solved QPD over the joint-NME term family.
#[derive(Clone, Debug)]
pub struct NmeJointSolution {
    /// Number of jointly cut wires.
    pub n: usize,
    /// Resource parameter `k` of `|Φ_k⟩`.
    pub k: f64,
    /// Term kinds, aligned with `coefficients` (near-zero entries
    /// dropped).
    pub kinds: Vec<JointNmeTermKind>,
    /// Signed QPD coefficients.
    pub coefficients: Vec<f64>,
    /// Achieved 1-norm `Σ|cᵢ|` — an upper bound on the optimal joint-NME
    /// overhead (exact feasibility enforced; optimality only as good as
    /// basis pursuit over this family).
    pub kappa: f64,
    /// Max-entry feasibility residual `‖Σ cᵢ λ(Fᵢ) − 1‖∞` over all `4ⁿ`
    /// Pauli-transfer eigenvalue constraints.
    pub residual: f64,
    /// Expected entangled pairs consumed per drawn QPD sample:
    /// `n · Σ_{tel} |cᵢ| / κ`.
    pub pairs_per_sample: f64,
}

/// Pauli-transfer eigenvalue rows for every candidate: entry `(Q, t)` is
/// `λ_Q(F_t)`; `Q` runs over all `4ⁿ` Paulis `(x, z)` packed as
/// `x·2ⁿ + z`.
fn candidate_matrix(field: &MubField, n: usize, k: f64) -> (Matrix, Vec<JointNmeTermKind>) {
    let d = 1usize << n;
    let [q_i, _, _, q_z] = PhiK::new(k).bell_overlaps();
    let mut kinds = Vec::new();
    for b in 0..=d {
        kinds.push(JointNmeTermKind::Teleport(b));
    }
    for b in 0..=d {
        kinds.push(JointNmeTermKind::MeasPrep(b));
    }
    kinds.push(JointNmeTermKind::Flip);
    // Precompute error-Pauli tables per basis.
    let errors: Vec<Vec<(u64, u64)>> = (0..=d)
        .map(|b| {
            (0..d as u64)
                .map(|z| mub_error_pauli(field, b, z))
                .collect()
        })
        .collect();
    let rows = d * d; // 4ⁿ Paulis
    let mut a = Matrix::zeros(rows, kinds.len());
    for xq in 0..d as u64 {
        for zq in 0..d as u64 {
            let q = (xq, zq);
            let row = (xq as usize) * d + zq as usize;
            for (t, kind) in kinds.iter().enumerate() {
                let lam = match kind {
                    JointNmeTermKind::Teleport(b) => errors[*b]
                        .iter()
                        .enumerate()
                        .map(|(z, &p)| {
                            let t = (z as u64).count_ones() as i32;
                            let w = q_i.powi(n as i32 - t) * q_z.powi(t);
                            let sign = if symplectic_product(p, q) == 0 {
                                1.0
                            } else {
                                -1.0
                            };
                            w * sign
                        })
                        .sum::<f64>(),
                    JointNmeTermKind::MeasPrep(b) => {
                        errors[*b]
                            .iter()
                            .map(|&p| {
                                if symplectic_product(p, q) == 0 {
                                    1.0
                                } else {
                                    -1.0
                                }
                            })
                            .sum::<f64>()
                            / d as f64
                    }
                    JointNmeTermKind::Flip => {
                        if xq == 0 && zq == 0 {
                            1.0
                        } else if xq == 0 {
                            -1.0 / (d as f64 - 1.0)
                        } else {
                            0.0
                        }
                    }
                };
                a[(row, t)] = c64(lam, 0.0);
            }
        }
    }
    (a, kinds)
}

/// Rank-tolerant least squares `min ‖c‖₂ over argmin ‖A·c − y‖₂` via the
/// spectral pseudo-inverse of the normal equations (any shape, any rank).
fn pinv_lstsq(a: &Matrix, y: &[Complex64]) -> Vec<Complex64> {
    let p = a.cols();
    let adag = a.dagger();
    let h = adag.matmul(a);
    let b = adag.matvec(y);
    let eig = qlinalg::eigh(&h);
    let lmax = eig.values.first().copied().unwrap_or(0.0).max(0.0);
    let tol = lmax * 1e-12;
    let mut c = vec![C_ZERO; p];
    for (i, &l) in eig.values.iter().enumerate() {
        if l > tol {
            let mut vib = C_ZERO;
            for (r, &br) in b.iter().enumerate() {
                vib += eig.vectors[(r, i)].conj() * br;
            }
            let w = vib * (1.0 / l);
            for (r, cr) in c.iter_mut().enumerate() {
                *cr += eig.vectors[(r, i)] * w;
            }
        }
    }
    c
}

/// Basis pursuit `min ‖c‖₁ s.t. A·c = y`: IRLS over the nullspace of the
/// normal equations, then a greedy support-shrink polish (drop the
/// weakest column, refit, keep if feasibility holds and the 1-norm
/// drops) that snaps near-optimal IRLS points onto the exact sparse
/// optimum. Returns the coefficients and the feasibility residual
/// `‖A·c − y‖∞`.
fn min_one_norm(a: &Matrix, y: &[f64]) -> (Vec<f64>, f64) {
    let m = a.rows();
    let p = a.cols();
    let yc: Vec<Complex64> = y.iter().map(|&v| c64(v, 0.0)).collect();
    // Normal-equations spectral form (valid for any shape of A, and the
    // matrices here are tiny and ±1-scaled): H = A†A, b = A†y; range and
    // nullspace of A coincide with those of H.
    let adag = a.dagger();
    let h = adag.matmul(a);
    let b = adag.matvec(&yc);
    let eig = qlinalg::eigh(&h);
    let lmax = eig.values.first().copied().unwrap_or(0.0).max(0.0);
    let rank_tol = lmax * 1e-12;
    // Min-norm particular solution c_p = Σ v_i (v_i†b)/λ_i.
    let mut c_p = vec![C_ZERO; p];
    let mut null_cols: Vec<usize> = Vec::new();
    for (i, &l) in eig.values.iter().enumerate() {
        if l > rank_tol {
            let mut vib = C_ZERO;
            for (r, &br) in b.iter().enumerate() {
                vib += eig.vectors[(r, i)].conj() * br;
            }
            let w = vib * (1.0 / l);
            for (r, cr) in c_p.iter_mut().enumerate() {
                *cr += eig.vectors[(r, i)] * w;
            }
        } else {
            null_cols.push(i);
        }
    }
    let residual_of = |c: &[Complex64]| -> f64 {
        let ac = a.matvec(c);
        ac.iter()
            .zip(yc.iter())
            .map(|(l, r)| (*l - *r).abs())
            .fold(0.0f64, f64::max)
    };
    let mut c = c_p.clone();
    if !null_cols.is_empty() {
        let nn = null_cols.len();
        // IRLS: minimise Σ cᵢ²/(|cᵢ| + ε) over c = c_p + N·z.
        for iter in 0..300 {
            let eps = (1e-1 * 0.93f64.powi(iter)).max(1e-12);
            // G = Nᵀ D N, rhs = −Nᵀ D c_p with D = diag(1/(|cᵢ| + ε)).
            let weights: Vec<f64> = c.iter().map(|ci| 1.0 / (ci.abs() + eps)).collect();
            let mut g = Matrix::zeros(nn, nn);
            let mut rhs = vec![C_ZERO; nn];
            for (ai, &ci) in null_cols.iter().enumerate() {
                for (bi, &cj) in null_cols.iter().enumerate() {
                    let mut acc = C_ZERO;
                    for (r, &w) in weights.iter().enumerate() {
                        acc += eig.vectors[(r, ci)].conj() * eig.vectors[(r, cj)].scale(w);
                    }
                    g[(ai, bi)] = acc;
                }
                let mut acc = C_ZERO;
                for r in 0..p {
                    acc += eig.vectors[(r, ci)].conj() * c_p[r].scale(weights[r]);
                }
                rhs[ai] = -acc;
                g[(ai, ai)] += c64(1e-12, 0.0);
            }
            let z = qlinalg::solve(&g, &rhs);
            for (r, cr) in c.iter_mut().enumerate() {
                let mut acc = c_p[r];
                for (ai, &ci) in null_cols.iter().enumerate() {
                    acc += eig.vectors[(r, ci)] * z[ai];
                }
                *cr = acc;
            }
        }
    }
    // Polish: refit exactly on the support so feasibility is limited only
    // by least-squares precision, not by the IRLS smoothing. Pseudo-inverse
    // refit — support columns may be linearly dependent (degenerate
    // families, e.g. Tel ≡ MeasPrep at k = 0).
    let cmax = c.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    let support: Vec<usize> = (0..p)
        .filter(|&i| c[i].abs() > 1e-7 * cmax.max(1.0))
        .collect();
    if !support.is_empty() && support.len() < p {
        let sub = Matrix::from_fn(m, support.len(), |r, j| a[(r, support[j])]);
        let cs = pinv_lstsq(&sub, &yc);
        let mut refit = vec![C_ZERO; p];
        for (j, &i) in support.iter().enumerate() {
            refit[i] = cs[j];
        }
        if residual_of(&refit) <= residual_of(&c).max(1e-9) {
            c = refit;
        }
    }
    // Greedy support shrink: IRLS can park small spurious weight on
    // redundant columns; dropping a column and refitting either breaks
    // feasibility (rejected) or strictly lowers the 1-norm (kept).
    let one_norm = |c: &[Complex64]| c.iter().map(|v| v.abs()).sum::<f64>();
    let mut improved = true;
    while improved {
        improved = false;
        let mut support: Vec<usize> = (0..p).filter(|&i| c[i].abs() > 1e-10).collect();
        support.sort_by(|&i, &j| c[i].abs().partial_cmp(&c[j].abs()).unwrap());
        for &drop in &support {
            let keep: Vec<usize> = support.iter().copied().filter(|&i| i != drop).collect();
            if keep.is_empty() {
                continue;
            }
            let sub = Matrix::from_fn(m, keep.len(), |r, j| a[(r, keep[j])]);
            let cs = pinv_lstsq(&sub, &yc);
            let mut cand = vec![C_ZERO; p];
            for (j, &i) in keep.iter().enumerate() {
                cand[i] = cs[j];
            }
            if residual_of(&cand) < 1e-9 && one_norm(&cand) < one_norm(&c) - 1e-12 {
                c = cand;
                improved = true;
                break;
            }
        }
    }
    let res = residual_of(&c);
    (c.iter().map(|v| v.re).collect(), res)
}

/// Solves the joint-NME QPD for `n` wires at resource parameter `k`:
/// basis pursuit over the Tel/MeasPrep/Flip family described in the
/// module docs. Deterministic (pure linear algebra, no RNG).
pub fn explore_joint_nme(n: usize, k: f64) -> NmeJointSolution {
    assert!((1..=mub::MAX_WIRES).contains(&n));
    assert!((0.0..=1.0).contains(&k), "resource parameter k ∈ [0, 1]");
    let field = MubField::new(n);
    let (a, kinds) = candidate_matrix(&field, n, k);
    let d = 1usize << n;
    let y = vec![1.0; a.rows()];
    let (mut coeffs, residual) = min_one_norm(&a, &y);
    // Exact-tie cleanup: where a teleportation column equals its
    // entanglement-free MeasPrep twin (k = 0 degeneracy), shift the
    // weight onto the twin — same QPD, zero pair consumption.
    for b in 0..=d {
        let (t_idx, m_idx) = (b, d + 1 + b);
        let same = (0..a.rows()).all(|r| (a[(r, t_idx)] - a[(r, m_idx)]).abs() < 1e-12);
        if same {
            coeffs[m_idx] += coeffs[t_idx];
            coeffs[t_idx] = 0.0;
        }
    }
    let mut kept_kinds = Vec::new();
    let mut kept_coeffs = Vec::new();
    let mut kappa = 0.0;
    let mut tel_weight = 0.0;
    for (kind, &c) in kinds.iter().zip(coeffs.iter()) {
        if c.abs() < 1e-9 {
            continue;
        }
        kappa += c.abs();
        if matches!(kind, JointNmeTermKind::Teleport(_)) {
            tel_weight += c.abs();
        }
        kept_kinds.push(*kind);
        kept_coeffs.push(c);
    }
    NmeJointSolution {
        n,
        k,
        kinds: kept_kinds,
        coefficients: kept_coeffs,
        kappa,
        residual,
        pairs_per_sample: n as f64 * tel_weight / kappa.max(1e-300),
    }
}

/// Executable joint-NME cut: the solved QPD of [`explore_joint_nme`]
/// compiled into LOCC term circuits over sender block `0..n`, receiver
/// block `n..2n` (plus `n` resource-half/ancilla qubits where needed),
/// ready for [`crate::multi::PreparedMultiCut::from_terms`] and the
/// batched estimator stack.
#[derive(Clone, Debug)]
pub struct NmeJointCut {
    solution: NmeJointSolution,
}

impl NmeJointCut {
    /// Solves and compiles the joint-NME cut for `n` wires at `k`.
    pub fn new(n: usize, k: f64) -> Self {
        Self {
            solution: explore_joint_nme(n, k),
        }
    }

    /// The underlying solved QPD.
    pub fn solution(&self) -> &NmeJointSolution {
        &self.solution
    }

    /// Number of wires.
    pub fn num_wires(&self) -> usize {
        self.solution.n
    }

    /// Achieved sampling overhead `Σ|cᵢ|`.
    pub fn kappa(&self) -> f64 {
        self.solution.kappa
    }

    /// The `γⁿ` overhead of cutting the same wires independently with
    /// `|Φ_k⟩` pairs (Theorem 1 / Corollary 1 baseline).
    pub fn independent_kappa(&self) -> f64 {
        theory::gamma_phi_k(self.solution.k).powi(self.solution.n as i32)
    }

    /// Teleportation term circuit: prepare `n` `|Φ_k⟩` pairs on
    /// (resource-half, receiver), rotate the sender block by `U_b†`,
    /// Bell-measure each (data, resource-half) pair with feed-forward to
    /// the receiver, undo the rotation on the receiver block.
    fn teleport_term_circuit(&self, u: &Matrix, is_computational: bool) -> Circuit {
        let n = self.solution.n;
        let phi = PhiK::new(self.solution.k);
        let mut c = Circuit::new(3 * n, 2 * n);
        let sender: Vec<usize> = (0..n).collect();
        let receiver: Vec<usize> = (n..2 * n).collect();
        for i in 0..n {
            c.ry(phi.preparation_angle(), 2 * n + i)
                .cx(2 * n + i, n + i);
        }
        if !is_computational {
            c.unitary(u.dagger(), &sender);
        }
        for i in 0..n {
            append_teleportation(&mut c, i, 2 * n + i, n + i, 2 * i, 2 * i + 1);
        }
        if !is_computational {
            c.unitary(u.clone(), &receiver);
        }
        c
    }

    /// All solved terms as executable multi-wire cut terms.
    pub fn terms(&self) -> Vec<MultiCutTerm> {
        let n = self.solution.n;
        let joint = JointWireCut::new(n);
        let bases = joint.bases();
        let input_qubits: Vec<usize> = (0..n).collect();
        let output_qubits: Vec<usize> = (n..2 * n).collect();
        self.solution
            .kinds
            .iter()
            .zip(self.solution.coefficients.iter())
            .map(|(kind, &coeff)| {
                let (label, circuit, pairs) = match kind {
                    JointNmeTermKind::Teleport(b) => (
                        format!("tel-mub-{b}"),
                        self.teleport_term_circuit(&bases[*b], *b == 0),
                        n as f64,
                    ),
                    JointNmeTermKind::MeasPrep(b) => (
                        format!("mub-{b}"),
                        joint.basis_term_circuit(&bases[*b]),
                        0.0,
                    ),
                    JointNmeTermKind::Flip => (
                        "meas-prep-other".to_string(),
                        joint.flip_term_circuit(),
                        0.0,
                    ),
                };
                MultiCutTerm {
                    coefficient: coeff,
                    labels: vec![label],
                    circuit,
                    input_qubits: input_qubits.clone(),
                    output_qubits: output_qubits.clone(),
                    pairs_consumed: pairs,
                }
            })
            .collect()
    }

    /// Coefficient structure of the solved QPD.
    pub fn spec(&self) -> QpdSpec {
        QpdSpec::new(
            self.terms()
                .iter()
                .map(|t| TermSpec {
                    coefficient: t.coefficient,
                    label: t.labels.join("×"),
                    pairs_consumed: t.pairs_consumed,
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::PreparedMultiCut;
    use qsim::PauliString;

    #[test]
    fn single_wire_reproduces_theorem2_optimum() {
        // At n = 1 the family contains the Theorem 2 solution, and γ(k)
        // is the proven optimum over *all* protocols — so the achieved
        // 1-norm must match γ(k) from both sides (up to solver slack).
        for &k in &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let sol = explore_joint_nme(1, k);
            let gamma = theory::gamma_phi_k(k);
            assert!(sol.residual < 1e-8, "infeasible at k={k}: {}", sol.residual);
            assert!(
                sol.kappa <= gamma * (1.0 + 1e-3) + 1e-9,
                "solver missed Theorem 2 at k={k}: {} vs γ={gamma}",
                sol.kappa
            );
            assert!(
                sol.kappa >= gamma - 1e-6,
                "1-norm below the proven optimum at k={k}: {} vs γ={gamma}",
                sol.kappa
            );
        }
    }

    #[test]
    fn endpoints_match_known_optima() {
        for n in 1..=3 {
            let d = (1 << n) as f64;
            // k = 0: no useful entanglement — the entanglement-free joint
            // optimum 2d − 1.
            let sol = explore_joint_nme(n, 0.0);
            assert!(sol.residual < 1e-8);
            assert!(
                (sol.kappa - (2.0 * d - 1.0)).abs() < 1e-3,
                "n={n}, k=0: κ = {} vs 2d−1 = {}",
                sol.kappa,
                2.0 * d - 1.0
            );
            // k = 1: perfect teleportation — κ = 1.
            let sol = explore_joint_nme(n, 1.0);
            assert!(sol.residual < 1e-8);
            assert!(
                (sol.kappa - 1.0).abs() < 1e-6,
                "n={n}, k=1: κ = {}",
                sol.kappa
            );
        }
    }

    #[test]
    fn overhead_is_monotone_in_entanglement() {
        for n in 1..=3 {
            let mut prev = f64::INFINITY;
            for &k in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                let sol = explore_joint_nme(n, k);
                assert!(sol.residual < 1e-8, "n={n} k={k}");
                assert!(
                    sol.kappa <= prev + 1e-6,
                    "κ not nonincreasing at n={n}, k={k}: {} after {prev}",
                    sol.kappa
                );
                prev = sol.kappa;
            }
        }
    }

    #[test]
    fn joint_nme_never_beats_single_wire_power_bound_nor_me_joint() {
        // Sanity bounds: κ ≥ 1 always; κ ≤ 2d − 1 + slack (the ME joint
        // solution is in the family).
        for n in 1..=3 {
            let d = (1 << n) as f64;
            for &k in &[0.1, 0.3, 0.7, 0.9] {
                let sol = explore_joint_nme(n, k);
                assert!(sol.kappa >= 1.0 - 1e-9);
                assert!(sol.kappa <= 2.0 * d - 1.0 + 1e-6);
            }
        }
    }

    #[test]
    fn solved_cut_reconstructs_expectations_through_circuits() {
        // The symplectic eigenvalue bookkeeping must agree with honest
        // circuit simulation: the compiled QPD is an exact decomposition
        // of the identity, so exact_value == uncut expectation.
        let theta = 0.9f64;
        let mut prep = Circuit::new(2, 0);
        prep.ry(theta, 0).cx(0, 1);
        for &k in &[0.0, 0.5, 1.0] {
            let cut = NmeJointCut::new(2, k);
            let compiled = PreparedMultiCut::from_terms(
                cut.spec(),
                &cut.terms(),
                &prep,
                &PauliString::from_label("ZZ"),
            );
            assert!(
                (compiled.exact_value() - 1.0).abs() < 1e-6,
                "k={k}: ⟨ZZ⟩ = {}",
                compiled.exact_value()
            );
            let zi = PreparedMultiCut::from_terms(
                cut.spec(),
                &cut.terms(),
                &prep,
                &PauliString::from_label("IZ"),
            );
            assert!(
                (zi.exact_value() - theta.cos()).abs() < 1e-6,
                "k={k}: ⟨ZI⟩ = {} vs {}",
                zi.exact_value(),
                theta.cos()
            );
        }
    }

    #[test]
    fn batched_estimator_converges_on_solved_cut() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut prep = Circuit::new(2, 0);
        prep.ry(0.9, 0).cx(0, 1);
        let cut = NmeJointCut::new(2, 0.6);
        let compiled = PreparedMultiCut::from_terms(
            cut.spec(),
            &cut.terms(),
            &prep,
            &PauliString::from_label("ZZ"),
        );
        let exact = compiled.exact_value();
        let mut rng = StdRng::seed_from_u64(808);
        let reps = 20;
        let mean: f64 = (0..reps)
            .map(|_| {
                qpd::estimate_allocated(
                    &compiled.spec,
                    &compiled.samplers(),
                    4000,
                    qpd::Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>()
            / reps as f64;
        // κ ≤ 7 ⇒ SE ≤ 7/√80000 ≈ 0.025; allow ~4σ.
        assert!((mean - exact).abs() < 0.1, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn pairs_per_sample_vanishes_without_entanglement() {
        let sol = explore_joint_nme(2, 0.0);
        assert!(sol.pairs_per_sample < 1e-6, "{}", sol.pairs_per_sample);
        let sol = explore_joint_nme(2, 1.0);
        assert!((sol.pairs_per_sample - 2.0).abs() < 1e-6);
    }
}

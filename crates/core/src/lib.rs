//! # wirecut — wire cutting with non-maximally entangled states
//!
//! The primary contribution of Bechtold, Barzen, Leymann & Mandl,
//! *Cutting a Wire with Non-Maximally Entangled States* (IPPS 2024,
//! arXiv:2403.09690), implemented end to end:
//!
//! * [`theory`] — Theorem 1 (`γ^ρ(I) = 2/f(ρ) − 1`), Corollary 1 and the
//!   Theorem 2 coefficients in closed form.
//! * [`teleport`] — the teleportation protocol with arbitrary resource
//!   states and its induced Pauli channel (Eq. 21–22, 59).
//! * [`nme`] — **the Theorem 2 cut** attaining the optimal overhead with
//!   pure `|Φ_k⟩` resources, plus the teleportation passthrough baseline.
//! * [`harada`] / [`peng`] — the entanglement-free baselines (γ = 3 and
//!   κ = 4).
//! * [`term`] / [`executor`] — the cut abstraction, exact channel-level
//!   verification, and compilation into `qpd` estimators.
//! * [`mixed`] — extension (paper §VI future work): Bell-diagonal/Werner
//!   resource states via Pauli-channel inversion.
//! * [`multi`] — extension: cutting several parallel wires.
//! * [`joint`] — extension: joint multi-wire cutting via mutually
//!   unbiased bases (κ = 2^{n+1} − 1, reference \[26\]).
//! * [`gatecut`] — context: a CZ gate-cutting baseline (γ = 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod gatecut;
pub mod harada;
pub mod joint;
pub mod mixed;
pub mod multi;
pub mod nme;
pub mod peng;
pub mod teleport;
pub mod term;
pub mod theory;

pub use executor::{uncut_expectation, PreparedCut, PreparedTerm};
pub use harada::HaradaCut;
pub use nme::{NmeCut, TeleportationPassthrough};
pub use peng::PengCut;
pub use term::{identity_distance, reconstructed_channel, term_channel, CutTerm, WireCut};

//! # wirecut — wire cutting with non-maximally entangled states
//!
//! The primary contribution of Bechtold, Barzen, Leymann & Mandl,
//! *Cutting a Wire with Non-Maximally Entangled States* (IPPS 2024,
//! arXiv:2403.09690), implemented end to end:
//!
//! * [`theory`] — Theorem 1 (`γ^ρ(I) = 2/f(ρ) − 1`), Corollary 1 and the
//!   Theorem 2 coefficients in closed form.
//! * [`teleport`] — the teleportation protocol with arbitrary resource
//!   states and its induced Pauli channel (Eq. 21–22, 59).
//! * [`nme`] — **the Theorem 2 cut** attaining the optimal overhead with
//!   pure `|Φ_k⟩` resources, plus the teleportation passthrough baseline.
//! * [`harada`] / [`peng`] — the entanglement-free baselines (γ = 3 and
//!   κ = 4).
//! * [`term`] / [`executor`] — the cut abstraction, exact channel-level
//!   verification, and compilation into `qpd` estimators.
//! * [`mixed`] — extension (paper §VI future work): Bell-diagonal/Werner
//!   resource states via Pauli-channel inversion, plus the
//!   distill-then-cut pipeline ([`mixed::DistillThenCut`]) composing
//!   DEJMPS/BBPSSW recurrence rounds with the inversion cut.
//! * [`multi`] — extension: cutting several parallel wires
//!   (κ = Π κᵢ, the paper's §VI exponential-overhead motivation).
//! * [`mub`] — complete MUB sets for `d = 2ⁿ` via the Galois-field /
//!   commuting-Pauli-partition construction (deterministic, memoized).
//! * [`joint`] — extension: joint multi-wire cutting via mutually
//!   unbiased bases (κ = 2^{n+1} − 1 for any `n`, reference \[26\] and
//!   arXiv:2406.13315).
//! * [`joint_nme`] — numerical exploration of the §VI open question:
//!   joint cutting **with** `|Φ_k⟩` resource pairs (basis-pursuit over an
//!   LOCC term family in the Pauli-transfer picture).
//! * [`gatecut`] — context: a CZ gate-cutting baseline (γ = 3).
//! * [`planner`] — the arbitrary-circuit cut planner: width-bounded
//!   fragmentation, multi-cut derivation (subsequent wires, repeated
//!   cuts), κ-crossover NME-vs-MUB protocol choice, and compilation into
//!   one product-QPD execution plan on the batched samplers.
//! * [`contract`] — per-fragment tensor-block compilation: each fragment
//!   compiles once per local boundary-role variant and product terms are
//!   evaluated by Pauli-transfer contraction (`Σ variants` circuits
//!   instead of `Π terms`), the planner's default backend for unitary
//!   plans.
//! * [`service`] — cutting as a service: an estimation-job engine with a
//!   content-addressed compiled-plan cache ([`planner::PlanKey`]),
//!   streaming per-batch partial estimates, sequential
//!   (variance-adaptive) shot allocation, and work-stealing fleet
//!   execution, deterministic given `(seed, plan)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod executor;
pub mod gatecut;
pub mod harada;
pub mod joint;
pub mod joint_nme;
pub mod mixed;
pub mod mub;
pub mod multi;
pub mod nme;
pub mod peng;
pub mod planner;
pub mod service;
pub mod teleport;
pub mod term;
pub mod theory;

pub use contract::{
    contraction_ineligibility, supports_contraction, FragmentBlockSummary, FragmentBlocks,
    FrontierSweep, SweepStats, MAX_INCOMING, MAX_JOINT_WIRES,
};
pub use executor::{uncut_expectation, PreparedCut, PreparedTerm};
pub use harada::HaradaCut;
pub use joint::JointWireCut;
pub use joint_nme::{NmeJointCut, NmeJointSolution};
pub use mixed::{BellDiagonalCut, DistillThenCut, OverheadMetric};
pub use nme::{NmeCut, TeleportationPassthrough};
pub use peng::PengCut;
pub use planner::{
    uncut_plan_expectation, BackendReport, CompiledPlan, CutGroup, CutPlan, CutPlanner,
    PlanBackend, PlanKey, PlanReport, PlanTerm, PlannedCut, Protocol,
};
pub use service::{AllocationMode, BatchUpdate, CutService, EstimationJob, JobOutcome};
pub use term::{identity_distance, reconstructed_channel, term_channel, CutTerm, WireCut};

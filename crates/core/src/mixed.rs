//! Extension (paper §VI, future work): wire cutting with **mixed** NME
//! resource states.
//!
//! For a Bell-diagonal resource `ρ = Σ_σ q_σ |Φ_σ⟩⟨Φ_σ|` (built by
//! `entangle::bell_diagonal` / `entangle::werner`) the teleportation
//! channel of [`crate::teleport`] (Eq. 22) is the Pauli channel
//! `E(φ) = Σ_σ q_σ σφσ`. Because a
//! Pauli channel is diagonal in the Pauli transfer basis with eigenvalues
//!
//! `λ_P = Σ_σ q_σ·χ(P, σ)`, `χ(P,σ) = ±1` (commute/anticommute),
//!
//! its inverse is the quasi-Pauli map `D = Σ_σ d_σ σ·σ` with
//! `d = ¼·X·(1/λ)` for the character matrix `X[P][σ] = χ(P,σ)` (which
//! satisfies `X² = 4I`). Composing `D ∘ E = I` yields a wire cut whose
//! terms are *teleport, then apply a Pauli correction* — each LOCC — with
//! sampling overhead `κ = Σ_σ|d_σ|`.
//!
//! This probabilistic-error-cancellation construction is valid for every
//! Bell-diagonal state with non-vanishing channel eigenvalues, but it is
//! generally **not optimal**: Theorem 1 lower-bounds the overhead by
//! `γ = 2/f(ρ) − 1` with `f` the LOCC-maximal overlap. Experiment E10
//! quantifies the gap on Werner states.
//!
//! # Distill-then-cut
//!
//! [`DistillThenCut`] composes `m` rounds of recurrence distillation
//! ([`entangle::DistillationSchedule`], DEJMPS/BBPSSW closed-form maps)
//! with the inversion cut on the **distilled** weights. Two figures of
//! merit fall out:
//!
//! * **`κ_eff(ρ, m)`** — the per-sample sampling overhead of the
//!   composed scheme, `κ_inversion(q⁽ᵐ⁾)`. Because distillation is LOCC
//!   over `2^m` raw copies, `κ_eff` is only bound by Theorem 1 **at the
//!   distilled resource** (`κ_eff ≥ γ(q⁽ᵐ⁾)`) and can drop *below* the
//!   raw bound `γ(ρ)` — the gap the ROADMAP's Werner item asks about
//!   genuinely closes (e.g. one round at Werner `p = 0.8` already beats
//!   both `κ_inversion(p)` and `γ(p)`).
//! * **`κ_pair(ρ, m)` = `κ_eff·√(pairs per sample)`** — the raw-pair
//!   cost at fixed precision: estimating to `±ε` takes `κ_eff²/ε²`
//!   samples, each consuming `Πⱼ 2/sⱼ` raw pairs, so total raw pairs =
//!   `κ_pair²/ε²` and `κ_pair(ρ, 0) = κ_inversion(ρ)` makes the `m = 0`
//!   column directly comparable. On Werner states `κ_pair` is minimised
//!   by `m = 0` everywhere — distillation never pays on the raw-pair
//!   axis because its fidelity gain is second-order in the noise while
//!   the `√2` per round pair bill is not. Experiment E16 maps both.

use crate::teleport::append_teleportation;
use crate::term::{CutTerm, WireCut};
use entangle::{bell_state, DistillationSchedule, RecurrenceProtocol};
use qlinalg::{unitary_with_first_column, Complex64, Matrix};
use qsim::{Circuit, Gate, Pauli};

/// Character table `χ(P, σ)`: +1 if the Paulis commute, −1 otherwise,
/// rows/columns ordered `I, X, Y, Z`.
pub fn pauli_character_matrix() -> [[f64; 4]; 4] {
    let mut x = [[0.0f64; 4]; 4];
    for (i, &p) in Pauli::ALL.iter().enumerate() {
        for (j, &s) in Pauli::ALL.iter().enumerate() {
            x[i][j] = if p.commutes_with(s) { 1.0 } else { -1.0 };
        }
    }
    x
}

/// Pauli-transfer eigenvalues `λ_P` of the Pauli channel with error
/// weights `q` (ordered `I, X, Y, Z`).
pub fn pauli_channel_eigenvalues(q: [f64; 4]) -> [f64; 4] {
    let x = pauli_character_matrix();
    let mut lam = [0.0f64; 4];
    for p in 0..4 {
        for s in 0..4 {
            lam[p] += q[s] * x[p][s];
        }
    }
    lam
}

/// Quasi-probability weights `d_σ` of the inverse Pauli map:
/// `d = ¼ X (1/λ)`.
///
/// # Panics
/// Panics if any eigenvalue magnitude is below `1e-9` (the channel is not
/// invertible; the resource is useless for this construction).
pub fn inverse_pauli_weights(q: [f64; 4]) -> [f64; 4] {
    let lam = pauli_channel_eigenvalues(q);
    for &l in &lam {
        assert!(
            l.abs() > 1e-9,
            "Pauli channel not invertible: eigenvalue {l}"
        );
    }
    let x = pauli_character_matrix();
    let mut d = [0.0f64; 4];
    for s in 0..4 {
        for p in 0..4 {
            d[s] += x[p][s] / lam[p];
        }
        d[s] *= 0.25;
    }
    d
}

/// The sampling overhead `κ = Σ_σ|d_σ|` of the inversion construction.
pub fn inversion_kappa(q: [f64; 4]) -> f64 {
    inverse_pauli_weights(q).iter().map(|d| d.abs()).sum()
}

/// The Theorem 1 **optimal** overhead for a Bell-diagonal resource:
/// `γ = 2/f − 1` with `f = max(max_σ q_σ, ½)` (the LOCC-maximal overlap
/// of a Bell-diagonal state is its largest Bell weight, floored at ½).
pub fn optimal_gamma_bell_diagonal(q: [f64; 4]) -> f64 {
    let f = q.iter().fold(0.5f64, |a, &b| a.max(b));
    crate::theory::gamma_from_overlap(f.min(1.0))
}

/// Wire cut with a Bell-diagonal resource state via Pauli-channel
/// inversion. Term σ: teleport through the (purified) resource, then
/// apply σ on the receiver; coefficient `d_σ`.
#[derive(Clone, Copy, Debug)]
pub struct BellDiagonalCut {
    /// Bell weights `(q_I, q_X, q_Y, q_Z)`.
    pub weights: [f64; 4],
}

impl BellDiagonalCut {
    /// Creates the cut for the given Bell weights (non-negative, summing
    /// to 1, channel invertible).
    pub fn new(weights: [f64; 4]) -> Self {
        let total: f64 = weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "Bell weights sum to {total}");
        assert!(weights.iter().all(|&w| w >= -1e-12));
        // Fail fast if not invertible.
        let _ = inverse_pauli_weights(weights);
        Self { weights }
    }

    /// The Werner-state cut: `ρ_W = p·Φ + (1−p)·I/4`.
    pub fn werner(p: f64) -> Self {
        let rest = (1.0 - p) / 4.0;
        Self::new([p + rest, rest, rest, rest])
    }

    /// Builds the term circuit for correction Pauli σ. Register layout:
    /// 0 = data, 1 = resource sender half, 2 = receiver, 3–4 = purifying
    /// environment qubits (part of the pre-shared resource preparation,
    /// never touched afterwards).
    ///
    /// The environment pair is prepared in `Σ_j √w_j |j⟩` with the index
    /// encoding `0 → I, 1 → X (bit0), 2 → Z (bit1), 3 → XZ ≅ Y`; the
    /// weights are permuted accordingly by the caller. Tracing the
    /// environment then leaves exactly the Bell-diagonal resource on
    /// qubits (1, 2) — relative phases between environment branches never
    /// matter because the branches stay orthogonal.
    fn term_circuit_with_encoding(weights_ixzy: [f64; 4], sigma: Pauli) -> Circuit {
        let mut c = Circuit::new(5, 2);
        // --- pre-shared resource preparation (exempt from LOCC checks) ---
        let amps: Vec<Complex64> = weights_ixzy
            .iter()
            .map(|&q| qlinalg::c64(q.max(0.0).sqrt(), 0.0))
            .collect();
        let prep = unitary_with_first_column(&amps);
        c.gate(Gate::Unitary2(prep), &[3, 4]);
        c.h(1);
        c.cx(1, 2);
        c.cx(3, 1); // X on the sender half when bit0 of the index is set
        c.cz(4, 1); // Z when bit1 is set
        let prep_len = c.len();
        debug_assert_eq!(prep_len, 5);
        // --- LOCC protocol ---
        append_teleportation(&mut c, 0, 1, 2, 0, 1);
        if sigma != Pauli::I {
            c.gate(Gate::from_pauli(sigma), &[2]);
        }
        c
    }

    /// Closed-form per-term `⟨Z⟩` values of the inversion cut for an
    /// input wire whose **uncut** expectation is `z`: the term-σ channel
    /// is `σ ∘ E` for the Pauli channel `E` with eigenvalues `λ_P`, so
    ///
    /// `⟨Z⟩_σ = χ(Z, σ) · λ_Z · z`
    ///
    /// (`χ(Z, σ) = +1` for `σ ∈ {I, Z}`, `−1` for `σ ∈ {X, Y}`; for a
    /// Werner resource `λ_Z = p`). Ordered and filtered exactly like
    /// [`terms`](WireCut::terms), so the values align index-for-index
    /// with [`spec`](WireCut::spec).
    pub fn z_term_expectations(&self, z: f64) -> Vec<f64> {
        let d = inverse_pauli_weights(self.weights);
        let lambda_z = pauli_channel_eigenvalues(self.weights)[3];
        let x = pauli_character_matrix();
        Pauli::ALL
            .iter()
            .enumerate()
            .zip(d.iter())
            .filter(|(_, &coeff)| coeff.abs() > 1e-14)
            .map(|((sigma_idx, _), _)| x[3][sigma_idx] * lambda_z * z)
            .collect()
    }

    /// The **p-parameterised channel on the batched sampler path**: the
    /// cut's QPD spec plus one calibrated [`qpd::BernoulliTerm`] per
    /// term at the closed-form expectation of
    /// [`z_term_expectations`](Self::z_term_expectations).
    ///
    /// Each `BernoulliTerm` serves an entire shot allocation as **one**
    /// exact binomial draw (`qsample::binomial`), so a dense Werner
    /// p-sweep (experiment E15) estimates at thousands of grid points
    /// without ever simulating the 5-qubit term circuits — the channel
    /// is Pauli, its action on `⟨Z⟩` is the closed form above, and the
    /// shot noise is exactly the ±1 Bernoulli noise of a real Z
    /// measurement. Cross-validated against the circuit-level
    /// [`crate::executor::PreparedCut`] path in this module's tests.
    pub fn z_samplers(&self, z: f64) -> (qpd::QpdSpec, Vec<qpd::BernoulliTerm>) {
        let spec = WireCut::spec(self);
        let samplers = self
            .z_term_expectations(z)
            .iter()
            .map(|&e| qpd::BernoulliTerm {
                expectation: e.clamp(-1.0, 1.0),
            })
            .collect();
        (spec, samplers)
    }

    /// The resource density operator this cut assumes.
    pub fn resource_density(&self) -> Matrix {
        let mut rho = Matrix::zeros(4, 4);
        for (i, &sigma) in Pauli::ALL.iter().enumerate() {
            let b = bell_state(sigma).to_density();
            rho.axpy(qlinalg::c64(self.weights[i], 0.0), &b);
        }
        rho
    }
}

impl WireCut for BellDiagonalCut {
    fn name(&self) -> String {
        format!(
            "bell-diagonal-inversion(q=[{:.3},{:.3},{:.3},{:.3}])",
            self.weights[0], self.weights[1], self.weights[2], self.weights[3]
        )
    }

    fn terms(&self) -> Vec<CutTerm> {
        let d = inverse_pauli_weights(self.weights);
        // Circuit encoding order is (I, X, Z, Y).
        let weights_ixzy = [
            self.weights[0],
            self.weights[1],
            self.weights[3],
            self.weights[2],
        ];
        Pauli::ALL
            .iter()
            .zip(d.iter())
            .filter(|(_, &coeff)| coeff.abs() > 1e-14)
            .map(|(&sigma, &coeff)| CutTerm {
                coefficient: coeff,
                label: format!("tel-then-{sigma}"),
                pairs_consumed: 1.0,
                circuit: Self::term_circuit_with_encoding(weights_ixzy, sigma),
                input_qubit: 0,
                output_qubit: 2,
                resource_prep_len: 5,
            })
            .collect()
    }
}

/// Which cost axis a distill-then-cut planner optimises over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverheadMetric {
    /// Per-sample sampling overhead `κ_eff` (raw-pair consumption is
    /// free): more rounds always (weakly) help for distillable inputs.
    PerSample,
    /// Raw-pair cost at fixed precision, `κ_pair = κ_eff·√(pairs per
    /// sample)`: every round bills its `2/sⱼ` pair factor.
    PerRawPair,
}

/// Wire cut through an `m`-round-distilled Bell-diagonal resource: run
/// the recurrence schedule offline on the raw pairs, then apply the
/// Pauli-inversion cut of [`BellDiagonalCut`] to the distilled state.
///
/// Everything stays closed-form on the Bell-diagonal manifold: the
/// schedule is exact ([`entangle::DistillationSchedule`]), the cut's
/// per-term `⟨Z⟩` action is the Pauli-channel closed form, and the
/// batched sampler path ([`z_samplers`](Self::z_samplers)) mirrors
/// [`BellDiagonalCut::z_samplers`] — a dense `(p, m)` sweep never
/// simulates a circuit. See the module docs for the `κ_eff`/`κ_pair`
/// accounting.
#[derive(Clone, Debug)]
pub struct DistillThenCut {
    raw_weights: [f64; 4],
    schedule: DistillationSchedule,
    cut: BellDiagonalCut,
}

impl DistillThenCut {
    /// Distills `rounds` recurrence rounds of `protocol` from
    /// `raw_weights`, then cuts with the inversion construction.
    ///
    /// # Panics
    /// Panics if the weights are invalid or the **distilled** channel is
    /// not invertible (any raw weights with `q_I > ½` are safe for every
    /// `m`: DEJMPS preserves `q_I > ½`, which keeps all eigenvalues
    /// `≥ 2q_I − 1 > 0`).
    pub fn new(raw_weights: [f64; 4], rounds: usize, protocol: RecurrenceProtocol) -> Self {
        let schedule = DistillationSchedule::new(raw_weights, rounds, protocol);
        let cut = BellDiagonalCut::new(schedule.final_weights());
        Self {
            raw_weights,
            schedule,
            cut,
        }
    }

    /// The Werner-state pipeline `ρ_W = p·Φ + (1−p)·I/4` under DEJMPS
    /// (the stronger of the two protocols on Werner inputs).
    pub fn werner(p: f64, rounds: usize) -> Self {
        let rest = (1.0 - p) / 4.0;
        Self::new(
            [p + rest, rest, rest, rest],
            rounds,
            RecurrenceProtocol::Dejmps,
        )
    }

    /// Number of recurrence rounds.
    pub fn rounds(&self) -> usize {
        self.schedule.rounds()
    }

    /// The raw (pre-distillation) Bell weights.
    pub fn raw_weights(&self) -> [f64; 4] {
        self.raw_weights
    }

    /// The distilled Bell weights the cut actually uses.
    pub fn distilled_weights(&self) -> [f64; 4] {
        self.schedule.final_weights()
    }

    /// The exact distillation schedule.
    pub fn schedule(&self) -> &DistillationSchedule {
        &self.schedule
    }

    /// The inversion cut on the distilled resource.
    pub fn cut(&self) -> &BellDiagonalCut {
        &self.cut
    }

    /// Fidelity of the distilled resource with `|Φ⁺⟩`.
    pub fn fidelity(&self) -> f64 {
        self.schedule.fidelity()
    }

    /// Probability that one full `m`-round attempt chain succeeds.
    pub fn success_probability(&self) -> f64 {
        self.schedule.success_probability()
    }

    /// Expected **raw** pairs consumed per cut sample: `Πⱼ 2/sⱼ`
    /// (`= 1` at `m = 0`, `≥ 2^m` otherwise).
    pub fn raw_pairs_per_sample(&self) -> f64 {
        self.schedule.expected_pairs_per_output()
    }

    /// The per-sample sampling overhead of the composed scheme:
    /// `κ_eff = κ_inversion(q⁽ᵐ⁾)`. Collapses to `κ_inversion(ρ)` at
    /// `m = 0`.
    pub fn kappa_eff(&self) -> f64 {
        inversion_kappa(self.distilled_weights())
    }

    /// The raw-pair cost at fixed precision, `κ_pair = κ_eff·√(raw
    /// pairs per sample)`: total raw pairs to reach `±ε` is
    /// `κ_pair²/ε²`. Also collapses to `κ_inversion(ρ)` at `m = 0`.
    pub fn kappa_pair(&self) -> f64 {
        self.kappa_eff() * self.raw_pairs_per_sample().sqrt()
    }

    /// The overhead under the given metric.
    pub fn kappa_metric(&self, metric: OverheadMetric) -> f64 {
        match metric {
            OverheadMetric::PerSample => self.kappa_eff(),
            OverheadMetric::PerRawPair => self.kappa_pair(),
        }
    }

    /// Theorem 1 bound of the **raw** resource, `γ(ρ) = 2/f(ρ) − 1`.
    pub fn gamma_raw(&self) -> f64 {
        optimal_gamma_bell_diagonal(self.raw_weights)
    }

    /// Theorem 1 bound of the **distilled** resource — the bound
    /// `κ_eff` can never beat (`κ_eff ≥ γ(q⁽ᵐ⁾)` is exactly the
    /// inversion-vs-Theorem-1 statement at the distilled weights).
    pub fn gamma_distilled(&self) -> f64 {
        optimal_gamma_bell_diagonal(self.distilled_weights())
    }

    /// Closed-form per-term `⟨Z⟩` values for an input wire whose uncut
    /// expectation is `z` — [`BellDiagonalCut::z_term_expectations`] at
    /// the distilled weights.
    pub fn z_term_expectations(&self, z: f64) -> Vec<f64> {
        self.cut.z_term_expectations(z)
    }

    /// The batched sampler path at the distilled weights, mirroring
    /// [`BellDiagonalCut::z_samplers`] — except the spec's per-term pair
    /// consumption is billed in **raw** pairs (`Πⱼ 2/sⱼ` each), so
    /// `QpdSpec::expected_pairs_per_sample` reports the true resource
    /// cost of the composed scheme.
    pub fn z_samplers(&self, z: f64) -> (qpd::QpdSpec, Vec<qpd::BernoulliTerm>) {
        let samplers = self
            .z_term_expectations(z)
            .iter()
            .map(|&e| qpd::BernoulliTerm {
                expectation: e.clamp(-1.0, 1.0),
            })
            .collect();
        (WireCut::spec(self), samplers)
    }
}

impl WireCut for DistillThenCut {
    fn name(&self) -> String {
        format!(
            "distill({}x{:?})-then-{}",
            self.rounds(),
            self.schedule.protocol(),
            self.cut.name()
        )
    }

    /// The LOCC term circuits of the inversion cut **on the distilled
    /// resource** (the recurrence itself happens offline in the
    /// pre-shared resource stage), with each term's pair bill scaled to
    /// raw pairs.
    fn terms(&self) -> Vec<CutTerm> {
        let pairs = self.raw_pairs_per_sample();
        self.cut
            .terms()
            .into_iter()
            .map(|mut t| {
                t.pairs_consumed *= pairs;
                t
            })
            .collect()
    }
}

/// The round count in `0..=max_rounds` minimising the overhead under
/// `metric` (ties break towards fewer rounds), with the winning value.
pub fn optimal_rounds(
    raw_weights: [f64; 4],
    max_rounds: usize,
    protocol: RecurrenceProtocol,
    metric: OverheadMetric,
) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for m in 0..=max_rounds {
        let kappa = DistillThenCut::new(raw_weights, m, protocol).kappa_metric(metric);
        if kappa < best.1 - 1e-12 {
            best = (m, kappa);
        }
    }
    best
}

/// The smallest round count in `1..=max_rounds` whose per-sample
/// overhead `κ_eff` drops **below the raw Theorem 1 bound** `γ(ρ)` —
/// i.e. the depth at which distillation closes the ROADMAP's
/// `κ_inversion`-vs-`γ` gap — or `None` if none does (e.g. anywhere on
/// the `f(ρ) = ½` boundary, where fidelity is a fixed point).
pub fn rounds_to_close_gap(
    raw_weights: [f64; 4],
    max_rounds: usize,
    protocol: RecurrenceProtocol,
) -> Option<usize> {
    let gamma = optimal_gamma_bell_diagonal(raw_weights);
    (1..=max_rounds)
        .find(|&m| DistillThenCut::new(raw_weights, m, protocol).kappa_eff() < gamma - 1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{identity_distance, term_channel, verify_locc_structure};
    use qsim::Superoperator;

    #[test]
    fn character_matrix_squares_to_four_identity() {
        let x = pauli_character_matrix();
        for i in 0..4 {
            for j in 0..4 {
                let acc: f64 = (0..4).map(|k| x[i][k] * x[k][j]).sum();
                let expect = if i == j { 4.0 } else { 0.0 };
                assert!((acc - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn eigenvalues_of_pure_bell_channel_are_unity() {
        let lam = pauli_channel_eigenvalues([1.0, 0.0, 0.0, 0.0]);
        for l in lam {
            assert!((l - 1.0).abs() < 1e-12);
        }
        assert!((inversion_kappa([1.0, 0.0, 0.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn werner_eigenvalues_and_kappa() {
        let p = 0.8;
        let cut = BellDiagonalCut::werner(p);
        let lam = pauli_channel_eigenvalues(cut.weights);
        assert!((lam[0] - 1.0).abs() < 1e-12);
        for (i, &l) in lam.iter().enumerate().skip(1) {
            assert!((l - p).abs() < 1e-12, "λ_{i} = {l}");
        }
        // κ = (3/p − 1)/2 for Werner.
        let expect = (3.0 / p - 1.0) / 2.0;
        assert!((inversion_kappa(cut.weights) - expect).abs() < 1e-10);
    }

    #[test]
    fn inversion_never_beats_theorem1_bound() {
        for &p in &[0.5, 0.6, 0.75, 0.9, 1.0] {
            let cut = BellDiagonalCut::werner(p);
            let kappa = inversion_kappa(cut.weights);
            let gamma = optimal_gamma_bell_diagonal(cut.weights);
            assert!(
                kappa >= gamma - 1e-9,
                "inversion κ={kappa} beats Theorem 1 γ={gamma} at p={p}"
            );
        }
    }

    #[test]
    fn dephased_phi_k_resource_is_costlier_than_pure() {
        // Mixing Φk's Bell overlaps as a classical mixture destroys the
        // coherence Theorem 2 exploits: the inversion overhead exceeds the
        // pure-state optimum of Corollary 1.
        let k: f64 = 0.5;
        let d = 2.0 * (k * k + 1.0);
        let qi = (k + 1.0) * (k + 1.0) / d;
        let qz = (k - 1.0) * (k - 1.0) / d;
        let kappa = inversion_kappa([qi, 0.0, 0.0, qz]);
        let gamma_pure = crate::theory::gamma_phi_k(k);
        assert!(
            kappa > gamma_pure + 1e-6,
            "κ={kappa} vs pure γ={gamma_pure}"
        );
        let gamma_mixed = optimal_gamma_bell_diagonal([qi, 0.0, 0.0, qz]);
        assert!(kappa >= gamma_mixed - 1e-9);
    }

    #[test]
    fn bell_diagonal_cut_reconstructs_identity() {
        for weights in [
            [1.0, 0.0, 0.0, 0.0],
            [0.85, 0.05, 0.04, 0.06],
            [0.7, 0.1, 0.1, 0.1],
        ] {
            let cut = BellDiagonalCut::new(weights);
            let dist = identity_distance(&cut);
            assert!(
                dist < 1e-9,
                "Bell-diagonal inversion cut wrong for {weights:?}: distance {dist}"
            );
        }
    }

    #[test]
    fn werner_cut_reconstructs_identity() {
        let cut = BellDiagonalCut::werner(0.75);
        let dist = identity_distance(&cut);
        assert!(dist < 1e-9, "Werner cut distance {dist}");
    }

    #[test]
    fn teleport_term_channel_is_pauli_channel() {
        // The σ = I term must equal the Bell-diagonal teleportation
        // channel itself (Eq. 22 with the mixed resource).
        let cut = BellDiagonalCut::new([0.85, 0.05, 0.04, 0.06]);
        let terms = cut.terms();
        let ch = term_channel(&terms[0]);
        let expect = crate::teleport::teleportation_channel_closed_form(&cut.resource_density());
        assert!(
            ch.distance(&expect) < 1e-9,
            "teleport term deviates: {}",
            ch.distance(&expect)
        );
    }

    #[test]
    fn terms_are_locc_after_resource_distribution() {
        let cut = BellDiagonalCut::werner(0.7);
        for term in cut.terms() {
            // Sender: data qubit + sender half; receiver: receiver qubit;
            // the environment (3, 4) belongs to the preparation stage.
            verify_locc_structure(&term, &[0, 1, 3, 4]).expect("term not LOCC");
        }
    }

    #[test]
    fn spec_kappa_matches_inversion_kappa() {
        let cut = BellDiagonalCut::werner(0.8);
        assert!((cut.kappa() - inversion_kappa(cut.weights)).abs() < 1e-10);
        assert!(cut.spec().validate(1e-9).is_ok());
    }

    #[test]
    #[should_panic(expected = "not invertible")]
    fn completely_depolarising_resource_rejected() {
        let _ = BellDiagonalCut::new([0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn resource_density_is_physical() {
        let cut = BellDiagonalCut::werner(0.6);
        let rho = cut.resource_density();
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.is_hermitian(1e-12));
        let eig = qlinalg::eigh(&rho);
        assert!(eig.values.iter().all(|&l| l > -1e-10));
    }

    #[test]
    fn batched_estimator_is_unbiased_for_bell_diagonal_cut() {
        // End-to-end through the batched sampling engine: the Werner
        // Pauli-inversion cut recombines to the uncut ⟨Z⟩.
        use crate::executor::{uncut_expectation, PreparedCut};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let w = qsim::Gate::Ry(0.8).matrix();
        let expect = uncut_expectation(&w, qsim::Pauli::Z);
        let cut = BellDiagonalCut::werner(0.85);
        let prepared = PreparedCut::new(&cut, &w, qsim::Pauli::Z);
        assert!((prepared.exact_value() - expect).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(302);
        let reps = 50;
        let mean: f64 = (0..reps)
            .map(|_| {
                qpd::estimate_allocated(
                    &prepared.spec,
                    &prepared.samplers(),
                    4000,
                    qpd::Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>()
            / reps as f64;
        assert!((mean - expect).abs() < 0.03, "mean {mean} vs {expect}");
    }

    #[test]
    fn closed_form_term_expectations_match_circuit_path() {
        // The Pauli-channel closed form ⟨Z⟩_σ = χ(Z,σ)·λ_Z·z must agree
        // with the full 5-qubit circuit simulation of each term, for
        // every term and several resources/states.
        use crate::executor::{uncut_expectation, PreparedCut};
        use qpd::TermSampler;
        for weights in [
            [0.85, 0.05, 0.04, 0.06],
            [0.7, 0.1, 0.1, 0.1],
            [1.0, 0.0, 0.0, 0.0],
        ] {
            let cut = BellDiagonalCut::new(weights);
            for theta in [0.3, 0.8, 2.1] {
                let w = qsim::Gate::Ry(theta).matrix();
                let z = uncut_expectation(&w, qsim::Pauli::Z);
                let closed = cut.z_term_expectations(z);
                let prepared = PreparedCut::new(&cut, &w, qsim::Pauli::Z);
                assert_eq!(closed.len(), prepared.terms.len());
                for (c, t) in closed.iter().zip(prepared.terms.iter()) {
                    assert!(
                        (c - t.exact_expectation()).abs() < 1e-9,
                        "closed form {c} vs circuit {} for {weights:?}",
                        t.exact_expectation()
                    );
                }
            }
        }
    }

    #[test]
    fn z_samplers_spec_matches_wire_cut_spec() {
        let cut = BellDiagonalCut::werner(0.7);
        let (spec, samplers) = cut.z_samplers(0.4);
        let reference = cut.spec();
        assert_eq!(spec.len(), reference.len());
        assert_eq!(spec.len(), samplers.len());
        for (a, b) in spec.coefficients().iter().zip(reference.coefficients()) {
            assert!((a - b).abs() < 1e-12);
        }
        // The calibrated samplers reconstruct z exactly in expectation.
        let value: f64 = spec
            .coefficients()
            .iter()
            .zip(samplers.iter())
            .map(|(c, s)| c * s.expectation)
            .sum();
        assert!((value - 0.4).abs() < 1e-10);
    }

    #[test]
    fn batched_closed_form_estimator_matches_circuit_estimator() {
        // The circuit-free sampler family and the compiled-circuit path
        // must agree in mean at matched budgets.
        use crate::executor::{uncut_expectation, PreparedCut};
        use qpd::TermSampler;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let p = 0.75;
        let cut = BellDiagonalCut::werner(p);
        let w = qsim::Gate::Ry(1.1).matrix();
        let z = uncut_expectation(&w, qsim::Pauli::Z);
        let (spec, samplers) = cut.z_samplers(z);
        let refs: Vec<&dyn TermSampler> = samplers.iter().map(|s| s as &dyn TermSampler).collect();
        let mut rng = StdRng::seed_from_u64(404);
        let reps = 60;
        let mean_closed: f64 = (0..reps)
            .map(|_| {
                qpd::estimate_allocated(&spec, &refs, 4000, qpd::Allocator::Proportional, &mut rng)
            })
            .sum::<f64>()
            / reps as f64;
        let prepared = PreparedCut::new(&cut, &w, qsim::Pauli::Z);
        let mean_circuit: f64 = (0..reps)
            .map(|_| {
                qpd::estimate_allocated(
                    &prepared.spec,
                    &prepared.samplers(),
                    4000,
                    qpd::Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>()
            / reps as f64;
        assert!(
            (mean_closed - z).abs() < 0.04,
            "closed {mean_closed} vs {z}"
        );
        assert!(
            (mean_closed - mean_circuit).abs() < 0.06,
            "closed {mean_closed} vs circuit {mean_circuit}"
        );
    }

    #[test]
    fn degenerate_identity_check_via_channel() {
        // κ = 1 at q = (1,0,0,0): the only term is plain teleportation.
        let cut = BellDiagonalCut::new([1.0, 0.0, 0.0, 0.0]);
        assert_eq!(cut.terms().len(), 1);
        let ch = term_channel(&cut.terms()[0]);
        assert!(ch.distance(&Superoperator::identity(2)) < 1e-9);
    }

    // --- distill-then-cut ---

    #[test]
    fn zero_rounds_is_exactly_the_inversion_cut() {
        for &p in &[0.4, 0.6, 0.85] {
            let pipeline = DistillThenCut::werner(p, 0);
            let direct = BellDiagonalCut::werner(p);
            assert_eq!(pipeline.distilled_weights(), direct.weights);
            assert!((pipeline.kappa_eff() - inversion_kappa(direct.weights)).abs() < 1e-12);
            assert!((pipeline.kappa_pair() - pipeline.kappa_eff()).abs() < 1e-12);
            assert!((pipeline.raw_pairs_per_sample() - 1.0).abs() < 1e-15);
            // Identical QPD coefficients.
            let (a, b) = (WireCut::spec(&pipeline), direct.spec());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn pure_resource_makes_distillation_a_noop() {
        for m in 0..4 {
            let pipeline = DistillThenCut::werner(1.0, m);
            assert_eq!(pipeline.distilled_weights(), [1.0, 0.0, 0.0, 0.0]);
            assert!((pipeline.kappa_eff() - 1.0).abs() < 1e-12);
            assert!((pipeline.gamma_raw() - 1.0).abs() < 1e-12);
            assert!((pipeline.success_probability() - 1.0).abs() < 1e-12);
        }
        // And the planner never spends rounds on it (per-sample metric
        // ties at κ = 1, which break towards m = 0).
        let (m, kappa) = optimal_rounds(
            [1.0, 0.0, 0.0, 0.0],
            4,
            RecurrenceProtocol::Dejmps,
            OverheadMetric::PerSample,
        );
        assert_eq!(m, 0);
        assert!((kappa - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_round_at_p_08_beats_inversion_and_the_raw_bound() {
        // The headline gap-closing point: at Werner p = 0.8 a single
        // DEJMPS round drops the per-sample overhead below both the
        // direct inversion cut AND the raw Theorem 1 bound.
        let p = 0.8;
        let pipeline = DistillThenCut::werner(p, 1);
        let kappa_inv = inversion_kappa(BellDiagonalCut::werner(p).weights);
        assert!((kappa_inv - (3.0 / p - 1.0) / 2.0).abs() < 1e-12);
        assert!(
            pipeline.kappa_eff() < kappa_inv - 0.05,
            "κ_eff {} vs κ_inv {kappa_inv}",
            pipeline.kappa_eff()
        );
        assert!(
            pipeline.kappa_eff() < pipeline.gamma_raw() - 0.05,
            "κ_eff {} vs γ_raw {}",
            pipeline.kappa_eff(),
            pipeline.gamma_raw()
        );
        assert_eq!(
            rounds_to_close_gap(pipeline.raw_weights(), 4, RecurrenceProtocol::Dejmps),
            Some(1)
        );
    }

    #[test]
    fn kappa_eff_respects_the_distilled_theorem1_bound() {
        for &p in &[0.4, 0.55, 0.7, 0.9] {
            for m in 0..4 {
                let pipeline = DistillThenCut::werner(p, m);
                assert!(
                    pipeline.kappa_eff() >= pipeline.gamma_distilled() - 1e-9,
                    "κ_eff {} beats γ(q^{m}) {} at p={p}",
                    pipeline.kappa_eff(),
                    pipeline.gamma_distilled()
                );
            }
        }
    }

    #[test]
    fn pair_axis_never_rewards_distillation_on_werner() {
        // κ_pair = κ_eff·√(raw pairs) is minimised by m = 0 across the
        // sweep range: the fidelity gain is second-order in the noise,
        // the √2-per-round pair bill is not.
        for &p in &[0.4, 0.6, 0.8, 0.95] {
            let (m, kappa) = optimal_rounds(
                DistillThenCut::werner(p, 0).raw_weights(),
                4,
                RecurrenceProtocol::Dejmps,
                OverheadMetric::PerRawPair,
            );
            assert_eq!(m, 0, "pair-axis planner chose m={m} at p={p}");
            assert!((kappa - (3.0 / p - 1.0) / 2.0).abs() < 1e-10);
        }
    }

    #[test]
    fn boundary_werner_state_never_closes_the_gap() {
        // f = ½ is a fixed point of both recurrences, so no depth helps.
        let boundary = DistillThenCut::werner(1.0 / 3.0, 0);
        assert_eq!(
            rounds_to_close_gap(boundary.raw_weights(), 6, RecurrenceProtocol::Dejmps),
            None
        );
        assert_eq!(
            rounds_to_close_gap(boundary.raw_weights(), 6, RecurrenceProtocol::Bbpssw),
            None
        );
    }

    #[test]
    fn distilled_terms_reconstruct_the_identity() {
        // The composed scheme is still an exact wire cut at the channel
        // level (the distillation only moves the resource weights).
        let pipeline = DistillThenCut::werner(0.7, 2);
        let dist = identity_distance(&pipeline);
        assert!(dist < 1e-9, "distill-then-cut distance {dist}");
    }

    #[test]
    fn spec_bills_raw_pairs_per_sample() {
        let pipeline = DistillThenCut::werner(0.75, 2);
        let spec = WireCut::spec(&pipeline);
        // Every term consumes Πⱼ 2/sⱼ raw pairs, so the κ-weighted
        // expectation is raw_pairs_per_sample exactly.
        assert!((spec.expected_pairs_per_sample() - pipeline.raw_pairs_per_sample()).abs() < 1e-9);
        assert!(pipeline.raw_pairs_per_sample() >= 4.0);
        // The QPD structure itself matches the distilled-weights cut.
        assert!((spec.kappa() - pipeline.kappa_eff()).abs() < 1e-12);
    }

    #[test]
    fn z_samplers_match_the_distilled_cut_closed_form() {
        let pipeline = DistillThenCut::werner(0.8, 1);
        let z = 0.37;
        let (spec, samplers) = pipeline.z_samplers(z);
        assert_eq!(spec.len(), samplers.len());
        let value: f64 = spec
            .coefficients()
            .iter()
            .zip(samplers.iter())
            .map(|(c, s)| c * s.expectation)
            .sum();
        assert!((value - z).abs() < 1e-10, "recombined {value} vs {z}");
        // Per-term expectations equal the distilled-channel closed form.
        for (a, b) in pipeline.z_term_expectations(z).iter().zip(samplers.iter()) {
            assert!((a - b.expectation).abs() < 1e-12);
        }
    }

    #[test]
    fn deeper_schedules_eventually_beat_any_fixed_kappa() {
        // For p > 1/3 the distilled state converges to Φ⁺, so κ_eff → 1.
        let pipeline = DistillThenCut::werner(0.5, 8);
        assert!(
            pipeline.kappa_eff() < 1.05,
            "κ_eff after 8 rounds = {}",
            pipeline.kappa_eff()
        );
        // ...at an exponentially growing raw-pair bill.
        assert!(pipeline.raw_pairs_per_sample() > 256.0);
    }

    #[test]
    fn low_p_gap_needs_depth_three() {
        // Near the boundary the first round *hurts* per-sample κ (the
        // DEJMPS output anisotropy is hostile to inversion) and the gap
        // only closes at m = 3 — the non-monotone structure E16 maps.
        let raw = DistillThenCut::werner(0.4, 0);
        let kappa_inv = raw.kappa_eff();
        let one = DistillThenCut::werner(0.4, 1);
        assert!(
            one.kappa_eff() > kappa_inv,
            "round 1 should overshoot: {} vs {kappa_inv}",
            one.kappa_eff()
        );
        assert_eq!(
            rounds_to_close_gap(raw.raw_weights(), 6, RecurrenceProtocol::Dejmps),
            Some(3)
        );
    }
}

//! Extension: cutting several parallel wires (paper §VI, future work; cf.
//! Brenner et al., reference \[11\]).
//!
//! Cutting `w` wires independently multiplies the sampling overhead:
//! `κ_total = Πᵢ κᵢ` — the exponential cost the paper's introduction
//! motivates (`γⁿ = (2/f − 1)ⁿ` for `n` Theorem 1-optimal cuts, see
//! [`crate::theory::gamma_from_overlap`]). The construction is the
//! product QPD over any per-wire [`crate::term::WireCut`]s: terms are
//! tuples of per-wire terms with coefficient `Πᵢ cᵢ`, executed on
//! disjoint qubit blocks of one joint register so that entangling sender
//! circuits (GHZ preparation etc.) across the cut qubits are supported.
//! [`crate::joint`] beats this product overhead with a genuinely joint
//! measurement (`2^{n+1} − 1 < 3ⁿ`); [`PreparedMultiCut`] is the shared
//! compilation target for both.

use crate::term::{CutTerm, WireCut};
use qpd::{QpdSpec, TermSampler, TermSpec};
use qsim::{Circuit, CompiledSampler, PauliString};

/// A wire-cut product term over `w` wires.
#[derive(Clone, Debug)]
pub struct MultiCutTerm {
    /// Product coefficient `Πᵢ cᵢ`.
    pub coefficient: f64,
    /// Per-wire labels.
    pub labels: Vec<String>,
    /// Joint circuit over all blocks.
    pub circuit: Circuit,
    /// Input qubit of each wire's block.
    pub input_qubits: Vec<usize>,
    /// Output qubit of each wire's block.
    pub output_qubits: Vec<usize>,
    /// Total entangled pairs consumed.
    pub pairs_consumed: f64,
}

/// Cutting `w` parallel wires with (possibly different) single-wire cuts.
pub struct ParallelWireCut {
    cuts: Vec<Box<dyn WireCut>>,
}

impl ParallelWireCut {
    /// Creates a parallel cut from per-wire schemes.
    pub fn new(cuts: Vec<Box<dyn WireCut>>) -> Self {
        assert!(!cuts.is_empty());
        Self { cuts }
    }

    /// `w` identical cuts.
    pub fn uniform<C: WireCut + Clone + 'static>(cut: C, wires: usize) -> Self {
        assert!(wires >= 1);
        Self {
            cuts: (0..wires)
                .map(|_| Box::new(cut.clone()) as Box<dyn WireCut>)
                .collect(),
        }
    }

    /// Number of wires.
    pub fn num_wires(&self) -> usize {
        self.cuts.len()
    }

    /// Product overhead `Πᵢ κᵢ`.
    pub fn kappa(&self) -> f64 {
        self.cuts.iter().map(|c| c.kappa()).product()
    }

    /// Enumerates all product terms, laying each wire's term circuit on a
    /// disjoint qubit/clbit block.
    pub fn terms(&self) -> Vec<MultiCutTerm> {
        let per_wire: Vec<Vec<CutTerm>> = self.cuts.iter().map(|c| c.terms()).collect();
        let mut combos: Vec<Vec<usize>> = vec![vec![]];
        for terms in &per_wire {
            let mut next = Vec::with_capacity(combos.len() * terms.len());
            for combo in &combos {
                for i in 0..terms.len() {
                    let mut c = combo.clone();
                    c.push(i);
                    next.push(c);
                }
            }
            combos = next;
        }
        combos
            .into_iter()
            .map(|combo| self.build_term(&per_wire, &combo))
            .collect()
    }

    fn build_term(&self, per_wire: &[Vec<CutTerm>], combo: &[usize]) -> MultiCutTerm {
        let picked: Vec<&CutTerm> = combo
            .iter()
            .enumerate()
            .map(|(w, &i)| &per_wire[w][i])
            .collect();
        let total_qubits: usize = picked.iter().map(|t| t.circuit.num_qubits()).sum();
        let total_clbits: usize = picked.iter().map(|t| t.circuit.num_clbits().max(1)).sum();
        let mut circuit = Circuit::new(total_qubits, total_clbits);
        let mut input_qubits = Vec::with_capacity(picked.len());
        let mut output_qubits = Vec::with_capacity(picked.len());
        let mut labels = Vec::with_capacity(picked.len());
        let mut coefficient = 1.0;
        let mut pairs = 0.0;
        let mut q_off = 0usize;
        let mut c_off = 0usize;
        for t in &picked {
            let qmap: Vec<usize> = (0..t.circuit.num_qubits()).map(|q| q + q_off).collect();
            let cmap: Vec<usize> = (0..t.circuit.num_clbits()).map(|c| c + c_off).collect();
            circuit.compose_mapped(&t.circuit, &qmap, &cmap);
            input_qubits.push(t.input_qubit + q_off);
            output_qubits.push(t.output_qubit + q_off);
            labels.push(t.label.clone());
            coefficient *= t.coefficient;
            pairs += t.pairs_consumed;
            q_off += t.circuit.num_qubits();
            c_off += t.circuit.num_clbits().max(1);
        }
        MultiCutTerm {
            coefficient,
            labels,
            circuit,
            input_qubits,
            output_qubits,
            pairs_consumed: pairs,
        }
    }

    /// Coefficient structure of the product QPD.
    pub fn spec(&self) -> QpdSpec {
        QpdSpec::new(
            self.terms()
                .iter()
                .map(|t| TermSpec {
                    coefficient: t.coefficient,
                    label: t.labels.join("×"),
                    pairs_consumed: t.pairs_consumed,
                })
                .collect(),
        )
    }
}

/// A compiled multi-wire term: the joint circuit with the sender's input
/// preparation composed in and a diagonal (Z/I) observable on the output
/// qubits.
pub struct PreparedMultiTerm {
    sampler: CompiledSampler,
    /// Bit mask over the full register selecting output qubits with a Z.
    z_mask: usize,
    exact: f64,
    num_qubits: usize,
}

impl PreparedMultiTerm {
    fn compile(term: &MultiCutTerm, input_prep: &Circuit, observable: &PauliString) -> Self {
        assert_eq!(input_prep.num_qubits(), term.input_qubits.len());
        assert_eq!(observable.num_qubits(), term.output_qubits.len());
        assert!(
            observable.is_diagonal(),
            "multi-cut estimator supports diagonal (Z/I) observables"
        );
        let n = term.circuit.num_qubits();
        let mut circuit = Circuit::new(n, term.circuit.num_clbits());
        // Input preparation acts on the input qubits of all wires — the
        // sender device holds all of them before the cut.
        let cmap: Vec<usize> = (0..input_prep.num_clbits()).collect();
        circuit.compose_mapped(input_prep, &term.input_qubits, &cmap);
        circuit.compose(&term.circuit);
        let sampler = CompiledSampler::compile(&circuit, None);
        let mut z_mask = 0usize;
        for (w, &q) in term.output_qubits.iter().enumerate() {
            if observable.op(w) == qsim::Pauli::Z {
                z_mask |= 1 << q;
            }
        }
        let exact = sampler
            .leaves()
            .iter()
            .map(|l| {
                let mut acc = 0.0;
                for (idx, p) in l.state.probabilities().iter().enumerate() {
                    let sign = if (idx & z_mask).count_ones().is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    };
                    acc += sign * p;
                }
                l.probability * acc
            })
            .sum();
        Self {
            sampler,
            z_mask,
            exact,
            num_qubits: n,
        }
    }
}

impl TermSampler for PreparedMultiTerm {
    fn sample_observable(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let leaf = self.sampler.sample_leaf(rng);
        let idx = leaf.state.sample_z_basis(rng);
        debug_assert!(idx < (1 << self.num_qubits));
        if (idx & self.z_mask).count_ones().is_multiple_of(2) {
            1.0
        } else {
            -1.0
        }
    }

    fn sample_observable_sum(&self, shots: u64, rng: &mut dyn rand::RngCore) -> f64 {
        // Leaf occupancies from one multinomial; within a leaf the
        // parity observable is Bernoulli with P(+1) = Σ_{even parity} |amp|².
        let counts = self.sampler.sample_batch(shots, rng);
        let mut sum = 0.0;
        for (leaf, &n) in self.sampler.leaves().iter().zip(counts.iter()) {
            if n == 0 {
                continue;
            }
            let p_plus: f64 = leaf
                .state
                .probabilities()
                .iter()
                .enumerate()
                .filter(|(idx, _)| (idx & self.z_mask).count_ones().is_multiple_of(2))
                .map(|(_, p)| p)
                .sum();
            let plus = qsample::binomial(n, p_plus.clamp(0.0, 1.0), rng);
            sum += 2.0 * plus as f64 - n as f64;
        }
        sum
    }

    fn exact_expectation(&self) -> f64 {
        self.exact
    }
}

/// A fully compiled parallel cut ready for the `qpd` estimators.
pub struct PreparedMultiCut {
    /// Product QPD coefficient structure.
    pub spec: QpdSpec,
    /// Compiled product terms.
    pub terms: Vec<PreparedMultiTerm>,
}

impl PreparedMultiCut {
    /// Compiles the product QPD for a sender input preparation circuit
    /// (over the `w` cut qubits) and a diagonal observable on the outputs.
    pub fn new(cut: &ParallelWireCut, input_prep: &Circuit, observable: &PauliString) -> Self {
        Self::from_terms(cut.spec(), &cut.terms(), input_prep, observable)
    }

    /// Compiles an explicit multi-wire term list (used by the joint cut of
    /// [`crate::joint`], whose terms are not a product of single-wire cuts).
    pub fn from_terms(
        spec: QpdSpec,
        terms: &[MultiCutTerm],
        input_prep: &Circuit,
        observable: &PauliString,
    ) -> Self {
        assert_eq!(spec.len(), terms.len());
        let terms = terms
            .iter()
            .map(|t| PreparedMultiTerm::compile(t, input_prep, observable))
            .collect();
        Self { spec, terms }
    }

    /// Term samplers for the `qpd` estimator functions.
    pub fn samplers(&self) -> Vec<&dyn TermSampler> {
        self.terms.iter().map(|t| t as &dyn TermSampler).collect()
    }

    /// Exact decomposed value `Σ c·⟨O⟩`.
    pub fn exact_value(&self) -> f64 {
        qpd::exact_value(&self.spec, &self.samplers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harada::HaradaCut;
    use crate::nme::NmeCut;
    use qpd::Allocator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn multi_term_batched_and_per_shot_paths_agree() {
        // The parity observable's batched draw (binomial per leaf) must
        // match the per-shot z-basis draw in distribution.
        let mut prep = Circuit::new(2, 0);
        prep.ry(0.7, 0).cx(0, 1);
        let cut = ParallelWireCut::uniform(NmeCut::new(0.5), 2);
        let prepared = PreparedMultiCut::new(&cut, &prep, &PauliString::from_label("ZZ"));
        let shots = 40_000u64;
        for term in &prepared.terms {
            let term: &dyn TermSampler = term;
            let exact = term.exact_expectation();
            let mut rng = StdRng::seed_from_u64(304);
            let per_shot: f64 = (0..shots)
                .map(|_| term.sample_observable(&mut rng))
                .sum::<f64>()
                / shots as f64;
            let mut rng = StdRng::seed_from_u64(305);
            let batched = term.sample_observable_sum(shots, &mut rng) / shots as f64;
            // Each mean has SE ≤ 1/√shots = 0.005; allow 5σ against exact.
            assert!(
                (per_shot - exact).abs() < 0.025,
                "per-shot {per_shot} vs {exact}"
            );
            assert!(
                (batched - exact).abs() < 0.025,
                "batched {batched} vs {exact}"
            );
        }
    }

    #[test]
    fn product_kappa_is_exponential() {
        let double = ParallelWireCut::uniform(HaradaCut, 2);
        assert!((double.kappa() - 9.0).abs() < 1e-12);
        let triple = ParallelWireCut::uniform(NmeCut::new(0.5), 3);
        let single = NmeCut::new(0.5).kappa();
        assert!((triple.kappa() - single.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn term_count_is_product() {
        let cut = ParallelWireCut::uniform(HaradaCut, 2);
        assert_eq!(cut.terms().len(), 9);
        let spec = cut.spec();
        assert!((spec.kappa() - 9.0).abs() < 1e-12);
        assert!(spec.validate(1e-12).is_ok());
    }

    #[test]
    fn product_state_through_double_cut() {
        // Two independent qubits Ry(a), Ry(b); observable Z⊗Z.
        // Exact: cos(a)·cos(b).
        let (a, b) = (0.8f64, 1.3f64);
        let mut prep = Circuit::new(2, 0);
        prep.ry(a, 0).ry(b, 1);
        let cut = ParallelWireCut::uniform(NmeCut::new(0.6), 2);
        let prepared = PreparedMultiCut::new(&cut, &prep, &PauliString::from_label("ZZ"));
        let expect = a.cos() * b.cos();
        assert!(
            (prepared.exact_value() - expect).abs() < 1e-9,
            "exact {} vs {}",
            prepared.exact_value(),
            expect
        );
    }

    #[test]
    fn entangled_sender_state_through_double_cut() {
        // Sender prepares a Bell-like state Ry(θ) + CX across the two cut
        // wires; ⟨ZZ⟩ = 1 (perfect correlation), ⟨ZI⟩ = cos θ.
        let theta = 0.9f64;
        let mut prep = Circuit::new(2, 0);
        prep.ry(theta, 0).cx(0, 1);
        let cut = ParallelWireCut::uniform(HaradaCut, 2);
        let zz = PreparedMultiCut::new(&cut, &prep, &PauliString::from_label("ZZ"));
        assert!(
            (zz.exact_value() - 1.0).abs() < 1e-9,
            "⟨ZZ⟩ = {}",
            zz.exact_value()
        );
        let zi = PreparedMultiCut::new(&cut, &prep, &PauliString::from_label("IZ"));
        assert!(
            (zi.exact_value() - theta.cos()).abs() < 1e-9,
            "⟨ZI⟩ = {}",
            zi.exact_value()
        );
    }

    #[test]
    fn mixed_cut_types_compose() {
        // Wire 0 cut with Harada, wire 1 with NME(k=1) teleportation.
        let cut = ParallelWireCut::new(vec![Box::new(HaradaCut), Box::new(NmeCut::new(1.0))]);
        assert!((cut.kappa() - 3.0).abs() < 1e-12);
        let mut prep = Circuit::new(2, 0);
        prep.ry(0.7, 0).ry(1.1, 1);
        let prepared = PreparedMultiCut::new(&cut, &prep, &PauliString::from_label("ZZ"));
        let expect = (0.7f64).cos() * (1.1f64).cos();
        assert!((prepared.exact_value() - expect).abs() < 1e-9);
    }

    #[test]
    fn estimator_converges_on_double_cut() {
        let mut prep = Circuit::new(2, 0);
        prep.ry(0.9, 0).cx(0, 1);
        let cut = ParallelWireCut::uniform(NmeCut::new(0.8), 2);
        let prepared = PreparedMultiCut::new(&cut, &prep, &PauliString::from_label("ZZ"));
        let mut rng = StdRng::seed_from_u64(31);
        let reps = 40;
        let mean: f64 = (0..reps)
            .map(|_| {
                qpd::estimate_allocated(
                    &prepared.spec,
                    &prepared.samplers(),
                    3000,
                    Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>()
            / reps as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn more_entanglement_means_fewer_product_terms_weight() {
        // κ of the double NME cut decreases monotonically with f.
        let mut prev = f64::INFINITY;
        for &f in &[0.5, 0.7, 0.9, 1.0] {
            let cut = ParallelWireCut::uniform(NmeCut::from_overlap(f), 2);
            assert!(cut.kappa() <= prev + 1e-12);
            prev = cut.kappa();
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }
}

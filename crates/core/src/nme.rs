//! **Theorem 2** — the optimal wire cut with pure NME resource states.
//!
//! `I(·) = a · Σ_{i∈{1,2}} Uᵢ E^{Φk}_tel(Uᵢ†(·)Uᵢ) Uᵢ†
//!        − b · Σ_j Tr[|j⟩⟨j|(·)] X|j⟩⟨j|X`
//!
//! with `a = (k²+1)/(k+1)²`, `b = (k−1)²/(k+1)²`, `U₁ = H`, `U₂ = SH`
//! (Figure 5; coefficients from
//! [`crate::theory::theorem2_coefficients`]). Its sampling overhead
//! `κ = 2a + b = 4(k²+1)/(k+1)² − 1` attains the Theorem 1 optimum
//! `γ = 2/f − 1` of Corollary 1 ([`crate::theory::gamma_phi_k`]),
//! interpolating between the entanglement-free optimal cut of
//! [`crate::harada`] (`k = 0`, `γ = 3`) and plain quantum teleportation
//! via [`crate::teleport`] (`k = 1`, `γ = 1`). The resource state is
//! [`entangle::PhiK`] (Eq. 6).
//!
//! Term circuits are four/two-qubit registers:
//!
//! * teleportation terms — qubit 0 = data (A), 1 = resource sender half
//!   (B), 2 = receiver (C): prepare `|Φ_k⟩` on (1,2), conjugate by `Uᵢ`
//!   around the teleportation;
//! * measure-and-prepare term — identical to the Harada cut's third
//!   circuit (it consumes no entanglement).

use crate::harada;
use crate::teleport::append_teleportation;
use crate::term::{CutTerm, WireCut};
use crate::theory;
use entangle::PhiK;
use qsim::Circuit;

/// The Theorem 2 wire cut with resource `|Φ_k⟩`.
#[derive(Clone, Copy, Debug)]
pub struct NmeCut {
    phi: PhiK,
}

impl NmeCut {
    /// Creates the cut for resource parameter `k ∈ [0, 1]` (values above 1
    /// are allowed and behave like `1/k` by the symmetry of `Φ_k`).
    pub fn new(k: f64) -> Self {
        Self { phi: PhiK::new(k) }
    }

    /// Creates the cut for a target entanglement level `f(Φ_k)`.
    pub fn from_overlap(f: f64) -> Self {
        Self {
            phi: PhiK::from_overlap(f),
        }
    }

    /// The resource state.
    pub fn resource(&self) -> PhiK {
        self.phi
    }

    /// The resource parameter `k`.
    pub fn k(&self) -> f64 {
        self.phi.k()
    }

    /// Theorem 2 coefficients `(a, b)`.
    pub fn coefficients(&self) -> (f64, f64) {
        theory::theorem2_coefficients(self.phi.k())
    }

    /// Builds one teleportation term circuit (`which` ∈ {1, 2} selecting
    /// `U₁ = H` / `U₂ = SH`).
    fn teleport_term_circuit(&self, which: u8) -> Circuit {
        let mut c = Circuit::new(3, 2);
        // Resource |Φk⟩ on (1 = sender half, 2 = receiver).
        c.ry(self.phi.preparation_angle(), 1).cx(1, 2);
        // Sender-side basis change Uᵢ† on the data qubit.
        match which {
            1 => {
                c.h(0);
            }
            2 => {
                // U₂† = H·S†: apply S† then H.
                c.sdg(0).h(0);
            }
            _ => unreachable!(),
        }
        // Teleport data → receiver (Bell measurement + feed-forward).
        append_teleportation(&mut c, 0, 1, 2, 0, 1);
        // Receiver-side inverse basis change Uᵢ.
        match which {
            1 => {
                c.h(2);
            }
            2 => {
                // U₂ = S·H: apply H then S.
                c.h(2).s(2);
            }
            _ => unreachable!(),
        }
        c
    }
}

impl WireCut for NmeCut {
    fn name(&self) -> String {
        format!("nme-theorem2(k={:.4})", self.phi.k())
    }

    fn terms(&self) -> Vec<CutTerm> {
        let (a, b) = self.coefficients();
        let mut terms = vec![
            CutTerm {
                coefficient: a,
                label: "tel-H".into(),
                pairs_consumed: 1.0,
                circuit: self.teleport_term_circuit(1),
                input_qubit: 0,
                output_qubit: 2,
                resource_prep_len: 2,
            },
            CutTerm {
                coefficient: a,
                label: "tel-SH".into(),
                pairs_consumed: 1.0,
                circuit: self.teleport_term_circuit(2),
                input_qubit: 0,
                output_qubit: 2,
                resource_prep_len: 2,
            },
        ];
        // The measure-and-prepare term vanishes identically at k = 1
        // (b = 0); keep it for structural uniformity only when nonzero.
        if b > 1e-15 {
            terms.push(CutTerm {
                coefficient: -b,
                label: "meas-prep-flip".into(),
                pairs_consumed: 0.0,
                circuit: harada::measure_prepare_flipped_circuit(),
                input_qubit: 0,
                output_qubit: 1,
                resource_prep_len: 0,
            });
        }
        terms
    }
}

/// Plain quantum teleportation as a single-term "cut" (`κ = 1`) — the
/// zero-overhead baseline the paper contrasts against (Section II-E).
#[derive(Clone, Copy, Debug, Default)]
pub struct TeleportationPassthrough;

impl WireCut for TeleportationPassthrough {
    fn name(&self) -> String {
        "teleportation".into()
    }

    fn terms(&self) -> Vec<CutTerm> {
        let mut c = Circuit::new(3, 2);
        let phi = PhiK::new(1.0);
        c.ry(phi.preparation_angle(), 1).cx(1, 2);
        append_teleportation(&mut c, 0, 1, 2, 0, 1);
        vec![CutTerm {
            coefficient: 1.0,
            label: "teleport".into(),
            pairs_consumed: 1.0,
            circuit: c,
            input_qubit: 0,
            output_qubit: 2,
            resource_prep_len: 2,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{
        identity_distance, reconstructed_channel, term_channel, verify_locc_structure,
    };
    use qsim::Superoperator;

    #[test]
    fn theorem2_reconstructs_identity_for_k_grid() {
        for &k in &[0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let cut = NmeCut::new(k);
            let d = identity_distance(&cut);
            assert!(d < 1e-9, "Theorem 2 violated at k={k}: distance {d}");
        }
    }

    #[test]
    fn kappa_attains_corollary1_optimum() {
        for &k in &[0.0, 0.2, 0.45, 0.8, 1.0] {
            let cut = NmeCut::new(k);
            let expect = theory::gamma_phi_k(k);
            assert!(
                (cut.kappa() - expect).abs() < 1e-12,
                "κ mismatch at k={k}: {} vs {expect}",
                cut.kappa()
            );
            assert!(cut.spec().validate(1e-12).is_ok());
        }
    }

    #[test]
    fn k_zero_degenerates_to_harada_overhead() {
        // Eq. 20 generalisation: at k = 0, κ = 3 — same as Harada.
        let cut = NmeCut::new(0.0);
        assert!((cut.kappa() - 3.0).abs() < 1e-12);
        // The reconstructed channels agree (both are the identity), and
        // the negative terms are literally the same circuit.
        let d =
            reconstructed_channel(&cut).distance(&reconstructed_channel(&crate::harada::HaradaCut));
        assert!(d < 1e-9);
    }

    #[test]
    fn k_one_is_pure_teleportation() {
        let cut = NmeCut::new(1.0);
        assert_eq!(cut.terms().len(), 2, "b-term must vanish at k=1");
        assert!((cut.kappa() - 1.0).abs() < 1e-12);
        let d = identity_distance(&cut);
        assert!(d < 1e-10);
    }

    #[test]
    fn teleportation_terms_are_locc_across_the_cut() {
        // Sender side: data qubit + resource sender half {0, 1};
        // receiver side: {2}. Feed-forward is classical only.
        let cut = NmeCut::new(0.5);
        let terms = cut.terms();
        verify_locc_structure(&terms[0], &[0, 1]).expect("tel-H couples quantumly");
        verify_locc_structure(&terms[1], &[0, 1]).expect("tel-SH couples quantumly");
        verify_locc_structure(&terms[2], &[0]).expect("meas-prep couples quantumly");
    }

    #[test]
    fn teleport_term_channel_matches_conjugated_pauli_channel() {
        // Term i implements Uᵢ E_tel(Uᵢ† · Uᵢ) Uᵢ†; with E_tel the I/Z
        // Pauli channel, conjugation by H maps it to an I/X channel.
        let k = 0.4;
        let cut = NmeCut::new(k);
        let [qi, _, _, qz] = entangle::PhiK::new(k).bell_overlaps();
        let terms = cut.terms();
        let ch = term_channel(&terms[0]);
        let x = qsim::Pauli::X.matrix().scale_re(qz.sqrt());
        let i = qsim::Pauli::I.matrix().scale_re(qi.sqrt());
        let expect = Superoperator::from_kraus(&[i, x]);
        assert!(
            ch.distance(&expect) < 1e-9,
            "tel-H term channel distance {}",
            ch.distance(&expect)
        );
    }

    #[test]
    fn second_term_is_iy_channel() {
        // Conjugation by SH maps the Z error to Y (Eq. 65).
        let k = 0.4;
        let cut = NmeCut::new(k);
        let [qi, _, _, qz] = entangle::PhiK::new(k).bell_overlaps();
        let terms = cut.terms();
        let ch = term_channel(&terms[1]);
        let y = qsim::Pauli::Y.matrix().scale_re(qz.sqrt());
        let i = qsim::Pauli::I.matrix().scale_re(qi.sqrt());
        let expect = Superoperator::from_kraus(&[i, y]);
        assert!(ch.distance(&expect) < 1e-9);
    }

    #[test]
    fn passthrough_is_identity_with_unit_kappa() {
        let cut = TeleportationPassthrough;
        assert!((cut.kappa() - 1.0).abs() < 1e-12);
        assert!(identity_distance(&cut) < 1e-10);
    }

    #[test]
    fn pair_consumption_matches_theory() {
        for &k in &[0.0, 0.5, 1.0] {
            let cut = NmeCut::new(k);
            let got = cut.spec().expected_pairs_per_sample();
            // Theory value: fraction of samples that are teleportations
            // = 2a/κ; pairs per sample from Section III is 2(k²+1)/(k+1)²
            // *per effective sample* — the spec-level expectation is the
            // per-drawn-sample value 2a/κ.
            let (a, _) = cut.coefficients();
            let expect = 2.0 * a / cut.kappa();
            assert!((got - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn batched_estimator_is_unbiased_for_nme_cut() {
        // The NME cut's terms run through the batched branch-tree path;
        // the recombined estimate must stay an unbiased estimator of the
        // uncut expectation.
        use crate::executor::{uncut_expectation, PreparedCut};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let w = qsim::Gate::Ry(1.1).matrix();
        let expect = uncut_expectation(&w, qsim::Pauli::Z);
        for &k in &[0.0, 0.5, 1.0] {
            let prepared = PreparedCut::new(&NmeCut::new(k), &w, qsim::Pauli::Z);
            let mut rng = StdRng::seed_from_u64(301);
            let reps = 50;
            let mean: f64 = (0..reps)
                .map(|_| {
                    qpd::estimate_allocated(
                        &prepared.spec,
                        &prepared.samplers(),
                        4000,
                        qpd::Allocator::Proportional,
                        &mut rng,
                    )
                })
                .sum::<f64>()
                / reps as f64;
            // SE ≈ κ/√(reps·shots) ≤ 3/447 ≈ 0.0067; allow ~5σ.
            assert!(
                (mean - expect).abs() < 0.035,
                "k={k}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn overhead_strictly_decreases_with_entanglement() {
        let mut prev = f64::INFINITY;
        for &f in &entangle::FIG6_OVERLAPS {
            let cut = NmeCut::from_overlap(f);
            assert!(cut.kappa() < prev + 1e-12, "κ not decreasing at f={f}");
            prev = cut.kappa();
        }
    }
}

//! The original wire cut of Peng et al. (paper reference \[13\]), with
//! sampling overhead `κ = 4` — the historical baseline that Harada's
//! `γ = 3` cut and the paper's NME cut improve upon.
//!
//! Based on the Pauli expansion `ρ = ½ Σ_{P∈{I,X,Y,Z}} Tr[Pρ]·P`, realised
//! as eight measure-and-prepare channels with coefficients `±½`:
//!
//! | pair | channel |
//! |---|---|
//! | +½ / +½ | trace (measure Z, discard), prepare `\|0⟩` / `\|1⟩` |
//! | +½ / −½ | measure Z, prepare measured / flipped basis state |
//! | +½ / −½ | measure X, prepare measured / flipped `\|±⟩` |
//! | +½ / −½ | measure Y, prepare measured / flipped `\|±i⟩` |

use crate::term::{CutTerm, WireCut};
use qsim::Circuit;

/// Which single-qubit basis a term measures/prepares in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Basis {
    Z,
    X,
    Y,
}

/// The eight-term Peng et al. wire cut.
#[derive(Clone, Copy, Debug, Default)]
pub struct PengCut;

/// Measure-in-`basis`, prepare the (optionally flipped) measured
/// eigenstate on the receiver. Qubit 0 = sender, qubit 1 = receiver.
fn measure_prepare_circuit(basis: Basis, flip: bool) -> Circuit {
    let mut c = Circuit::new(2, 1);
    // Rotate the basis onto Z on the sender side.
    match basis {
        Basis::Z => {}
        Basis::X => {
            c.h(0);
        }
        Basis::Y => {
            // V with V·Y·V† = Z is V = H·S†: apply S† then H.
            c.sdg(0).h(0);
        }
    }
    c.measure(0, 0);
    // Prepare |j⟩ (or |1−j⟩) on the receiver, then rotate back.
    c.x_if(1, 0);
    if flip {
        c.x(1);
    }
    match basis {
        Basis::Z => {}
        Basis::X => {
            c.h(1);
        }
        Basis::Y => {
            // V† = S·H: apply H then S.
            c.h(1).s(1);
        }
    }
    c
}

/// Measure-and-discard on the sender, prepare a fixed basis state on the
/// receiver.
fn trace_prepare_circuit(prepare_one: bool) -> Circuit {
    let mut c = Circuit::new(2, 1);
    c.measure(0, 0); // outcome discarded by construction
    if prepare_one {
        c.x(1);
    }
    c
}

impl WireCut for PengCut {
    fn name(&self) -> String {
        "peng-original".into()
    }

    fn terms(&self) -> Vec<CutTerm> {
        let half = 0.5;
        let mk = |coefficient: f64, label: &str, circuit: Circuit| CutTerm {
            coefficient,
            label: label.into(),
            pairs_consumed: 0.0,
            circuit,
            input_qubit: 0,
            output_qubit: 1,
            resource_prep_len: 0,
        };
        vec![
            mk(half, "trace-prep0", trace_prepare_circuit(false)),
            mk(half, "trace-prep1", trace_prepare_circuit(true)),
            mk(half, "measZ-prep", measure_prepare_circuit(Basis::Z, false)),
            mk(-half, "measZ-flip", measure_prepare_circuit(Basis::Z, true)),
            mk(half, "measX-prep", measure_prepare_circuit(Basis::X, false)),
            mk(-half, "measX-flip", measure_prepare_circuit(Basis::X, true)),
            mk(half, "measY-prep", measure_prepare_circuit(Basis::Y, false)),
            mk(-half, "measY-flip", measure_prepare_circuit(Basis::Y, true)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{identity_distance, term_channel, verify_locc_structure};

    #[test]
    fn reconstructs_identity_channel() {
        let d = identity_distance(&PengCut);
        assert!(d < 1e-10, "Peng decomposition violated: distance {d}");
    }

    #[test]
    fn kappa_is_four() {
        assert!((PengCut.kappa() - 4.0).abs() < 1e-12);
        assert!(PengCut.spec().validate(1e-12).is_ok());
    }

    #[test]
    fn has_eight_terms() {
        assert_eq!(PengCut.terms().len(), 8);
    }

    #[test]
    fn every_term_is_locc_and_trace_preserving() {
        for term in PengCut.terms() {
            verify_locc_structure(&term, &[0]).expect("term not LOCC");
            let ch = term_channel(&term);
            assert!(ch.is_trace_preserving(1e-10), "term {} not TP", term.label);
        }
    }

    #[test]
    fn y_basis_terms_preserve_y_expectation() {
        let terms = PengCut.terms();
        // measY-prep (index 6): dephasing in Y basis: PTM diag(1,0,1,0) on
        // (I,X,Y,Z).
        let ptm = term_channel(&terms[6]).pauli_transfer_matrix();
        assert!((ptm[(2, 2)].re - 1.0).abs() < 1e-10);
        assert!(ptm[(1, 1)].abs() < 1e-10);
        assert!(ptm[(3, 3)].abs() < 1e-10);
    }

    #[test]
    fn trace_terms_are_constant_channels() {
        let terms = PengCut.terms();
        let ptm = term_channel(&terms[0]).pauli_transfer_matrix();
        // ρ → |0⟩⟨0|: PTM first column (1, 0, 0, 1)ᵀ..., all other columns 0.
        assert!((ptm[(0, 0)].re - 1.0).abs() < 1e-10);
        assert!((ptm[(3, 0)].re - 1.0).abs() < 1e-10);
        for col in 1..4 {
            for row in 0..4 {
                assert!(ptm[(row, col)].abs() < 1e-10);
            }
        }
    }

    #[test]
    fn peng_overhead_exceeds_harada() {
        use crate::harada::HaradaCut;
        assert!(PengCut.kappa() > HaradaCut.kappa());
    }
}

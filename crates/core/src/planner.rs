//! The arbitrary-circuit **cut planner**: from a [`Circuit`] DAG and a
//! fragment-width budget to a single compiled QPD execution plan.
//!
//! Every experiment in this repo hand-places its cuts on purpose-built
//! circuits. This module closes that gap (ROADMAP's first open item):
//!
//! 1. **Fragmentation** — [`qsim::fragments_by_width`] packs the circuit
//!    into program-order fragments whose active wire sets fit the budget,
//!    so each fragment runs on a `budget`-qubit device.
//! 2. **Cut-set derivation** — every wire that is used in two fragments
//!    must cross the boundary between them through a QPD wire cut; a wire
//!    spanning three or more fragments receives **repeated cuts**, and
//!    several wires crossing the same boundary are **subsequent-wire**
//!    cuts (the QCut scenario catalogue, SNIPPETS.md Snippet 3).
//! 3. **Protocol choice** — cuts sharing a (source, destination) fragment
//!    pair form a [`CutGroup`] that can be measured jointly on the sender
//!    device. Per group of `n` wires the planner consults the κ crossover
//!    map `f*(n) = 2/((2^{n+1}−1)^{1/n} + 1)` (the closed form behind
//!    `experiments::joint_scaling`): independent `|Φ_k⟩` NME cuts
//!    (Theorem 2, `κ = γ(f)ⁿ`) win exactly when the available resource
//!    overlap satisfies `f ≥ f*(n)`; otherwise the entanglement-free
//!    joint MUB cut (`κ = 2^{n+1} − 1`, [`crate::joint`]) wins.
//! 4. **Compilation** — [`CompiledPlan::compile`] picks between two
//!    backends. The default, **contracted** path
//!    ([`CompiledPlan::compile_contracted`], [`crate::contract`])
//!    compiles each *fragment* once per local boundary-role variant and
//!    evaluates every product term by tensor contraction — cost
//!    `Σ variants(fragment)` instead of `Π terms(group)`, so plans with
//!    6+ cuts compile where stitching blows up. The **monolithic** path
//!    ([`CompiledPlan::compile_monolithic`]) stitches one circuit per
//!    combination of per-group QPD terms (carrier-qubit threading
//!    through [`Circuit::compose_mapped`]) and stays as the pristine
//!    differential-testing reference, mirroring how `compile_dense`
//!    fences the hybrid sampler. Both ride the [`CompiledSampler`]
//!    branch-tree machinery and the batched [`TermSampler`] estimate
//!    path; the plan-level coefficient structure is the product QPD
//!    [`QpdSpec::product`], so `κ(plan) = Π κ(group)` and the stock
//!    `qpd` allocators spread shots across all cuts at once.
//!
//! In debug/test builds every compilation re-verifies its cut groups
//! once each through [`CompiledPlan::verify_groups`] (per-group spec
//! validation plus [`JointWireCut::verify_deviation`] per distinct joint
//! width), so malformed term products fail loudly on the compile path;
//! the exhaustive product-spec check stays behind the test-only
//! [`CompiledPlan::verify`] helper, whose cost grows as `Π terms`.

use crate::contract::{contraction_ineligibility, FragmentBlockSummary, FragmentBlocks};
use crate::joint::JointWireCut;
use crate::mub;
use crate::multi::{MultiCutTerm, ParallelWireCut};
use crate::nme::NmeCut;
use crate::term::WireCut;
use qpd::{QpdSpec, TermSampler};
use qsim::{fragments_by_width, Circuit, CompiledSampler, Fragment, Instruction, Op, PauliString};
use rand::Rng;

/// The crossover overlap `f*(n) = 2/((2^{n+1} − 1)^{1/n} + 1)`:
/// independent `|Φ_k⟩` cuts beat (or tie) the joint MUB cut exactly when
/// `f ≥ f*(n)`. Mirrors `experiments::joint_scaling::crossover_overlap`
/// (pinned equal in the integration tests); duplicated here because the
/// planner sits below the experiments crate in the dependency order.
pub fn crossover_overlap(n: usize) -> f64 {
    assert!(n >= 1);
    let gamma_star = ((2u64 << n) - 1) as f64;
    2.0 / (gamma_star.powf(1.0 / n as f64) + 1.0)
}

/// The cut protocol assigned to one [`CutGroup`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Protocol {
    /// Independent Theorem 2 NME cuts, one `|Φ_k⟩` pair per wire
    /// (`κ = γ(k)ⁿ`, [`crate::nme`] / [`crate::multi`]).
    Nme {
        /// Schmidt parameter of the available resource.
        k: f64,
    },
    /// The entanglement-free joint MUB cut (`κ = 2^{n+1} − 1`,
    /// [`crate::joint`]).
    JointMub,
}

/// One planned wire cut: `wire` leaves fragment `source_fragment` and
/// re-enters the circuit in fragment `dest_fragment`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedCut {
    /// The cut wire (original circuit qubit index).
    pub wire: usize,
    /// Fragment holding the wire's last gate before the cut.
    pub source_fragment: usize,
    /// Fragment holding the wire's next gate after the cut.
    pub dest_fragment: usize,
}

/// Cuts sharing a (source, destination) fragment pair — executed as one
/// joint or product QPD on the sender/receiver device pair.
#[derive(Clone, Debug)]
pub struct CutGroup {
    /// The member cuts, ascending by wire.
    pub cuts: Vec<PlannedCut>,
    /// Chosen protocol.
    pub protocol: Protocol,
    /// The group's sampling overhead `κ`.
    pub kappa: f64,
}

impl CutGroup {
    /// Number of wires cut together.
    pub fn num_wires(&self) -> usize {
        self.cuts.len()
    }

    /// Source fragment index (shared by all member cuts).
    pub fn source_fragment(&self) -> usize {
        self.cuts[0].source_fragment
    }

    /// The group's QPD coefficient structure.
    pub fn spec(&self) -> QpdSpec {
        protocol_spec(self.protocol, self.num_wires())
    }

    /// The group's QPD term circuits (multi-wire term layout shared with
    /// [`crate::multi`] / [`crate::joint`]).
    pub fn terms(&self) -> Vec<MultiCutTerm> {
        match self.protocol {
            Protocol::Nme { k } => self.nme_cut(k).terms(),
            Protocol::JointMub => JointWireCut::new(self.num_wires()).terms(),
        }
    }

    fn nme_cut(&self, k: f64) -> ParallelWireCut {
        ParallelWireCut::new(
            (0..self.num_wires())
                .map(|_| Box::new(NmeCut::new(k)) as Box<dyn WireCut>)
                .collect(),
        )
    }
}

/// The QPD coefficient structure of one `wires`-wide group running
/// `protocol` — reconstructible from a [`GroupReport`] alone, which is
/// what lets [`CompiledPlan::verify_groups`] re-validate each group at
/// `Σ terms` cost without touching the `Π terms` product spec.
fn protocol_spec(protocol: Protocol, wires: usize) -> QpdSpec {
    match protocol {
        Protocol::Nme { k } => ParallelWireCut::new(
            (0..wires)
                .map(|_| Box::new(NmeCut::new(k)) as Box<dyn WireCut>)
                .collect(),
        )
        .spec(),
        Protocol::JointMub => JointWireCut::new(wires).spec(),
    }
}

/// Per-group line of a plan's overhead report.
#[derive(Clone, Copy, Debug)]
pub struct GroupReport {
    /// Source fragment of the group.
    pub source_fragment: usize,
    /// Destination fragment of the group.
    pub dest_fragment: usize,
    /// Wires cut together.
    pub wires: usize,
    /// Chosen protocol.
    pub protocol: Protocol,
    /// Group overhead `κ`.
    pub kappa: f64,
}

/// The per-plan γ/κ overhead report.
#[derive(Clone, Debug)]
pub struct PlanReport {
    /// Number of fragments.
    pub num_fragments: usize,
    /// Total number of wire cuts (Σ group wires).
    pub num_cuts: usize,
    /// Widest fragment (≤ the budget by construction).
    pub max_fragment_width: usize,
    /// Plan overhead `κ = Π κ(group)` — the 1-norm of the product QPD.
    pub kappa: f64,
    /// Shot-count multiplier `κ²` to reach fixed accuracy.
    pub sampling_overhead: f64,
    /// Per-group breakdown.
    pub groups: Vec<GroupReport>,
}

/// A complete cut plan for one circuit: fragments, grouped cuts with
/// protocols, and the overhead accounting.
#[derive(Clone, Debug)]
pub struct CutPlan {
    circuit: Circuit,
    /// Width-bounded fragments in program order.
    pub fragments: Vec<Fragment>,
    /// Cut groups, ascending by (source, destination) fragment pair.
    pub groups: Vec<CutGroup>,
    /// The width budget the plan was built for.
    pub width_budget: usize,
    /// Resource overlap `f` the protocol choice assumed.
    pub overlap: f64,
}

impl CutPlan {
    /// The planned circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Total number of wire cuts.
    pub fn num_cuts(&self) -> usize {
        self.groups.iter().map(|g| g.num_wires()).sum()
    }

    /// Plan overhead `κ = Π κ(group)` (1 for an uncut plan).
    pub fn kappa(&self) -> f64 {
        self.groups.iter().map(|g| g.kappa).product()
    }

    /// The γ/κ overhead report.
    pub fn report(&self) -> PlanReport {
        let kappa = self.kappa();
        PlanReport {
            num_fragments: self.fragments.len(),
            num_cuts: self.num_cuts(),
            max_fragment_width: self.fragments.iter().map(|f| f.width()).max().unwrap_or(0),
            kappa,
            sampling_overhead: kappa * kappa,
            groups: self
                .groups
                .iter()
                .map(|g| GroupReport {
                    source_fragment: g.cuts[0].source_fragment,
                    dest_fragment: g.cuts[0].dest_fragment,
                    wires: g.num_wires(),
                    protocol: g.protocol,
                    kappa: g.kappa,
                })
                .collect(),
        }
    }
}

/// The planner: fragment-width budget plus the entanglement resource
/// assumption driving NME-vs-MUB protocol choice.
#[derive(Clone, Copy, Debug)]
pub struct CutPlanner {
    width_budget: usize,
    overlap: f64,
}

impl CutPlanner {
    /// A planner for the given fragment-width budget, assuming maximally
    /// entangled resources (`f = 1`, so every group cuts via NME
    /// teleportation at `κ = 1` per wire).
    pub fn new(width_budget: usize) -> Self {
        assert!(width_budget >= 1, "width budget must be at least 1");
        Self {
            width_budget,
            overlap: 1.0,
        }
    }

    /// Sets the available resource overlap `f ∈ [1/2, 1]` (Theorem 1's
    /// `f(ρ)`); groups where `f < f*(n)` switch to the joint MUB cut.
    pub fn with_overlap(mut self, f: f64) -> Self {
        assert!(
            (0.5..=1.0).contains(&f),
            "resource overlap must lie in [1/2, 1], got {f}"
        );
        self.overlap = f;
        self
    }

    /// Plans cuts for `circuit`: fragments it under the width budget,
    /// derives the crossing-wire cut set, groups cuts per fragment pair
    /// and assigns each group its κ-optimal protocol. Fully deterministic
    /// — identical circuits produce identical plans.
    pub fn plan(&self, circuit: &Circuit) -> CutPlan {
        let fragments = fragments_by_width(circuit, self.width_budget);
        // Each wire's ordered fragment visits; consecutive visits are cuts.
        let mut grouped: std::collections::BTreeMap<(usize, usize), Vec<PlannedCut>> =
            std::collections::BTreeMap::new();
        for wire in 0..circuit.num_qubits() {
            let visits: Vec<usize> = fragments
                .iter()
                .enumerate()
                .filter(|(_, f)| f.wires.contains(&wire))
                .map(|(i, _)| i)
                .collect();
            for pair in visits.windows(2) {
                grouped
                    .entry((pair[0], pair[1]))
                    .or_default()
                    .push(PlannedCut {
                        wire,
                        source_fragment: pair[0],
                        dest_fragment: pair[1],
                    });
            }
        }
        let groups = grouped
            .into_values()
            .map(|mut cuts| {
                cuts.sort_by_key(|c| c.wire);
                let n = cuts.len();
                // NME wins at f ≥ f*(n); the joint construction also caps
                // at MAX_WIRES, beyond which only the product cut exists.
                let protocol = if self.overlap >= crossover_overlap(n) || n > mub::MAX_WIRES {
                    Protocol::Nme {
                        k: NmeCut::from_overlap(self.overlap).k(),
                    }
                } else {
                    Protocol::JointMub
                };
                let kappa = match protocol {
                    Protocol::Nme { k } => NmeCut::new(k).kappa().powi(n as i32),
                    Protocol::JointMub => JointWireCut::new(n).kappa(),
                };
                CutGroup {
                    cuts,
                    protocol,
                    kappa,
                }
            })
            .collect();
        CutPlan {
            circuit: circuit.clone(),
            fragments,
            groups,
            width_budget: self.width_budget,
            overlap: self.overlap,
        }
    }
}

/// Content-addressed identity of a compiled plan: a stable 64-bit
/// FNV-1a hash over everything [`CompiledPlan::compile`] reads — the
/// planner's width budget and resource overlap, the circuit's full
/// instruction stream (operation discriminants, gate parameters, unitary
/// matrix entries, qubit operands, classical conditions) and the
/// observable's Pauli string.
///
/// Two requests collide on a `PlanKey` exactly when they would compile
/// the *same* plan (up to the negligible 64-bit hash-collision
/// probability), which is what makes the key safe to use as the cache
/// address in [`crate::service::CutService`] and as the job-level RNG
/// stream id: the hash depends only on plan *content*, never on
/// submission order, thread, or cache state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanKey(pub u64);

/// Hashes an `f64` by IEEE-754 bits, normalising `-0.0` to `+0.0` (the
/// same convention as `qsample::grid`'s `GridKey` for `f64`).
fn absorb_f64(h: &mut qsample::KeyHasher, x: f64) {
    debug_assert!(!x.is_nan(), "NaN cannot identify a plan");
    let v = if x == 0.0 { 0.0f64 } else { x };
    h.absorb(v.to_bits());
}

/// Hashes a unitary matrix element-wise (row-major, re then im).
fn absorb_matrix(h: &mut qsample::KeyHasher, m: &qlinalg::Matrix) {
    for z in m.as_slice() {
        absorb_f64(h, z.re);
        absorb_f64(h, z.im);
    }
}

/// Hashes a gate: a per-variant discriminant code followed by the
/// variant's parameters. Codes are part of the key's stability contract —
/// new variants must take fresh codes, never renumber existing ones.
fn absorb_gate(h: &mut qsample::KeyHasher, gate: &qsim::Gate) {
    use qsim::Gate::*;
    match gate {
        I => h.absorb(0),
        X => h.absorb(1),
        Y => h.absorb(2),
        Z => h.absorb(3),
        H => h.absorb(4),
        S => h.absorb(5),
        Sdg => h.absorb(6),
        T => h.absorb(7),
        Tdg => h.absorb(8),
        SX => h.absorb(9),
        Rx(t) => {
            h.absorb(10);
            absorb_f64(h, *t);
        }
        Ry(t) => {
            h.absorb(11);
            absorb_f64(h, *t);
        }
        Rz(t) => {
            h.absorb(12);
            absorb_f64(h, *t);
        }
        Phase(t) => {
            h.absorb(13);
            absorb_f64(h, *t);
        }
        U(a, b, c) => {
            h.absorb(14);
            absorb_f64(h, *a);
            absorb_f64(h, *b);
            absorb_f64(h, *c);
        }
        Unitary1(m) => {
            h.absorb(15);
            absorb_matrix(h, m);
        }
        CX => h.absorb(16),
        CZ => h.absorb(17),
        CY => h.absorb(18),
        Swap => h.absorb(19),
        CPhase(t) => {
            h.absorb(20);
            absorb_f64(h, *t);
        }
        Unitary2(m) => {
            h.absorb(21);
            absorb_matrix(h, m);
        }
        Unitary(m) => {
            h.absorb(22);
            absorb_matrix(h, m);
        }
    }
}

/// Hashes a circuit: dimensions, then every instruction in program order.
fn absorb_circuit(h: &mut qsample::KeyHasher, circuit: &Circuit) {
    h.absorb(circuit.num_qubits() as u64);
    h.absorb(circuit.num_clbits() as u64);
    h.absorb(circuit.len() as u64);
    for instr in circuit.instructions() {
        match &instr.op {
            Op::Gate(gate, qubits) => {
                h.absorb(0xA0);
                absorb_gate(h, gate);
                h.absorb(qubits.len() as u64);
                for &q in qubits {
                    h.absorb(q as u64);
                }
            }
            Op::Measure { qubit, clbit } => {
                h.absorb(0xA1);
                h.absorb(*qubit as u64);
                h.absorb(*clbit as u64);
            }
            Op::Reset(q) => {
                h.absorb(0xA2);
                h.absorb(*q as u64);
            }
            Op::Barrier => h.absorb(0xA3),
        }
        match &instr.condition {
            None => h.absorb(0xB0),
            Some(c) => {
                h.absorb(0xB1);
                h.absorb(c.bit as u64);
                h.absorb(u64::from(c.value));
            }
        }
    }
}

impl CutPlanner {
    /// The [`PlanKey`] of the plan this planner would compile for
    /// `(circuit, observable)` — a pure content hash, computed without
    /// planning or compiling anything. [`CutPlanner::plan`] is
    /// deterministic, so equal keys imply equal compiled plans.
    pub fn plan_key(&self, circuit: &Circuit, observable: &PauliString) -> PlanKey {
        let mut h = qsample::KeyHasher::new();
        h.absorb(self.width_budget as u64);
        absorb_f64(&mut h, self.overlap);
        absorb_circuit(&mut h, circuit);
        h.absorb(observable.num_qubits() as u64);
        for op in observable.ops() {
            h.absorb(match op {
                qsim::Pauli::I => 0,
                qsim::Pauli::X => 1,
                qsim::Pauli::Y => 2,
                qsim::Pauli::Z => 3,
            });
        }
        PlanKey(h.finish())
    }
}

/// How one compiled plan term is evaluated.
enum TermBody {
    /// The stitched monolithic circuit for one combination of per-group
    /// QPD terms, with a diagonal parity observable over the final
    /// carrier qubits.
    Stitched {
        sampler: CompiledSampler,
        z_mask: usize,
        num_qubits: usize,
    },
    /// The term's exact expectation came from the per-fragment tensor
    /// contraction; the ±1 parity draw is a Bernoulli over it. This is
    /// *distributionally identical* to the stitched term: a stitched
    /// draw is ±1 with `P(+1) = (1 + ⟨O⟩)/2` no matter how the branch
    /// tree decomposes it (the sum of per-leaf binomials over a
    /// multinomial collapses to one binomial).
    Contracted,
}

/// One compiled plan term for one combination of per-group QPD terms.
/// Samples through the same batched-binomial path as
/// [`crate::multi::PreparedMultiCut`].
pub struct PlanTerm {
    body: TermBody,
    exact: f64,
}

impl PlanTerm {
    /// `true` when this term is evaluated by tensor contraction instead
    /// of a stitched circuit.
    pub fn is_contracted(&self) -> bool {
        matches!(self.body, TermBody::Contracted)
    }

    /// Number of qubits of the stitched circuit (`None` for contracted
    /// terms, which have no single circuit).
    pub fn num_qubits(&self) -> Option<usize> {
        match &self.body {
            TermBody::Stitched { num_qubits, .. } => Some(*num_qubits),
            TermBody::Contracted => None,
        }
    }

    /// The Clifford prefix of this term's stitched circuit that compiled
    /// onto the stabilizer tableau (zero-length when the term ran
    /// all-dense; `None` for contracted terms — their backend split is
    /// aggregated per fragment variant in the plan's
    /// [`CompiledPlan::backend_report`]).
    pub fn clifford_prefix(&self) -> Option<qsim::CliffordPrefix> {
        match &self.body {
            TermBody::Stitched { sampler, .. } => Some(sampler.clifford_prefix()),
            TermBody::Contracted => None,
        }
    }

    /// Single-qubit fusion summary for this term's dense portion
    /// (`None` for contracted terms).
    pub fn fusion_stats(&self) -> Option<qsim::FusionStats> {
        match &self.body {
            TermBody::Stitched { sampler, .. } => Some(sampler.fusion_stats()),
            TermBody::Contracted => None,
        }
    }
}

impl TermSampler for PlanTerm {
    fn sample_observable(&self, rng: &mut dyn rand::RngCore) -> f64 {
        match &self.body {
            TermBody::Stitched {
                sampler,
                z_mask,
                num_qubits,
            } => {
                let leaf = sampler.sample_leaf(rng);
                let idx = leaf.state.sample_z_basis(rng);
                debug_assert!(idx < (1 << num_qubits));
                if (idx & z_mask).count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                }
            }
            TermBody::Contracted => {
                let p_plus = (1.0 + self.exact) / 2.0;
                if rng.gen::<f64>() < p_plus {
                    1.0
                } else {
                    -1.0
                }
            }
        }
    }

    fn sample_observable_sum(&self, shots: u64, rng: &mut dyn rand::RngCore) -> f64 {
        match &self.body {
            TermBody::Stitched {
                sampler, z_mask, ..
            } => {
                // One multinomial over branch leaves, then a parity
                // binomial per occupied leaf — identical to the
                // multi-cut batched path.
                let counts = sampler.sample_batch(shots, rng);
                let mut sum = 0.0;
                for (leaf, &n) in sampler.leaves().iter().zip(counts.iter()) {
                    if n == 0 {
                        continue;
                    }
                    let p_plus: f64 = leaf
                        .state
                        .probabilities()
                        .iter()
                        .enumerate()
                        .filter(|(idx, _)| (idx & z_mask).count_ones().is_multiple_of(2))
                        .map(|(_, p)| p)
                        .sum();
                    let plus = qsample::binomial(n, p_plus.clamp(0.0, 1.0), rng);
                    sum += 2.0 * plus as f64 - n as f64;
                }
                sum
            }
            TermBody::Contracted => {
                let p_plus = ((1.0 + self.exact) / 2.0).clamp(0.0, 1.0);
                let plus = qsample::binomial(shots, p_plus, rng);
                2.0 * plus as f64 - shots as f64
            }
        }
    }

    fn exact_expectation(&self) -> f64 {
        self.exact
    }
}

/// Which compilation strategy produced a [`CompiledPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanBackend {
    /// One stitched monolithic circuit per product-term combination
    /// (`Π terms(group)` compiled circuits) — the pristine
    /// differential-testing reference.
    Monolithic,
    /// Per-fragment tensor blocks compiled once (`Σ variants(fragment)`
    /// circuits) and contracted per term ([`crate::contract`]).
    Contracted,
}

/// Which simulator backends a compiled plan's circuits ride, aggregated
/// over all compiled circuit units (see
/// [`qsim::CompiledSampler::compile`]'s backend split). A *unit* is one
/// stitched term circuit on the monolithic path and one fragment prep
/// variant on the contracted path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendReport {
    /// Compiled circuit units (stitched terms or fragment variants).
    pub terms: usize,
    /// Units whose circuit had a tableau-executed prefix.
    pub hybrid_terms: usize,
    /// Total instructions across all compiled circuit units.
    pub total_instructions: usize,
    /// Instructions executed on the stabilizer tableau.
    pub clifford_instructions: usize,
    /// Single-qubit gates absorbed by fusion in the dense portions.
    pub gates_fused: usize,
    /// Frontier matrix multiplications performed by the contracted
    /// backend's prefix-cached odometer sweep (0 on the monolithic
    /// path, which never contracts a frontier).
    pub frontier_ops: usize,
    /// Frontier multiplications a cache-disabled sweep over the same
    /// terms would have performed — the denominator of the prefix-cache
    /// payoff (`frontier_ops_uncached / frontier_ops`).
    pub frontier_ops_uncached: usize,
    /// Σ over terms of the resume depth: odometer digits whose partial
    /// frontier contraction was served from the prefix cache.
    pub prefix_hits: usize,
    /// Σ over terms of the rebuilt digits: odometer digits whose
    /// partial frontier had to be recomputed.
    pub prefix_rebuilds: usize,
}

impl BackendReport {
    /// Fraction of stitched instructions on the stabilizer fast path
    /// (1.0 for an empty plan, which trivially has no dense work).
    pub fn clifford_fraction(&self) -> f64 {
        if self.total_instructions == 0 {
            1.0
        } else {
            self.clifford_instructions as f64 / self.total_instructions as f64
        }
    }
}

/// A fully compiled execution plan: the product QPD spec across all cut
/// groups plus one [`PlanTerm`] per term combination, ready for the
/// stock `qpd` estimators.
pub struct CompiledPlan {
    /// Product QPD coefficient structure (`κ = Π κ(group)`).
    pub spec: QpdSpec,
    terms: Vec<PlanTerm>,
    report: PlanReport,
    backend: PlanBackend,
    backend_report: BackendReport,
    fragment_summaries: Vec<FragmentBlockSummary>,
    fallback_reason: Option<String>,
}

impl CompiledPlan {
    /// Compiles a plan against a diagonal (Z/I) observable over the
    /// original circuit wires. The input state is `|0…0⟩` driven through
    /// the planned circuit itself — workload preparation belongs in the
    /// circuit being planned.
    ///
    /// Automatically selects the backend: the contracted fragment-block
    /// path ([`CompiledPlan::compile_contracted`]) whenever the plan
    /// supports it ([`crate::contract::supports_contraction`]),
    /// otherwise the monolithic
    /// stitching path ([`CompiledPlan::compile_monolithic`]). Both are
    /// exact, deterministic and sample-equivalent; they differ only in
    /// compilation cost scaling.
    ///
    /// In debug/test builds the compiled plan's cut groups are verified
    /// on the spot ([`CompiledPlan::verify_groups`]), so malformed term
    /// products fail loudly on the compile path.
    pub fn compile(plan: &CutPlan, observable: &PauliString) -> Self {
        match contraction_ineligibility(plan) {
            None => Self::compile_contracted(plan, observable),
            Some(reason) => {
                let mut compiled = Self::compile_monolithic(plan, observable);
                compiled.fallback_reason = Some(reason);
                compiled
            }
        }
    }

    /// The **contracted** backend: builds per-fragment tensor blocks
    /// once ([`FragmentBlocks::build`], `Σ variants(fragment)` compiled
    /// circuits) and evaluates each of the `Π terms(group)` product
    /// terms through the prefix-cached frontier sweep
    /// ([`FragmentBlocks::sweep`]) — no per-term circuit is ever
    /// stitched or simulated, and terms sharing an odometer prefix
    /// share their partial frontier contractions. The sweep's hit/op
    /// counters land in the [`BackendReport`].
    ///
    /// # Panics
    /// Panics when `!supports_contraction(plan)`; use
    /// [`CompiledPlan::compile`] for automatic fallback.
    pub fn compile_contracted(plan: &CutPlan, observable: &PauliString) -> Self {
        let blocks = FragmentBlocks::build(plan, observable);
        let group_specs: Vec<QpdSpec> = plan.groups.iter().map(|g| g.spec()).collect();
        let spec = QpdSpec::product(&group_specs);
        let lens = blocks.group_lens();
        for (len, gs) in lens.iter().zip(group_specs.iter()) {
            assert_eq!(*len, gs.len(), "group transfer/spec term mismatch");
        }
        let total: usize = lens.iter().product();
        assert_eq!(spec.len(), total);
        let mut terms = Vec::with_capacity(total);
        let mut sweep = blocks.sweep();
        // Row-major enumeration, last group fastest — the same order
        // `QpdSpec::product` uses, so coefficients line up and every
        // consecutive pair of picks shares the longest possible prefix.
        for combo_idx in 0..total {
            let mut rem = combo_idx;
            let mut pick = vec![0usize; lens.len()];
            for g in (0..lens.len()).rev() {
                pick[g] = rem % lens[g];
                rem /= lens[g];
            }
            terms.push(PlanTerm {
                body: TermBody::Contracted,
                exact: sweep.term_value(&pick),
            });
        }
        let stats = sweep.stats();
        let mut backend_report = blocks.backend_report();
        backend_report.frontier_ops = stats.frontier_ops;
        backend_report.frontier_ops_uncached = stats.frontier_ops_uncached;
        backend_report.prefix_hits = stats.prefix_hits;
        backend_report.prefix_rebuilds = stats.prefix_rebuilds;
        let compiled = Self {
            spec,
            terms,
            report: plan.report(),
            backend: PlanBackend::Contracted,
            backend_report,
            fragment_summaries: blocks.summaries().to_vec(),
            fallback_reason: None,
        };
        if cfg!(debug_assertions) {
            compiled
                .verify_groups(1e-8)
                .expect("compiled plan failed group verification");
        }
        compiled
    }

    /// The **monolithic** backend: stitches one carrier-threaded circuit
    /// per combination of per-group QPD terms. Compilation cost grows as
    /// `Π terms(group)` — intractable past ~4 cuts — so this path exists
    /// as the pristine differential-testing reference for the contracted
    /// backend (`tests/fragment_contraction.rs`) and as the fallback for
    /// plans the contraction does not support (cross-fragment
    /// feed-forward, oversized groups — see
    /// [`contraction_ineligibility`]).
    pub fn compile_monolithic(plan: &CutPlan, observable: &PauliString) -> Self {
        let circuit = plan.circuit();
        assert_eq!(
            observable.num_qubits(),
            circuit.num_qubits(),
            "observable width must match the planned circuit"
        );
        assert!(
            observable.is_diagonal(),
            "plan estimator supports diagonal (Z/I) observables"
        );
        let (spec, terms) = if plan.groups.is_empty() {
            // Nothing to cut: a single unit-coefficient term.
            let spec = QpdSpec::from_parts(&[(1.0, "uncut", 0.0)]);
            let terms = vec![compile_combo(plan, &[], observable)];
            (spec, terms)
        } else {
            let group_terms: Vec<Vec<MultiCutTerm>> =
                plan.groups.iter().map(|g| g.terms()).collect();
            let group_specs: Vec<QpdSpec> = plan.groups.iter().map(|g| g.spec()).collect();
            let spec = QpdSpec::product(&group_specs);
            let lens: Vec<usize> = group_terms.iter().map(|t| t.len()).collect();
            let total: usize = lens.iter().product();
            assert_eq!(spec.len(), total);
            let mut terms = Vec::with_capacity(total);
            // Row-major enumeration, last group fastest — the same order
            // `QpdSpec::product` uses, so coefficients line up.
            for combo_idx in 0..total {
                let mut rem = combo_idx;
                let mut picked: Vec<&MultiCutTerm> = vec![&group_terms[0][0]; lens.len()];
                for g in (0..lens.len()).rev() {
                    picked[g] = &group_terms[g][rem % lens[g]];
                    rem /= lens[g];
                }
                terms.push(compile_combo(plan, &picked, observable));
            }
            (spec, terms)
        };
        let mut backend_report = BackendReport {
            terms: terms.len(),
            ..BackendReport::default()
        };
        for t in &terms {
            let p = t.clifford_prefix().expect("stitched term has a circuit");
            if p.prefix_len > 0 {
                backend_report.hybrid_terms += 1;
            }
            backend_report.total_instructions += p.total;
            backend_report.clifford_instructions += p.prefix_len;
            backend_report.gates_fused += t.fusion_stats().expect("stitched term").gates_fused;
        }
        let compiled = Self {
            spec,
            terms,
            report: plan.report(),
            backend: PlanBackend::Monolithic,
            backend_report,
            fragment_summaries: Vec::new(),
            fallback_reason: None,
        };
        if cfg!(debug_assertions) {
            compiled
                .verify_groups(1e-8)
                .expect("compiled plan failed group verification");
        }
        compiled
    }

    /// Term samplers for the `qpd` estimator functions.
    pub fn samplers(&self) -> Vec<&dyn TermSampler> {
        self.terms.iter().map(|t| t as &dyn TermSampler).collect()
    }

    /// The compiled terms, aligned with [`CompiledPlan::spec`].
    pub fn plan_terms(&self) -> &[PlanTerm] {
        &self.terms
    }

    /// Exact decomposed value `Σ cᵢ·⟨O⟩ᵢ` — must equal the uncut
    /// statevector expectation for a correct plan.
    pub fn exact_value(&self) -> f64 {
        qpd::exact_value(&self.spec, &self.samplers())
    }

    /// Exact per-term expectations, aligned with [`CompiledPlan::spec`].
    pub fn exact_terms(&self) -> Vec<f64> {
        self.terms.iter().map(|t| t.exact_expectation()).collect()
    }

    /// The plan's γ/κ overhead report.
    pub fn report(&self) -> &PlanReport {
        &self.report
    }

    /// Which compilation backend produced this plan.
    pub fn backend(&self) -> PlanBackend {
        self.backend
    }

    /// Which simulator backends the plan's compiled circuits actually
    /// rode — the fast-path visibility the service surfaces per job.
    /// Aggregated over stitched term circuits (monolithic) or fragment
    /// prep variants (contracted), and captured at compile time.
    pub fn backend_report(&self) -> BackendReport {
        self.backend_report
    }

    /// Per-fragment compilation summaries — one per plan fragment on the
    /// contracted backend, empty on the monolithic backend.
    pub fn fragment_summaries(&self) -> &[FragmentBlockSummary] {
        &self.fragment_summaries
    }

    /// Why [`CompiledPlan::compile`] fell back to the monolithic
    /// backend (the [`contraction_ineligibility`] reason), `None` on
    /// the contracted path or when a monolithic compile was requested
    /// explicitly.
    pub fn fallback_reason(&self) -> Option<&str> {
        self.fallback_reason.as_deref()
    }

    /// Per-group verification at `Σ terms(group)` cost — the check that
    /// runs on every debug/test-build compile. Each cut group's own QPD
    /// spec must validate (coefficients sum to 1), the per-group κ
    /// product must match the plan report, and every joint-MUB width
    /// must pass [`JointWireCut::verify_deviation`] **once** — never per
    /// term combination, which would explode as `Π terms` at 4+ cuts.
    pub fn verify_groups(&self, tol: f64) -> Result<(), String> {
        let mut kappa_product = 1.0f64;
        let mut verified_widths: Vec<usize> = Vec::new();
        for g in &self.report.groups {
            let spec = protocol_spec(g.protocol, g.wires);
            spec.validate(tol.max(1e-9))
                .map_err(|e| format!("{}-wire group spec invalid: {e}", g.wires))?;
            if (spec.kappa() - g.kappa).abs() > 1e-9 * g.kappa.max(1.0) {
                return Err(format!(
                    "{}-wire group κ {} disagrees with report {}",
                    g.wires,
                    spec.kappa(),
                    g.kappa
                ));
            }
            kappa_product *= spec.kappa();
            if g.protocol == Protocol::JointMub && !verified_widths.contains(&g.wires) {
                let dev = JointWireCut::new(g.wires).verify_deviation();
                if dev > tol {
                    return Err(format!(
                        "joint {}-wire group deviates from identity by {dev}",
                        g.wires
                    ));
                }
                verified_widths.push(g.wires);
            }
        }
        if (kappa_product - self.report.kappa).abs() > 1e-9 * self.report.kappa.max(1.0) {
            return Err(format!(
                "per-group κ product {} disagrees with plan report {}",
                kappa_product, self.report.kappa
            ));
        }
        Ok(())
    }

    /// **Exhaustive** structural verification — [`verify_groups`]
    /// (per-group checks) plus validation of the full `Π terms` product
    /// spec and its κ. The product-spec walk makes this exponential in
    /// the cut count, so it belongs in tests and differential suites,
    /// not on the compile path.
    ///
    /// [`verify_groups`]: CompiledPlan::verify_groups
    pub fn verify(&self, tol: f64) -> Result<(), String> {
        self.verify_groups(tol)?;
        self.spec
            .validate(tol.max(1e-9))
            .map_err(|e| format!("plan spec invalid: {e}"))?;
        if (self.spec.kappa() - self.report.kappa).abs() > 1e-9 * self.report.kappa.max(1.0) {
            return Err(format!(
                "plan κ {} disagrees with per-group product {}",
                self.spec.kappa(),
                self.report.kappa
            ));
        }
        Ok(())
    }
}

/// Stitches one monolithic circuit for one per-group term combination:
/// original instructions are threaded through per-wire *carrier* qubits,
/// and at each group's boundary the picked term circuit is spliced in
/// (term inputs ↦ current carriers, everything else ↦ fresh qubits,
/// term outputs become the new carriers).
fn compile_combo(plan: &CutPlan, picked: &[&MultiCutTerm], observable: &PauliString) -> PlanTerm {
    let circuit = plan.circuit();
    let n0 = circuit.num_qubits();
    let extra_qubits: usize = picked
        .iter()
        .map(|t| t.circuit.num_qubits() - t.input_qubits.len())
        .sum();
    let extra_clbits: usize = picked.iter().map(|t| t.circuit.num_clbits()).sum();
    let total_qubits = n0 + extra_qubits;
    let mut out = Circuit::new(total_qubits, circuit.num_clbits() + extra_clbits);
    let mut carrier: Vec<usize> = (0..n0).collect();
    let mut q_next = n0;
    let mut c_next = circuit.num_clbits();
    for (fi, frag) in plan.fragments.iter().enumerate() {
        for &idx in &frag.instructions {
            out.push(map_through_carriers(&circuit.instructions()[idx], &carrier));
        }
        for (gi, group) in plan.groups.iter().enumerate() {
            if group.source_fragment() != fi {
                continue;
            }
            let t = picked[gi];
            let mut qmap = vec![usize::MAX; t.circuit.num_qubits()];
            for (i, &iq) in t.input_qubits.iter().enumerate() {
                qmap[iq] = carrier[group.cuts[i].wire];
            }
            for slot in qmap.iter_mut() {
                if *slot == usize::MAX {
                    *slot = q_next;
                    q_next += 1;
                }
            }
            let cmap: Vec<usize> = (0..t.circuit.num_clbits()).map(|c| c_next + c).collect();
            c_next += t.circuit.num_clbits();
            out.compose_mapped(&t.circuit, &qmap, &cmap);
            for (i, &oq) in t.output_qubits.iter().enumerate() {
                carrier[group.cuts[i].wire] = qmap[oq];
            }
        }
    }
    let sampler = CompiledSampler::compile(&out, None);
    let mut z_mask = 0usize;
    for (w, &q) in carrier.iter().enumerate() {
        if observable.op(w) == qsim::Pauli::Z {
            z_mask |= 1 << q;
        }
    }
    let exact = sampler
        .leaves()
        .iter()
        .map(|l| {
            let mut acc = 0.0;
            for (idx, p) in l.state.probabilities().iter().enumerate() {
                let sign = if (idx & z_mask).count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                acc += sign * p;
            }
            l.probability * acc
        })
        .sum();
    PlanTerm {
        body: TermBody::Stitched {
            sampler,
            z_mask,
            num_qubits: total_qubits,
        },
        exact,
    }
}

/// Remaps one original-circuit instruction through the current carriers.
fn map_through_carriers(instr: &Instruction, carrier: &[usize]) -> Instruction {
    let op = match &instr.op {
        Op::Gate(g, qs) => Op::Gate(g.clone(), qs.iter().map(|&q| carrier[q]).collect()),
        Op::Measure { qubit, clbit } => Op::Measure {
            qubit: carrier[*qubit],
            clbit: *clbit,
        },
        Op::Reset(q) => Op::Reset(carrier[*q]),
        Op::Barrier => Op::Barrier,
    };
    Instruction {
        op,
        condition: instr.condition,
    }
}

/// The uncut reference: exact expectation of a diagonal (Z/I) observable
/// after running `circuit` from `|0…0⟩`, via the same branch-tree
/// enumeration the plan terms use.
pub fn uncut_plan_expectation(circuit: &Circuit, observable: &PauliString) -> f64 {
    assert_eq!(observable.num_qubits(), circuit.num_qubits());
    assert!(observable.is_diagonal());
    let sampler = CompiledSampler::compile(circuit, None);
    let mut z_mask = 0usize;
    for q in 0..circuit.num_qubits() {
        if observable.op(q) == qsim::Pauli::Z {
            z_mask |= 1 << q;
        }
    }
    sampler
        .leaves()
        .iter()
        .map(|l| {
            let mut acc = 0.0;
            for (idx, p) in l.state.probabilities().iter().enumerate() {
                let sign = if (idx & z_mask).count_ones().is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                acc += sign * p;
            }
            l.probability * acc
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ladder(n: usize) -> Circuit {
        let mut c = Circuit::new(n, 0);
        c.ry(0.4, 0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    #[test]
    fn crossover_matches_known_values() {
        // f*(1) = 1/2 (γ = 3 at f = 1/2); rises towards 2/3.
        assert!((crossover_overlap(1) - 0.5).abs() < 1e-12);
        let f2 = crossover_overlap(2);
        assert!((f2 - 2.0 / (7.0f64.sqrt() + 1.0)).abs() < 1e-12);
        for n in 1..8 {
            assert!(crossover_overlap(n) < crossover_overlap(n + 1));
            assert!(crossover_overlap(n) < 2.0 / 3.0);
        }
    }

    #[test]
    fn ladder_plan_produces_three_fragments() {
        let c = ladder(5);
        let plan = CutPlanner::new(2).plan(&c);
        assert!(plan.fragments.len() >= 3, "{:?}", plan.fragments);
        assert!(plan.num_cuts() >= plan.fragments.len() - 1);
        for f in &plan.fragments {
            assert!(f.width() <= 2);
        }
        // Every cut names a real circuit wire.
        for g in &plan.groups {
            for cut in &g.cuts {
                assert!(cut.wire < c.num_qubits());
                assert!(cut.source_fragment < cut.dest_fragment);
            }
        }
    }

    #[test]
    fn repeated_cuts_on_one_wire() {
        // Wire 0 re-used in three width-2 fragments ⇒ two cuts on it.
        let mut c = Circuit::new(3, 0);
        c.ry(0.3, 0).cx(0, 1).cx(0, 2).cx(0, 1);
        let plan = CutPlanner::new(2).plan(&c);
        let cuts_on_0: usize = plan
            .groups
            .iter()
            .flat_map(|g| &g.cuts)
            .filter(|cut| cut.wire == 0)
            .count();
        assert!(cuts_on_0 >= 2, "wire 0 cut {cuts_on_0} times: {plan:?}");
    }

    #[test]
    fn protocol_follows_the_crossover_map() {
        // Two wires crossing one boundary: f = 0.9 > f*(2) ⇒ NME;
        // f = 0.52 < f*(2) ≈ 0.5486 ⇒ joint MUB.
        let mut c = Circuit::new(4, 0);
        c.ry(0.4, 0).cx(0, 1).cx(0, 2).cx(1, 3).cx(2, 3);
        let pick = |f: f64| {
            let plan = CutPlanner::new(3).with_overlap(f).plan(&c);
            let two_wire: Vec<Protocol> = plan
                .groups
                .iter()
                .filter(|g| g.num_wires() == 2)
                .map(|g| g.protocol)
                .collect();
            assert!(!two_wire.is_empty(), "no 2-wire group: {plan:?}");
            two_wire[0]
        };
        assert!(matches!(pick(0.9), Protocol::Nme { .. }));
        assert_eq!(pick(0.52), Protocol::JointMub);
    }

    #[test]
    fn plan_kappa_is_product_of_groups() {
        let c = ladder(5);
        let plan = CutPlanner::new(2).with_overlap(0.8).plan(&c);
        let expect: f64 = plan.groups.iter().map(|g| g.kappa).product();
        assert!((plan.kappa() - expect).abs() < 1e-12);
        // f = 0.8 ⇒ every single-wire group is NME with γ = 2/0.8 − 1 = 1.5.
        let gamma = 1.5f64;
        assert!(
            (plan.kappa() - gamma.powi(plan.num_cuts() as i32)).abs() < 1e-9,
            "κ {} vs γ^cuts {}",
            plan.kappa(),
            gamma.powi(plan.num_cuts() as i32)
        );
        let report = plan.report();
        assert_eq!(report.num_cuts, plan.num_cuts());
        assert!((report.sampling_overhead - plan.kappa() * plan.kappa()).abs() < 1e-9);
    }

    #[test]
    fn compiled_ladder_plan_matches_uncut_expectation() {
        let c = ladder(4);
        // GHZ-like state cos(0.2)|0000⟩ + sin(0.2)|1111⟩: any single
        // ⟨Zᵢ⟩ = cos(0.4), and the even-parity ⟨ZZZZ⟩ = 1.
        let single = PauliString::from_label("ZIII");
        let expect = uncut_plan_expectation(&c, &single);
        assert!((expect - 0.4f64.cos()).abs() < 1e-9);
        let parity = PauliString::from_label("ZZZZ");
        assert!((uncut_plan_expectation(&c, &parity) - 1.0).abs() < 1e-9);
        for f in [1.0, 0.8] {
            let plan = CutPlanner::new(2).with_overlap(f).plan(&c);
            assert!(plan.fragments.len() >= 2);
            for obs in [&single, &parity] {
                let compiled = CompiledPlan::compile(&plan, obs);
                let reference = uncut_plan_expectation(&c, obs);
                assert!(
                    (compiled.exact_value() - reference).abs() < 1e-8,
                    "f={f}: plan {} vs uncut {reference}",
                    compiled.exact_value()
                );
                compiled.verify(1e-8).unwrap();
            }
        }
    }

    #[test]
    fn backend_report_aggregates_term_prefixes() {
        // A Clifford-heavy plan: the ladder is H-free but all-CX after
        // one Ry, so every stitched term has a dense head (the Ry) and
        // the clifford_fraction reflects the per-term prefix analysis.
        let c = ladder(4);
        let obs = PauliString::from_label("ZZZZ");
        let plan = CutPlanner::new(2).with_overlap(0.8).plan(&c);
        let compiled = CompiledPlan::compile_monolithic(&plan, &obs);
        assert_eq!(compiled.backend(), PlanBackend::Monolithic);
        let r = compiled.backend_report();
        assert_eq!(r.terms, compiled.plan_terms().len());
        assert!(r.total_instructions > 0);
        assert!(r.clifford_fraction() >= 0.0 && r.clifford_fraction() <= 1.0);
        let prefix_sum: usize = compiled
            .plan_terms()
            .iter()
            .map(|t| t.clifford_prefix().unwrap().prefix_len)
            .sum();
        assert_eq!(prefix_sum, r.clifford_instructions);
        // An all-Clifford circuit compiles to a plan whose uncut single
        // term is fully on the fast path.
        let mut cliff = Circuit::new(2, 0);
        cliff.h(0).cx(0, 1).cx(0, 1).cx(0, 1);
        let plan = CutPlanner::new(4).plan(&cliff);
        let compiled = CompiledPlan::compile(&plan, &PauliString::from_label("ZZ"));
        let r = compiled.backend_report();
        assert!(
            (r.clifford_fraction() - 1.0).abs() < 1e-12,
            "all-Clifford plan reports fraction {}",
            r.clifford_fraction()
        );
        assert_eq!(r.hybrid_terms, r.terms);
    }

    #[test]
    fn compiled_joint_plan_matches_uncut_expectation() {
        // Force a 2-wire joint MUB group with low overlap.
        let mut c = Circuit::new(4, 0);
        c.ry(0.7, 0).cx(0, 1).cx(0, 2).cx(1, 3).cx(2, 3);
        let obs = PauliString::from_label("ZZZZ");
        let expect = uncut_plan_expectation(&c, &obs);
        let plan = CutPlanner::new(3).with_overlap(0.52).plan(&c);
        assert!(
            plan.groups
                .iter()
                .any(|g| g.protocol == Protocol::JointMub && g.num_wires() == 2),
            "{plan:?}"
        );
        let compiled = CompiledPlan::compile(&plan, &obs);
        assert!(
            (compiled.exact_value() - expect).abs() < 1e-8,
            "joint plan {} vs uncut {expect}",
            compiled.exact_value()
        );
    }

    #[test]
    fn uncuttable_plan_compiles_as_single_term() {
        let c = ladder(3);
        let plan = CutPlanner::new(3).plan(&c);
        assert!(plan.groups.is_empty());
        assert!((plan.kappa() - 1.0).abs() < 1e-12);
        let obs = PauliString::from_label("ZZZ");
        let compiled = CompiledPlan::compile(&plan, &obs);
        assert_eq!(compiled.spec.len(), 1);
        assert!((compiled.exact_value() - uncut_plan_expectation(&c, &obs)).abs() < 1e-10);
    }

    #[test]
    fn random_circuit_plans_are_exact_and_deterministic() {
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let c = qsim::random_unitary_circuit(4, 8, &mut rng);
            let obs = PauliString::from_label("ZZZZ");
            let expect = uncut_plan_expectation(&c, &obs);
            let planner = CutPlanner::new(3).with_overlap(0.9);
            let plan = planner.plan(&c);
            for frag in &plan.fragments {
                assert!(frag.width() <= 3);
            }
            let compiled = CompiledPlan::compile(&plan, &obs);
            assert!(
                (compiled.exact_value() - expect).abs() < 1e-8,
                "seed {seed}: {} vs {expect}",
                compiled.exact_value()
            );
            // Determinism: replanning yields the identical structure.
            let again = planner.plan(&c);
            assert_eq!(format!("{plan:?}"), format!("{again:?}"));
        }
    }

    #[test]
    fn plan_keys_hash_content_not_identity() {
        let c = ladder(4);
        let obs = PauliString::from_label("ZZZZ");
        let planner = CutPlanner::new(2).with_overlap(0.9);
        // Stable across recomputation and across clones of the inputs.
        let k = planner.plan_key(&c, &obs);
        assert_eq!(k, planner.plan_key(&c.clone(), &obs.clone()));
        // Any semantic change to the request moves the key.
        assert_ne!(k, planner.plan_key(&c, &PauliString::from_label("ZZZI")));
        assert_ne!(k, CutPlanner::new(3).with_overlap(0.9).plan_key(&c, &obs));
        assert_ne!(k, CutPlanner::new(2).with_overlap(0.75).plan_key(&c, &obs));
        let mut c2 = c.clone();
        c2.rz(0.1, 0);
        assert_ne!(k, planner.plan_key(&c2, &obs));
    }

    #[test]
    fn plan_key_normalises_negative_zero_parameters() {
        let planner = CutPlanner::new(2);
        let obs = PauliString::from_label("ZZ");
        let mut a = Circuit::new(2, 0);
        a.rz(0.0, 0);
        let mut b = Circuit::new(2, 0);
        b.rz(-0.0, 0);
        assert_eq!(planner.plan_key(&a, &obs), planner.plan_key(&b, &obs));
    }

    #[test]
    fn plan_key_distinguishes_gate_variants_and_conditions() {
        let planner = CutPlanner::new(2);
        let obs = PauliString::from_label("ZZ");
        let mut a = Circuit::new(2, 1);
        a.x(0);
        let mut b = Circuit::new(2, 1);
        b.y(0);
        assert_ne!(planner.plan_key(&a, &obs), planner.plan_key(&b, &obs));
        let mut c = Circuit::new(2, 1);
        c.x_if(0, 0);
        assert_ne!(planner.plan_key(&a, &obs), planner.plan_key(&c, &obs));
    }

    #[test]
    fn auto_compile_selects_the_backend_by_plan_shape() {
        // Unitary cut plan ⇒ contracted; per-term exacts must agree with
        // the monolithic reference to 1e-8 (QPD bookkeeping aligned).
        let c = ladder(4);
        let obs = PauliString::from_label("ZZZZ");
        let plan = CutPlanner::new(2).with_overlap(0.8).plan(&c);
        let auto = CompiledPlan::compile(&plan, &obs);
        assert_eq!(auto.backend(), PlanBackend::Contracted);
        assert_eq!(auto.fragment_summaries().len(), plan.fragments.len());
        assert!(auto.plan_terms().iter().all(|t| t.is_contracted()));
        let mono = CompiledPlan::compile_monolithic(&plan, &obs);
        assert_eq!(auto.spec.len(), mono.spec.len());
        for (a, m) in auto.exact_terms().iter().zip(mono.exact_terms()) {
            assert!((a - m).abs() < 1e-8, "contracted {a} vs monolithic {m}");
        }
        assert_eq!(auto.fallback_reason(), None);
        // Measurement with a fragment-local clbit ⇒ still contracted:
        // the block sums over the outcome branches, and the per-term
        // exacts must match the monolithic reference.
        let mut mc = Circuit::new(3, 1);
        mc.ry(0.4, 0).cx(0, 1).cx(1, 2).measure(2, 0);
        let plan = CutPlanner::new(2).plan(&mc);
        assert!(!plan.groups.is_empty());
        let mobs = PauliString::from_label("ZZI");
        let compiled = CompiledPlan::compile(&plan, &mobs);
        assert_eq!(compiled.backend(), PlanBackend::Contracted);
        let mono = CompiledPlan::compile_monolithic(&plan, &mobs);
        for (a, m) in compiled.exact_terms().iter().zip(mono.exact_terms()) {
            assert!((a - m).abs() < 1e-8, "contracted {a} vs monolithic {m}");
        }
        // A clbit shared between fragments ⇒ monolithic fallback, with
        // the ineligibility reason surfaced on the compiled plan.
        let mut ff = Circuit::new(3, 1);
        ff.ry(0.4, 0).cx(0, 1).measure(1, 0).cx(1, 2).x_if(2, 0);
        let plan = CutPlanner::new(2).plan(&ff);
        assert!(!plan.groups.is_empty());
        let compiled = CompiledPlan::compile(&plan, &PauliString::from_label("ZZI"));
        assert_eq!(compiled.backend(), PlanBackend::Monolithic);
        assert!(compiled.fragment_summaries().is_empty());
        let reason = compiled.fallback_reason().expect("fallback must be named");
        assert!(reason.contains("classical bit"), "{reason}");
    }

    #[test]
    fn contracted_backend_report_counts_fragment_variants() {
        let c = ladder(4);
        let obs = PauliString::from_label("ZZZZ");
        let plan = CutPlanner::new(2).with_overlap(0.8).plan(&c);
        let compiled = CompiledPlan::compile_contracted(&plan, &obs);
        let r = compiled.backend_report();
        let variants: usize = compiled
            .fragment_summaries()
            .iter()
            .map(|s| s.variants)
            .sum();
        assert_eq!(r.terms, variants);
        assert!(r.total_instructions > 0);
        // Σ 6^incoming is far below the Π terms the monolithic path
        // would compile once the plan has a few cuts.
        assert!(variants >= plan.fragments.len());
    }

    #[test]
    fn plan_estimate_converges_with_sampling() {
        let c = ladder(4);
        let obs = PauliString::from_label("ZZZZ");
        let plan = CutPlanner::new(2).with_overlap(0.9).plan(&c);
        let compiled = CompiledPlan::compile(&plan, &obs);
        let exact = compiled.exact_value();
        let mut rng = StdRng::seed_from_u64(17);
        let reps = 30;
        let mean: f64 = (0..reps)
            .map(|_| {
                qpd::estimate_allocated(
                    &compiled.spec,
                    &compiled.samplers(),
                    2000,
                    qpd::Allocator::Proportional,
                    &mut rng,
                )
            })
            .sum::<f64>()
            / reps as f64;
        // SE ≈ κ/√(reps·shots); κ ≈ 1.9 ⇒ SE ≈ 0.008. Allow ~5σ.
        assert!((mean - exact).abs() < 0.05, "mean {mean} vs exact {exact}");
    }
}

//! # Cutting as a service: the estimation-job engine
//!
//! The ROADMAP's production shape for heavy traffic: a library-level job
//! engine accepting estimation requests — circuit + observable + shot
//! budget + seed — from many concurrent clients, where the expensive
//! work (planning and compiling a [`CompiledPlan`]: MUB construction,
//! term stitching, per-term statevector simulation) is paid **once per
//! distinct plan** and every repeat request only pays for sampling.
//!
//! * **Compiled-plan cache** — requests are content-hashed into a
//!   [`PlanKey`] ([`CutPlanner::plan_key`]); compiled plans live behind a
//!   sharded read-through cache (`Arc<CompiledPlan>` under per-shard
//!   mutexes, shard = key mod [`CACHE_SHARDS`]), extending the MUB
//!   memoization discipline to whole plans. Compilation happens outside
//!   the shard lock; when two clients race on the same cold key, both
//!   compile (the plans are identical — compilation is deterministic)
//!   and the first insert wins, so the cache never blocks sampling.
//! * **Batched execution with streaming partials** — a job's budget is
//!   spent in batches; after each batch the pooled estimate so far is
//!   streamed to the caller ([`BatchUpdate`], via the callback of
//!   [`CutService::run_job_with`]) and recorded in the final
//!   [`JobOutcome`].
//! * **Sequential shot allocation** — in
//!   [`AllocationMode::Sequential`] each batch's split across QPD terms
//!   is re-planned from the per-term variance observed so far
//!   ([`qpd::SequentialAllocator`]), converging to the Neyman-optimal
//!   [`qpd::neyman_allocation`] as counts grow; static proportional and
//!   uniform splits remain available for ablation.
//! * **Work-stealing fan-out** — [`CutService::run_jobs`] schedules many
//!   jobs on the [`qsample::grid::ShardedGrid`] pool, the same engine
//!   behind every experiment sweep.
//!
//! ## Determinism contract
//!
//! A job's results are **byte-identical** given `(seed, plan)` — at any
//! thread count, any cache state (cold or warm), any submission order,
//! and whether it runs alone via [`CutService::run_job`] or inside a
//! [`CutService::run_jobs`] fleet. This holds because every random draw
//! comes from a counter-based stream addressed purely by content:
//!
//! ```text
//! lane(job, batch, term) = StreamRng::new(job.seed, plan_key).derive(&[batch, term])
//! ```
//!
//! Nothing about scheduling (thread ids, completion order, cache
//! hit/miss history) enters the stream address. Cache **statistics**
//! ([`CutService::cache_stats`]) are the one deliberately racy
//! observable — two concurrent cold requests for one key may both count
//! a miss — so they are reported out-of-band and never mixed into
//! deterministic outputs. `tests/service_determinism.rs` pins the whole
//! contract.

use crate::planner::{CompiledPlan, CutPlanner, PlanBackend, PlanKey};
use parking_lot::Mutex;
use qpd::{Allocator, SequentialAllocator};
use qsample::{GridKey, KeyHasher, ShardedGrid, StreamRng};
use qsim::{Circuit, PauliString};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independent cache shards: plan keys are distributed by
/// `key mod CACHE_SHARDS`, so concurrent clients contend on a shard only
/// when their keys collide mod this. 16 comfortably covers the engine's
/// worker-thread cap.
pub const CACHE_SHARDS: usize = 16;

/// How a job's shot budget is split across QPD terms within each batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocationMode {
    /// Every batch on the paper's static `nᵢ ∝ |cᵢ|` split.
    StaticProportional,
    /// Every batch split equally across terms.
    StaticUniform,
    /// First batch proportional, later batches Neyman-optimal for the
    /// per-term σ̂ observed so far ([`SequentialAllocator`]).
    Sequential,
}

impl AllocationMode {
    fn code(self) -> u64 {
        match self {
            AllocationMode::StaticProportional => 0,
            AllocationMode::StaticUniform => 1,
            AllocationMode::Sequential => 2,
        }
    }
}

/// One estimation request: estimate `⟨observable⟩` on `circuit` from
/// `shots` samples of its compiled cut plan.
#[derive(Clone, Debug)]
pub struct EstimationJob {
    /// The circuit to cut and estimate.
    pub circuit: Circuit,
    /// Diagonal (Z/I) observable over the circuit wires.
    pub observable: PauliString,
    /// Total shot budget.
    pub shots: u64,
    /// The job's RNG seed: results are a pure function of
    /// `(seed, plan)`.
    pub seed: u64,
    /// Number of shot batches the budget is spent in (≥ 1; partial
    /// estimates stream after each).
    pub batches: u64,
    /// Per-batch allocation strategy.
    pub mode: AllocationMode,
}

impl EstimationJob {
    /// A sequential-allocation job with four batches — the service
    /// default; override with [`with_batches`](Self::with_batches) /
    /// [`with_mode`](Self::with_mode).
    pub fn new(circuit: Circuit, observable: PauliString, shots: u64, seed: u64) -> Self {
        EstimationJob {
            circuit,
            observable,
            shots,
            seed,
            batches: 4,
            mode: AllocationMode::Sequential,
        }
    }

    /// Sets the batch count (≥ 1).
    pub fn with_batches(mut self, batches: u64) -> Self {
        assert!(batches >= 1, "a job needs at least one batch");
        self.batches = batches;
        self
    }

    /// Sets the allocation mode.
    pub fn with_mode(mut self, mode: AllocationMode) -> Self {
        self.mode = mode;
        self
    }
}

/// One streamed partial result: the pooled estimate after `batch`
/// batches have completed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchUpdate {
    /// 0-based index of the batch that just completed.
    pub batch: u64,
    /// Shots spent in this batch.
    pub shots_used: u64,
    /// Pooled estimate over all batches so far.
    pub estimate: f64,
}

/// The completed result of one estimation job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Final pooled estimate `Σᵢ cᵢ · meanᵢ`.
    pub estimate: f64,
    /// The plan's exact decomposed value (equals the uncut expectation).
    pub exact: f64,
    /// Plan sampling overhead `κ`.
    pub kappa: f64,
    /// Shots actually spent (the job's full budget).
    pub shots: u64,
    /// Content hash the plan was cached under.
    pub plan_key: PlanKey,
    /// Whether the compiled plan came out of the cache. Diagnostic only:
    /// under concurrency a cold key may be compiled by several clients
    /// at once, so this flag is **not** part of the deterministic
    /// output.
    pub cache_hit: bool,
    /// The streamed per-batch partials, in batch order.
    pub updates: Vec<BatchUpdate>,
    /// Pooled per-term shot counts (sums to `shots`).
    pub allocation: Vec<u64>,
    /// Fraction of the plan's compiled instructions that landed on the
    /// stabilizer fast path (see
    /// [`crate::planner::BackendReport::clifford_fraction`]).
    pub clifford_fraction: f64,
    /// Which compilation backend the plan rode — contracted
    /// fragment-block compilation or the monolithic stitching reference
    /// (see [`crate::planner::PlanBackend`]).
    pub backend: PlanBackend,
    /// Circuit units the backend compiled: stitched term circuits
    /// (monolithic) or fragment prep variants (contracted). The
    /// contracted count is `Σ variants(fragment)` and stays flat in the
    /// cut count where the monolithic `Π terms(group)` explodes.
    pub compiled_units: usize,
    /// Prefix-cache hits of the contracted backend's odometer sweep —
    /// Σ over terms of the resume depth (0 on the monolithic path).
    pub prefix_hits: usize,
    /// Frontier matrix multiplications the contracted sweep performed.
    pub frontier_ops: usize,
    /// Frontier multiplications a cache-disabled sweep would have
    /// performed (see [`crate::planner::BackendReport`]).
    pub frontier_ops_uncached: usize,
}

/// A job tagged with its plan key for grid scheduling.
struct KeyedJob<'a> {
    job: &'a EstimationJob,
    key: PlanKey,
    index: usize,
}

impl GridKey for KeyedJob<'_> {
    fn absorb(&self, h: &mut KeyHasher) {
        // Identity for *scheduling* only — job randomness never flows
        // through the grid's ShardCtx streams (see the module docs), so
        // absorbing the fleet index is safe and keeps duplicate
        // submissions distinct.
        h.absorb(self.key.0);
        h.absorb(self.job.seed);
        h.absorb(self.job.shots);
        h.absorb(self.job.batches);
        h.absorb(self.job.mode.code());
        h.absorb(self.index as u64);
    }
}

/// The job engine: a [`CutPlanner`] plus a sharded read-through cache of
/// compiled plans. Cheap to share (`&CutService` is `Sync`); one
/// long-lived instance serves arbitrarily many clients.
pub struct CutService {
    planner: CutPlanner,
    shards: Vec<Mutex<HashMap<u64, Arc<CompiledPlan>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CutService {
    /// A service compiling plans with `planner`.
    pub fn new(planner: CutPlanner) -> Self {
        CutService {
            planner,
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The planner this service compiles with.
    pub fn planner(&self) -> &CutPlanner {
        &self.planner
    }

    /// Read-through lookup: the compiled plan for `(circuit,
    /// observable)`, its [`PlanKey`], and whether it was served from the
    /// cache. Compilation happens outside the shard lock; on a concurrent
    /// cold race the first insert wins and later compilers adopt it.
    pub fn compiled(
        &self,
        circuit: &Circuit,
        observable: &PauliString,
    ) -> (Arc<CompiledPlan>, PlanKey, bool) {
        let key = self.planner.plan_key(circuit, observable);
        let shard = &self.shards[(key.0 as usize) % self.shards.len()];
        if let Some(plan) = shard.lock().get(&key.0).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (plan, key, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(CompiledPlan::compile(
            &self.planner.plan(circuit),
            observable,
        ));
        let plan = shard.lock().entry(key.0).or_insert(compiled).clone();
        (plan, key, false)
    }

    /// `(hits, misses)` so far. Racy by design (see the module docs) —
    /// never fold these into deterministic outputs.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct plans currently cached.
    pub fn cache_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Drops every cached plan (the determinism contract makes this
    /// invisible to job results).
    pub fn clear_cache(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Runs one job to completion. Equivalent to
    /// [`run_job_with`](Self::run_job_with) with a no-op callback.
    pub fn run_job(&self, job: &EstimationJob) -> JobOutcome {
        self.run_job_with(job, |_| {})
    }

    /// Runs one job, invoking `on_batch` with each partial estimate as
    /// its batch completes (the streaming interface; the same updates
    /// are also collected into the returned [`JobOutcome`]).
    pub fn run_job_with<F: FnMut(&BatchUpdate)>(
        &self,
        job: &EstimationJob,
        mut on_batch: F,
    ) -> JobOutcome {
        assert!(job.batches >= 1, "a job needs at least one batch");
        let (plan, key, cache_hit) = self.compiled(&job.circuit, &job.observable);
        let samplers = plan.samplers();
        let num_terms = plan.spec.len();
        let mut seq = SequentialAllocator::new(num_terms);
        let mut updates = Vec::with_capacity(job.batches as usize);
        let per_batch = job.shots / job.batches;
        for batch in 0..job.batches {
            let budget = if batch + 1 == job.batches {
                job.shots - per_batch * (job.batches - 1)
            } else {
                per_batch
            };
            if budget == 0 {
                continue;
            }
            let allocation = match job.mode {
                AllocationMode::StaticProportional => {
                    Allocator::Proportional.allocate(&plan.spec, budget)
                }
                AllocationMode::StaticUniform => Allocator::Uniform.allocate(&plan.spec, budget),
                AllocationMode::Sequential => seq.next_allocation(&plan.spec, budget),
            };
            for (term, &n) in allocation.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                // The whole determinism contract in one line: the lane is
                // addressed by content (seed, plan key, batch, term) and
                // nothing else.
                let mut lane = StreamRng::new(job.seed, key.0).derive(&[batch, term as u64]);
                seq.record(term, samplers[term].sample_observable_sum(n, &mut lane), n);
            }
            let update = BatchUpdate {
                batch,
                shots_used: budget,
                estimate: seq.estimate(&plan.spec),
            };
            on_batch(&update);
            updates.push(update);
        }
        JobOutcome {
            estimate: updates.last().map_or(0.0, |u| u.estimate),
            exact: plan.exact_value(),
            kappa: plan.report().kappa,
            shots: job.shots,
            plan_key: key,
            cache_hit,
            updates,
            allocation: (0..num_terms).map(|i| seq.count(i)).collect(),
            clifford_fraction: plan.backend_report().clifford_fraction(),
            backend: plan.backend(),
            compiled_units: plan.backend_report().terms,
            prefix_hits: plan.backend_report().prefix_hits,
            frontier_ops: plan.backend_report().frontier_ops,
            frontier_ops_uncached: plan.backend_report().frontier_ops_uncached,
        }
    }

    /// Runs a fleet of jobs on the work-stealing grid pool
    /// (`threads = 0` ⇒ auto), returning outcomes in submission order.
    /// Each job's result is byte-identical to running it alone through
    /// [`run_job`](Self::run_job).
    pub fn run_jobs(&self, jobs: &[EstimationJob], threads: usize) -> Vec<JobOutcome> {
        let keyed: Vec<KeyedJob> = jobs
            .iter()
            .enumerate()
            .map(|(index, job)| KeyedJob {
                job,
                key: self.planner.plan_key(&job.circuit, &job.observable),
                index,
            })
            .collect();
        ShardedGrid::new(keyed, 0)
            .with_threads(threads)
            .run(|keyed, _ctx| self.run_job(keyed.job))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder(n: usize) -> Circuit {
        let mut c = Circuit::new(n, 0);
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
            c.rz(0.3 + 0.1 * q as f64, q + 1);
        }
        c
    }

    fn job(seed: u64) -> EstimationJob {
        EstimationJob::new(ladder(3), PauliString::from_label("ZZZ"), 2000, seed)
    }

    fn service() -> CutService {
        CutService::new(CutPlanner::new(2).with_overlap(0.9))
    }

    #[test]
    fn cold_and_warm_results_are_bit_identical() {
        let svc = service();
        let cold = svc.run_job(&job(7));
        assert!(!cold.cache_hit);
        let warm = svc.run_job(&job(7));
        assert!(warm.cache_hit);
        assert_eq!(cold.estimate.to_bits(), warm.estimate.to_bits());
        assert_eq!(cold.updates, warm.updates);
        assert_eq!(cold.allocation, warm.allocation);
        // A fresh service (empty cache) reproduces them too.
        let fresh = service().run_job(&job(7));
        assert_eq!(cold.estimate.to_bits(), fresh.estimate.to_bits());
    }

    #[test]
    fn fleet_matches_solo_at_any_thread_count() {
        let svc = service();
        let jobs: Vec<EstimationJob> = (0..6).map(job).collect();
        let solo: Vec<f64> = jobs.iter().map(|j| svc.run_job(j).estimate).collect();
        for threads in [1, 2, 7] {
            let fleet = svc.run_jobs(&jobs, threads);
            for (s, f) in solo.iter().zip(fleet.iter()) {
                assert_eq!(s.to_bits(), f.estimate.to_bits(), "threads {threads}");
            }
        }
    }

    #[test]
    fn cache_dedupes_by_content() {
        let svc = service();
        svc.run_job(&job(1));
        svc.run_job(&job(2)); // same plan, different seed → same key
        assert_eq!(svc.cache_len(), 1);
        let (hits, misses) = svc.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        // A different observable is a different plan.
        let mut other = job(1);
        other.observable = PauliString::from_label("ZIZ");
        svc.run_job(&other);
        assert_eq!(svc.cache_len(), 2);
        svc.clear_cache();
        assert_eq!(svc.cache_len(), 0);
    }

    #[test]
    fn updates_stream_in_batch_order_and_spend_the_budget() {
        let svc = service();
        let j = job(3).with_batches(5);
        let mut streamed = Vec::new();
        let out = svc.run_job_with(&j, |u| streamed.push(*u));
        assert_eq!(streamed, out.updates);
        assert_eq!(out.updates.len(), 5);
        for (i, u) in out.updates.iter().enumerate() {
            assert_eq!(u.batch, i as u64);
        }
        assert_eq!(out.updates.iter().map(|u| u.shots_used).sum::<u64>(), 2000);
        assert_eq!(out.allocation.iter().sum::<u64>(), 2000);
        assert_eq!(out.shots, 2000);
    }

    #[test]
    fn estimates_land_near_exact() {
        let svc = service();
        for mode in [
            AllocationMode::StaticProportional,
            AllocationMode::StaticUniform,
            AllocationMode::Sequential,
        ] {
            let mut err = 0.0;
            let reps = 20;
            for seed in 0..reps {
                let out = svc.run_job(&job(seed).with_mode(mode));
                err += (out.estimate - out.exact).abs();
            }
            let mean_err = err / reps as f64;
            // SE per job ≈ κ/√shots ≈ 2.1/45 ≈ 0.047; the mean of |err|
            // over 20 jobs sits well under 5σ of that.
            assert!(mean_err < 0.15, "{mode:?}: mean abs error {mean_err}");
        }
    }

    #[test]
    fn zero_shot_job_completes_empty() {
        let svc = service();
        let mut j = job(5);
        j.shots = 0;
        let out = svc.run_job(&j);
        assert_eq!(out.estimate, 0.0);
        assert!(out.updates.is_empty());
        assert_eq!(out.allocation.iter().sum::<u64>(), 0);
    }

    #[test]
    fn seed_moves_the_estimate_mode_moves_the_allocation() {
        let svc = service();
        let a = svc.run_job(&job(1));
        let b = svc.run_job(&job(2));
        assert_ne!(a.estimate.to_bits(), b.estimate.to_bits());
        let uniform = svc.run_job(&job(1).with_mode(AllocationMode::StaticUniform));
        assert_ne!(a.allocation, uniform.allocation);
        assert_eq!(a.plan_key, uniform.plan_key);
    }
}

//! Quantum teleportation with arbitrary resource states (paper §II-E).
//!
//! The protocol of Figure 3: Bell measurement on the data qubit and the
//! sender half of the resource pair, two classical bits to the receiver,
//! feed-forward `X`/`Z` corrections. With resource `ρ_BC` the induced
//! channel is (Eq. 22)
//!
//! `E^ρ_tel(φ) = Σ_σ ⟨Φ_σ|ρ|Φ_σ⟩ · σ φ σ`,
//!
//! a Pauli channel whose error weights are the Bell overlaps of the
//! resource ([`entangle::bell_overlaps`]). For `|Φ_k⟩` only `I` and `Z`
//! contribute (Eq. 59) — the error model that [`crate::nme`] conjugates
//! into the Theorem 2 terms and [`crate::joint_nme`] lifts to `n` wires
//! as `E^{⊗n}`.

use entangle::{bell_overlaps, PhiK};
use qlinalg::Matrix;
use qsim::{execute_density, Circuit, DensityMatrix, Pauli, Superoperator};

/// Appends the teleportation protocol to `circuit`: teleports the state of
/// `src` onto `receiver` using a resource pair already prepared on
/// `(sender_half, receiver)`. Consumes classical bits `c_z` (Z correction,
/// from the data-qubit measurement) and `c_x` (X correction).
pub fn append_teleportation(
    circuit: &mut Circuit,
    src: usize,
    sender_half: usize,
    receiver: usize,
    c_z: usize,
    c_x: usize,
) {
    circuit.cx(src, sender_half);
    circuit.h(src);
    circuit.measure(src, c_z);
    circuit.measure(sender_half, c_x);
    circuit.x_if(receiver, c_x);
    circuit.z_if(receiver, c_z);
}

/// Builds the complete three-qubit teleportation circuit of Figure 3:
/// qubit 0 = data (A), qubit 1 = resource sender half (B), qubit 2 =
/// receiver (C). `resource_prep` must prepare the resource state on
/// qubits (1, 2) from `|00⟩`.
pub fn teleportation_circuit(resource_prep: &Circuit) -> Circuit {
    assert_eq!(
        resource_prep.num_qubits(),
        3,
        "resource prep must act on the 3-qubit register"
    );
    let mut c = Circuit::new(3, 2);
    c.compose(resource_prep);
    append_teleportation(&mut c, 0, 1, 2, 0, 1);
    c
}

/// Resource preparation circuit for `|Φ_k⟩` on qubits (1, 2) of a
/// three-qubit register.
pub fn phi_k_resource_prep(k: f64) -> Circuit {
    let phi = PhiK::new(k);
    let mut c = Circuit::new(3, 0);
    c.ry(phi.preparation_angle(), 1).cx(1, 2);
    c
}

/// The exact teleportation channel `E^ρ_tel` for a resource given by its
/// two-qubit density operator, via the closed form of Eq. 22.
pub fn teleportation_channel_closed_form(resource: &Matrix) -> Superoperator {
    let q = bell_overlaps(resource);
    let kraus: Vec<Matrix> = Pauli::ALL
        .iter()
        .zip(q.iter())
        .filter(|(_, &w)| w > 1e-15)
        .map(|(p, &w)| p.matrix().scale_re(w.sqrt()))
        .collect();
    Superoperator::from_kraus(&kraus)
}

/// The teleportation channel obtained by **simulating the actual circuit**
/// (measurements, feed-forward and all) with an arbitrary resource
/// preparation on qubits (1, 2), then tracing out everything but the
/// receiver. Tests assert this equals the closed form.
pub fn teleportation_channel_simulated(resource_prep: &Circuit) -> Superoperator {
    let circuit = teleportation_circuit(resource_prep);
    Superoperator::from_linear_map(2, 2, |rho_in| {
        // Full input: data ρ on qubit 0, |0⟩⟨0| on qubits 1, 2 (the
        // resource prep inside the circuit populates them).
        let zero = DensityMatrix::new(1);
        let full = zero
            .tensor(&zero)
            .tensor(&DensityMatrix::from_matrix(1, rho_in.clone()));
        let out = execute_density(&circuit, &full);
        out.partial_trace(&[2]).into_matrix()
    })
}

/// The Pauli-error probabilities of teleportation with resource `Φ_k`
/// (Eq. 59): identity with `(k+1)²/(2(k²+1))`, Z with `(k−1)²/(2(k²+1))`.
pub fn phi_k_error_weights(k: f64) -> [f64; 4] {
    PhiK::new(k).bell_overlaps()
}

/// Entanglement fidelity of the teleportation channel with resource ρ:
/// `F_ent = ⟨Φ|(E ⊗ I)(Φ)|Φ⟩ = ⟨Φ_I|ρ|Φ_I⟩` for Pauli channels.
pub fn entanglement_fidelity(resource: &Matrix) -> f64 {
    bell_overlaps(resource)[0]
}

/// Average output fidelity over Haar-random pure inputs:
/// `F_avg = (d·F_ent + 1)/(d + 1)` with `d = 2`.
pub fn average_fidelity(resource: &Matrix) -> f64 {
    (2.0 * entanglement_fidelity(resource) + 1.0) / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use entangle::werner;
    use qsim::{CompiledSampler, Gate, StateVector};

    #[test]
    fn perfect_teleportation_with_bell_pair() {
        // k = 1 resource: channel must be exactly the identity.
        let sim = teleportation_channel_simulated(&phi_k_resource_prep(1.0));
        let id = Superoperator::identity(2);
        assert!(sim.distance(&id) < 1e-10, "distance {}", sim.distance(&id));
    }

    #[test]
    fn simulated_channel_matches_closed_form_for_phi_k() {
        for &k in &[0.0, 0.3, 0.65, 1.0] {
            let sim = teleportation_channel_simulated(&phi_k_resource_prep(k));
            let closed = teleportation_channel_closed_form(&PhiK::new(k).density());
            assert!(
                sim.distance(&closed) < 1e-10,
                "Eq. 22 violated at k={k}: distance {}",
                sim.distance(&closed)
            );
        }
    }

    #[test]
    fn phi_k_channel_is_iz_pauli_channel() {
        // Eq. 59: only I and Z errors; PTM = diag(1, λ, λ, 1) with
        // λ = qI − qZ = 2k/(k²+1)... compute: qI − qZ = ((k+1)²−(k−1)²)/(2(k²+1)) = 2k/(k²+1).
        let k = 0.4;
        let sim = teleportation_channel_simulated(&phi_k_resource_prep(k));
        let ptm = sim.pauli_transfer_matrix();
        let lam = 2.0 * k / (k * k + 1.0);
        assert!((ptm[(0, 0)].re - 1.0).abs() < 1e-10);
        assert!((ptm[(1, 1)].re - lam).abs() < 1e-10);
        assert!((ptm[(2, 2)].re - lam).abs() < 1e-10);
        assert!((ptm[(3, 3)].re - 1.0).abs() < 1e-10);
        // Off-diagonals vanish.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(ptm[(i, j)].abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn teleportation_with_werner_resource() {
        // Werner state: depolarising teleportation channel.
        let p = 0.7;
        let rho = werner(p);
        let closed = teleportation_channel_closed_form(&rho);
        let ptm = closed.pauli_transfer_matrix();
        // All three Pauli eigenvalues equal p for the Werner resource.
        for i in 1..4 {
            assert!((ptm[(i, i)].re - p).abs() < 1e-10);
        }
    }

    #[test]
    fn shot_level_teleportation_statistics() {
        // Teleport Ry(1.1)|0⟩ through Φ_{k=0.5}; ⟨Z⟩ must shrink by the
        // channel eigenvalue... Z commutes with Z-errors, so ⟨Z⟩ is
        // preserved exactly: E(ρ) = qI ρ + qZ ZρZ and Tr[Z·ZρZ] = Tr[Zρ].
        let k = 0.5;
        let mut circuit = Circuit::new(3, 2);
        circuit.ry(1.1, 0);
        circuit.compose(&phi_k_resource_prep(k));
        append_teleportation(&mut circuit, 0, 1, 2, 0, 1);
        let sampler = CompiledSampler::compile(&circuit, None);
        let expect = (1.1f64).cos();
        assert!((sampler.exact_expval_z(2) - expect).abs() < 1e-10);
    }

    #[test]
    fn x_expectation_shrinks_under_nme_teleportation() {
        // ⟨X⟩ anticommutes with the Z error: shrinks by λ = 2k/(k²+1).
        let k = 0.5;
        let mut circuit = Circuit::new(3, 2);
        circuit.h(0); // |+⟩, ⟨X⟩ = 1
        circuit.compose(&phi_k_resource_prep(k));
        append_teleportation(&mut circuit, 0, 1, 2, 0, 1);
        let sampler = CompiledSampler::compile(&circuit, None);
        let lam = 2.0 * k / (k * k + 1.0);
        let x_exp: f64 = sampler
            .leaves()
            .iter()
            .map(|l| {
                l.probability
                    * l.state
                        .expval_pauli(&qsim::PauliString::single(3, 2, Pauli::X))
            })
            .sum();
        assert!((x_exp - lam).abs() < 1e-10, "⟨X⟩ = {x_exp}, expected {lam}");
    }

    #[test]
    fn error_weights_match_eq_59() {
        for &k in &[0.0, 0.25, 1.0] {
            let w = phi_k_error_weights(k);
            let d = 2.0 * (k * k + 1.0);
            assert!((w[0] - (k + 1.0) * (k + 1.0) / d).abs() < 1e-12);
            assert!(w[1].abs() < 1e-12);
            assert!(w[2].abs() < 1e-12);
            assert!((w[3] - (k - 1.0) * (k - 1.0) / d).abs() < 1e-12);
        }
    }

    #[test]
    fn average_fidelity_matches_theory_module() {
        for &k in &[0.0, 0.5, 1.0] {
            let rho = PhiK::new(k).density();
            let got = average_fidelity(&rho);
            let expect = crate::theory::average_teleportation_fidelity(k);
            assert!((got - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn teleportation_preserves_arbitrary_state_with_bell_resource() {
        // Full state check at k = 1 for a random-ish input.
        let mut circuit = Circuit::new(3, 2);
        circuit.ry(0.8, 0).rz(0.5, 0).t(0);
        circuit.compose(&phi_k_resource_prep(1.0));
        append_teleportation(&mut circuit, 0, 1, 2, 0, 1);
        let sampler = CompiledSampler::compile(&circuit, None);
        // Reference state on a single qubit.
        let mut reference = StateVector::new(1);
        reference.apply_gate(&Gate::Ry(0.8), &[0]);
        reference.apply_gate(&Gate::Rz(0.5), &[0]);
        reference.apply_gate(&Gate::T, &[0]);
        let ref_rho = reference.to_density();
        for leaf in sampler.leaves() {
            let out = leaf.state.reduced_density(&[2]);
            assert!(
                out.approx_eq(&ref_rho, 1e-10),
                "receiver state differs on branch {:#b}",
                leaf.clbits
            );
        }
    }
}

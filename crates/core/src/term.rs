//! Wire-cut abstraction: executable QPD terms and channel verification.
//!
//! A wire cut replaces the identity channel on one qubit (Figure 1/4) by
//! a signed combination of LOCC-implementable subcircuits, recombined as
//! the QPD of Eq. 11–13. Every single-wire cut in this crate
//! ([`crate::harada`], [`crate::peng`], [`crate::nme`], [`crate::mixed`])
//! implements [`WireCut`]; the generic machinery here turns a cut into a
//! [`qpd::QpdSpec`] plus executable circuits (compiled to samplers by
//! [`crate::executor`]), and — crucially — verifies the defining
//! identity `Σᵢ cᵢ Fᵢ = I` (Eq. 19/23) **exactly** at the channel level
//! via density-matrix process tomography.

use qlinalg::Matrix;
use qpd::{QpdSpec, TermSpec};
use qsim::{execute_density, Circuit, DensityMatrix, Superoperator};

/// One executable wire-cut term.
#[derive(Clone, Debug)]
pub struct CutTerm {
    /// Signed QPD coefficient `cᵢ`.
    pub coefficient: f64,
    /// Display label.
    pub label: String,
    /// Entangled pairs consumed per execution.
    pub pairs_consumed: f64,
    /// The term circuit. The cut-input state enters on `input_qubit`; all
    /// other qubits must start in `|0⟩` (resource preparation is part of
    /// the circuit); the transmitted state leaves on `output_qubit`.
    pub circuit: Circuit,
    /// Qubit where the state to transmit enters.
    pub input_qubit: usize,
    /// Qubit where the transmitted state leaves.
    pub output_qubit: usize,
    /// Number of leading instructions that prepare the **pre-shared**
    /// resource state (entanglement distribution happens before the LOCC
    /// protocol starts, so these are exempt from locality checks).
    pub resource_prep_len: usize,
}

/// A wire-cutting scheme: a finite set of [`CutTerm`]s whose signed sum
/// reproduces the single-qubit identity channel.
pub trait WireCut: Send + Sync {
    /// Descriptive name (used in experiment output).
    fn name(&self) -> String;

    /// The executable terms.
    fn terms(&self) -> Vec<CutTerm>;

    /// Coefficient structure for the QPD estimators.
    fn spec(&self) -> QpdSpec {
        QpdSpec::new(
            self.terms()
                .iter()
                .map(|t| TermSpec {
                    coefficient: t.coefficient,
                    label: t.label.clone(),
                    pairs_consumed: t.pairs_consumed,
                })
                .collect(),
        )
    }

    /// The theoretical sampling overhead `κ = Σ|cᵢ|` of this realisation.
    fn kappa(&self) -> f64 {
        self.spec().kappa()
    }
}

/// The exact single-qubit channel implemented by one term: probe the term
/// circuit with matrix units on the input qubit (all ancillas `|0⟩`),
/// simulate every measurement branch, and trace down to the output qubit.
pub fn term_channel(term: &CutTerm) -> Superoperator {
    let n = term.circuit.num_qubits();
    Superoperator::from_linear_map(2, 2, |rho_in| {
        let full = embed_input(rho_in, term.input_qubit, n);
        let out = execute_density(&term.circuit, &full);
        out.partial_trace(&[term.output_qubit]).into_matrix()
    })
}

/// Embeds a single-qubit operator at `input_qubit` of an `n`-qubit
/// register with `|0⟩⟨0|` everywhere else.
pub fn embed_input(rho_in: &Matrix, input_qubit: usize, n: usize) -> DensityMatrix {
    let mut full = Matrix::identity(1);
    for q in (0..n).rev() {
        if q == input_qubit {
            full = full.kron(rho_in);
        } else {
            let mut zero = Matrix::zeros(2, 2);
            zero[(0, 0)] = qlinalg::C_ONE;
            full = full.kron(&zero);
        }
    }
    DensityMatrix::from_matrix(n, full)
}

/// The channel reconstructed by the full cut: `Σᵢ cᵢ · (term channel)ᵢ`.
pub fn reconstructed_channel(cut: &dyn WireCut) -> Superoperator {
    let mut acc = Superoperator::zero(2, 2);
    for term in cut.terms() {
        let ch = term_channel(&term);
        acc.axpy(term.coefficient, &ch);
    }
    acc
}

/// Max-entry distance between the reconstructed channel and the identity —
/// zero (to numerical precision) iff the cut is correct (Eq. 19/23).
pub fn identity_distance(cut: &dyn WireCut) -> f64 {
    reconstructed_channel(cut).distance(&Superoperator::identity(2))
}

/// Checks that every term is individually a **local** operation with
/// classical communication in the cut's sender/receiver split: all gates
/// act within one side, and information crosses only through classical
/// bits. `sender_qubits` lists the qubits on the sender device (the rest
/// are receiver-side).
pub fn verify_locc_structure(term: &CutTerm, sender_qubits: &[usize]) -> Result<(), String> {
    use qsim::Op;
    let is_sender = |q: usize| sender_qubits.contains(&q);
    for (idx, instr) in term.circuit.instructions().iter().enumerate() {
        if idx < term.resource_prep_len {
            continue;
        }
        if let Op::Gate(g, qs) = &instr.op {
            if qs.len() == 2 && is_sender(qs[0]) != is_sender(qs[1]) {
                return Err(format!(
                    "instruction {idx} ({g}) couples sender and receiver qubits {qs:?}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlinalg::c64;
    use qsim::Gate;

    /// A "cut" consisting of the identity channel itself (one term,
    /// coefficient 1, a wire passing straight through one qubit).
    struct TrivialCut;

    impl WireCut for TrivialCut {
        fn name(&self) -> String {
            "trivial".into()
        }
        fn terms(&self) -> Vec<CutTerm> {
            let c = Circuit::new(1, 0);
            vec![CutTerm {
                coefficient: 1.0,
                label: "identity".into(),
                pairs_consumed: 0.0,
                circuit: c,
                input_qubit: 0,
                output_qubit: 0,
                resource_prep_len: 0,
            }]
        }
    }

    #[test]
    fn trivial_cut_reconstructs_identity() {
        assert!(identity_distance(&TrivialCut) < 1e-12);
        assert!((TrivialCut.kappa() - 1.0).abs() < 1e-12);
    }

    /// A deliberately wrong cut (applies X): distance must be large.
    struct WrongCut;

    impl WireCut for WrongCut {
        fn name(&self) -> String {
            "wrong".into()
        }
        fn terms(&self) -> Vec<CutTerm> {
            let mut c = Circuit::new(1, 0);
            c.x(0);
            vec![CutTerm {
                coefficient: 1.0,
                label: "x".into(),
                pairs_consumed: 0.0,
                circuit: c,
                input_qubit: 0,
                output_qubit: 0,
                resource_prep_len: 0,
            }]
        }
    }

    #[test]
    fn wrong_cut_detected() {
        assert!(identity_distance(&WrongCut) > 0.5);
    }

    #[test]
    fn term_channel_of_unitary_term() {
        let mut c = Circuit::new(1, 0);
        c.h(0);
        let term = CutTerm {
            coefficient: 1.0,
            label: "h".into(),
            pairs_consumed: 0.0,
            circuit: c,
            input_qubit: 0,
            output_qubit: 0,
            resource_prep_len: 0,
        };
        let ch = term_channel(&term);
        let expect = Superoperator::from_unitary(&Gate::H.matrix());
        assert!(ch.distance(&expect) < 1e-12);
    }

    #[test]
    fn term_channel_with_relocation() {
        // A term whose circuit moves the state from qubit 0 to qubit 1 via
        // swap: channel must still be the identity (input 0, output 1).
        let mut c = Circuit::new(2, 0);
        c.swap(0, 1);
        let term = CutTerm {
            coefficient: 1.0,
            label: "swap".into(),
            pairs_consumed: 0.0,
            circuit: c,
            input_qubit: 0,
            output_qubit: 1,
            resource_prep_len: 0,
        };
        let ch = term_channel(&term);
        assert!(ch.distance(&Superoperator::identity(2)) < 1e-12);
    }

    #[test]
    fn embed_input_places_operator() {
        let rho = Matrix::from_rows(&[
            vec![c64(0.25, 0.0), c64(0.1, 0.05)],
            vec![c64(0.1, -0.05), c64(0.75, 0.0)],
        ]);
        let full = embed_input(&rho, 1, 3);
        assert_eq!(full.num_qubits(), 3);
        // Trace over others must recover rho on qubit 1.
        let back = full.partial_trace(&[1]);
        assert!(back.matrix().approx_eq(&rho, 1e-12));
        // Other qubits are |0⟩.
        let q0 = full.partial_trace(&[0]);
        assert!((q0.matrix()[(0, 0)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn locc_check_flags_cross_gates() {
        let mut c = Circuit::new(2, 1);
        c.cx(0, 1);
        let term = CutTerm {
            coefficient: 1.0,
            label: "bad".into(),
            pairs_consumed: 0.0,
            circuit: c,
            input_qubit: 0,
            output_qubit: 1,
            resource_prep_len: 0,
        };
        assert!(verify_locc_structure(&term, &[0]).is_err());
        // With both qubits on the sender side it is local.
        assert!(verify_locc_structure(&term, &[0, 1]).is_ok());
    }
}

//! Closed-form theory of the paper: Theorems 1–2 and Corollary 1.
//!
//! Everything here is an explicit formula; the rest of the crate provides
//! the constructions ([`crate::nme`] attains [`gamma_phi_k`],
//! [`crate::harada`] attains [`GAMMA_NO_ENTANGLEMENT`],
//! [`crate::joint`] attains `2^{n+1} − 1`) and the experiments measure
//! how well sampling realises these predictions. The overlap `f(ρ)`
//! entering Theorem 1 is computed in `entangle::measures`.

use entangle::PhiK;

/// Optimal sampling overhead for cutting a single wire **without**
/// entanglement (Brenner et al., paper reference \[11\]): `γ(I) = 3`.
pub const GAMMA_NO_ENTANGLEMENT: f64 = 3.0;

/// Sampling overhead of the original Peng et al. wire cut
/// (paper reference \[13\]): `κ = 4`.
pub const KAPPA_PENG: f64 = 4.0;

/// **Theorem 1**: optimal sampling overhead for a wire cut using an
/// arbitrary two-qubit resource state with maximal LOCC overlap `f`:
/// `γ^ρ(I) = 2/f − 1`.
///
/// # Panics
/// Panics unless `f ∈ [1/2, 1]`.
pub fn gamma_from_overlap(f: f64) -> f64 {
    assert!(
        (0.5 - 1e-12..=1.0 + 1e-12).contains(&f),
        "overlap f={f} outside [1/2, 1]"
    );
    2.0 / f - 1.0
}

/// Inverse of [`gamma_from_overlap`]: the overlap needed for a target
/// overhead `γ ∈ [1, 3]`.
pub fn overlap_from_gamma(gamma: f64) -> f64 {
    assert!(
        (1.0 - 1e-12..=3.0 + 1e-12).contains(&gamma),
        "gamma out of range"
    );
    2.0 / (gamma + 1.0)
}

/// **Corollary 1**: optimal sampling overhead with pure NME resource
/// states `|Φ_k⟩`: `γ^{Φk}(I) = 4(k²+1)/(k+1)² − 1`.
pub fn gamma_phi_k(k: f64) -> f64 {
    assert!(k >= 0.0);
    4.0 * (k * k + 1.0) / ((k + 1.0) * (k + 1.0)) - 1.0
}

/// **Theorem 2** coefficients: `(a, b)` with
/// `a = (k²+1)/(k+1)²` (each teleportation term) and
/// `b = (k−1)²/(k+1)²` (the measure-and-prepare term, entering with a
/// negative sign). `κ = 2a + b = γ^{Φk}(I)`.
pub fn theorem2_coefficients(k: f64) -> (f64, f64) {
    assert!(k >= 0.0);
    let d = (k + 1.0) * (k + 1.0);
    ((k * k + 1.0) / d, (k - 1.0) * (k - 1.0) / d)
}

/// Expected entangled-pair consumption per QPD sample for Theorem 2
/// (Section III closing remark): `2(k²+1)/(k+1)² = ⟨Φ|Φ_k|Φ⟩⁻¹`.
pub fn pairs_per_sample(k: f64) -> f64 {
    2.0 * (k * k + 1.0) / ((k + 1.0) * (k + 1.0))
}

/// Shots required to reach additive accuracy ε with overhead κ, up to the
/// estimator's base variance: the `O(κ²/ε²)` law of Section II-B.
pub fn shots_for_accuracy(kappa: f64, epsilon: f64) -> f64 {
    assert!(epsilon > 0.0);
    kappa * kappa / (epsilon * epsilon)
}

/// Average teleportation fidelity with an NME resource `Φ_k` (related
/// work, reference \[27\]): `F_avg = (2·f + 1)/3` with `f = f(Φ_k)` —
/// below 1 whenever `k ≠ 1`.
pub fn average_teleportation_fidelity(k: f64) -> f64 {
    (2.0 * PhiK::new(k).overlap() + 1.0) / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_endpoints() {
        // No entanglement (f = 1/2) → γ = 3; maximal (f = 1) → γ = 1.
        assert!((gamma_from_overlap(0.5) - 3.0).abs() < 1e-12);
        assert!((gamma_from_overlap(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corollary1_consistent_with_theorem1() {
        for &k in &[0.0, 0.2, 0.5, 0.73, 1.0] {
            let via_f = gamma_from_overlap(PhiK::new(k).overlap());
            let direct = gamma_phi_k(k);
            assert!(
                (via_f - direct).abs() < 1e-12,
                "γ mismatch at k={k}: {via_f} vs {direct}"
            );
        }
    }

    #[test]
    fn corollary1_endpoints() {
        assert!((gamma_phi_k(0.0) - 3.0).abs() < 1e-12);
        assert!((gamma_phi_k(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_monotone_decreasing_in_k() {
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let k = i as f64 / 100.0;
            let g = gamma_phi_k(k);
            assert!(g <= prev + 1e-12, "γ not decreasing at k={k}");
            prev = g;
        }
    }

    #[test]
    fn theorem2_kappa_equals_corollary1() {
        for &k in &[0.0, 0.3, 0.6, 1.0] {
            let (a, b) = theorem2_coefficients(k);
            assert!((2.0 * a + b - gamma_phi_k(k)).abs() < 1e-12);
            // Coefficient sum 2a − b = 1 (valid decomposition).
            assert!((2.0 * a - b - 1.0).abs() < 1e-12, "2a−b ≠ 1 at k={k}");
        }
    }

    #[test]
    fn overlap_gamma_round_trip() {
        for &f in &[0.5, 0.62, 0.8, 1.0] {
            assert!((overlap_from_gamma(gamma_from_overlap(f)) - f).abs() < 1e-12);
        }
    }

    #[test]
    fn pair_consumption_limits() {
        assert!((pairs_per_sample(1.0) - 1.0).abs() < 1e-12);
        assert!((pairs_per_sample(0.0) - 2.0).abs() < 1e-12);
        // Equals 1/f (Section III: proportional to ⟨Φ|Φk|Φ⟩⁻¹).
        for &k in &[0.2, 0.5, 0.9] {
            assert!((pairs_per_sample(k) - 1.0 / PhiK::new(k).overlap()).abs() < 1e-12);
        }
    }

    #[test]
    fn shots_scale_quadratically() {
        let base = shots_for_accuracy(1.0, 0.01);
        assert!((shots_for_accuracy(3.0, 0.01) / base - 9.0).abs() < 1e-9);
        assert!((shots_for_accuracy(1.0, 0.005) / base - 4.0).abs() < 1e-9);
    }

    #[test]
    fn teleportation_fidelity_limits() {
        assert!((average_teleportation_fidelity(1.0) - 1.0).abs() < 1e-12);
        // k = 0: f = 1/2 → F_avg = 2/3, the classical limit.
        assert!((average_teleportation_fidelity(0.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn gamma_rejects_small_overlap() {
        let _ = gamma_from_overlap(0.3);
    }
}

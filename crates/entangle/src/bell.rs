//! Bell basis states and overlaps.
//!
//! The paper indexes the Bell basis by Pauli operators (Section II-E):
//! `|Φ_σ⟩ = (σ ⊗ I)|Φ⟩` with `|Φ⟩ = (|00⟩ + |11⟩)/√2`. Teleportation with
//! resource ρ applies Pauli error σ with probability `⟨Φ_σ|ρ|Φ_σ⟩`
//! (Eq. 22), so these overlaps are the coefficients of all teleportation
//! channels in this workspace. For the pure family [`crate::PhiK`] they
//! are the closed forms of Eq. 55–58; [`bell_diagonal`] and [`werner`]
//! build the mixed resources whose overlaps drive the Pauli-inversion
//! cut, and [`crate::measures`] turns overlaps into `f(ρ)` (Eq. 1).

use qlinalg::{c64, Complex64, Matrix};
use qsim::{Pauli, StateVector};

/// The maximally entangled state `|Φ⟩ = (|00⟩ + |11⟩)/√2` as amplitudes.
///
/// Qubit 0 (LSB) is the **A** side, qubit 1 the **B** side; for the
/// symmetric states used here the assignment does not matter.
pub fn phi_plus_amps() -> [Complex64; 4] {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    [c64(s, 0.0), c64(0.0, 0.0), c64(0.0, 0.0), c64(s, 0.0)]
}

/// `|Φ⟩` as a two-qubit statevector.
pub fn phi_plus() -> StateVector {
    StateVector::from_amplitudes(2, phi_plus_amps().to_vec())
}

/// `|Φ⟩⟨Φ|` as a density matrix.
pub fn phi_plus_density() -> Matrix {
    let sv = phi_plus();
    sv.to_density()
}

/// The Bell basis state `|Φ_σ⟩ = (σ ⊗ I)|Φ⟩`, with σ acting on qubit 0.
pub fn bell_state(sigma: Pauli) -> StateVector {
    let mut sv = phi_plus();
    sv.apply_matrix1(&sigma.matrix(), 0);
    sv
}

/// Overlap `⟨Φ_σ|ρ|Φ_σ⟩` of a two-qubit density operator with a Bell state.
pub fn bell_overlap(rho: &Matrix, sigma: Pauli) -> f64 {
    assert_eq!(rho.rows(), 4, "bell_overlap expects a two-qubit operator");
    let b = bell_state(sigma);
    let v = rho.matvec(b.amplitudes());
    qlinalg::vector::inner(b.amplitudes(), &v).re
}

/// All four Bell overlaps `(⟨Φ_I|ρ|Φ_I⟩, ⟨Φ_X|..⟩, ⟨Φ_Y|..⟩, ⟨Φ_Z|..⟩)`.
pub fn bell_overlaps(rho: &Matrix) -> [f64; 4] {
    [
        bell_overlap(rho, Pauli::I),
        bell_overlap(rho, Pauli::X),
        bell_overlap(rho, Pauli::Y),
        bell_overlap(rho, Pauli::Z),
    ]
}

/// Builds a Bell-diagonal density operator `Σ_σ q_σ |Φ_σ⟩⟨Φ_σ|` from the
/// four weights (must be non-negative and sum to 1 within `1e-9`).
pub fn bell_diagonal(q: [f64; 4]) -> Matrix {
    let total: f64 = q.iter().sum();
    assert!((total - 1.0).abs() < 1e-9, "Bell weights sum to {total}");
    assert!(q.iter().all(|&p| p >= -1e-12), "negative Bell weight");
    let mut rho = Matrix::zeros(4, 4);
    for (i, &sigma) in Pauli::ALL.iter().enumerate() {
        let b = bell_state(sigma);
        let proj = b.to_density();
        rho.axpy(c64(q[i], 0.0), &proj);
    }
    rho
}

/// The Werner state `p·|Φ⟩⟨Φ| + (1−p)·I/4` (a Bell-diagonal state with
/// weights `(p + (1−p)/4, (1−p)/4, (1−p)/4, (1−p)/4)`).
pub fn werner(p: f64) -> Matrix {
    assert!(
        (-1.0 / 3.0..=1.0).contains(&p),
        "Werner parameter out of range"
    );
    let mixed = Matrix::identity(4).scale_re((1.0 - p) / 4.0);
    let mut rho = phi_plus_density().scale_re(p);
    rho = rho.add(&mixed);
    rho
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_states_are_orthonormal() {
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let sa = bell_state(a);
                let sb = bell_state(b);
                let ov = qlinalg::vector::inner(sa.amplitudes(), sb.amplitudes()).abs();
                if a == b {
                    assert!((ov - 1.0).abs() < 1e-12);
                } else {
                    assert!(ov < 1e-12, "⟨Φ_{a}|Φ_{b}⟩ = {ov}");
                }
            }
        }
    }

    #[test]
    fn phi_z_is_phi_minus() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let b = bell_state(Pauli::Z);
        assert!(b.amplitude(0b00).approx_eq(c64(s, 0.0), 1e-12));
        assert!(b.amplitude(0b11).approx_eq(c64(-s, 0.0), 1e-12));
    }

    #[test]
    fn phi_x_is_psi_plus() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let b = bell_state(Pauli::X);
        // (X⊗I)|Φ⟩ flips qubit 0: (|01⟩+|10⟩)/√2
        assert!(b.amplitude(0b01).approx_eq(c64(s, 0.0), 1e-12));
        assert!(b.amplitude(0b10).approx_eq(c64(s, 0.0), 1e-12));
    }

    #[test]
    fn overlap_of_bell_with_itself_is_one() {
        for sigma in Pauli::ALL {
            let rho = bell_state(sigma).to_density();
            let ov = bell_overlaps(&rho);
            for (i, tau) in Pauli::ALL.iter().enumerate() {
                let expect = if *tau == sigma { 1.0 } else { 0.0 };
                assert!((ov[i] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn bell_diagonal_reconstructs_weights() {
        let q = [0.55, 0.2, 0.15, 0.1];
        let rho = bell_diagonal(q);
        let ov = bell_overlaps(&rho);
        for i in 0..4 {
            assert!((ov[i] - q[i]).abs() < 1e-12);
        }
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!(rho.is_hermitian(1e-12));
    }

    #[test]
    fn werner_bell_overlaps() {
        let p = 0.6;
        let rho = werner(p);
        let ov = bell_overlaps(&rho);
        assert!((ov[0] - (p + (1.0 - p) / 4.0)).abs() < 1e-12);
        for &o in ov.iter().skip(1) {
            assert!((o - (1.0 - p) / 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn werner_limits() {
        // p = 1 → pure Bell; p = 0 → maximally mixed.
        assert!(werner(1.0).approx_eq(&phi_plus_density(), 1e-12));
        assert!(werner(0.0).approx_eq(&Matrix::identity(4).scale_re(0.25), 1e-12));
    }

    #[test]
    fn bell_overlaps_sum_to_trace() {
        let rho = werner(0.37);
        let ov = bell_overlaps(&rho);
        assert!((ov.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}

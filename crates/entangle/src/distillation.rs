//! The m-distillation norm of Appendix A.
//!
//! Second, independent route to the maximal LOCC overlap `f` of Eq. 1
//! (the direct Schmidt-coefficient route is
//! [`crate::measures::max_overlap_pure`], via [`mod@crate::schmidt`]). For
//! pure states, `f` relates to the m-distillation norm (Regula et al.,
//! paper references [45, 46]):
//!
//! `f(ψ_AB) = ½ ‖ |ψ⟩ ‖²_\[2\]`  (Eq. 29)
//!
//! The norm has the dual characterisation
//!
//! `‖v‖_[m] = max { ⟨u, v⟩ : 0 ≤ uᵢ ≤ 1, ‖u‖₂² ≤ m }`,
//!
//! whose optimiser clips to 1 on the largest entries and is proportional
//! to `v` on the tail: for sorted `ζ↓` and head size `j`,
//! `‖v‖_[m] = ‖ζ↓_{1:j}‖₁ + √(m−j)·‖ζ↓_{j+1:d}‖₂` at the unique feasible
//! balance point (paper Eq. 30–31 state the same selection through its
//! argmin form). For the rank-2 states the paper uses, every `j` choice
//! collapses to the plain 1-norm (Eq. 32–33).
//!
//! Two independent implementations are provided — a water-filling solver
//! of the dual problem and the feasibility-aware closed form — and tests
//! assert they agree; `f(Φ_k)` computed through this route must equal the
//! closed form of Eq. 10.

/// Computes the m-distillation norm from Schmidt coefficients via the
/// dual characterisation, solving `Σᵢ min(1, c·vᵢ)² = m` for the clip
/// level `c` by bisection (water-filling).
///
/// # Panics
/// Panics if `m == 0`, the coefficient list is empty, or any coefficient
/// is negative.
pub fn m_distillation_norm(schmidt_coefficients: &[f64], m: usize) -> f64 {
    assert!(m >= 1, "m must be positive");
    assert!(!schmidt_coefficients.is_empty(), "empty Schmidt vector");
    let mut v: Vec<f64> = schmidt_coefficients.to_vec();
    assert!(
        v.iter().all(|&z| z >= -1e-15),
        "negative Schmidt coefficient"
    );
    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let d = v.len();
    let m_f = m as f64;

    // If the all-ones vector is feasible (d ≤ m), the optimum is ‖v‖₁.
    if d as f64 <= m_f {
        return v.iter().sum();
    }

    // Water-filling: u_i = min(1, c·v_i), find c with Σ u_i² = m.
    let budget = |c: f64| -> f64 { v.iter().map(|&x| (c * x).min(1.0).powi(2)).sum() };
    // Σ u_i² is nondecreasing in c, bounded by d ≥ m; bisect.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while budget(hi) < m_f {
        hi *= 2.0;
        if hi > 1e12 {
            // All mass on (effectively) zero coefficients — degenerate.
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if budget(mid) < m_f {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let c = 0.5 * (lo + hi);
    v.iter().map(|&x| (c * x).min(1.0) * x).sum()
}

/// Closed-form evaluation (paper Eq. 30–31): scan head sizes `j`, keep
/// the feasible balance `‖ζ↓_{1:j}‖₁ + √(m−j)·‖ζ↓_{j+1:d}‖₂` where the
/// implied tail multiplier does not exceed the clip level.
pub fn m_distillation_norm_closed_form(schmidt_coefficients: &[f64], m: usize) -> f64 {
    assert!(m >= 1);
    let mut v: Vec<f64> = schmidt_coefficients.to_vec();
    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let d = v.len();
    if d <= m {
        return v.iter().sum();
    }
    let mut best = 0.0f64;
    for j in 0..=m {
        let head: f64 = v[..j].iter().sum();
        let tail_sq: f64 = v[j..].iter().map(|x| x * x).sum();
        let tail = tail_sq.sqrt();
        let slack = (m - j) as f64;
        if tail < 1e-300 {
            best = best.max(head);
            continue;
        }
        let c = slack.sqrt() / tail;
        // Feasibility: the largest tail entry must stay ≤ 1 after scaling,
        // and the head entries must genuinely want to clip (c·v_j ≥ 1),
        // otherwise this j is not the optimal split (but still a valid
        // lower bound, so we simply take the max over feasible values).
        if c * v[j] <= 1.0 + 1e-12 {
            best = best.max(head + slack.sqrt() * tail);
        }
    }
    best
}

/// The maximal LOCC overlap of a **pure** state with the two-qubit
/// maximally entangled state via the distillation-norm route (Eq. 29):
/// `f = ½ ‖ψ‖²_\[2\]`, capped at 1.
pub fn overlap_via_distillation_norm(schmidt_coefficients: &[f64]) -> f64 {
    let n = m_distillation_norm(schmidt_coefficients, 2);
    (0.5 * n * n).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phi_k::PhiK;

    #[test]
    fn two_coefficient_norm_is_one_norm() {
        // Appendix A: with only two non-zero Schmidt coefficients the
        // 2-distillation norm is the plain 1-norm (Eq. 32–33).
        let k: f64 = 0.7;
        let kk = 1.0 / (1.0 + k * k).sqrt();
        let coeffs = [kk, k * kk];
        let norm = m_distillation_norm(&coeffs, 2);
        assert!((norm - (kk + k * kk)).abs() < 1e-9);
    }

    #[test]
    fn overlap_matches_eq_10_closed_form() {
        for &k in &[0.0, 0.15, 0.4, 0.62, 0.9, 1.0] {
            let phi = PhiK::new(k);
            let kk = phi.normalisation();
            let coeffs = [kk, k * kk];
            let via_norm = overlap_via_distillation_norm(&coeffs);
            assert!(
                (via_norm - phi.overlap()).abs() < 1e-9,
                "Appendix A route mismatch at k={k}: {via_norm} vs {}",
                phi.overlap()
            );
        }
    }

    #[test]
    fn maximally_entangled_norm() {
        // |Φ⟩: coefficients (1/√2, 1/√2); ‖·‖_[2] = √2, f = 1.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let norm = m_distillation_norm(&[s, s], 2);
        assert!((norm - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert!((overlap_via_distillation_norm(&[s, s]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn product_state_norm() {
        // Product state: coefficients (1, 0); ‖·‖_[2] = 1, f = 1/2.
        let norm = m_distillation_norm(&[1.0, 0.0], 2);
        assert!((norm - 1.0).abs() < 1e-9);
        assert!((overlap_via_distillation_norm(&[1.0, 0.0]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn flat_rank_four_state_reaches_full_overlap() {
        // Φ₄ majorises Φ₂, so LOCC converts it deterministically:
        // ‖ζ‖_[2] = √2 and f = 1.
        let coeffs = [0.5; 4];
        let norm = m_distillation_norm(&coeffs, 2);
        assert!((norm - std::f64::consts::SQRT_2).abs() < 1e-9, "got {norm}");
        assert!((overlap_via_distillation_norm(&coeffs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn m_one_norm_is_head_plus_tail_l2() {
        // For m = 1 and a dominant first coefficient: u clips to 1 on it
        // and water-fills nothing else ⇒ norm = ζ₁ only if the tail budget
        // is exhausted... verify against water-filling directly.
        let coeffs = [0.8, 0.5, 0.33166247903554];
        let norm = m_distillation_norm(&coeffs, 1);
        let closed = m_distillation_norm_closed_form(&coeffs, 1);
        assert!(
            (norm - closed).abs() < 1e-9,
            "water-fill {norm} vs closed {closed}"
        );
        // m=1 dual: maximise ⟨u,v⟩ with ‖u‖₂ ≤ 1, u ≤ 1 ⇒ best is u = v
        // (feasible since ‖v‖₂ = 1): norm = ‖v‖₂² = 1... only when v is
        // normalised and max v_i ≤ 1.
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn closed_form_matches_water_filling_on_random_vectors() {
        // Deterministic pseudo-random Schmidt vectors of rank 3–6.
        let mut s = 12345u64;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64).abs()
        };
        for trial in 0..50 {
            let d = 3 + (trial % 4);
            let mut v: Vec<f64> = (0..d).map(|_| next() + 0.01).collect();
            let n2: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            for x in v.iter_mut() {
                *x /= n2;
            }
            for m in 1..=d {
                let a = m_distillation_norm(&v, m);
                let b = m_distillation_norm_closed_form(&v, m);
                assert!(
                    (a - b).abs() < 1e-7,
                    "trial {trial} m={m}: water-fill {a} vs closed {b} (v={v:?})"
                );
            }
        }
    }

    #[test]
    fn norm_is_monotone_in_m() {
        // The feasible set of the dual grows with m, so the norm does too.
        let coeffs = [0.6, 0.48, 0.4, 0.5];
        let mut prev = 0.0;
        for m in 1..=4 {
            let n = m_distillation_norm(&coeffs, m);
            assert!(n >= prev - 1e-9, "norm not monotone at m={m}: {n} < {prev}");
            prev = n;
        }
        // At m = d the norm is the 1-norm.
        let l1: f64 = coeffs.iter().sum();
        assert!((prev - l1).abs() < 1e-9);
    }

    #[test]
    fn order_of_coefficients_is_irrelevant() {
        let a = m_distillation_norm(&[0.2, 0.9, 0.38729833462], 2);
        let b = m_distillation_norm(&[0.9, 0.38729833462, 0.2], 2);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn overlap_never_exceeds_one() {
        let coeffs = [0.7, 0.5099019513592785, 0.5];
        let f = overlap_via_distillation_norm(&coeffs);
        assert!(f <= 1.0 + 1e-12);
        // This spectrum is majorised by (1/√2, 1/√2), so f = 1 exactly.
        assert!((f - 1.0).abs() < 1e-9);
    }
}

//! The m-distillation norm of Appendix A.
//!
//! Second, independent route to the maximal LOCC overlap `f` of Eq. 1
//! (the direct Schmidt-coefficient route is
//! [`crate::measures::max_overlap_pure`], via [`mod@crate::schmidt`]). For
//! pure states, `f` relates to the m-distillation norm (Regula et al.,
//! paper references [45, 46]):
//!
//! `f(ψ_AB) = ½ ‖ |ψ⟩ ‖²_\[2\]`  (Eq. 29)
//!
//! The norm has the dual characterisation
//!
//! `‖v‖_[m] = max { ⟨u, v⟩ : 0 ≤ uᵢ ≤ 1, ‖u‖₂² ≤ m }`,
//!
//! whose optimiser clips to 1 on the largest entries and is proportional
//! to `v` on the tail: for sorted `ζ↓` and head size `j`,
//! `‖v‖_[m] = ‖ζ↓_{1:j}‖₁ + √(m−j)·‖ζ↓_{j+1:d}‖₂` at the unique feasible
//! balance point (paper Eq. 30–31 state the same selection through its
//! argmin form). For the rank-2 states the paper uses, every `j` choice
//! collapses to the plain 1-norm (Eq. 32–33).
//!
//! Two independent implementations are provided — a water-filling solver
//! of the dual problem and the feasibility-aware closed form — and tests
//! assert they agree; `f(Φ_k)` computed through this route must equal the
//! closed form of Eq. 10.
//!
//! # Recurrence distillation (the distill-then-cut pipeline)
//!
//! The second half of this module simulates **entanglement distillation
//! by recurrence** on the Bell-diagonal manifold: the DEJMPS (Deutsch et
//! al., PRL 77, 2818) and BBPSSW (Bennett et al., PRL 76, 722) protocols
//! consume two noisy pairs per round (bilateral CNOT + coincidence
//! post-selection) and, on success, return one pair of higher fidelity.
//! Both maps are closed-form on the Bell weights — no circuit simulation
//! is needed on the hot path — so [`DistillationSchedule`] iterates `m`
//! rounds exactly, tracking per-round success probabilities and the
//! expected raw-pair consumption `Πⱼ 2/sⱼ`. `wirecut::mixed` composes
//! the schedule with the Bell-diagonal inversion cut to map where
//! distillation closes the κ\_inversion-vs-γ gap (experiment E16).

/// Computes the m-distillation norm from Schmidt coefficients via the
/// dual characterisation, solving `Σᵢ min(1, c·vᵢ)² = m` for the clip
/// level `c` by bisection (water-filling).
///
/// # Panics
/// Panics if `m == 0`, the coefficient list is empty, or any coefficient
/// is negative.
pub fn m_distillation_norm(schmidt_coefficients: &[f64], m: usize) -> f64 {
    assert!(m >= 1, "m must be positive");
    assert!(!schmidt_coefficients.is_empty(), "empty Schmidt vector");
    let mut v: Vec<f64> = schmidt_coefficients.to_vec();
    assert!(
        v.iter().all(|&z| z >= -1e-15),
        "negative Schmidt coefficient"
    );
    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let d = v.len();
    let m_f = m as f64;

    // If the all-ones vector is feasible (d ≤ m), the optimum is ‖v‖₁.
    if d as f64 <= m_f {
        return v.iter().sum();
    }

    // Water-filling: u_i = min(1, c·v_i), find c with Σ u_i² = m.
    let budget = |c: f64| -> f64 { v.iter().map(|&x| (c * x).min(1.0).powi(2)).sum() };
    // Σ u_i² is nondecreasing in c, bounded by d ≥ m; bisect.
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    while budget(hi) < m_f {
        hi *= 2.0;
        if hi > 1e12 {
            // All mass on (effectively) zero coefficients — degenerate.
            break;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if budget(mid) < m_f {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let c = 0.5 * (lo + hi);
    v.iter().map(|&x| (c * x).min(1.0) * x).sum()
}

/// Closed-form evaluation (paper Eq. 30–31): scan head sizes `j`, keep
/// the feasible balance `‖ζ↓_{1:j}‖₁ + √(m−j)·‖ζ↓_{j+1:d}‖₂` where the
/// implied tail multiplier does not exceed the clip level.
pub fn m_distillation_norm_closed_form(schmidt_coefficients: &[f64], m: usize) -> f64 {
    assert!(m >= 1);
    let mut v: Vec<f64> = schmidt_coefficients.to_vec();
    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let d = v.len();
    if d <= m {
        return v.iter().sum();
    }
    let mut best = 0.0f64;
    for j in 0..=m {
        let head: f64 = v[..j].iter().sum();
        let tail_sq: f64 = v[j..].iter().map(|x| x * x).sum();
        let tail = tail_sq.sqrt();
        let slack = (m - j) as f64;
        if tail < 1e-300 {
            best = best.max(head);
            continue;
        }
        let c = slack.sqrt() / tail;
        // Feasibility: the largest tail entry must stay ≤ 1 after scaling,
        // and the head entries must genuinely want to clip (c·v_j ≥ 1),
        // otherwise this j is not the optimal split (but still a valid
        // lower bound, so we simply take the max over feasible values).
        if c * v[j] <= 1.0 + 1e-12 {
            best = best.max(head + slack.sqrt() * tail);
        }
    }
    best
}

/// The maximal LOCC overlap of a **pure** state with the two-qubit
/// maximally entangled state via the distillation-norm route (Eq. 29):
/// `f = ½ ‖ψ‖²_\[2\]`, capped at 1.
pub fn overlap_via_distillation_norm(schmidt_coefficients: &[f64]) -> f64 {
    let n = m_distillation_norm(schmidt_coefficients, 2);
    (0.5 * n * n).min(1.0)
}

// ---------------------------------------------------------------------
// Recurrence distillation on Bell-diagonal weights.
// ---------------------------------------------------------------------

/// Which two-to-one recurrence protocol a [`DistillationSchedule`] runs.
///
/// Both act on Bell-diagonal weights `[q_I, q_X, q_Y, q_Z]` (the
/// convention of [`crate::bell_diagonal`]: weight `q_σ` on
/// `|Φ_σ⟩ = (σ⊗I)|Φ⁺⟩`) and consume two pairs per attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecurrenceProtocol {
    /// DEJMPS (Deutsch et al.): keeps the full Bell-diagonal structure
    /// across rounds — strictly faster convergence than BBPSSW on Werner
    /// inputs because the output anisotropy is exploited, not discarded.
    Dejmps,
    /// BBPSSW (Bennett et al.): twirls to Werner form before each
    /// attempt, so the state is always isotropic and the recurrence is a
    /// scalar fidelity map.
    Bbpssw,
}

fn assert_bell_weights(q: [f64; 4]) {
    let total: f64 = q.iter().sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "Bell weights must sum to 1, got {total}"
    );
    assert!(
        q.iter().all(|&w| w >= -1e-12),
        "negative Bell weight in {q:?}"
    );
}

/// One **DEJMPS** round on Bell weights `[q_I, q_X, q_Y, q_Z]`; returns
/// `(new_weights, success_probability)`.
///
/// In the Deutsch et al. labelling `(A, B, C, D)` over
/// `(Φ⁺, Ψ⁻, Ψ⁺, Φ⁻)` — i.e. `A = q_I`, `B = q_Y`, `C = q_X`,
/// `D = q_Z` here — the coincidence-post-selected map is
///
/// `A' = (A² + B²)/N`, `B' = 2CD/N`, `C' = (C² + D²)/N`, `D' = 2AB/N`
///
/// with success probability `N = (A + B)² + (C + D)²`. The map has the
/// pure fixed point `(1, 0, 0, 0)` and the invariant `A' > ½ ⇔ A > ½`
/// (since `A − B > C + D ⇔ 2A > 1`), so every schedule started above
/// fidelity ½ stays invertible for the Pauli-inversion cut.
///
/// # Panics
/// Panics if the weights are not a normalised probability vector.
pub fn dejmps_round(q: [f64; 4]) -> ([f64; 4], f64) {
    assert_bell_weights(q);
    let (a, b, c, d) = (q[0], q[2], q[1], q[3]);
    let n = (a + b) * (a + b) + (c + d) * (c + d);
    debug_assert!(n > 0.0, "vanishing DEJMPS success probability");
    let out = [
        (a * a + b * b) / n, // Φ⁺ → q_I
        (c * c + d * d) / n, // Ψ⁺ → q_X
        2.0 * c * d / n,     // Ψ⁻ → q_Y
        2.0 * a * b / n,     // Φ⁻ → q_Z
    ];
    (out, n)
}

/// One **BBPSSW** round on Bell weights; returns
/// `(new_weights, success_probability)`.
///
/// The protocol first twirls to Werner form (a deterministic LOCC that
/// preserves the fidelity `F = q_I`), then applies the scalar recurrence
///
/// `F' = (F² + (1−F)²/9) / N`, `N = F² + 2F(1−F)/3 + 5(1−F)²/9`,
///
/// returning the isotropic weights `[F', (1−F')/3, (1−F')/3, (1−F')/3]`.
///
/// # Panics
/// Panics if the weights are not a normalised probability vector.
pub fn bbpssw_round(q: [f64; 4]) -> ([f64; 4], f64) {
    assert_bell_weights(q);
    let f = q[0];
    let e = 1.0 - f;
    let n = f * f + 2.0 * f * e / 3.0 + 5.0 * e * e / 9.0;
    debug_assert!(n > 0.0, "vanishing BBPSSW success probability");
    let f_new = (f * f + e * e / 9.0) / n;
    let rest = (1.0 - f_new) / 3.0;
    ([f_new, rest, rest, rest], n)
}

/// One round of the selected protocol.
pub fn recurrence_round(q: [f64; 4], protocol: RecurrenceProtocol) -> ([f64; 4], f64) {
    match protocol {
        RecurrenceProtocol::Dejmps => dejmps_round(q),
        RecurrenceProtocol::Bbpssw => bbpssw_round(q),
    }
}

/// One completed recurrence round inside a [`DistillationSchedule`].
#[derive(Clone, Copy, Debug)]
pub struct DistillationRound {
    /// Bell weights after this round (post-selected on success).
    pub weights: [f64; 4],
    /// Success probability of this round's coincidence post-selection.
    pub success_probability: f64,
}

/// An exact `m`-round recurrence schedule on Bell-diagonal weights.
///
/// Round `j` consumes two level-`(j−1)` pairs and succeeds with
/// probability `sⱼ`, so one level-`m` pair costs `2^m` raw pairs per
/// *attempt chain* and `Πⱼ 2/sⱼ` raw pairs in **expectation**
/// ([`expected_pairs_per_output`](Self::expected_pairs_per_output)) —
/// the accounting the distill-then-cut planner in `wirecut::mixed`
/// charges against the sampling-overhead gain.
#[derive(Clone, Debug)]
pub struct DistillationSchedule {
    protocol: RecurrenceProtocol,
    initial: [f64; 4],
    rounds: Vec<DistillationRound>,
}

impl DistillationSchedule {
    /// Runs `rounds` recurrence rounds of `protocol` from `initial`.
    ///
    /// # Panics
    /// Panics if `initial` is not a normalised probability vector.
    pub fn new(initial: [f64; 4], rounds: usize, protocol: RecurrenceProtocol) -> Self {
        assert_bell_weights(initial);
        let mut q = initial;
        let rounds = (0..rounds)
            .map(|_| {
                let (next, s) = recurrence_round(q, protocol);
                q = next;
                DistillationRound {
                    weights: next,
                    success_probability: s,
                }
            })
            .collect();
        Self {
            protocol,
            initial,
            rounds,
        }
    }

    /// The protocol this schedule runs.
    pub fn protocol(&self) -> RecurrenceProtocol {
        self.protocol
    }

    /// Number of recurrence rounds.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The per-round record, in execution order.
    pub fn round_records(&self) -> &[DistillationRound] {
        &self.rounds
    }

    /// The input Bell weights.
    pub fn initial_weights(&self) -> [f64; 4] {
        self.initial
    }

    /// Bell weights after the final round (the input weights for
    /// `rounds == 0`).
    pub fn final_weights(&self) -> [f64; 4] {
        self.rounds.last().map_or(self.initial, |r| r.weights)
    }

    /// Final fidelity with `|Φ⁺⟩` (the `q_I` weight).
    pub fn fidelity(&self) -> f64 {
        self.final_weights()[0]
    }

    /// Fidelity trajectory, starting at the input fidelity
    /// (`rounds() + 1` entries).
    pub fn fidelities(&self) -> Vec<f64> {
        std::iter::once(self.initial[0])
            .chain(self.rounds.iter().map(|r| r.weights[0]))
            .collect()
    }

    /// Probability that one full attempt chain (all `m` rounds) succeeds:
    /// `Πⱼ sⱼ`.
    pub fn success_probability(&self) -> f64 {
        self.rounds.iter().map(|r| r.success_probability).product()
    }

    /// Expected raw input pairs consumed per distilled output pair:
    /// `Πⱼ 2/sⱼ` (each round doubles the pair bill and inflates it by
    /// its failure rate; independent attempts make the expectation
    /// multiplicative). Equals `1` for the empty schedule and is always
    /// `≥ 2^m`.
    pub fn expected_pairs_per_output(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| 2.0 / r.success_probability)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phi_k::PhiK;

    #[test]
    fn two_coefficient_norm_is_one_norm() {
        // Appendix A: with only two non-zero Schmidt coefficients the
        // 2-distillation norm is the plain 1-norm (Eq. 32–33).
        let k: f64 = 0.7;
        let kk = 1.0 / (1.0 + k * k).sqrt();
        let coeffs = [kk, k * kk];
        let norm = m_distillation_norm(&coeffs, 2);
        assert!((norm - (kk + k * kk)).abs() < 1e-9);
    }

    #[test]
    fn overlap_matches_eq_10_closed_form() {
        for &k in &[0.0, 0.15, 0.4, 0.62, 0.9, 1.0] {
            let phi = PhiK::new(k);
            let kk = phi.normalisation();
            let coeffs = [kk, k * kk];
            let via_norm = overlap_via_distillation_norm(&coeffs);
            assert!(
                (via_norm - phi.overlap()).abs() < 1e-9,
                "Appendix A route mismatch at k={k}: {via_norm} vs {}",
                phi.overlap()
            );
        }
    }

    #[test]
    fn maximally_entangled_norm() {
        // |Φ⟩: coefficients (1/√2, 1/√2); ‖·‖_[2] = √2, f = 1.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let norm = m_distillation_norm(&[s, s], 2);
        assert!((norm - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert!((overlap_via_distillation_norm(&[s, s]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn product_state_norm() {
        // Product state: coefficients (1, 0); ‖·‖_[2] = 1, f = 1/2.
        let norm = m_distillation_norm(&[1.0, 0.0], 2);
        assert!((norm - 1.0).abs() < 1e-9);
        assert!((overlap_via_distillation_norm(&[1.0, 0.0]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn flat_rank_four_state_reaches_full_overlap() {
        // Φ₄ majorises Φ₂, so LOCC converts it deterministically:
        // ‖ζ‖_[2] = √2 and f = 1.
        let coeffs = [0.5; 4];
        let norm = m_distillation_norm(&coeffs, 2);
        assert!((norm - std::f64::consts::SQRT_2).abs() < 1e-9, "got {norm}");
        assert!((overlap_via_distillation_norm(&coeffs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn m_one_norm_is_head_plus_tail_l2() {
        // For m = 1 and a dominant first coefficient: u clips to 1 on it
        // and water-fills nothing else ⇒ norm = ζ₁ only if the tail budget
        // is exhausted... verify against water-filling directly.
        let coeffs = [0.8, 0.5, 0.33166247903554];
        let norm = m_distillation_norm(&coeffs, 1);
        let closed = m_distillation_norm_closed_form(&coeffs, 1);
        assert!(
            (norm - closed).abs() < 1e-9,
            "water-fill {norm} vs closed {closed}"
        );
        // m=1 dual: maximise ⟨u,v⟩ with ‖u‖₂ ≤ 1, u ≤ 1 ⇒ best is u = v
        // (feasible since ‖v‖₂ = 1): norm = ‖v‖₂² = 1... only when v is
        // normalised and max v_i ≤ 1.
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn closed_form_matches_water_filling_on_random_vectors() {
        // Deterministic pseudo-random Schmidt vectors of rank 3–6.
        let mut s = 12345u64;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64).abs()
        };
        for trial in 0..50 {
            let d = 3 + (trial % 4);
            let mut v: Vec<f64> = (0..d).map(|_| next() + 0.01).collect();
            let n2: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            for x in v.iter_mut() {
                *x /= n2;
            }
            for m in 1..=d {
                let a = m_distillation_norm(&v, m);
                let b = m_distillation_norm_closed_form(&v, m);
                assert!(
                    (a - b).abs() < 1e-7,
                    "trial {trial} m={m}: water-fill {a} vs closed {b} (v={v:?})"
                );
            }
        }
    }

    #[test]
    fn norm_is_monotone_in_m() {
        // The feasible set of the dual grows with m, so the norm does too.
        let coeffs = [0.6, 0.48, 0.4, 0.5];
        let mut prev = 0.0;
        for m in 1..=4 {
            let n = m_distillation_norm(&coeffs, m);
            assert!(n >= prev - 1e-9, "norm not monotone at m={m}: {n} < {prev}");
            prev = n;
        }
        // At m = d the norm is the 1-norm.
        let l1: f64 = coeffs.iter().sum();
        assert!((prev - l1).abs() < 1e-9);
    }

    #[test]
    fn order_of_coefficients_is_irrelevant() {
        let a = m_distillation_norm(&[0.2, 0.9, 0.38729833462], 2);
        let b = m_distillation_norm(&[0.9, 0.38729833462, 0.2], 2);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn overlap_never_exceeds_one() {
        let coeffs = [0.7, 0.5099019513592785, 0.5];
        let f = overlap_via_distillation_norm(&coeffs);
        assert!(f <= 1.0 + 1e-12);
        // This spectrum is majorised by (1/√2, 1/√2), so f = 1 exactly.
        assert!((f - 1.0).abs() < 1e-9);
    }

    // --- recurrence distillation ---

    fn werner_weights(p: f64) -> [f64; 4] {
        let rest = (1.0 - p) / 4.0;
        [p + rest, rest, rest, rest]
    }

    #[test]
    fn pure_bell_state_is_a_fixed_point_of_both_protocols() {
        for protocol in [RecurrenceProtocol::Dejmps, RecurrenceProtocol::Bbpssw] {
            let (q, s) = recurrence_round([1.0, 0.0, 0.0, 0.0], protocol);
            assert!((s - 1.0).abs() < 1e-12, "{protocol:?} success {s}");
            assert!((q[0] - 1.0).abs() < 1e-12, "{protocol:?} weights {q:?}");
        }
    }

    #[test]
    fn dejmps_werner_round_matches_hand_closed_form() {
        // From Werner weights the first-round fidelity is
        // F' = (1 + 2p + 5p²)/(4(1 + p²)) at success (1 + p²)/2.
        for &p in &[0.4, 0.6, 0.8, 0.95] {
            let (q, s) = dejmps_round(werner_weights(p));
            assert!((s - (1.0 + p * p) / 2.0).abs() < 1e-12);
            let f_expect = (1.0 + 2.0 * p + 5.0 * p * p) / (4.0 * (1.0 + p * p));
            assert!((q[0] - f_expect).abs() < 1e-12, "F'({p}) = {}", q[0]);
            // X/Y outputs are the quadratic "new error" channel.
            let r = (1.0 - p) / 4.0;
            let n = (1.0 + p * p) / 2.0;
            assert!((q[1] - 2.0 * r * r / n).abs() < 1e-12);
            assert!((q[2] - 2.0 * r * r / n).abs() < 1e-12);
        }
    }

    #[test]
    fn bbpssw_round_reproduces_the_scalar_recurrence() {
        let f: f64 = 0.75;
        let e = 1.0 - f;
        let n = f * f + 2.0 * f * e / 3.0 + 5.0 * e * e / 9.0;
        let f_next = (f * f + e * e / 9.0) / n;
        let (q, s) = bbpssw_round(werner_weights((4.0 * f - 1.0) / 3.0));
        assert!((s - n).abs() < 1e-12);
        assert!((q[0] - f_next).abs() < 1e-12);
        // Output is isotropic (Werner form).
        assert!((q[1] - q[2]).abs() < 1e-15 && (q[2] - q[3]).abs() < 1e-15);
    }

    #[test]
    fn fidelity_one_half_is_invariant() {
        // (A − B)² = (C + D)² at A = ½, so both protocols pin F = ½ —
        // distillation can never rescue a boundary Werner state.
        let mut q = werner_weights(1.0 / 3.0);
        for _ in 0..5 {
            q = dejmps_round(q).0;
            assert!((q[0] - 0.5).abs() < 1e-12, "DEJMPS moved F: {q:?}");
        }
        let (q, _) = bbpssw_round(werner_weights(1.0 / 3.0));
        assert!((q[0] - 0.5).abs() < 1e-12, "BBPSSW moved F: {q:?}");
    }

    #[test]
    fn dejmps_schedule_is_monotone_and_convergent_from_werner() {
        for &p in &[0.5, 0.7, 0.9] {
            let schedule =
                DistillationSchedule::new(werner_weights(p), 8, RecurrenceProtocol::Dejmps);
            let fs = schedule.fidelities();
            assert_eq!(fs.len(), 9);
            for w in fs.windows(2) {
                // Strictly increasing until double precision saturates.
                if w[0] < 1.0 - 1e-12 {
                    assert!(w[1] > w[0], "fidelity not monotone at p={p}: {fs:?}");
                } else {
                    assert!(w[1] >= w[0], "fidelity dropped at p={p}: {fs:?}");
                }
            }
            assert!(
                schedule.fidelity() > 0.99,
                "DEJMPS did not converge from p={p}: {}",
                schedule.fidelity()
            );
        }
    }

    #[test]
    fn dejmps_beats_bbpssw_on_werner_inputs() {
        let q0 = werner_weights(0.6);
        let dejmps = DistillationSchedule::new(q0, 3, RecurrenceProtocol::Dejmps);
        let bbpssw = DistillationSchedule::new(q0, 3, RecurrenceProtocol::Bbpssw);
        assert!(
            dejmps.fidelity() > bbpssw.fidelity(),
            "DEJMPS {} vs BBPSSW {}",
            dejmps.fidelity(),
            bbpssw.fidelity()
        );
    }

    #[test]
    fn schedule_accounting_multiplies_rounds() {
        let schedule =
            DistillationSchedule::new(werner_weights(0.7), 3, RecurrenceProtocol::Dejmps);
        let per_round: Vec<f64> = schedule
            .round_records()
            .iter()
            .map(|r| r.success_probability)
            .collect();
        assert_eq!(per_round.len(), 3);
        let chain: f64 = per_round.iter().product();
        assert!((schedule.success_probability() - chain).abs() < 1e-12);
        let pairs: f64 = per_round.iter().map(|&s| 2.0 / s).product();
        assert!((schedule.expected_pairs_per_output() - pairs).abs() < 1e-12);
        assert!(schedule.expected_pairs_per_output() >= 8.0 - 1e-12);
    }

    #[test]
    fn empty_schedule_is_the_identity() {
        let q0 = werner_weights(0.55);
        let schedule = DistillationSchedule::new(q0, 0, RecurrenceProtocol::Dejmps);
        assert_eq!(schedule.final_weights(), q0);
        assert!((schedule.success_probability() - 1.0).abs() < 1e-15);
        assert!((schedule.expected_pairs_per_output() - 1.0).abs() < 1e-15);
        assert_eq!(schedule.fidelities(), vec![q0[0]]);
    }

    #[test]
    fn rounds_preserve_normalisation_and_positivity() {
        let skewed = [0.62, 0.2, 0.08, 0.1];
        for protocol in [RecurrenceProtocol::Dejmps, RecurrenceProtocol::Bbpssw] {
            let mut q = skewed;
            for round in 0..6 {
                let (next, s) = recurrence_round(q, protocol);
                assert!(s > 0.0 && s <= 1.0 + 1e-12, "{protocol:?} s={s}");
                let total: f64 = next.iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-12,
                    "{protocol:?} round {round} sum {total}"
                );
                assert!(next.iter().all(|&w| w >= -1e-15));
                q = next;
            }
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn unnormalised_weights_rejected() {
        let _ = dejmps_round([0.5, 0.5, 0.5, 0.5]);
    }
}

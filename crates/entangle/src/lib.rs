//! # entangle — two-qubit entanglement toolkit
//!
//! Implements Section II-A and Appendix A of Bechtold et al. (IPPS 2024):
//! the canonical NME family `|Φ_k⟩`, Schmidt decompositions, Bell-basis
//! overlaps, the m-distillation norm, and the maximal LOCC overlap `f(ρ)`
//! that drives the optimal wire-cutting overhead of Theorem 1.
//!
//! * [`PhiK`] — `|Φ_k⟩ = K(|00⟩ + k|11⟩)` with all closed forms
//!   (Eq. 6, 10, 55–58) and a preparation circuit.
//! * [`schmidt()`](schmidt()) — SVD-based Schmidt decomposition (Eq. 3–5).
//! * [`bell`] — Bell basis `|Φ_σ⟩ = (σ⊗I)|Φ⟩`, Bell-diagonal and Werner
//!   states.
//! * [`distillation`] — the m-distillation norm route to `f` (Appendix
//!   A), plus the DEJMPS/BBPSSW recurrence-distillation simulator on
//!   Bell-diagonal weights feeding the distill-then-cut pipeline.
//! * [`measures`] — `f(ρ)` for pure states (exact), Bell-diagonal states
//!   (exact) and general two-qubit states (fully entangled fraction),
//!   concurrence and entanglement entropy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bell;
pub mod distillation;
pub mod measures;
pub mod phi_k;
pub mod schmidt;

pub use bell::{
    bell_diagonal, bell_overlap, bell_overlaps, bell_state, phi_plus, phi_plus_density, werner,
};
pub use distillation::{
    bbpssw_round, dejmps_round, m_distillation_norm, m_distillation_norm_closed_form,
    overlap_via_distillation_norm, recurrence_round, DistillationRound, DistillationSchedule,
    RecurrenceProtocol,
};
pub use measures::{
    concurrence_pure, entanglement_entropy, fully_entangled_fraction, max_overlap, max_overlap_pure,
};
pub use phi_k::{PhiK, FIG6_OVERLAPS};
pub use schmidt::{schmidt, SchmidtDecomposition};

//! Entanglement measures for two-qubit states.
//!
//! The central quantity of the paper is `f(ρ)` (Eq. 1): the maximal
//! overlap with the maximally entangled state `Φ` over all LOCC
//! transformations. It determines the optimal wire-cut overhead via
//! Theorem 1, `γ^ρ(I) = 2/f(ρ) − 1`.
//!
//! Computable routes implemented here:
//!
//! * **Pure states** — exact: `f(ψ) = (λ₀+λ₁)²/2` from the Schmidt
//!   coefficients (Appendix A / Eq. 29–40, via [`mod@crate::schmidt`];
//!   cross-checked by the [`crate::distillation`] norm route).
//! * **Bell-diagonal states** — the LOCC-maximal overlap equals the largest
//!   Bell weight, floored at 1/2 (separable states reach 1/2 by local
//!   preparation; Verstraete & Verschelde, paper reference \[23\]).
//! * **General mixed states** — the *fully entangled fraction* (maximal
//!   overlap over local unitaries) evaluated exactly via the
//!   Horodecki M-matrix singular values, again floored at 1/2; this is the
//!   standard computable proxy and exact for the families used in the
//!   paper and its extensions.

use crate::phi_k::PhiK;
use crate::schmidt::schmidt;
use qlinalg::Matrix;
use qsim::{Pauli, StateVector};

/// Exact maximal LOCC overlap `f(ψ)` for a **pure** two-qubit state
/// (Appendix A): `f = (λ₀ + λ₁)² / 2`.
pub fn max_overlap_pure(state: &StateVector) -> f64 {
    assert_eq!(state.num_qubits(), 2, "two-qubit states only");
    let d = schmidt(state, 1);
    let s = d.coefficients[0] + d.coefficients[1];
    0.5 * s * s
}

/// Fully entangled fraction (FEF) of a two-qubit density operator: the
/// maximal overlap `⟨Φ|(U_A ⊗ U_B)ρ(U_A ⊗ U_B)†|Φ⟩` over local unitaries.
///
/// Computed exactly via the Horodecki criterion: with
/// `M_{ab} = Tr[ρ·(σ_a ⊗ σ_b)]` for `a, b ∈ {x, y, z}`,
/// `FEF = (1 + s₁ + s₂ − sign(det M)·s₃) / 4` where `sᵢ` are the singular
/// values of `M` sorted descending... equivalently
/// `FEF = (1 + Tr|M N|)/4` with the optimal proper/improper rotation
/// alignment. For the Bell-diagonal and locally-rotated-pure states used
/// throughout this reproduction the formula is exact.
pub fn fully_entangled_fraction(rho: &Matrix) -> f64 {
    assert_eq!(rho.rows(), 4);
    // Correlation matrix M_{ab} = Tr[ρ (σ_a ⊗ σ_b)], a on qubit1(B), b on qubit0(A).
    let paulis = [Pauli::X, Pauli::Y, Pauli::Z];
    let mut m = Matrix::zeros(3, 3);
    for (i, &pa) in paulis.iter().enumerate() {
        for (j, &pb) in paulis.iter().enumerate() {
            let op = pa.matrix().kron(&pb.matrix());
            m[(i, j)] = qlinalg::c64(op.matmul(rho).trace().re, 0.0);
        }
    }
    // Real 3×3 matrix; FEF = (1 + max_{O ∈ SO(3)-pair alignment} Tr[M^T diag(±1,∓1,...)])/4.
    // Using the standard result: FEF = (1 + λ)/4 where
    // λ = max over sign patterns with product +1... The maximally entangled
    // |Φ⟩ has correlation diag(+1, −1, +1) in (x, y, z). Local unitaries act
    // as SO(3) rotations on each side: M → R_A M R_B^T. The achievable
    // maximum of Tr[diag(1,−1,1)·M'] is s₁ + s₂ + s₃ if det(D·M) ≥ 0 else
    // s₁ + s₂ − s₃, with sᵢ singular values of M.
    let d = Matrix::from_fn(3, 3, |i, j| {
        if i != j {
            qlinalg::C_ZERO
        } else if i == 1 {
            qlinalg::c64(-1.0, 0.0)
        } else {
            qlinalg::c64(1.0, 0.0)
        }
    });
    let dm = d.matmul(&m);
    let svd = qlinalg::svd(&dm);
    let det = det3_real(&dm);
    let s = &svd.sigma;
    let lambda = if det >= 0.0 {
        s[0] + s[1] + s[2]
    } else {
        s[0] + s[1] - s[2]
    };
    (1.0 + lambda) / 4.0
}

fn det3_real(m: &Matrix) -> f64 {
    let g = |i: usize, j: usize| m[(i, j)].re;
    g(0, 0) * (g(1, 1) * g(2, 2) - g(1, 2) * g(2, 1))
        - g(0, 1) * (g(1, 0) * g(2, 2) - g(1, 2) * g(2, 0))
        + g(0, 2) * (g(1, 0) * g(2, 1) - g(1, 1) * g(2, 0))
}

/// The paper's `f(ρ)` (Eq. 1) for the state families used in this
/// reproduction: the LOCC-maximal overlap with `Φ`, which is the FEF
/// floored at `1/2` (any two-qubit state reaches overlap 1/2 with local
/// operations alone, and LOCC cannot exceed the FEF for these families).
pub fn max_overlap(rho: &Matrix) -> f64 {
    fully_entangled_fraction(rho).max(0.5)
}

/// Concurrence of a **pure** two-qubit state: `C = 2·λ₀·λ₁`.
pub fn concurrence_pure(state: &StateVector) -> f64 {
    let d = schmidt(state, 1);
    2.0 * d.coefficients[0] * d.coefficients[1]
}

/// Entanglement entropy of a pure two-qubit state across the natural
/// bipartition.
pub fn entanglement_entropy(state: &StateVector) -> f64 {
    schmidt(state, 1).entropy()
}

/// Convenience: `f(Φ_k)` via the exact pure-state route, for cross-checks
/// against [`PhiK::overlap`].
pub fn phi_k_overlap_numeric(k: f64) -> f64 {
    max_overlap_pure(&PhiK::new(k).statevector())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell::{bell_diagonal, phi_plus, werner};
    use qsim::Gate;

    #[test]
    fn pure_overlap_matches_closed_form() {
        for &k in &[0.0, 0.25, 0.5, 0.8, 1.0] {
            let phi = PhiK::new(k);
            let numeric = max_overlap_pure(&phi.statevector());
            assert!(
                (numeric - phi.overlap()).abs() < 1e-12,
                "pure overlap mismatch at k={k}"
            );
        }
    }

    #[test]
    fn overlap_invariant_under_local_unitaries() {
        // f is a function of the Schmidt spectrum only (Eq. 7–8).
        let phi = PhiK::new(0.6);
        let mut sv = phi.statevector();
        let before = max_overlap_pure(&sv);
        sv.apply_gate(&Gate::T, &[0]);
        sv.apply_gate(&Gate::H, &[1]);
        sv.apply_gate(&Gate::Ry(0.9), &[0]);
        let after = max_overlap_pure(&sv);
        assert!((before - after).abs() < 1e-10);
    }

    #[test]
    fn fef_of_bell_state_is_one() {
        let rho = phi_plus().to_density();
        assert!((fully_entangled_fraction(&rho) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn fef_of_maximally_mixed_is_quarter() {
        let rho = Matrix::identity(4).scale_re(0.25);
        assert!((fully_entangled_fraction(&rho) - 0.25).abs() < 1e-10);
        // LOCC floor lifts it to 1/2.
        assert!((max_overlap(&rho) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fef_of_werner_matches_formula() {
        for &p in &[0.0, 0.2, 0.5, 0.8, 1.0] {
            let rho = werner(p);
            let expect = p + (1.0 - p) / 4.0;
            let got = fully_entangled_fraction(&rho);
            assert!(
                (got - expect).abs() < 1e-9,
                "Werner FEF mismatch at p={p}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn fef_of_bell_diagonal_is_max_weight() {
        let q = [0.6, 0.25, 0.1, 0.05];
        let rho = bell_diagonal(q);
        assert!((fully_entangled_fraction(&rho) - 0.6).abs() < 1e-9);
        // Largest weight on a different Bell state still counts: local
        // unitaries rotate it onto Φ.
        let q2 = [0.1, 0.65, 0.15, 0.1];
        let rho2 = bell_diagonal(q2);
        assert!((fully_entangled_fraction(&rho2) - 0.65).abs() < 1e-9);
    }

    #[test]
    fn fef_of_phi_k_matches_eq_10() {
        // For pure states FEF coincides with f (Appendix A shows the LOCC
        // optimum is attained by local unitaries for Φk).
        for &k in &[0.0, 0.3, 0.7, 1.0] {
            let rho = PhiK::new(k).density();
            let got = fully_entangled_fraction(&rho);
            let expect = PhiK::new(k).overlap();
            assert!(
                (got - expect).abs() < 1e-9,
                "FEF(Φ_{k}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn concurrence_endpoints() {
        assert!((concurrence_pure(&phi_plus()) - 1.0).abs() < 1e-12);
        let product = StateVector::new(2);
        assert!(concurrence_pure(&product).abs() < 1e-12);
    }

    #[test]
    fn concurrence_of_phi_k() {
        // C(Φ_k) = 2k/(1+k²).
        for &k in &[0.2, 0.5, 0.9] {
            let c = concurrence_pure(&PhiK::new(k).statevector());
            let expect = 2.0 * k / (1.0 + k * k);
            assert!((c - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn entropy_bounds() {
        assert!((entanglement_entropy(&phi_plus()) - 1.0).abs() < 1e-12);
        assert!(entanglement_entropy(&StateVector::new(2)).abs() < 1e-12);
        let mid = entanglement_entropy(&PhiK::new(0.5).statevector());
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn max_overlap_floors_at_half() {
        // Separable pure product state: FEF = 1/2 exactly.
        let sv = StateVector::new(2);
        let rho = sv.to_density();
        let fef = fully_entangled_fraction(&rho);
        assert!((fef - 0.5).abs() < 1e-10);
        assert!((max_overlap(&rho) - 0.5).abs() < 1e-10);
    }
}

//! The pure NME family `|Φ_k⟩ = K(|00⟩ + k|11⟩)`, `K = 1/√(1+k²)`.
//!
//! This is the canonical resource family of the paper (Eq. 6): every pure
//! two-qubit state is locally equivalent to some `|Φ_k⟩` (the reduction
//! is [`mod@crate::schmidt`], Eq. 3–5). The closed forms collected here are
//! Eq. 10 (maximal overlap `f(Φ_k)`, the quantity entering Theorem 1 via
//! [`crate::measures`]), its inverse `k(f)`, and the Bell overlaps of
//! Eq. 55–58 ([`crate::bell`]) that drive the teleportation error model.

use qlinalg::{c64, Complex64, Matrix};
use qsim::{Circuit, StateVector};

/// A pure NME resource state `|Φ_k⟩` with `k ∈ [0, ∞)`; `k=1` is the
/// maximally entangled `|Φ⟩`, `k=0` (and `k→∞`) are product states.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhiK {
    k: f64,
}

impl PhiK {
    /// Creates the resource state with parameter `k ≥ 0`.
    pub fn new(k: f64) -> Self {
        assert!(
            k.is_finite() && k >= 0.0,
            "k must be finite and non-negative"
        );
        Self { k }
    }

    /// Creates from the target entanglement level `f = f(Φ_k) ∈ [1/2, 1]`,
    /// inverting Eq. 10 on the branch `k ∈ [0, 1]`:
    /// `k = (1 − √(1 − (2f−1)²)) / (2f−1)` for `f > 1/2`, `k = 0` at `f = 1/2`.
    pub fn from_overlap(f: f64) -> Self {
        assert!(
            (0.5..=1.0 + 1e-12).contains(&f),
            "overlap must be in [1/2, 1]"
        );
        let g = 2.0 * f - 1.0;
        if g <= 1e-14 {
            return Self { k: 0.0 };
        }
        let disc = (1.0 - g * g).max(0.0);
        Self {
            k: (1.0 - disc.sqrt()) / g,
        }
    }

    /// The parameter `k`.
    pub fn k(self) -> f64 {
        self.k
    }

    /// The normalisation `K = 1/√(1+k²)`.
    pub fn normalisation(self) -> f64 {
        1.0 / (1.0 + self.k * self.k).sqrt()
    }

    /// Maximal overlap with the maximally entangled state (Eq. 10):
    /// `f(Φ_k) = (k+1)² / (2(k²+1))`.
    pub fn overlap(self) -> f64 {
        let k = self.k;
        (k + 1.0) * (k + 1.0) / (2.0 * (k * k + 1.0))
    }

    /// The four Bell overlaps `⟨Φ_σ|Φ_k|Φ_σ⟩` for `σ ∈ {I, X, Y, Z}`
    /// (Eq. 55–58): `((k+1)²/(2(k²+1)), 0, 0, (k−1)²/(2(k²+1)))`.
    pub fn bell_overlaps(self) -> [f64; 4] {
        let k = self.k;
        let d = 2.0 * (k * k + 1.0);
        [
            (k + 1.0) * (k + 1.0) / d,
            0.0,
            0.0,
            (k - 1.0) * (k - 1.0) / d,
        ]
    }

    /// Amplitudes `(K, 0, 0, kK)` of `|Φ_k⟩`.
    pub fn amplitudes(self) -> [Complex64; 4] {
        let kk = self.normalisation();
        [
            c64(kk, 0.0),
            c64(0.0, 0.0),
            c64(0.0, 0.0),
            c64(self.k * kk, 0.0),
        ]
    }

    /// `|Φ_k⟩` as a two-qubit statevector.
    pub fn statevector(self) -> StateVector {
        StateVector::from_amplitudes(2, self.amplitudes().to_vec())
    }

    /// Density operator `Φ_k = |Φ_k⟩⟨Φ_k|`.
    pub fn density(self) -> Matrix {
        self.statevector().to_density()
    }

    /// The rotation angle θ with `cos(θ/2) = K`, `sin(θ/2) = kK`, so that
    /// `CX · (R_y(θ) ⊗ I)|00⟩ = |Φ_k⟩`.
    pub fn preparation_angle(self) -> f64 {
        2.0 * self.k.atan2(1.0)
    }

    /// A two-qubit preparation circuit for `|Φ_k⟩` on qubits `(q_a, q_b)`
    /// of an `n`-qubit register: `R_y(θ)` on `q_a` then `CX(q_a → q_b)`.
    pub fn preparation_circuit(self, n: usize, q_a: usize, q_b: usize) -> Circuit {
        let mut c = Circuit::new(n, 0);
        c.ry(self.preparation_angle(), q_a).cx(q_a, q_b);
        c
    }

    /// Expected number of entangled pairs consumed per effective QPD
    /// sample in the Theorem 2 decomposition:
    /// `2(k²+1)/(k+1)² = ⟨Φ|Φ_k|Φ⟩⁻¹` (Section III, closing remark).
    pub fn pairs_per_sample(self) -> f64 {
        1.0 / self.overlap()
    }
}

/// The six entanglement levels used in the paper's Figure 6.
pub const FIG6_OVERLAPS: [f64; 6] = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bell;
    use qsim::Pauli;

    #[test]
    fn overlap_closed_form_matches_direct_computation() {
        for &k in &[0.0, 0.1, 0.35, 0.5, 0.77, 1.0] {
            let phi = PhiK::new(k);
            let rho = phi.density();
            let direct = bell::bell_overlap(&rho, Pauli::I);
            assert!(
                (phi.overlap() - direct).abs() < 1e-12,
                "Eq. 10 mismatch at k={k}: {} vs {direct}",
                phi.overlap()
            );
        }
    }

    #[test]
    fn bell_overlaps_match_eq_55_58() {
        for &k in &[0.0, 0.2, 0.6, 1.0] {
            let phi = PhiK::new(k);
            let rho = phi.density();
            let closed = phi.bell_overlaps();
            let numeric = bell::bell_overlaps(&rho);
            for i in 0..4 {
                assert!(
                    (closed[i] - numeric[i]).abs() < 1e-12,
                    "Bell overlap {i} mismatch at k={k}"
                );
            }
            // X and Y overlaps vanish identically (Eq. 56–57).
            assert!(numeric[1].abs() < 1e-12);
            assert!(numeric[2].abs() < 1e-12);
        }
    }

    #[test]
    fn endpoints() {
        assert!((PhiK::new(1.0).overlap() - 1.0).abs() < 1e-12);
        assert!((PhiK::new(0.0).overlap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_overlap_inverts_overlap() {
        for &f in &FIG6_OVERLAPS {
            let phi = PhiK::from_overlap(f);
            assert!(
                (phi.overlap() - f).abs() < 1e-10,
                "k(f) inversion failed at f={f}: k={}, f(k)={}",
                phi.k(),
                phi.overlap()
            );
            assert!((0.0..=1.0).contains(&phi.k()));
        }
    }

    #[test]
    fn preparation_circuit_produces_phi_k() {
        for &k in &[0.0, 0.4, 1.0] {
            let phi = PhiK::new(k);
            let circ = phi.preparation_circuit(2, 0, 1);
            let mut sv = StateVector::new(2);
            sv.apply_circuit(&circ);
            let expect = phi.statevector();
            assert!(
                qlinalg::vector::approx_eq(sv.amplitudes(), expect.amplitudes(), 1e-12),
                "preparation mismatch at k={k}"
            );
        }
    }

    #[test]
    fn pairs_per_sample_is_inverse_overlap() {
        let phi = PhiK::new(0.5);
        assert!((phi.pairs_per_sample() * phi.overlap() - 1.0).abs() < 1e-12);
        // At k=1 exactly one pair per sample (plain teleportation).
        assert!((PhiK::new(1.0).pairs_per_sample() - 1.0).abs() < 1e-12);
        // At k=0: 2 pairs per sample.
        assert!((PhiK::new(0.0).pairs_per_sample() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_is_monotone_in_k_on_unit_interval() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let k = i as f64 / 100.0;
            let f = PhiK::new(k).overlap();
            assert!(f >= prev - 1e-12, "overlap not monotone at k={k}");
            prev = f;
        }
    }

    #[test]
    fn k_above_one_mirrors_below_one() {
        // f(k) = f(1/k): the family is symmetric under swapping Schmidt
        // coefficients.
        for &k in &[0.2, 0.5, 0.8] {
            let a = PhiK::new(k).overlap();
            let b = PhiK::new(1.0 / k).overlap();
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn schmidt_k_of_phi_k() {
        let phi = PhiK::new(0.6);
        let d = crate::schmidt::schmidt(&phi.statevector(), 1);
        assert!((d.canonical_k() - 0.6).abs() < 1e-10);
    }
}

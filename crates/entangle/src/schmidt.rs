//! Schmidt decomposition of bipartite pure states.
//!
//! Any two-qubit pure state `|ψ⟩ = Σᵢⱼ Mᵢⱼ|i⟩_B|j⟩_A` decomposes as
//! `|ψ⟩ = Σ_k λ_k |ξ_k⟩|ζ_k⟩` (paper Eq. 3) via the SVD of `M`. The paper
//! uses this to reduce every pure resource state to the canonical family
//! `|Φ_k⟩` (Eq. 5–6, [`crate::PhiK`]); we reproduce that reduction in
//! [`SchmidtDecomposition::canonical_k`], and
//! [`crate::measures`] reads `f(ψ)` off the Schmidt coefficients.

use qlinalg::{svd, Matrix};
use qsim::StateVector;

/// Schmidt decomposition of a bipartite pure state with subsystem
/// dimensions `(d_a, d_b)` (qubit side A = low index bits).
#[derive(Clone, Debug)]
pub struct SchmidtDecomposition {
    /// Schmidt coefficients, non-negative, descending.
    pub coefficients: Vec<f64>,
    /// Orthonormal basis of subsystem B (high bits); column `k` pairs with
    /// `coefficients[k]`.
    pub basis_b: Matrix,
    /// Orthonormal basis of subsystem A (low bits).
    pub basis_a: Matrix,
    d_a: usize,
    d_b: usize,
}

/// Computes the Schmidt decomposition of `state` across the bipartition
/// `(low `n_a` qubits | remaining qubits)`.
pub fn schmidt(state: &StateVector, n_a: usize) -> SchmidtDecomposition {
    let n = state.num_qubits();
    assert!(n_a > 0 && n_a < n, "bipartition must be non-trivial");
    let d_a = 1usize << n_a;
    let d_b = 1usize << (n - n_a);
    // Coefficient matrix M[b, a] = ⟨b|_B ⟨a|_A |ψ⟩, index = b·d_a + a.
    let m = Matrix::from_fn(d_b, d_a, |b, a| state.amplitude(b * d_a + a));
    let dec = svd(&m);
    SchmidtDecomposition {
        coefficients: dec.sigma,
        basis_b: dec.u,
        basis_a: dec.v.conj(),
        d_a,
        d_b,
    }
}

impl SchmidtDecomposition {
    /// Schmidt rank at tolerance `tol`.
    pub fn rank(&self, tol: f64) -> usize {
        self.coefficients.iter().filter(|&&s| s > tol).count()
    }

    /// Entanglement entropy `−Σ λ_k² log2 λ_k²`.
    pub fn entropy(&self) -> f64 {
        self.coefficients
            .iter()
            .filter(|&&l| l > 1e-15)
            .map(|&l| {
                let p = l * l;
                -p * p.log2()
            })
            .sum()
    }

    /// Reconstructs the state `Σ_k λ_k |ξ_k⟩_B ⊗ |ζ_k⟩_A`.
    pub fn reconstruct(&self) -> StateVector {
        let n = (self.d_a * self.d_b).trailing_zeros() as usize;
        let mut amps = vec![qlinalg::C_ZERO; self.d_a * self.d_b];
        for (k, &lam) in self.coefficients.iter().enumerate() {
            if lam < 1e-300 {
                continue;
            }
            for b in 0..self.d_b {
                for a in 0..self.d_a {
                    amps[b * self.d_a + a] += self.basis_b[(b, k)] * self.basis_a[(a, k)] * lam;
                }
            }
        }
        StateVector::from_amplitudes_normalised(n, amps)
    }

    /// For a **two-qubit** state: the canonical parameter `k = p₁/p₀`
    /// of Eq. 4–6, the ratio of the smaller to the larger Schmidt
    /// coefficient, so `k ∈ [0, 1]` and the state is locally equivalent to
    /// `|Φ_k⟩ = (|00⟩ + k|11⟩)/√(1+k²)`.
    pub fn canonical_k(&self) -> f64 {
        assert_eq!(
            self.coefficients.len(),
            2,
            "canonical_k requires two qubits"
        );
        let p0 = self.coefficients[0];
        let p1 = self.coefficients[1];
        assert!(p0 > 0.0, "zero state");
        p1 / p0
    }

    /// Local unitaries `(U_B, U_A)` mapping the computational basis to the
    /// Schmidt bases, i.e. `|ψ⟩ = (U_B ⊗ U_A)|Φ_k⟩`-style reconstruction
    /// (paper Eq. 5).
    pub fn local_unitaries(&self) -> (Matrix, Matrix) {
        (self.basis_b.clone(), self.basis_a.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlinalg::{c64, vector};
    use qsim::Gate;

    fn bell() -> StateVector {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::CX, &[0, 1]);
        sv
    }

    #[test]
    fn bell_state_has_flat_schmidt_spectrum() {
        let d = schmidt(&bell(), 1);
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((d.coefficients[0] - s).abs() < 1e-12);
        assert!((d.coefficients[1] - s).abs() < 1e-12);
        assert_eq!(d.rank(1e-10), 2);
        assert!((d.entropy() - 1.0).abs() < 1e-12);
        assert!((d.canonical_k() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn product_state_has_rank_one() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::Ry(0.7), &[0]);
        sv.apply_gate(&Gate::Ry(1.9), &[1]);
        let d = schmidt(&sv, 1);
        assert_eq!(d.rank(1e-10), 1);
        assert!(d.entropy().abs() < 1e-10);
        assert!((d.canonical_k()).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_round_trip() {
        // A generic entangled state from a short random circuit.
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::Ry(0.6), &[0]);
        sv.apply_gate(&Gate::CX, &[0, 1]);
        sv.apply_gate(&Gate::T, &[1]);
        sv.apply_gate(&Gate::Ry(1.2), &[1]);
        sv.apply_gate(&Gate::CX, &[1, 0]);
        let d = schmidt(&sv, 1);
        let back = d.reconstruct();
        assert!(
            vector::approx_eq_up_to_phase(back.amplitudes(), sv.amplitudes(), 1e-9),
            "reconstruction differs"
        );
    }

    #[test]
    fn schmidt_coefficients_norm() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::Ry(1.0), &[0]);
        sv.apply_gate(&Gate::CX, &[0, 1]);
        let d = schmidt(&sv, 1);
        let sq: f64 = d.coefficients.iter().map(|l| l * l).sum();
        assert!((sq - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_qubit_bipartition() {
        // GHZ across (q0 | q1 q2): Schmidt rank 2 with equal coefficients.
        let mut sv = StateVector::new(3);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::CX, &[0, 1]);
        sv.apply_gate(&Gate::CX, &[0, 2]);
        let d = schmidt(&sv, 1);
        assert_eq!(d.rank(1e-10), 2);
        assert!((d.entropy() - 1.0).abs() < 1e-10);
        let back = d.reconstruct();
        assert!(vector::approx_eq_up_to_phase(
            back.amplitudes(),
            sv.amplitudes(),
            1e-9
        ));
    }

    #[test]
    fn canonical_k_of_phi_k_state() {
        for &k in &[0.0f64, 0.3, 0.7, 1.0] {
            let norm = 1.0 / (1.0 + k * k).sqrt();
            let amps = vec![
                c64(norm, 0.0),
                c64(0.0, 0.0),
                c64(0.0, 0.0),
                c64(norm * k, 0.0),
            ];
            let sv = StateVector::from_amplitudes_normalised(2, amps);
            let d = schmidt(&sv, 1);
            assert!((d.canonical_k() - k).abs() < 1e-10, "k mismatch for {k}");
        }
    }

    #[test]
    fn local_unitary_invariance_of_spectrum() {
        // Applying local unitaries must not change Schmidt coefficients.
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::Ry(0.8), &[0]);
        sv.apply_gate(&Gate::CX, &[0, 1]);
        let before = schmidt(&sv, 1).coefficients;
        sv.apply_gate(&Gate::T, &[0]);
        sv.apply_gate(&Gate::H, &[1]);
        sv.apply_gate(&Gate::S, &[1]);
        let after = schmidt(&sv, 1).coefficients;
        for (a, b) in before.iter().zip(after.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }
}

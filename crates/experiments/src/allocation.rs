//! **E8 — shot-allocation ablation**: the paper distributes shots
//! proportionally to |cᵢ| (Section IV); this experiment quantifies what
//! that choice buys against uniform splitting and against the fully
//! stochastic per-shot sampler of Eq. 12.

use crate::csvout::Table;
use crate::grid::ShardedGrid;
use crate::stats::RunningStats;
use qpd::{estimate_allocated, estimate_stochastic, Allocator};
use qsim::{haar_unitary, Pauli};
use wirecut::{NmeCut, PreparedCut};

/// Stream tag for the Haar-state lane, shared across overlaps so every
/// strategy comparison runs on the same random states.
const STATE_STREAM: u64 = 0xE8;

/// Allocation strategies compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Proportional deterministic split (the paper's choice).
    Proportional,
    /// Uniform deterministic split.
    Uniform,
    /// Stochastic per-shot term selection (Eq. 12).
    Stochastic,
}

impl Strategy {
    /// All strategies in display order.
    pub const ALL: [Strategy; 3] = [
        Strategy::Proportional,
        Strategy::Uniform,
        Strategy::Stochastic,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Proportional => "proportional",
            Strategy::Uniform => "uniform",
            Strategy::Stochastic => "stochastic",
        }
    }
}

/// Configuration of the ablation.
#[derive(Clone, Debug)]
pub struct AllocationConfig {
    /// Entanglement levels to test.
    pub overlaps: Vec<f64>,
    /// Shot budget per estimate.
    pub shots: u64,
    /// Random states averaged over.
    pub num_states: usize,
    /// Estimates per state (error averaging).
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for AllocationConfig {
    fn default() -> Self {
        Self {
            overlaps: vec![0.6, 0.9],
            shots: 2000,
            num_states: 40,
            repetitions: 30,
            seed: 4242,
            threads: 0,
        }
    }
}

/// Mean absolute error per (overlap, strategy).
pub fn run(config: &AllocationConfig) -> Table {
    let mut t = Table::new(&[
        "overlap_f",
        "err_proportional",
        "err_uniform",
        "err_stochastic",
    ]);
    // One shard per (overlap, state) cell, overlap-major.
    let cells: Vec<(f64, u64)> = config
        .overlaps
        .iter()
        .flat_map(|&f| (0..config.num_states as u64).map(move |s| (f, s)))
        .collect();
    let per_cell: Vec<[f64; 3]> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(f, s), ctx| {
            let cut = NmeCut::from_overlap(f);
            let w = haar_unitary(2, &mut ctx.shared(&(STATE_STREAM, s)));
            let exact = wirecut::uncut_expectation(&w, Pauli::Z);
            let prepared = PreparedCut::new(&cut, &w, Pauli::Z);
            let samplers = prepared.samplers();
            let rng = ctx.rng();
            let mut errs = [0.0f64; 3];
            for (i, strat) in Strategy::ALL.iter().enumerate() {
                let mut acc = RunningStats::new();
                for _ in 0..config.repetitions {
                    let est = match strat {
                        Strategy::Proportional => estimate_allocated(
                            &prepared.spec,
                            &samplers,
                            config.shots,
                            Allocator::Proportional,
                            rng,
                        ),
                        Strategy::Uniform => estimate_allocated(
                            &prepared.spec,
                            &samplers,
                            config.shots,
                            Allocator::Uniform,
                            rng,
                        ),
                        Strategy::Stochastic => {
                            estimate_stochastic(&prepared.spec, &samplers, config.shots, rng)
                        }
                    };
                    acc.push((est - exact).abs());
                }
                errs[i] = acc.mean();
            }
            errs
        });
    for (fi, &f) in config.overlaps.iter().enumerate() {
        let mut agg = [RunningStats::new(); 3];
        for errs in &per_cell[fi * config.num_states..(fi + 1) * config.num_states] {
            for i in 0..3 {
                agg[i].push(errs[i]);
            }
        }
        t.push_row(vec![f, agg[0].mean(), agg[1].mean(), agg[2].mean()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AllocationConfig {
        AllocationConfig {
            overlaps: vec![0.6],
            shots: 1200,
            num_states: 14,
            repetitions: 16,
            seed: 1,
            threads: 2,
        }
    }

    #[test]
    fn proportional_beats_or_matches_stochastic() {
        // The stochastic estimator carries extra multinomial variance; the
        // deterministic proportional split is never worse on average.
        let t = run(&small());
        let row = &t.rows()[0];
        let (prop, stoch) = (row[1], row[3]);
        assert!(
            prop <= stoch * 1.15,
            "proportional {prop} unexpectedly worse than stochastic {stoch}"
        );
    }

    #[test]
    fn all_strategies_produce_finite_small_errors() {
        let t = run(&small());
        for row in t.rows() {
            for &e in &row[1..] {
                assert!(e.is_finite() && e > 0.0 && e < 0.5, "implausible error {e}");
            }
        }
    }
}

//! Regenerates the **shot-allocation ablation**: proportional (paper's
//! choice) vs uniform vs stochastic sampling.

use experiments::allocation::{run, AllocationConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        AllocationConfig {
            num_states: 12,
            repetitions: 12,
            ..AllocationConfig::default()
        }
    } else {
        AllocationConfig::default()
    };
    let table = run(&config);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("allocation_ablation.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! Regenerates the **Eq. 55–58** table: Bell-basis overlaps of Φk,
//! closed form vs numeric.

use experiments::tables::bell_overlap_table;

fn main() {
    let table = bell_overlap_table(21);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("bell_overlaps.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! Regenerates the **pair-consumption** table (Section III closing
//! remark): entangled pairs consumed per sample ∝ 2(k²+1)/(k+1)².

use experiments::tables::consumption_table;

fn main() {
    let table = consumption_table(21);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("pair_consumption.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! Regenerates **E16**: the distill-then-cut `(p, m)` map — measured
//! `κ̂` against the per-sample `κ_eff`, the raw-pair-normalised
//! `κ_pair`, the direct `κ_inv = (3/p − 1)/2` and the Theorem 1 bound
//! `γ = 2/f − 1`, plus the closed-form argmin-`m` frontier.

use experiments::distill_cut::{frontier, run, DistillCutConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = experiments::threads_flag(&args);
    let mut config = if quick {
        DistillCutConfig {
            p_steps: 9,
            max_rounds: 3,
            num_states: 5,
            repetitions: 16,
            ..DistillCutConfig::default()
        }
    } else {
        DistillCutConfig::default()
    };
    config.threads = threads;
    let table = run(&config);
    println!("{}", table.to_pretty());
    let dir = experiments::results_dir();
    let path = dir.join("distill_cut.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
    let front = frontier(&config);
    println!("{}", front.to_pretty());
    let path = dir.join("distill_cut_frontier.csv");
    front.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

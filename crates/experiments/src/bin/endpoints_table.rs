//! Regenerates the **endpoints** table: every cut's κ against its
//! expected value and its exact channel-identity distance (Peng κ=4,
//! Harada γ=3, NME k=0 → 3, k=0.5 → Corollary 1, k=1 → 1, teleportation).

use experiments::tables::endpoints_table;

fn main() {
    let table = endpoints_table();
    println!("{}", table.to_pretty());
    println!("cut ids: 0=peng 1=harada 2=nme(k=0) 3=nme(k=0.5) 4=nme(k=1) 5=teleport");
    let path = experiments::results_dir().join("endpoints.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! Regenerates **Figure 6**: mean error of the wire-cut ⟨Z⟩ estimate vs
//! total shots for f(Φk) ∈ {0.5, …, 1.0}, averaged over Haar-random
//! states. `--quick` runs a reduced-scale variant.

use experiments::fig6::{run, Fig6Config};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        Fig6Config {
            num_states: 100,
            ..Fig6Config::default()
        }
    } else {
        Fig6Config::default()
    };
    eprintln!(
        "fig6: {} states x {} overlaps x {} checkpoints ({} threads)",
        config.num_states,
        config.overlaps.len(),
        config.shot_checkpoints.len(),
        if config.threads == 0 {
            experiments::default_threads()
        } else {
            config.threads
        },
    );
    let start = std::time::Instant::now();
    let result = run(&config);
    eprintln!("fig6: done in {:.2?}", start.elapsed());
    let table = result.to_table();
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("fig6_error_vs_shots.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "ordering check (error decreases with entanglement at max shots): {}",
        result.final_errors_ordered_by_entanglement()
    );
}

//! Regenerates the **joint parallel wire cutting** comparison: joint MUB
//! cutting (κ = 2^{n+1}−1) vs per-wire product cutting (κ = 3ⁿ).

use experiments::joint_cut::{run, JointConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        JointConfig {
            num_states: 4,
            repetitions: 6,
            ..JointConfig::default()
        }
    } else {
        JointConfig::default()
    };
    let table = run(&config);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("joint_cut.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

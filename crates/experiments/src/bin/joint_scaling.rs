//! Regenerates the **joint multi-wire scaling** study (E13): the
//! joint-vs-independent κ crossover map (n = 1..5), the open-theory NME
//! joint-cut overlap sweep, and the finite-shot error validation on a
//! 10²..10⁵ shot grid.

use experiments::joint_scaling::{
    crossover_table, nme_sweep_table, shots_table, JointScalingConfig,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        JointScalingConfig {
            max_wires: 4,
            nme_max_wires: 2,
            shot_wires: vec![1, 2],
            shot_grid: vec![100, 1_000, 10_000],
            num_states: 3,
            repetitions: 6,
            ..JointScalingConfig::default()
        }
    } else {
        JointScalingConfig::default()
    };

    let dir = experiments::results_dir();

    println!("κ crossover map (joint 2^(n+1)−1 vs independent γ(f)^n):");
    let crossover = crossover_table(&config);
    println!("{}", crossover.to_pretty());
    let path = dir.join("joint_scaling_crossover.csv");
    crossover.write_csv(&path).expect("write csv");
    println!("wrote {}\n", path.display());

    println!("NME joint-cut exploration (achieved 1-norm of the Tel/MeasPrep/Flip family):");
    let nme = nme_sweep_table(&config);
    println!("{}", nme.to_pretty());
    let path = dir.join("joint_scaling_nme.csv");
    nme.write_csv(&path).expect("write csv");
    println!("wrote {}\n", path.display());

    println!("finite-shot validation (mean |error| of ⟨Z…Z⟩ on GHZ-type senders):");
    let shots = shots_table(&config);
    println!("{}", shots.to_pretty());
    let path = dir.join("joint_scaling_shots.csv");
    shots.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

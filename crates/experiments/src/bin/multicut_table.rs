//! Regenerates the **multi-cut scaling** table: κ^w growth with the
//! number of cut wires and how entanglement suppresses it.

use experiments::multicut::{run, MultiCutConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        MultiCutConfig {
            wire_counts: vec![1, 2],
            num_states: 4,
            repetitions: 6,
            ..MultiCutConfig::default()
        }
    } else {
        MultiCutConfig::default()
    };
    let table = run(&config);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("multicut_scaling.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! Regenerates the **noise-resilience** table (future-work extension):
//! bias and total error of the NME wire cut under gate-level
//! depolarising noise.

use experiments::noise::{run, NoiseConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        NoiseConfig {
            num_states: 4,
            repetitions: 6,
            ..NoiseConfig::default()
        }
    } else {
        NoiseConfig::default()
    };
    let table = run(&config);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("noise_bias.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

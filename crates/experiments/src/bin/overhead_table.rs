//! Regenerates the **Theorem 1 / Corollary 1** overhead table: closed-form
//! γ vs constructed QPD 1-norm vs empirically measured effective overhead.

use experiments::overhead::{run, to_table, OverheadConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        OverheadConfig {
            repetitions: 40,
            num_states: 6,
            ..OverheadConfig::default()
        }
    } else {
        OverheadConfig::default()
    };
    let rows = run(&config);
    let table = to_table(&rows);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("overhead_vs_entanglement.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

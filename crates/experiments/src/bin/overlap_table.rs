//! Regenerates the **Eq. 10 / Appendix A** table: f(Φk) via the closed
//! form, the Schmidt route and the 2-distillation norm route.

use experiments::tables::overlap_table;

fn main() {
    let table = overlap_table(21);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("overlap_formulas.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

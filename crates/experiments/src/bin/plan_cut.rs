//! Regenerates **E17**: the arbitrary-circuit cut-planner sweep —
//! random circuits fragmented under a width budget, multi-cut plans
//! compiled into product QPDs, sampled estimates checked against the
//! uncut statevector with 5σ Wilson bands across the overlap axis.

use experiments::plan_cut::{run, PlanCutConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = experiments::threads_flag(&args);
    let mut config = if quick {
        PlanCutConfig {
            overlaps: vec![0.52, 0.75, 1.0],
            num_circuits: 3,
            repetitions: 8,
            ..PlanCutConfig::default()
        }
    } else {
        PlanCutConfig::default()
    };
    config.threads = threads;
    let table = run(&config);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("plan_cut.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! Runs every experiment in sequence (pass `--quick` for reduced scale,
//! `--threads N` to pin the worker count of every sharded sweep; 0 or
//! absent = auto), writing all CSVs under `results/` — the one-command
//! regeneration of the paper's evaluation.

use experiments::{
    allocation, distill_cut, fig6, joint_cut, joint_scaling, multicut, noise, overhead, plan_cut,
    service_load, tables, teleport_channel, werner, werner_sweep,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // One flag for the whole run: every experiment config's `threads`
    // field is set from here (0 = auto), so no per-experiment plumbing.
    let threads = experiments::threads_flag(&args);
    let dir = experiments::results_dir();
    println!("== E3/E4/E6/E7: closed-form tables ==");
    tables::overlap_table(21)
        .write_csv(&dir.join("overlap_formulas.csv"))
        .unwrap();
    tables::bell_overlap_table(21)
        .write_csv(&dir.join("bell_overlaps.csv"))
        .unwrap();
    tables::consumption_table(21)
        .write_csv(&dir.join("pair_consumption.csv"))
        .unwrap();
    tables::endpoints_table()
        .write_csv(&dir.join("endpoints.csv"))
        .unwrap();

    println!("== E5: teleportation channel tomography ==");
    let rows = teleport_channel::run(21);
    teleport_channel::to_table(&rows)
        .write_csv(&dir.join("teleport_channel.csv"))
        .unwrap();
    teleport_channel::werner_channel_table(11)
        .write_csv(&dir.join("teleport_channel_werner.csv"))
        .unwrap();

    println!("== E1: Figure 6 ==");
    let mut cfg = if quick {
        fig6::Fig6Config {
            num_states: 100,
            ..Default::default()
        }
    } else {
        fig6::Fig6Config::default()
    };
    cfg.threads = threads;
    let res = fig6::run(&cfg);
    res.to_table()
        .write_csv(&dir.join("fig6_error_vs_shots.csv"))
        .unwrap();
    println!(
        "   ordering check: {}",
        res.final_errors_ordered_by_entanglement()
    );

    println!("== E2: overhead vs entanglement ==");
    let mut cfg = if quick {
        overhead::OverheadConfig {
            repetitions: 40,
            num_states: 6,
            ..Default::default()
        }
    } else {
        overhead::OverheadConfig::default()
    };
    cfg.threads = threads;
    overhead::to_table(&overhead::run(&cfg))
        .write_csv(&dir.join("overhead_vs_entanglement.csv"))
        .unwrap();

    println!("== E8: allocation ablation ==");
    let mut cfg = if quick {
        allocation::AllocationConfig {
            num_states: 12,
            repetitions: 12,
            ..Default::default()
        }
    } else {
        allocation::AllocationConfig::default()
    };
    cfg.threads = threads;
    allocation::run(&cfg)
        .write_csv(&dir.join("allocation_ablation.csv"))
        .unwrap();

    println!("== E9: multi-cut scaling ==");
    let mut cfg = if quick {
        multicut::MultiCutConfig {
            wire_counts: vec![1, 2],
            num_states: 4,
            repetitions: 6,
            ..Default::default()
        }
    } else {
        multicut::MultiCutConfig::default()
    };
    cfg.threads = threads;
    multicut::run(&cfg)
        .write_csv(&dir.join("multicut_scaling.csv"))
        .unwrap();

    println!("== E10: Werner resources ==");
    let mut cfg = if quick {
        werner::WernerConfig {
            num_states: 6,
            repetitions: 8,
            ..Default::default()
        }
    } else {
        werner::WernerConfig::default()
    };
    cfg.threads = threads;
    werner::run(&cfg)
        .write_csv(&dir.join("werner_resources.csv"))
        .unwrap();

    println!("== E11: joint parallel wire cutting ==");
    let mut cfg = if quick {
        joint_cut::JointConfig {
            num_states: 4,
            repetitions: 6,
            ..Default::default()
        }
    } else {
        joint_cut::JointConfig::default()
    };
    cfg.threads = threads;
    joint_cut::run(&cfg)
        .write_csv(&dir.join("joint_cut.csv"))
        .unwrap();

    println!("== E12: noise resilience ==");
    let mut cfg = if quick {
        noise::NoiseConfig {
            num_states: 4,
            repetitions: 6,
            ..Default::default()
        }
    } else {
        noise::NoiseConfig::default()
    };
    cfg.threads = threads;
    noise::run(&cfg)
        .write_csv(&dir.join("noise_bias.csv"))
        .unwrap();

    println!("== E13: joint multi-wire scaling ==");
    let mut cfg = if quick {
        joint_scaling::JointScalingConfig {
            max_wires: 4,
            nme_max_wires: 2,
            shot_wires: vec![1, 2],
            shot_grid: vec![100, 1_000, 10_000],
            num_states: 3,
            repetitions: 6,
            ..Default::default()
        }
    } else {
        joint_scaling::JointScalingConfig::default()
    };
    cfg.threads = threads;
    joint_scaling::crossover_table(&cfg)
        .write_csv(&dir.join("joint_scaling_crossover.csv"))
        .unwrap();
    joint_scaling::nme_sweep_table(&cfg)
        .write_csv(&dir.join("joint_scaling_nme.csv"))
        .unwrap();
    joint_scaling::shots_table(&cfg)
        .write_csv(&dir.join("joint_scaling_shots.csv"))
        .unwrap();

    println!("== E15: Werner p-sweep ==");
    let mut cfg = if quick {
        werner_sweep::WernerSweepConfig {
            p_steps: 11,
            num_states: 6,
            repetitions: 24,
            ..Default::default()
        }
    } else {
        werner_sweep::WernerSweepConfig::default()
    };
    cfg.threads = threads;
    werner_sweep::run(&cfg)
        .write_csv(&dir.join("werner_sweep.csv"))
        .unwrap();

    println!("== E16: distill-then-cut (p, m) map ==");
    let mut cfg = if quick {
        distill_cut::DistillCutConfig {
            p_steps: 9,
            max_rounds: 3,
            num_states: 5,
            repetitions: 16,
            ..Default::default()
        }
    } else {
        distill_cut::DistillCutConfig::default()
    };
    cfg.threads = threads;
    distill_cut::run(&cfg)
        .write_csv(&dir.join("distill_cut.csv"))
        .unwrap();
    distill_cut::frontier(&cfg)
        .write_csv(&dir.join("distill_cut_frontier.csv"))
        .unwrap();

    println!("== E17: arbitrary-circuit cut planner ==");
    let mut cfg = if quick {
        plan_cut::PlanCutConfig {
            overlaps: vec![0.52, 0.75, 1.0],
            num_circuits: 3,
            repetitions: 8,
            ..Default::default()
        }
    } else {
        plan_cut::PlanCutConfig::default()
    };
    cfg.threads = threads;
    plan_cut::run(&cfg)
        .write_csv(&dir.join("plan_cut.csv"))
        .unwrap();

    println!("== E18: cutting-as-a-service load ==");
    let mut cfg = if quick {
        service_load::ServiceLoadConfig {
            num_circuits: 2,
            repetitions: 8,
            ..Default::default()
        }
    } else {
        service_load::ServiceLoadConfig::default()
    };
    cfg.threads = threads;
    service_load::run(&cfg)
        .write_csv(&dir.join("service_load.csv"))
        .unwrap();

    println!("all results written to {}", dir.display());
}

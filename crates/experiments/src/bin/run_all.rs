//! Runs every experiment in sequence (pass `--quick` for reduced scale),
//! writing all CSVs under `results/` — the one-command regeneration of
//! the paper's evaluation.

use experiments::{
    allocation, fig6, joint_cut, joint_scaling, multicut, noise, overhead, tables,
    teleport_channel, werner,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dir = experiments::results_dir();
    println!("== E3/E4/E6/E7: closed-form tables ==");
    tables::overlap_table(21)
        .write_csv(&dir.join("overlap_formulas.csv"))
        .unwrap();
    tables::bell_overlap_table(21)
        .write_csv(&dir.join("bell_overlaps.csv"))
        .unwrap();
    tables::consumption_table(21)
        .write_csv(&dir.join("pair_consumption.csv"))
        .unwrap();
    tables::endpoints_table()
        .write_csv(&dir.join("endpoints.csv"))
        .unwrap();

    println!("== E5: teleportation channel tomography ==");
    let rows = teleport_channel::run(21);
    teleport_channel::to_table(&rows)
        .write_csv(&dir.join("teleport_channel.csv"))
        .unwrap();
    teleport_channel::werner_channel_table(11)
        .write_csv(&dir.join("teleport_channel_werner.csv"))
        .unwrap();

    println!("== E1: Figure 6 ==");
    let cfg = if quick {
        fig6::Fig6Config {
            num_states: 100,
            ..Default::default()
        }
    } else {
        fig6::Fig6Config::default()
    };
    let res = fig6::run(&cfg);
    res.to_table()
        .write_csv(&dir.join("fig6_error_vs_shots.csv"))
        .unwrap();
    println!(
        "   ordering check: {}",
        res.final_errors_ordered_by_entanglement()
    );

    println!("== E2: overhead vs entanglement ==");
    let cfg = if quick {
        overhead::OverheadConfig {
            repetitions: 40,
            num_states: 6,
            ..Default::default()
        }
    } else {
        overhead::OverheadConfig::default()
    };
    overhead::to_table(&overhead::run(&cfg))
        .write_csv(&dir.join("overhead_vs_entanglement.csv"))
        .unwrap();

    println!("== E8: allocation ablation ==");
    let cfg = if quick {
        allocation::AllocationConfig {
            num_states: 12,
            repetitions: 12,
            ..Default::default()
        }
    } else {
        allocation::AllocationConfig::default()
    };
    allocation::run(&cfg)
        .write_csv(&dir.join("allocation_ablation.csv"))
        .unwrap();

    println!("== E9: multi-cut scaling ==");
    let cfg = if quick {
        multicut::MultiCutConfig {
            wire_counts: vec![1, 2],
            num_states: 4,
            repetitions: 6,
            ..Default::default()
        }
    } else {
        multicut::MultiCutConfig::default()
    };
    multicut::run(&cfg)
        .write_csv(&dir.join("multicut_scaling.csv"))
        .unwrap();

    println!("== E10: Werner resources ==");
    let cfg = if quick {
        werner::WernerConfig {
            num_states: 6,
            repetitions: 8,
            ..Default::default()
        }
    } else {
        werner::WernerConfig::default()
    };
    werner::run(&cfg)
        .write_csv(&dir.join("werner_resources.csv"))
        .unwrap();

    println!("== E11: joint parallel wire cutting ==");
    let cfg = if quick {
        joint_cut::JointConfig {
            num_states: 4,
            repetitions: 6,
            ..Default::default()
        }
    } else {
        joint_cut::JointConfig::default()
    };
    joint_cut::run(&cfg)
        .write_csv(&dir.join("joint_cut.csv"))
        .unwrap();

    println!("== E12: noise resilience ==");
    let cfg = if quick {
        noise::NoiseConfig {
            num_states: 4,
            repetitions: 6,
            ..Default::default()
        }
    } else {
        noise::NoiseConfig::default()
    };
    noise::run(&cfg)
        .write_csv(&dir.join("noise_bias.csv"))
        .unwrap();

    println!("== E13: joint multi-wire scaling ==");
    let cfg = if quick {
        joint_scaling::JointScalingConfig {
            max_wires: 4,
            nme_max_wires: 2,
            shot_wires: vec![1, 2],
            shot_grid: vec![100, 1_000, 10_000],
            num_states: 3,
            repetitions: 6,
            ..Default::default()
        }
    } else {
        joint_scaling::JointScalingConfig::default()
    };
    joint_scaling::crossover_table(&cfg)
        .write_csv(&dir.join("joint_scaling_crossover.csv"))
        .unwrap();
    joint_scaling::nme_sweep_table(&cfg)
        .write_csv(&dir.join("joint_scaling_nme.csv"))
        .unwrap();
    joint_scaling::shots_table(&cfg)
        .write_csv(&dir.join("joint_scaling_shots.csv"))
        .unwrap();

    println!("all results written to {}", dir.display());
}

//! Regenerates **E18**: the cutting-as-a-service load experiment — a
//! job fleet over planner-cut random circuits through one shared
//! `CutService`, comparing sequential (variance-adaptive) against static
//! proportional shot allocation per circuit, plus out-of-band throughput
//! and plan-cache statistics (timing never enters the deterministic
//! CSV).

use experiments::service_load::{build_jobs, run, ServiceLoadConfig};
use wirecut::planner::CutPlanner;
use wirecut::service::CutService;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = experiments::threads_flag(&args);
    let mut config = if quick {
        ServiceLoadConfig {
            num_circuits: 2,
            repetitions: 8,
            ..ServiceLoadConfig::default()
        }
    } else {
        ServiceLoadConfig::default()
    };
    config.threads = threads;
    let table = run(&config);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("service_load.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());

    // Throughput report (stdout only — wall-clock figures are
    // deliberately kept out of the CSV; see the module docs).
    let service =
        CutService::new(CutPlanner::new(config.width_budget).with_overlap(config.overlap));
    let jobs = build_jobs(&config);
    let start = std::time::Instant::now();
    let outcomes = service.run_jobs(&jobs, config.threads);
    let elapsed = start.elapsed().as_secs_f64();
    let (hits, misses) = service.cache_stats();
    println!(
        "fleet: {} jobs in {elapsed:.3}s ({:.1} jobs/s), plan cache: {} plans, {hits} hits / {misses} misses",
        outcomes.len(),
        outcomes.len() as f64 / elapsed,
        service.cache_len(),
    );
}

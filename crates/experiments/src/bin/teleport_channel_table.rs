//! Regenerates the **Eq. 22 / Eq. 59** tomography table: simulated
//! teleportation channel vs the closed-form Pauli channel, with
//! fidelities; plus the Werner-resource variant.

use experiments::teleport_channel::{run, to_table, werner_channel_table};

fn main() {
    let rows = run(21);
    let table = to_table(&rows);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("teleport_channel.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());

    let wt = werner_channel_table(11);
    println!("{}", wt.to_pretty());
    let wpath = experiments::results_dir().join("teleport_channel_werner.csv");
    wt.write_csv(&wpath).expect("write csv");
    println!("wrote {}", wpath.display());
}

//! Regenerates **E15**: the full Werner p-sweep — `κ̂(p)` with Wilson
//! confidence bands against `κ_inv = (3/p − 1)/2` and the Theorem 1
//! bound `γ = 2/f − 1`, over `p ∈ [1/3, 1]`.

use experiments::werner_sweep::{run, WernerSweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = experiments::threads_flag(&args);
    let mut config = if quick {
        WernerSweepConfig {
            p_steps: 11,
            num_states: 6,
            repetitions: 24,
            ..WernerSweepConfig::default()
        }
    } else {
        WernerSweepConfig::default()
    };
    config.threads = threads;
    let table = run(&config);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("werner_sweep.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

//! Regenerates the **Werner-resource** table (future-work extension):
//! FEF, Theorem 1 optimum, inversion-construction overhead and measured
//! error for mixed resource states.

use experiments::werner::{run, WernerConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        WernerConfig {
            num_states: 6,
            repetitions: 8,
            ..WernerConfig::default()
        }
    } else {
        WernerConfig::default()
    };
    let table = run(&config);
    println!("{}", table.to_pretty());
    let path = experiments::results_dir().join("werner_resources.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}

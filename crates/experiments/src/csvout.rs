//! Minimal CSV emission for experiment results.
//!
//! Results are plain numeric tables; a 60-line writer avoids a serde
//! dependency. Files land under `results/` at the workspace root by
//! default so benches, binaries and the paper-comparison document all
//! reference the same artefacts.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A rectangular numeric table with named columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Column names.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// Row data.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Serialises to CSV text.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:.10}")).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV to `path`, creating parent directories.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }

    /// Renders an aligned plain-text table for terminal output.
    pub fn to_pretty(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|v| format!("{v:.6}")).collect())
            .collect();
        for row in &cells {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        for (h, w) in self.header.iter().zip(widths.iter()) {
            out.push_str(&format!("{h:>w$}  ", w = w));
        }
        out.push('\n');
        for row in &cells {
            for (c, w) in row.iter().zip(widths.iter()) {
                out.push_str(&format!("{c:>w$}  ", w = w));
            }
            out.push('\n');
        }
        out
    }
}

/// The default output directory (`results/` at the workspace root, or the
/// current directory's `results/` when run elsewhere).
pub fn results_dir() -> PathBuf {
    // Walk up from the current dir looking for the workspace Cargo.toml.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..5 {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_format() {
        let mut t = Table::new(&["shots", "error"]);
        t.push_row(vec![250.0, 0.125]);
        t.push_row(vec![500.0, 0.088]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "shots,error");
        assert!(lines
            .next()
            .unwrap()
            .starts_with("250.0000000000,0.1250000000"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec![1.0]);
    }

    #[test]
    fn pretty_output_contains_all_cells() {
        let mut t = Table::new(&["k", "gamma"]);
        t.push_row(vec![0.5, 2.1111]);
        let s = t.to_pretty();
        assert!(s.contains("gamma"));
        assert!(s.contains("2.111100"));
    }

    #[test]
    fn write_and_read_back() {
        let mut t = Table::new(&["x"]);
        t.push_row(vec![1.5]);
        let dir = std::env::temp_dir().join("nme_csv_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("1.5000000000"));
        let _ = std::fs::remove_dir_all(dir);
    }
}

//! **E16 — the distill-then-cut map** (ROADMAP "Werner-state sweeps"
//! remainder): compose `m` rounds of DEJMPS recurrence distillation with
//! the Bell-diagonal inversion cut and sweep the whole `(p, m)` grid,
//! measuring where distillation closes the `κ_inversion`-vs-`γ` gap of
//! E15 — and on which cost axis it cannot.
//!
//! Per grid point the sweep reports three closed forms and one
//! measurement:
//!
//! * **`kappa_inversion`** — the direct cut, `(3/p − 1)/2` (the `m = 0`
//!   column of the map; E15's headline);
//! * **`kappa_eff`** — the per-sample overhead of the composed scheme,
//!   `κ_inversion(q⁽ᵐ⁾)` at the distilled weights: for every `p > ⅓`
//!   enough rounds push it below the **raw** Theorem 1 bound
//!   `γ(p) = 2/f − 1` (a single round suffices from `p ≳ 0.66`), because
//!   distillation is LOCC over `2^m` copies and Theorem 1 then only
//!   binds at the distilled resource (`gamma_distilled`);
//! * **`kappa_pair`** — the raw-pair cost at fixed precision,
//!   `κ_eff·√(Πⱼ 2/sⱼ)`: on Werner states this is minimised by `m = 0`
//!   *everywhere* — the fidelity gain per round is second-order in the
//!   noise while the pair bill is not — so the gap never closes on the
//!   pair axis;
//! * **`kappa_hat`** — the measured overhead of the batched sampler
//!   path ([`wirecut::mixed::DistillThenCut::z_samplers`]), reduced by
//!   the shared variance-ratio estimator
//!   ([`crate::stats::measure_overhead_cell`], same implementation as
//!   E15) with 5σ Wilson bands per point.
//!
//! The companion frontier table reduces each `p` to its planner verdict:
//! the argmin-`m` on both axes and the smallest `m` that closes the raw
//! γ gap ([`wirecut::mixed::rounds_to_close_gap`]).
//!
//! The `(p, m, state)` grid is sharded by [`crate::grid::ShardedGrid`];
//! Haar states ride a state-keyed stream shared across *both* swept
//! parameters (paired design), and the CSVs are byte-identical for any
//! thread count (`tests/sharding_determinism.rs`).
//!
//! Run via `cargo run --release -p experiments --bin distill_cut`
//! (writes `results/distill_cut.csv` and
//! `results/distill_cut_frontier.csv`).

use crate::csvout::Table;
use crate::grid::ShardedGrid;
use crate::stats::{measure_overhead_cell, OverheadMeasurement, RunningStats};
use entangle::RecurrenceProtocol;
use qpd::TermSampler;
use qsim::{haar_unitary, Pauli};
use wirecut::mixed::{
    inversion_kappa, optimal_rounds, rounds_to_close_gap, BellDiagonalCut, DistillThenCut,
    OverheadMetric,
};

/// Stream tag for the Haar-state lane, shared across `(p, m)` so the
/// whole map measures the same states.
const STATE_STREAM: u64 = 0xE16;

/// Configuration of the distill-then-cut `(p, m)` sweep.
#[derive(Clone, Debug)]
pub struct DistillCutConfig {
    /// Lowest Werner parameter (> 0 for invertibility; the default ⅓ is
    /// the separability boundary, where distillation provably stalls).
    pub p_min: f64,
    /// Highest Werner parameter (1 = pure Bell resource).
    pub p_max: f64,
    /// Number of p-grid points, inclusive of both endpoints.
    pub p_steps: usize,
    /// Recurrence depths swept: `m ∈ 0..=max_rounds`.
    pub max_rounds: usize,
    /// Shot budget per estimate.
    pub shots: u64,
    /// Random states averaged over per grid point.
    pub num_states: usize,
    /// Estimates per state (drives the variance measurement).
    pub repetitions: usize,
    /// Wilson-band z-score (5.0 = the suite's 5σ convention).
    pub band_z: f64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for DistillCutConfig {
    fn default() -> Self {
        Self {
            p_min: 1.0 / 3.0,
            p_max: 1.0,
            p_steps: 21,
            max_rounds: 4,
            shots: 2048,
            num_states: 10,
            repetitions: 32,
            band_z: 5.0,
            seed: 1606,
            threads: 0,
        }
    }
}

impl DistillCutConfig {
    /// The inclusive p-grid, ascending.
    pub fn p_grid(&self) -> Vec<f64> {
        assert!(self.p_steps >= 2, "need at least the two endpoints");
        assert!(self.p_min > 0.0 && self.p_max <= 1.0 && self.p_min < self.p_max);
        (0..self.p_steps)
            .map(|i| self.p_min + (self.p_max - self.p_min) * i as f64 / (self.p_steps - 1) as f64)
            .collect()
    }

    /// The recurrence-depth grid `0..=max_rounds`.
    pub fn m_grid(&self) -> Vec<usize> {
        (0..=self.max_rounds).collect()
    }
}

/// Runs the `(p, m)` sweep. One row per grid point, p-major then
/// m-ascending; columns: `(p, m, fidelity, success_prob,
/// raw_pairs_per_sample, gamma, gamma_distilled, kappa_inversion,
/// kappa_eff, kappa_pair, kappa_hat, kappa_hat_se, mean_abs_error,
/// wilson_halfwidth, band_coverage)`.
pub fn run(config: &DistillCutConfig) -> Table {
    let mut t = Table::new(&[
        "p",
        "m",
        "fidelity",
        "success_prob",
        "raw_pairs_per_sample",
        "gamma",
        "gamma_distilled",
        "kappa_inversion",
        "kappa_eff",
        "kappa_pair",
        "kappa_hat",
        "kappa_hat_se",
        "mean_abs_error",
        "wilson_halfwidth",
        "band_coverage",
    ]);
    let p_grid = config.p_grid();
    let m_grid = config.m_grid();
    // One shard per (p, m, state) cell, p-major then m then state.
    let cells: Vec<(f64, u64, u64)> = p_grid
        .iter()
        .flat_map(|&p| {
            m_grid
                .iter()
                .flat_map(move |&m| (0..config.num_states as u64).map(move |s| (p, m as u64, s)))
        })
        .collect();
    let per_cell: Vec<OverheadMeasurement> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(p, m, s), ctx| {
            let pipeline = DistillThenCut::werner(p, m as usize);
            let kappa = pipeline.kappa_eff();
            // The state stream is keyed by s alone, so every (p, m)
            // measures the same Haar states — the paired design that
            // cancels state variance out of the m-frontier comparison.
            let w = haar_unitary(2, &mut ctx.shared(&(STATE_STREAM, s)));
            let z = wirecut::uncut_expectation(&w, Pauli::Z);
            // Closed-form batched sampler family — the recurrence and
            // the cut are both exact maps; no circuit is simulated.
            let (spec, samplers) = pipeline.z_samplers(z);
            let refs: Vec<&dyn TermSampler> =
                samplers.iter().map(|t| t as &dyn TermSampler).collect();
            let exact_terms: Vec<f64> = pipeline.z_term_expectations(z);
            measure_overhead_cell(
                &spec,
                &refs,
                z,
                &exact_terms,
                kappa,
                config.shots,
                config.repetitions,
                config.band_z,
                ctx.rng(),
            )
        });
    let stride = config.num_states;
    for (pi, &p) in p_grid.iter().enumerate() {
        for (mi, &m) in m_grid.iter().enumerate() {
            let pipeline = DistillThenCut::werner(p, m);
            let kappa_inv = inversion_kappa(BellDiagonalCut::werner(p).weights);
            let offset = (pi * m_grid.len() + mi) * stride;
            let block = &per_cell[offset..offset + stride];
            let mut kh = RunningStats::new();
            let mut err = RunningStats::new();
            let mut band = RunningStats::new();
            let mut cov = RunningStats::new();
            for cell in block {
                kh.push(cell.kappa_hat);
                err.push(cell.mean_abs_error);
                band.push(cell.band_halfwidth);
                cov.push(cell.covered_fraction);
            }
            t.push_row(vec![
                p,
                m as f64,
                pipeline.fidelity(),
                pipeline.success_probability(),
                pipeline.raw_pairs_per_sample(),
                pipeline.gamma_raw(),
                pipeline.gamma_distilled(),
                kappa_inv,
                pipeline.kappa_eff(),
                pipeline.kappa_pair(),
                kh.mean(),
                kh.std_err(),
                err.mean(),
                band.mean(),
                cov.mean(),
            ]);
        }
    }
    t
}

/// The closed-form argmin-`m` frontier: per `p`, the planner verdict on
/// both cost axes and the depth closing the raw γ gap. Columns:
/// `(p, gamma, kappa_inversion, best_m, kappa_eff_best,
/// beats_inversion, closes_gap_m, best_m_pair, kappa_pair_best)`;
/// `closes_gap_m = −1` marks "no depth **up to max_rounds** closes it":
/// the `p = ⅓` fixed point and the `p = 1` endpoint (γ = κ_eff = 1, no
/// gap to close) always report −1, and near-boundary points can too —
/// the closing depth diverges as `p → ⅓` (at the default `max_rounds =
/// 4`, `p ≈ 0.367` needs a fifth round).
pub fn frontier(config: &DistillCutConfig) -> Table {
    let mut t = Table::new(&[
        "p",
        "gamma",
        "kappa_inversion",
        "best_m",
        "kappa_eff_best",
        "beats_inversion",
        "closes_gap_m",
        "best_m_pair",
        "kappa_pair_best",
    ]);
    for &p in &config.p_grid() {
        let raw = DistillThenCut::werner(p, 0);
        let kappa_inv = raw.kappa_eff();
        let (best_m, kappa_best) = optimal_rounds(
            raw.raw_weights(),
            config.max_rounds,
            RecurrenceProtocol::Dejmps,
            OverheadMetric::PerSample,
        );
        let (best_m_pair, kappa_pair_best) = optimal_rounds(
            raw.raw_weights(),
            config.max_rounds,
            RecurrenceProtocol::Dejmps,
            OverheadMetric::PerRawPair,
        );
        let closes = rounds_to_close_gap(
            raw.raw_weights(),
            config.max_rounds,
            RecurrenceProtocol::Dejmps,
        );
        t.push_row(vec![
            p,
            raw.gamma_raw(),
            kappa_inv,
            best_m as f64,
            kappa_best,
            f64::from(u8::from(kappa_best < kappa_inv - 1e-12)),
            closes.map_or(-1.0, |m| m as f64),
            best_m_pair as f64,
            kappa_pair_best,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DistillCutConfig {
        DistillCutConfig {
            p_steps: 5,
            max_rounds: 3,
            shots: 1024,
            num_states: 5,
            repetitions: 16,
            seed: 23,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn grid_shape_and_closed_forms() {
        let cfg = small();
        let t = run(&cfg);
        assert_eq!(t.rows().len(), 5 * 4);
        for row in t.rows() {
            let (p, m) = (row[0], row[1] as usize);
            // The m = 0 column is exactly the E15 inversion cut.
            if m == 0 {
                assert!(
                    (row[8] - row[7]).abs() < 1e-10,
                    "κ_eff(p,0) ≠ κ_inv at p={p}"
                );
                assert!(
                    (row[9] - row[7]).abs() < 1e-10,
                    "κ_pair(p,0) ≠ κ_inv at p={p}"
                );
                assert!((row[4] - 1.0).abs() < 1e-12);
            }
            assert!(
                (row[7] - (3.0 / p - 1.0) / 2.0).abs() < 1e-9,
                "κ_inv at p={p}"
            );
            // Theorem 1 binds at the distilled resource.
            assert!(row[8] >= row[6] - 1e-9, "κ_eff below γ_distilled at p={p}");
            // Pair accounting: at least 2^m raw pairs per sample.
            assert!(row[4] >= (1u64 << m) as f64 - 1e-9);
            // γ closed form of the raw Werner state.
            let f = ((1.0 + 3.0 * p) / 4.0).max(0.5);
            assert!((row[5] - (2.0 / f - 1.0)).abs() < 1e-9, "γ at p={p}");
        }
    }

    #[test]
    fn kappa_hat_tracks_kappa_eff() {
        let t = run(&small());
        for row in t.rows() {
            let (kappa_eff, kappa_hat, se) = (row[8], row[10], row[11]);
            // Loose in-module gate; the 5σ version lives in
            // tests/distill_then_cut.rs at larger scale.
            assert!(
                (kappa_hat - kappa_eff).abs() < 8.0 * se.max(0.03 * kappa_eff),
                "κ̂ {kappa_hat} vs κ_eff {kappa_eff} (se {se}) at p={} m={}",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn bands_cover_the_estimates() {
        let t = run(&small());
        for row in t.rows() {
            assert!(
                row[14] > 0.95,
                "coverage {} at p={} m={}",
                row[14],
                row[0],
                row[1]
            );
            assert!(
                row[13] > 0.0,
                "degenerate band at p={} m={}",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn frontier_verdicts_match_the_map() {
        let cfg = small();
        let f = frontier(&cfg);
        assert_eq!(f.rows().len(), 5);
        let first = f.rows().first().unwrap();
        let last = f.rows().last().unwrap();
        // p = ⅓ boundary: fidelity is pinned, no depth closes the gap.
        assert!((first[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((first[6] - (-1.0)).abs() < 1e-12, "boundary closes_gap_m");
        // p = 1: nothing to distil on either axis.
        assert!((last[0] - 1.0).abs() < 1e-12);
        assert_eq!(last[3] as i64, 0);
        assert_eq!(last[7] as i64, 0);
        assert!((last[4] - 1.0).abs() < 1e-9 && (last[8] - 1.0).abs() < 1e-9);
        // Headline: some interior p beats inversion per-sample, but the
        // pair axis never rewards a round on Werner inputs.
        assert!(
            f.rows().iter().any(|r| r[5] > 0.5),
            "no p beats direct inversion"
        );
        for r in f.rows() {
            assert_eq!(r[7] as i64, 0, "pair axis chose m>0 at p={}", r[0]);
            assert!(r[4] <= r[2] + 1e-12, "best κ_eff above κ_inv at p={}", r[0]);
        }
    }

    #[test]
    fn frontier_is_consistent_with_the_main_table() {
        let cfg = small();
        let t = run(&cfg);
        let f = frontier(&cfg);
        let m_count = cfg.max_rounds + 1;
        for (pi, frow) in f.rows().iter().enumerate() {
            let block = &t.rows()[pi * m_count..(pi + 1) * m_count];
            let best = block.iter().map(|r| r[8]).fold(f64::INFINITY, f64::min);
            assert!(
                (frow[4] - best).abs() < 1e-9,
                "frontier κ_eff_best {} vs table min {best} at p={}",
                frow[4],
                frow[0]
            );
        }
    }
}

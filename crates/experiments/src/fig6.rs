//! **E1 — Figure 6 reproduction**: mean absolute error of the wire-cut
//! estimate of `⟨Z⟩` versus total shots, for entanglement levels
//! `f(Φ_k) ∈ {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}`.
//!
//! Procedure (paper Section IV, reproduced exactly):
//! 1. sample a Haar-random single-qubit unitary `W` (Mezzadri QR) and
//!    compute the exact `⟨Z⟩_{W|0⟩}` classically;
//! 2. apply the Theorem 2 cut to the wire carrying `W|0⟩`, yielding the
//!    three subcircuits of Figure 5;
//! 3. distribute the total shot budget across subcircuits proportionally
//!    to the QPD coefficients, estimate each term and recombine;
//! 4. record `ε = |⟨Z⟩_sample − ⟨Z⟩_exact|`; average over random states.
//!
//! Each per-term allocation is served by the batched shot engine (one
//! multinomial over compiled branch leaves per checkpoint instead of one
//! tree walk per shot), so the sweep's cost is dominated by the number
//! of (state, overlap) grid points rather than the shot budget. The
//! whole (overlap, state) grid is sharded across workers by
//! [`crate::grid::ShardedGrid`]: each cell samples from its own
//! counter-based stream keyed by `(f, state)`, while the Haar input
//! state is drawn from a stream keyed by the state index alone — so all
//! six overlap curves see the *same* random states (the paper's paired
//! design) and the result is byte-identical for any thread count.

use crate::grid::ShardedGrid;
use crate::stats::RunningStats;
use qpd::proportional_sweep;
use qsim::{haar_unitary, Pauli};
use wirecut::{NmeCut, PreparedCut};

/// Configuration of the Figure 6 experiment.
#[derive(Clone, Debug)]
pub struct Fig6Config {
    /// Number of Haar-random input states (paper: 1000).
    pub num_states: usize,
    /// Total-shot checkpoints (paper: up to 5000).
    pub shot_checkpoints: Vec<u64>,
    /// Entanglement levels `f(Φ_k)` (paper: 0.5..1.0 step 0.1).
    pub overlaps: Vec<f64>,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Self {
            num_states: 1000,
            shot_checkpoints: (1..=20).map(|i| i * 250).collect(),
            overlaps: entangle::FIG6_OVERLAPS.to_vec(),
            seed: 20240320,
            threads: 0,
        }
    }
}

/// Result grid: `mean_abs_error[o][c]` is the average error for overlap
/// index `o` at checkpoint index `c`.
#[derive(Clone, Debug)]
pub struct Fig6Result {
    /// The configuration used.
    pub config: Fig6Config,
    /// Mean absolute error per (overlap, checkpoint).
    pub mean_abs_error: Vec<Vec<f64>>,
    /// Standard error of the mean per (overlap, checkpoint).
    pub std_err: Vec<Vec<f64>>,
}

/// Stream tag for the Haar-state lane, shared across overlaps so every
/// entanglement level sees the same random input states.
const STATE_STREAM: u64 = 0xF16;

/// Runs the Figure 6 experiment.
pub fn run(config: &Fig6Config) -> Fig6Result {
    let overlaps = config.overlaps.clone();
    let checkpoints = config.shot_checkpoints.clone();

    // One shard per (overlap, state) cell, overlap-major.
    let cells: Vec<(f64, u64)> = overlaps
        .iter()
        .flat_map(|&f| (0..config.num_states as u64).map(move |s| (f, s)))
        .collect();
    let per_cell: Vec<Vec<f64>> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(f, s), ctx| {
            let mut state_rng = ctx.shared(&(STATE_STREAM, s));
            let w = haar_unitary(2, &mut state_rng);
            let exact = wirecut::uncut_expectation(&w, Pauli::Z);
            let cut = NmeCut::from_overlap(f);
            let prepared = PreparedCut::new(&cut, &w, Pauli::Z);
            let estimates = proportional_sweep(
                &prepared.spec,
                &prepared.samplers(),
                &checkpoints,
                ctx.rng(),
            );
            estimates.iter().map(|e| (e - exact).abs()).collect()
        });

    // Aggregate in grid order (overlap-major).
    let mut grids = vec![vec![RunningStats::new(); checkpoints.len()]; overlaps.len()];
    for (cell, row) in per_cell.iter().enumerate() {
        let o = cell / config.num_states;
        for (c, &err) in row.iter().enumerate() {
            grids[o][c].push(err);
        }
    }
    let mean_abs_error = grids
        .iter()
        .map(|row| row.iter().map(|s| s.mean()).collect())
        .collect();
    let std_err = grids
        .iter()
        .map(|row| row.iter().map(|s| s.std_err()).collect())
        .collect();
    Fig6Result {
        config: config.clone(),
        mean_abs_error,
        std_err,
    }
}

impl Fig6Result {
    /// Emits the result as a table: one row per checkpoint, one error
    /// column per overlap.
    pub fn to_table(&self) -> crate::csvout::Table {
        let mut header = vec!["shots".to_string()];
        for f in &self.config.overlaps {
            header.push(format!("err_f{f:.1}"));
        }
        let refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = crate::csvout::Table::new(&refs);
        for (c, &shots) in self.config.shot_checkpoints.iter().enumerate() {
            let mut row = vec![shots as f64];
            for o in 0..self.config.overlaps.len() {
                row.push(self.mean_abs_error[o][c]);
            }
            t.push_row(row);
        }
        t
    }

    /// The theoretical large-N prediction `ε ≈ κ·√(2/(πN))·c` ordering:
    /// checks that measured errors are ordered by overhead at the final
    /// checkpoint (used by tests and the self-check in the binary).
    pub fn final_errors_ordered_by_entanglement(&self) -> bool {
        let last = self.config.shot_checkpoints.len() - 1;
        let final_errors: Vec<f64> = (0..self.config.overlaps.len())
            .map(|o| self.mean_abs_error[o][last])
            .collect();
        final_errors.windows(2).all(|w| w[0] >= w[1] * 0.85)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig6Config {
        Fig6Config {
            num_states: 60,
            shot_checkpoints: vec![500, 2000],
            overlaps: vec![0.5, 0.8, 1.0],
            seed: 7,
            threads: 2,
        }
    }

    #[test]
    fn errors_decrease_with_shots() {
        let res = run(&small_config());
        for (o, row) in res.mean_abs_error.iter().enumerate() {
            assert!(
                row[1] < row[0],
                "error did not shrink with budget for overlap {o}: {row:?}"
            );
        }
    }

    #[test]
    fn errors_decrease_with_entanglement() {
        let res = run(&small_config());
        let last = res.config.shot_checkpoints.len() - 1;
        let e_05 = res.mean_abs_error[0][last];
        let e_10 = res.mean_abs_error[2][last];
        assert!(
            e_10 < e_05,
            "f=1.0 error {e_10} not below f=0.5 error {e_05}"
        );
        assert!(res.final_errors_ordered_by_entanglement());
    }

    #[test]
    fn error_scaling_tracks_kappa_ratio() {
        // ε(f=0.5)/ε(f=1.0) should be of order κ(0.5)/κ(1.0) = 3 at a
        // fixed generous budget (per-term variance differences make it
        // inexact; accept a broad band).
        let cfg = Fig6Config {
            num_states: 120,
            shot_checkpoints: vec![4000],
            overlaps: vec![0.5, 1.0],
            seed: 11,
            threads: 2,
        };
        let res = run(&cfg);
        let ratio = res.mean_abs_error[0][0] / res.mean_abs_error[1][0];
        assert!(
            ratio > 1.7 && ratio < 5.0,
            "error ratio {ratio} far from the κ ratio 3"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&small_config());
        let b = run(&Fig6Config {
            threads: 4,
            ..small_config()
        });
        for (ra, rb) in a.mean_abs_error.iter().zip(b.mean_abs_error.iter()) {
            for (x, y) in ra.iter().zip(rb.iter()) {
                assert!((x - y).abs() < 1e-14, "nondeterministic result");
            }
        }
    }

    #[test]
    fn table_shape() {
        let res = run(&Fig6Config {
            num_states: 5,
            shot_checkpoints: vec![100, 200],
            overlaps: vec![0.5, 1.0],
            seed: 3,
            threads: 1,
        });
        let t = res.to_table();
        assert_eq!(t.header().len(), 3);
        assert_eq!(t.rows().len(), 2);
    }
}

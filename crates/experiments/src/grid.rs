//! Configuration-grid sharding engine — re-exported from
//! [`qsample::grid`].
//!
//! The engine originally lived here; it moved down into the sampling
//! crate so the cutting-as-a-service layer (`wirecut::service`), which
//! sits *below* the experiments harness in the dependency order, can
//! schedule estimation jobs on the same work-stealing pool the sweeps
//! use. Every experiment keeps importing it from `crate::grid` — the
//! execution model, the seed-derivation scheme and the byte-identical
//! determinism contract are documented on [`qsample::grid`].

pub use qsample::grid::{
    default_threads, keyed_stream, GridKey, KeyHasher, ShardCtx, ShardResult, ShardedGrid,
};

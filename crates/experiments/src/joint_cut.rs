//! **E11 — joint parallel wire cutting** (extension; paper reference
//! \[26\], Brenner et al. \[11\]): cutting `n` wires jointly with mutually
//! unbiased bases costs `κ = 2^{n+1} − 1` instead of the per-wire product
//! `3ⁿ`. Reports both overheads, the sparse channel-verification
//! deviation ([`wirecut::joint::JointWireCut::verify_deviation`] — no
//! dense superoperator on the experiment path), and the measured
//! estimation error on entangled sender states. Both the
//! joint and product estimates request their shot allocations in one
//! batched call per term (multinomial leaf occupancies + per-leaf parity
//! binomials).

use crate::csvout::Table;
use crate::grid::ShardedGrid;
use crate::stats::RunningStats;
use qpd::{estimate_allocated, Allocator};
use qsample::StreamRng;
use qsim::{Circuit, PauliString};
use rand::Rng;
use wirecut::joint::JointWireCut;
use wirecut::multi::{MultiCutTerm, ParallelWireCut, PreparedMultiCut};
use wirecut::NmeCut;

/// Stream tag for the sender-state lane (keyed by `(wires, state)`).
const STATE_STREAM: u64 = 0xE11;

/// Configuration of the joint-cut comparison.
#[derive(Clone, Debug)]
pub struct JointConfig {
    /// Wire counts (1 and/or 2).
    pub wire_counts: Vec<usize>,
    /// Shot budget per estimate.
    pub shots: u64,
    /// Random sender states averaged over.
    pub num_states: usize,
    /// Estimates per state.
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for JointConfig {
    fn default() -> Self {
        Self {
            wire_counts: vec![1, 2],
            shots: 3000,
            num_states: 10,
            repetitions: 12,
            seed: 2601,
            threads: 0,
        }
    }
}

fn random_sender(w: usize, rng: &mut StreamRng) -> Circuit {
    let mut c = Circuit::new(w, 0);
    for q in 0..w {
        c.ry(rng.gen::<f64>() * std::f64::consts::PI, q);
    }
    for q in 0..w.saturating_sub(1) {
        c.cx(q, q + 1);
    }
    c
}

fn exact_zz(prep: &Circuit) -> f64 {
    let mut sv = qsim::StateVector::new(prep.num_qubits());
    sv.apply_circuit(prep);
    sv.expval_pauli(&PauliString::new(vec![qsim::Pauli::Z; prep.num_qubits()]))
}

/// Runs the joint-vs-product comparison. Columns:
/// `(wires, kappa_joint, kappa_product, identity_distance, err_joint,
/// err_product)`.
pub fn run(config: &JointConfig) -> Table {
    let mut t = Table::new(&[
        "wires",
        "kappa_joint",
        "kappa_product",
        "identity_distance",
        "err_joint",
        "err_product",
    ]);
    // Per-wire invariants (QPD spec, term circuits, product cut) built
    // once, not once per (wires, state) shard.
    let per_wire: Vec<(qpd::QpdSpec, Vec<MultiCutTerm>, ParallelWireCut)> = config
        .wire_counts
        .iter()
        .map(|&w| {
            let joint = JointWireCut::new(w);
            (
                joint.spec(),
                joint.terms(),
                ParallelWireCut::uniform(NmeCut::new(0.0), w),
            )
        })
        .collect();
    // One shard per (wires, state) cell, wire-major.
    let cells: Vec<(usize, u64)> = config
        .wire_counts
        .iter()
        .flat_map(|&w| (0..config.num_states as u64).map(move |s| (w, s)))
        .collect();
    let per_cell: Vec<(f64, f64)> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(w, s), ctx| {
            let wi = config.wire_counts.iter().position(|&x| x == w).unwrap();
            let (joint_spec, joint_terms, product) = &per_wire[wi];
            let observable = PauliString::new(vec![qsim::Pauli::Z; w]);
            let prep = random_sender(w, &mut ctx.shared(&(STATE_STREAM, w as u64, s)));
            let exact = exact_zz(&prep);
            let compiled_joint =
                PreparedMultiCut::from_terms(joint_spec.clone(), joint_terms, &prep, &observable);
            let compiled_product = PreparedMultiCut::new(product, &prep, &observable);
            debug_assert!((compiled_joint.exact_value() - exact).abs() < 1e-7);
            debug_assert!((compiled_product.exact_value() - exact).abs() < 1e-7);
            let rng = ctx.rng();
            let mut ej = RunningStats::new();
            let mut ep = RunningStats::new();
            for _ in 0..config.repetitions {
                let est_j = estimate_allocated(
                    &compiled_joint.spec,
                    &compiled_joint.samplers(),
                    config.shots,
                    Allocator::Proportional,
                    rng,
                );
                ej.push((est_j - exact).abs());
                let est_p = estimate_allocated(
                    &compiled_product.spec,
                    &compiled_product.samplers(),
                    config.shots,
                    Allocator::Proportional,
                    rng,
                );
                ep.push((est_p - exact).abs());
            }
            (ej.mean(), ep.mean())
        });
    for (wi, &w) in config.wire_counts.iter().enumerate() {
        // Sparse per-term Kraus verification (matrix-unit / probe based);
        // the dense 2^{2n} superoperator tomography stays out of the
        // experiment path.
        let dist = JointWireCut::new(w).verify_deviation();
        let mut agg_j = RunningStats::new();
        let mut agg_p = RunningStats::new();
        for &(j, p) in &per_cell[wi * config.num_states..(wi + 1) * config.num_states] {
            agg_j.push(j);
            agg_p.push(p);
        }
        t.push_row(vec![
            w as f64,
            per_wire[wi].0.kappa(),
            per_wire[wi].2.kappa(),
            dist,
            agg_j.mean(),
            agg_p.mean(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> JointConfig {
        JointConfig {
            wire_counts: vec![1, 2],
            shots: 1200,
            num_states: 4,
            repetitions: 6,
            seed: 5,
            threads: 2,
        }
    }

    #[test]
    fn joint_overheads_and_identities() {
        let t = run(&small());
        // n=1: joint == product == 3 (the Harada cut two ways).
        assert!((t.rows()[0][1] - 3.0).abs() < 1e-9);
        assert!((t.rows()[0][2] - 3.0).abs() < 1e-9);
        // n=2: joint 7 < product 9.
        assert!((t.rows()[1][1] - 7.0).abs() < 1e-9);
        assert!((t.rows()[1][2] - 9.0).abs() < 1e-9);
        // Channel identity exact for both.
        for row in t.rows() {
            assert!(row[3] < 1e-8, "identity distance {}", row[3]);
        }
    }

    #[test]
    fn joint_error_no_worse_than_product_at_two_wires() {
        let t = run(&JointConfig {
            num_states: 8,
            repetitions: 10,
            ..small()
        });
        let row = &t.rows()[1];
        let (ej, ep) = (row[4], row[5]);
        assert!(
            ej < ep * 1.25,
            "joint error {ej} not competitive with product {ep}"
        );
    }
}

//! **E13 — joint multi-wire scaling and the κ crossover map** (ROADMAP
//! "Joint multi-wire scaling"; extension paper arXiv:2406.13315).
//!
//! Three tables answer "when is *joint* cutting worth it?" for `n` wires:
//!
//! 1. [`crossover_table`] — closed-form κ map over wire count `n` and
//!    entanglement level `f`: the entanglement-free joint optimum
//!    `κ_joint = 2^{n+1} − 1`, the Theorem 1 independent-cut optimum
//!    `κ_indep = γ(f)ⁿ = (2/f − 1)ⁿ`, and the crossover level
//!    `f*(n) = 2/((2^{n+1} − 1)^{1/n} + 1)` above which independent NME
//!    cuts beat the maximally-entangled-free joint cut. `κ_joint` grows
//!    like `2·2ⁿ` while `κ_indep` grows like `γⁿ`, so the joint scheme
//!    wins exactly when `γ > (2^{n+1} − 1)^{1/n} → 2` — i.e. whenever the
//!    available entanglement is weak (`f < f* → 2/3`).
//! 2. [`nme_sweep_table`] — the open-theory exploration: the achieved
//!    1-norm of the **joint NME** family
//!    ([`wirecut::joint_nme::explore_joint_nme`]) per `(n, f)`, against
//!    both baselines, with feasibility residual and expected pair
//!    consumption.
//! 3. [`shots_table`] — finite-shot validation on GHZ-type sender states:
//!    measured estimation error of joint vs independent cutting across a
//!    `10² … 10⁵` shot grid, all through the batched
//!    `TermSampler::sample_observable_sum` path.
//!
//! Run via `cargo run --release -p experiments --bin joint_scaling`
//! (writes `results/joint_scaling_{crossover,nme,shots}.csv`).

use crate::csvout::Table;
use crate::grid::ShardedGrid;
use crate::stats::RunningStats;
use entangle::PhiK;
use qpd::{estimate_allocated, Allocator};
use qsim::{Circuit, PauliString};
use rand::Rng;
use wirecut::joint::JointWireCut;
use wirecut::joint_nme::explore_joint_nme;
use wirecut::multi::{MultiCutTerm, ParallelWireCut, PreparedMultiCut};
use wirecut::theory;
use wirecut::NmeCut;

/// Configuration of the joint-scaling study.
#[derive(Clone, Debug)]
pub struct JointScalingConfig {
    /// Wire counts for the closed-form crossover map.
    pub max_wires: usize,
    /// Wire counts for the (more expensive) NME-family exploration.
    pub nme_max_wires: usize,
    /// Entanglement levels `f` swept in both κ tables.
    pub overlaps: Vec<f64>,
    /// Wire counts for the finite-shot comparison.
    pub shot_wires: Vec<usize>,
    /// Shot budgets of the finite-shot comparison.
    pub shot_grid: Vec<u64>,
    /// Random sender states averaged over per configuration.
    pub num_states: usize,
    /// Estimates per state and budget.
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for JointScalingConfig {
    fn default() -> Self {
        Self {
            max_wires: 5,
            nme_max_wires: 4,
            overlaps: vec![0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0],
            shot_wires: vec![1, 2, 3],
            shot_grid: vec![100, 1_000, 10_000, 100_000],
            num_states: 6,
            repetitions: 10,
            seed: 2407,
            threads: 0,
        }
    }
}

/// Stream tag for the sender-state lane, shared across wire counts so
/// every `n` compares the same family of sender angles.
const STATE_STREAM: u64 = 0x1357;

/// The crossover overlap `f*(n)`: independent `|Φ_k⟩` cuts beat the
/// entanglement-free joint cut exactly when `f > f*(n)`;
/// `f*(n) = 2/((2^{n+1} − 1)^{1/n} + 1)` rises from `1/2` at `n = 1`
/// towards `2/3` — more wires widen the regime where joint cutting wins.
pub fn crossover_overlap(n: usize) -> f64 {
    let gamma_star = ((2u64 << n) - 1) as f64;
    2.0 / (gamma_star.powf(1.0 / n as f64) + 1.0)
}

/// Closed-form κ map. Columns: `(wires, f, k, kappa_joint, kappa_indep,
/// crossover_f, indep_wins)` — `indep_wins` is 1 when `γ(f)ⁿ < 2^{n+1}−1`.
pub fn crossover_table(config: &JointScalingConfig) -> Table {
    let mut t = Table::new(&[
        "wires",
        "f",
        "k",
        "kappa_joint",
        "kappa_indep",
        "crossover_f",
        "indep_wins",
    ]);
    for n in 1..=config.max_wires {
        let joint = JointWireCut::new(n).kappa();
        let f_star = crossover_overlap(n);
        for &f in &config.overlaps {
            let k = PhiK::from_overlap(f).k();
            let indep = theory::gamma_from_overlap(f).powi(n as i32);
            t.push_row(vec![
                n as f64,
                f,
                k,
                joint,
                indep,
                f_star,
                f64::from(indep < joint),
            ]);
        }
    }
    t
}

/// NME joint-cut exploration sweep. Columns: `(wires, f, k,
/// kappa_nme_joint, kappa_indep, kappa_joint_me, residual,
/// pairs_per_sample)`. `kappa_nme_joint` is the achieved 1-norm of the
/// basis-pursuit solve over the Tel/MeasPrep/Flip family — an upper bound
/// on the (open) optimal joint-NME overhead.
pub fn nme_sweep_table(config: &JointScalingConfig) -> Table {
    let mut t = Table::new(&[
        "wires",
        "f",
        "k",
        "kappa_nme_joint",
        "kappa_indep",
        "kappa_joint_me",
        "residual",
        "pairs_per_sample",
    ]);
    let cases: Vec<(usize, f64)> = (1..=config.nme_max_wires)
        .flat_map(|n| config.overlaps.iter().map(move |&f| (n, f)))
        .collect();
    // Configuration-level shards: the n = 4 solves cost orders of
    // magnitude more than n = 1, which is exactly what the engine's
    // work stealing absorbs.
    let rows = ShardedGrid::new(cases, config.seed)
        .with_threads(config.threads)
        .run(|&(n, f), _| {
            let k = PhiK::from_overlap(f).k();
            let sol = explore_joint_nme(n, k);
            vec![
                n as f64,
                f,
                k,
                sol.kappa,
                theory::gamma_from_overlap(f).powi(n as i32),
                JointWireCut::new(n).kappa(),
                sol.residual,
                sol.pairs_per_sample,
            ]
        });
    for row in rows {
        t.push_row(row);
    }
    t
}

fn ghz_sender(w: usize, theta: f64) -> Circuit {
    let mut c = Circuit::new(w, 0);
    c.ry(theta, 0);
    for q in 0..w.saturating_sub(1) {
        c.cx(q, q + 1);
    }
    c
}

fn exact_all_z(prep: &Circuit) -> f64 {
    let mut sv = qsim::StateVector::new(prep.num_qubits());
    sv.apply_circuit(prep);
    sv.expval_pauli(&PauliString::new(vec![qsim::Pauli::Z; prep.num_qubits()]))
}

/// Finite-shot κ crossover validation. Columns: `(wires, shots,
/// kappa_joint, kappa_product, err_joint, err_product)`, where the error
/// columns are mean absolute estimation errors of `⟨Z…Z⟩` on random
/// GHZ-type sender states. The `κ/√N` law makes `err_joint/err_product →
/// κ_joint/κ_product` at large budgets.
pub fn shots_table(config: &JointScalingConfig) -> Table {
    let mut t = Table::new(&[
        "wires",
        "shots",
        "kappa_joint",
        "kappa_product",
        "err_joint",
        "err_product",
    ]);
    let observable = |w: usize| PauliString::new(vec![qsim::Pauli::Z; w]);
    // Per-wire invariants (QPD spec, term circuits, product cut) built
    // once, not once per (wires, state) shard.
    let per_wire: Vec<(qpd::QpdSpec, Vec<MultiCutTerm>, ParallelWireCut)> = config
        .shot_wires
        .iter()
        .map(|&w| {
            let joint = JointWireCut::new(w);
            (
                joint.spec(),
                joint.terms(),
                ParallelWireCut::uniform(NmeCut::new(0.0), w),
            )
        })
        .collect();
    // One shard per (wires, state) cell, wire-major; the sender angle is
    // drawn from a state-keyed stream so every wire count compares the
    // same family of sender states.
    let cells: Vec<(usize, u64)> = config
        .shot_wires
        .iter()
        .flat_map(|&w| (0..config.num_states as u64).map(move |s| (w, s)))
        .collect();
    let per_cell: Vec<Vec<(f64, f64)>> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(w, s), ctx| {
            let wi = config.shot_wires.iter().position(|&x| x == w).unwrap();
            let (joint_spec, joint_terms, product) = &per_wire[wi];
            let theta = ctx.shared(&(STATE_STREAM, s)).gen::<f64>() * std::f64::consts::PI;
            let prep = ghz_sender(w, theta);
            let exact = exact_all_z(&prep);
            let compiled_joint = PreparedMultiCut::from_terms(
                joint_spec.clone(),
                joint_terms,
                &prep,
                &observable(w),
            );
            let compiled_product = PreparedMultiCut::new(product, &prep, &observable(w));
            let rng = ctx.rng();
            config
                .shot_grid
                .iter()
                .map(|&shots| {
                    let mut ej = RunningStats::new();
                    let mut ep = RunningStats::new();
                    for _ in 0..config.repetitions {
                        let est_j = estimate_allocated(
                            &compiled_joint.spec,
                            &compiled_joint.samplers(),
                            shots,
                            Allocator::Proportional,
                            rng,
                        );
                        ej.push((est_j - exact).abs());
                        let est_p = estimate_allocated(
                            &compiled_product.spec,
                            &compiled_product.samplers(),
                            shots,
                            Allocator::Proportional,
                            rng,
                        );
                        ep.push((est_p - exact).abs());
                    }
                    (ej.mean(), ep.mean())
                })
                .collect()
        });
    for (wi, &w) in config.shot_wires.iter().enumerate() {
        let kappa_joint = per_wire[wi].0.kappa();
        let kappa_product = per_wire[wi].2.kappa();
        let block = &per_cell[wi * config.num_states..(wi + 1) * config.num_states];
        for (si, &shots) in config.shot_grid.iter().enumerate() {
            let mut agg_j = RunningStats::new();
            let mut agg_p = RunningStats::new();
            for state_rows in block {
                agg_j.push(state_rows[si].0);
                agg_p.push(state_rows[si].1);
            }
            t.push_row(vec![
                w as f64,
                shots as f64,
                kappa_joint,
                kappa_product,
                agg_j.mean(),
                agg_p.mean(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> JointScalingConfig {
        JointScalingConfig {
            max_wires: 4,
            nme_max_wires: 2,
            overlaps: vec![0.5, 0.75, 1.0],
            shot_wires: vec![1, 2],
            shot_grid: vec![400, 3200],
            num_states: 3,
            repetitions: 6,
            seed: 11,
            threads: 2,
        }
    }

    #[test]
    fn crossover_map_matches_closed_forms() {
        let t = crossover_table(&small());
        for row in t.rows() {
            let (n, f) = (row[0] as usize, row[1]);
            assert!((row[3] - ((2u64 << n) - 1) as f64).abs() < 1e-9);
            assert!((row[4] - (2.0 / f - 1.0).powi(n as i32)).abs() < 1e-9);
            // indep_wins consistent with the crossover overlap.
            let wins = row[4] < row[3];
            assert_eq!(row[6] > 0.5, wins);
            if f > row[5] + 1e-9 {
                assert!(wins, "f={f} above crossover must favour independent");
            }
        }
        // γ*(1) = 3 → f*(1) = 1/2; f* rises monotonically towards the
        // 2/3 asymptote (γ* → 2) as wires are added.
        assert!((crossover_overlap(1) - 0.5).abs() < 1e-12);
        let mut prev = 0.0;
        for n in 1..=6 {
            let f = crossover_overlap(n);
            assert!(f > prev, "f* not increasing at n={n}");
            assert!((0.5..2.0 / 3.0).contains(&f));
            prev = f;
        }
    }

    #[test]
    fn nme_sweep_is_feasible_and_bounded() {
        let t = nme_sweep_table(&small());
        for row in t.rows() {
            let (kappa, indep, me_joint, residual) = (row[3], row[4], row[5], row[6]);
            assert!(residual < 1e-8, "infeasible row: {row:?}");
            assert!(kappa >= 1.0 - 1e-9);
            assert!(kappa <= me_joint + 1e-6, "worse than ME joint: {row:?}");
            // At f = 1 both joint NME and independent reach κ = 1.
            if (row[1] - 1.0).abs() < 1e-12 {
                assert!((kappa - 1.0).abs() < 1e-6);
                assert!((indep - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn shot_errors_scale_with_kappa() {
        let t = shots_table(&small());
        // At the largest budget and 2 wires, the joint cut (κ = 7) must
        // not err more than the product cut (κ = 9) by any wide margin.
        let row = t
            .rows()
            .iter()
            .find(|r| r[0] as usize == 2 && r[1] as u64 == 3200)
            .expect("missing row");
        let (ej, ep) = (row[4], row[5]);
        assert!(
            ej < ep * 1.4,
            "joint error {ej} not competitive with product {ep}"
        );
        // Errors decrease with budget for each wire count.
        for &w in &[1usize, 2] {
            let rows: Vec<_> = t.rows().iter().filter(|r| r[0] as usize == w).collect();
            assert!(rows[1][4] < rows[0][4] * 1.2, "joint error not shrinking");
        }
    }
}

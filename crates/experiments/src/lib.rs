//! # experiments — regenerating every table and figure of the paper
//!
//! One module per experiment in the DESIGN.md index:
//!
//! | module | experiment |
//! |---|---|
//! | [`fig6`] | **E1**: Figure 6 — error vs shots for six entanglement levels |
//! | [`overhead`] | **E2**: Theorem 1/Corollary 1 — γ theory vs construction vs measurement |
//! | [`tables`] | **E3/E4/E6/E7**: closed-form verification tables |
//! | [`teleport_channel`] | **E5**: Eq. 22/59 channel tomography |
//! | [`allocation`] | **E8**: shot-allocation ablation |
//! | [`multicut`] | **E9**: multi-wire scaling extension |
//! | [`werner`] | **E10**: mixed (Werner) resource extension |
//! | [`joint_cut`] | **E11**: joint multi-wire cutting (κ = 2^{n+1}−1) |
//! | [`noise`] | **E12**: wire cutting under gate-level depolarising noise |
//! | [`joint_scaling`] | **E13**: joint-vs-independent κ crossover map + NME joint exploration |
//! | [`werner_sweep`] | **E15**: full Werner p-sweep with confidence bands vs the Theorem 1 bound |
//! | [`distill_cut`] | **E16**: distill-then-cut (p, m) map — where recurrence distillation closes the κ-vs-γ gap |
//! | [`plan_cut`] | **E17**: arbitrary-circuit cut-planner sweep — multi-fragment plans vs uncut statevector |
//! | [`service_load`] | **E18**: cutting-as-a-service load — plan-cache reuse + sequential vs static allocation variance |
//!
//! Infrastructure: [`grid`] (the configuration-grid sharding engine:
//! work-stealing over whole configurations with per-shard counter-based
//! RNG streams and deterministic grid-order output), [`par`] (item-level
//! work-stealing map), [`stats`] (Welford accumulators, Wilson
//! intervals), [`csvout`] (CSV/pretty tables into `results/`).
//!
//! Each experiment has a matching binary (`cargo run --release -p
//! experiments --bin <name>`) and a criterion bench in the `bench` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod csvout;
pub mod distill_cut;
pub mod fig6;
pub mod grid;
pub mod joint_cut;
pub mod joint_scaling;
pub mod multicut;
pub mod noise;
pub mod overhead;
pub mod par;
pub mod plan_cut;
pub mod service_load;
pub mod stats;
pub mod tables;
pub mod teleport_channel;
pub mod werner;
pub mod werner_sweep;

pub use csvout::{results_dir, Table};
pub use grid::{keyed_stream, GridKey, KeyHasher, ShardCtx, ShardResult, ShardedGrid};
pub use par::{default_threads, item_seed, parallel_map_indexed};
pub use stats::RunningStats;

/// Parses the shared `--threads N` CLI flag used by the experiment
/// binaries (0 or absent = auto), warning on a malformed value instead
/// of silently falling back.
pub fn threads_flag(args: &[String]) -> usize {
    match args.iter().position(|a| a == "--threads") {
        None => 0,
        Some(i) => match args.get(i + 1).map(|v| v.parse::<usize>()) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!("warning: --threads expects a worker count (0 = auto); using auto");
                0
            }
        },
    }
}

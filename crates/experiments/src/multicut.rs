//! **E9 — multi-cut scaling** (extension; paper §VI / Brenner et al.):
//! cutting `w` parallel wires multiplies the overhead, `κ_total = κ^w`,
//! so the error at fixed budget grows exponentially in the number of
//! cuts — and raising the per-cut entanglement attacks the *base* of
//! that exponential.

use crate::csvout::Table;
use crate::grid::ShardedGrid;
use crate::stats::RunningStats;
use qpd::{estimate_allocated, Allocator};
use qsample::StreamRng;
use qsim::{Circuit, PauliString};
use rand::Rng;
use wirecut::multi::{ParallelWireCut, PreparedMultiCut};
use wirecut::NmeCut;

/// Stream tag for the sender-state lane, shared across overlaps (keyed
/// by `(wires, state)`) so every entanglement level cuts the same
/// senders.
const STATE_STREAM: u64 = 0xE9;

/// Configuration of the multi-cut experiment.
#[derive(Clone, Debug)]
pub struct MultiCutConfig {
    /// Wire counts to evaluate.
    pub wire_counts: Vec<usize>,
    /// Entanglement levels per cut.
    pub overlaps: Vec<f64>,
    /// Shot budget per estimate.
    pub shots: u64,
    /// Random sender states averaged over.
    pub num_states: usize,
    /// Estimates per state.
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for MultiCutConfig {
    fn default() -> Self {
        Self {
            wire_counts: vec![1, 2, 3],
            overlaps: vec![0.5, 0.8, 1.0],
            shots: 3000,
            num_states: 8,
            repetitions: 12,
            seed: 31337,
            threads: 0,
        }
    }
}

/// A random `w`-qubit sender circuit: per-qubit Ry rotations and a chain
/// of CNOTs so the cut wires carry an *entangled* joint state.
fn random_sender(w: usize, rng: &mut StreamRng) -> Circuit {
    let mut c = Circuit::new(w, 0);
    for q in 0..w {
        c.ry(rng.gen::<f64>() * std::f64::consts::PI, q);
    }
    for q in 0..w.saturating_sub(1) {
        c.cx(q, q + 1);
    }
    for q in 0..w {
        c.ry(rng.gen::<f64>() * std::f64::consts::PI, q);
    }
    c
}

/// Exact ⟨Z…Z⟩ of the sender state (uncut reference).
fn exact_zz(prep: &Circuit) -> f64 {
    let mut sv = qsim::StateVector::new(prep.num_qubits());
    sv.apply_circuit(prep);
    sv.expval_pauli(&PauliString::new(vec![qsim::Pauli::Z; prep.num_qubits()]))
}

/// Runs the multi-cut scaling experiment; rows are
/// `(wires, overlap_f, kappa_total, mean_abs_error)`.
pub fn run(config: &MultiCutConfig) -> Table {
    let mut t = Table::new(&["wires", "overlap_f", "kappa_total", "mean_abs_error"]);
    // One shard per (wires, overlap, state) cell, (w, f)-major.
    let cells: Vec<(usize, f64, u64)> = config
        .wire_counts
        .iter()
        .flat_map(|&w| {
            config
                .overlaps
                .iter()
                .flat_map(move |&f| (0..config.num_states as u64).map(move |s| (w, f, s)))
        })
        .collect();
    let per_cell: Vec<f64> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(w, f, s), ctx| {
            let cut = ParallelWireCut::uniform(NmeCut::from_overlap(f), w);
            let observable = PauliString::new(vec![qsim::Pauli::Z; w]);
            let prep = random_sender(w, &mut ctx.shared(&(STATE_STREAM, w as u64, s)));
            let exact = exact_zz(&prep);
            let prepared = PreparedMultiCut::new(&cut, &prep, &observable);
            debug_assert!((prepared.exact_value() - exact).abs() < 1e-8);
            let rng = ctx.rng();
            let mut acc = RunningStats::new();
            for _ in 0..config.repetitions {
                let est = estimate_allocated(
                    &prepared.spec,
                    &prepared.samplers(),
                    config.shots,
                    Allocator::Proportional,
                    rng,
                );
                acc.push((est - exact).abs());
            }
            acc.mean()
        });
    let mut cell = 0;
    for &w in &config.wire_counts {
        for &f in &config.overlaps {
            let kappa = ParallelWireCut::uniform(NmeCut::from_overlap(f), w).kappa();
            let mut agg = RunningStats::new();
            for &e in &per_cell[cell..cell + config.num_states] {
                agg.push(e);
            }
            cell += config.num_states;
            t.push_row(vec![w as f64, f, kappa, agg.mean()]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MultiCutConfig {
        MultiCutConfig {
            wire_counts: vec![1, 2],
            overlaps: vec![0.5, 1.0],
            shots: 1500,
            num_states: 5,
            repetitions: 8,
            seed: 3,
            threads: 2,
        }
    }

    #[test]
    fn kappa_scales_exponentially() {
        let t = run(&small());
        // rows: (1, 0.5), (1, 1.0), (2, 0.5), (2, 1.0)
        let k1 = t.rows()[0][2];
        let k2 = t.rows()[2][2];
        assert!(
            (k2 - k1 * k1).abs() < 1e-9,
            "κ² scaling broken: {k1} vs {k2}"
        );
        // f = 1.0: κ stays 1 regardless of wires.
        assert!((t.rows()[1][2] - 1.0).abs() < 1e-9);
        assert!((t.rows()[3][2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_cuts_cost_more_than_one_without_entanglement() {
        let t = run(&small());
        let e1 = t.rows()[0][3]; // 1 wire, f=0.5
        let e2 = t.rows()[2][3]; // 2 wires, f=0.5
        assert!(
            e2 > e1,
            "two-cut error {e2} not above single-cut error {e1}"
        );
    }

    #[test]
    fn entanglement_kills_the_exponential() {
        let t = run(&small());
        let e2_bare = t.rows()[2][3]; // 2 wires, f=0.5
        let e2_tel = t.rows()[3][3]; // 2 wires, f=1.0
        assert!(
            e2_tel < e2_bare,
            "teleportation did not beat bare cutting: {e2_tel} vs {e2_bare}"
        );
    }
}

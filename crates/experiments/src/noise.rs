//! **E12 — wire cutting under device noise** (extension; paper §VI
//! future work): gate-level depolarising noise turns the exact QPD
//! identity into a *biased* reconstruction. The bias is a noise floor
//! that no shot budget removes; this experiment maps it against the
//! resource entanglement `k` and the noise strength `p`.
//!
//! Two effects compete as `k → 1`: the QPD variance amplification κ²
//! shrinks (fewer shots needed), but every sample keeps paying the
//! teleportation circuit's noise. The table therefore reports the exact
//! bias alongside the total error at a finite budget.
//!
//! Finite-shot error is sampled through the batched [`BernoulliTerm`]
//! path (one binomial per term and budget, not one draw per shot).

use crate::csvout::Table;
use crate::grid::ShardedGrid;
use crate::stats::RunningStats;
use qlinalg::Matrix;
use qpd::{BernoulliTerm, QpdSpec, TermSampler};
use qsim::noise::{execute_density_noisy, NoiseModel};
use qsim::{haar_unitary, Circuit, Pauli, PauliString};
use wirecut::term::embed_input;
use wirecut::{NmeCut, WireCut};

/// Stream tag for the Haar-state lane, shared across `(k, p)` so every
/// noise level biases the same random states.
const STATE_STREAM: u64 = 0xE12;

/// Exact expectation of Z on the output of one cut term executed under a
/// noise model, for input `W|0⟩`.
pub fn noisy_term_expectation(term: &wirecut::CutTerm, w: &Matrix, noise: &NoiseModel) -> f64 {
    let n = term.circuit.num_qubits();
    let mut circuit = Circuit::new(n, term.circuit.num_clbits());
    circuit.unitary1(w.clone(), term.input_qubit);
    circuit.compose(&term.circuit);
    // Input density: |0…0⟩ everywhere (the W preparation is inside and is
    // itself subject to gate noise, like on a real device).
    let rho_in = embed_input(
        &Matrix::from_fn(2, 2, |i, j| {
            if i == 0 && j == 0 {
                qlinalg::C_ONE
            } else {
                qlinalg::C_ZERO
            }
        }),
        term.input_qubit,
        n,
    );
    let out = execute_density_noisy(&circuit, &rho_in, noise);
    out.partial_trace(&[term.output_qubit])
        .expval_pauli(&PauliString::single(1, 0, Pauli::Z))
}

/// The exact noisy QPD reconstruction `Σᵢ cᵢ·⟨Z⟩ᵢ^noisy` and the implied
/// bias against the ideal value.
pub fn noisy_reconstruction(cut: &dyn WireCut, w: &Matrix, noise: &NoiseModel) -> f64 {
    cut.terms()
        .iter()
        .map(|t| t.coefficient * noisy_term_expectation(t, w, noise))
        .sum()
}

/// Configuration of the noise experiment.
#[derive(Clone, Debug)]
pub struct NoiseConfig {
    /// Resource parameters `k`.
    pub k_values: Vec<f64>,
    /// Depolarising strengths `p`.
    pub noise_levels: Vec<f64>,
    /// Shot budget for the finite-shot error column.
    pub shots: u64,
    /// Random states averaged over.
    pub num_states: usize,
    /// Estimates per state.
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            k_values: vec![0.0, 0.5, 1.0],
            noise_levels: vec![0.0, 0.002, 0.01, 0.05],
            shots: 4000,
            num_states: 12,
            repetitions: 12,
            seed: 909,
            threads: 0,
        }
    }
}

/// Runs the noise experiment. Columns:
/// `(k, p, kappa, bias_exact, total_err_at_budget)`.
///
/// The finite-shot column models each noisy term as a calibrated ±1
/// sampler at its exact noisy expectation (shot noise on top of the
/// noise-induced bias) with the paper's proportional allocation.
pub fn run(config: &NoiseConfig) -> Table {
    let mut t = Table::new(&["k", "p", "kappa", "bias_exact", "total_err_at_budget"]);
    // One shard per (k, p, state) cell, (k, p)-major.
    let cells: Vec<(f64, f64, u64)> = config
        .k_values
        .iter()
        .flat_map(|&k| {
            config
                .noise_levels
                .iter()
                .flat_map(move |&p| (0..config.num_states as u64).map(move |s| (k, p, s)))
        })
        .collect();
    let per_cell: Vec<(f64, f64)> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(k, p, s), ctx| {
            let cut = NmeCut::new(k);
            let noise = NoiseModel::depolarizing(p);
            let w = haar_unitary(2, &mut ctx.shared(&(STATE_STREAM, s)));
            let exact = wirecut::uncut_expectation(&w, Pauli::Z);
            let terms = cut.terms();
            let noisy_vals: Vec<f64> = terms
                .iter()
                .map(|term| noisy_term_expectation(term, &w, &noise))
                .collect();
            let spec: QpdSpec = cut.spec();
            let reconstruction: f64 = spec
                .coefficients()
                .iter()
                .zip(noisy_vals.iter())
                .map(|(c, e)| c * e)
                .sum();
            let bias = (reconstruction - exact).abs();
            // Finite-shot error: Bernoulli samplers at the noisy
            // expectations.
            let samplers: Vec<BernoulliTerm> = noisy_vals
                .iter()
                .map(|&e| BernoulliTerm {
                    expectation: e.clamp(-1.0, 1.0),
                })
                .collect();
            let refs: Vec<&dyn TermSampler> =
                samplers.iter().map(|s| s as &dyn TermSampler).collect();
            let rng = ctx.rng();
            let mut err = RunningStats::new();
            for _ in 0..config.repetitions {
                let est = qpd::estimate_allocated(
                    &spec,
                    &refs,
                    config.shots,
                    qpd::Allocator::Proportional,
                    rng,
                );
                err.push((est - exact).abs());
            }
            (bias, err.mean())
        });
    let mut cell = 0;
    for &k in &config.k_values {
        let kappa = NmeCut::new(k).kappa();
        for &p in &config.noise_levels {
            let mut bias_agg = RunningStats::new();
            let mut err_agg = RunningStats::new();
            for &(b, e) in &per_cell[cell..cell + config.num_states] {
                bias_agg.push(b);
                err_agg.push(e);
            }
            cell += config.num_states;
            t.push_row(vec![k, p, kappa, bias_agg.mean(), err_agg.mean()]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NoiseConfig {
        NoiseConfig {
            k_values: vec![0.0, 1.0],
            noise_levels: vec![0.0, 0.02],
            shots: 1500,
            num_states: 5,
            repetitions: 6,
            seed: 4,
            threads: 2,
        }
    }

    #[test]
    fn zero_noise_has_zero_bias() {
        let t = run(&small());
        for row in t.rows() {
            if row[1] == 0.0 {
                assert!(row[3] < 1e-9, "bias {} at p=0", row[3]);
            }
        }
    }

    #[test]
    fn bias_grows_with_noise() {
        let t = run(&small());
        // rows: (k=0,p=0), (k=0,p=.02), (k=1,p=0), (k=1,p=.02)
        assert!(t.rows()[1][3] > t.rows()[0][3] + 1e-4);
        assert!(t.rows()[3][3] > t.rows()[2][3] + 1e-4);
    }

    #[test]
    fn noise_floor_dominates_at_high_budget() {
        // At p = 0.02 and 1500 shots the bias is a significant fraction of
        // the total error.
        let t = run(&small());
        let row = &t.rows()[3]; // k=1, p=0.02
        assert!(
            row[4] >= row[3] * 0.5,
            "total err {} below bias {}",
            row[4],
            row[3]
        );
    }

    #[test]
    fn noisy_reconstruction_helper_agrees() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let w = haar_unitary(2, &mut rng);
        let cut = NmeCut::new(0.5);
        let clean = noisy_reconstruction(&cut, &w, &NoiseModel::noiseless());
        let exact = wirecut::uncut_expectation(&w, Pauli::Z);
        assert!((clean - exact).abs() < 1e-9);
    }
}

//! **E2 — Theorem 1 / Corollary 1**: measured sampling overhead versus
//! the closed-form optimum `γ^{Φk}(I) = 4(k²+1)/(k+1)² − 1`.
//!
//! The sampling overhead manifests as estimator variance: with
//! proportional allocation the estimator variance is exactly
//!
//! `Var = (1/N) · κ · Σᵢ |cᵢ| · σᵢ²`,  `σᵢ² = 1 − ⟨Z⟩ᵢ²`
//!
//! so `N·Var ≤ κ²`. We report three numbers per `k`: the closed form γ,
//! the QPD 1-norm of the constructed cut, and the *empirically measured*
//! effective overhead `κ_emp = √(N·Var_emp / Var_base)` where `Var_base`
//! is the single-qubit binomial variance of the teleportation baseline —
//! the quantity Figure 6's error curves integrate over random states.
//! Every repetition draws its whole budget through the batched shot
//! engine, so the variance scan stays cheap at large `N`.

use crate::grid::ShardedGrid;
use crate::stats::{mean, variance};
use qpd::{estimate_allocated, Allocator};
use qsim::{haar_unitary, Pauli};
use wirecut::{theory, NmeCut, PreparedCut, WireCut};

/// Stream tag for the Haar-state lane, shared across `k` values so every
/// resource level measures variance on the same random states.
const STATE_STREAM: u64 = 0xE2;

/// Configuration for the overhead measurement.
#[derive(Clone, Debug)]
pub struct OverheadConfig {
    /// Resource parameters `k` to evaluate.
    pub k_values: Vec<f64>,
    /// Shots per estimate.
    pub shots: u64,
    /// Repetitions per (k, state) for the variance estimate.
    pub repetitions: usize,
    /// Random input states averaged over.
    pub num_states: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        Self {
            k_values: vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
            shots: 2000,
            repetitions: 120,
            num_states: 12,
            seed: 77,
            threads: 0,
        }
    }
}

/// One row of the overhead table.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Resource parameter.
    pub k: f64,
    /// Entanglement level `f(Φ_k)`.
    pub overlap: f64,
    /// Closed-form optimum (Corollary 1).
    pub gamma_theory: f64,
    /// 1-norm of the constructed Theorem 2 QPD.
    pub kappa_construction: f64,
    /// Empirical effective overhead from measured variance.
    pub kappa_empirical: f64,
    /// Predicted variance from the exact per-term expectations.
    pub predicted_variance: f64,
    /// Measured estimator variance.
    pub measured_variance: f64,
}

/// Exact variance of the proportional-allocation estimator:
/// `Σᵢ cᵢ²·σᵢ²/nᵢ` with `nᵢ = pᵢ·N`.
pub fn predicted_variance(spec: &qpd::QpdSpec, exact_terms: &[f64], total_shots: u64) -> f64 {
    let alloc = Allocator::Proportional.allocate(spec, total_shots);
    spec.terms()
        .iter()
        .zip(exact_terms.iter())
        .zip(alloc.iter())
        .map(|((t, &e), &n)| {
            if n == 0 {
                0.0
            } else {
                t.coefficient * t.coefficient * (1.0 - e * e) / n as f64
            }
        })
        .sum()
}

/// Runs the overhead measurement.
pub fn run(config: &OverheadConfig) -> Vec<OverheadRow> {
    // One shard per (k, state) cell, k-major; the Haar state comes from
    // a state-keyed stream so every k measures the same states.
    let cells: Vec<(f64, u64)> = config
        .k_values
        .iter()
        .flat_map(|&k| (0..config.num_states as u64).map(move |s| (k, s)))
        .collect();
    let per_cell: Vec<(f64, f64, f64)> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(k, s), ctx| {
            let cut = NmeCut::new(k);
            let baseline = NmeCut::new(1.0);
            let w = haar_unitary(2, &mut ctx.shared(&(STATE_STREAM, s)));
            let prepared = PreparedCut::new(&cut, &w, Pauli::Z);
            let exact_terms: Vec<f64> = prepared
                .terms
                .iter()
                .map(qpd::TermSampler::exact_expectation)
                .collect();
            let pred = predicted_variance(&prepared.spec, &exact_terms, config.shots);
            let rng = ctx.rng();
            let estimates: Vec<f64> = (0..config.repetitions)
                .map(|_| {
                    estimate_allocated(
                        &prepared.spec,
                        &prepared.samplers(),
                        config.shots,
                        Allocator::Proportional,
                        rng,
                    )
                })
                .collect();
            let measured = variance(&estimates);
            // Baseline variance for the same state at k = 1.
            let base = PreparedCut::new(&baseline, &w, Pauli::Z);
            let base_terms: Vec<f64> = base
                .terms
                .iter()
                .map(qpd::TermSampler::exact_expectation)
                .collect();
            let base_pred = predicted_variance(&base.spec, &base_terms, config.shots);
            (measured, pred, base_pred)
        });
    config
        .k_values
        .iter()
        .enumerate()
        .map(|(ki, &k)| {
            let cut = NmeCut::new(k);
            let block = &per_cell[ki * config.num_states..(ki + 1) * config.num_states];
            let measured = mean(&block.iter().map(|x| x.0).collect::<Vec<_>>());
            let predicted = mean(&block.iter().map(|x| x.1).collect::<Vec<_>>());
            let base = mean(&block.iter().map(|x| x.2).collect::<Vec<_>>());
            let kappa_emp = if base > 0.0 {
                (measured / base).sqrt()
            } else {
                f64::NAN
            };
            OverheadRow {
                k,
                overlap: entangle::PhiK::new(k).overlap(),
                gamma_theory: theory::gamma_phi_k(k),
                kappa_construction: cut.kappa(),
                kappa_empirical: kappa_emp,
                predicted_variance: predicted,
                measured_variance: measured,
            }
        })
        .collect()
}

/// Formats rows as a table.
pub fn to_table(rows: &[OverheadRow]) -> crate::csvout::Table {
    let mut t = crate::csvout::Table::new(&[
        "k",
        "overlap_f",
        "gamma_theory",
        "kappa_construction",
        "kappa_empirical",
        "predicted_variance",
        "measured_variance",
    ]);
    for r in rows {
        t.push_row(vec![
            r.k,
            r.overlap,
            r.gamma_theory,
            r.kappa_construction,
            r.kappa_empirical,
            r.predicted_variance,
            r.measured_variance,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OverheadConfig {
        OverheadConfig {
            k_values: vec![0.0, 0.5, 1.0],
            shots: 800,
            repetitions: 60,
            num_states: 6,
            seed: 5,
            threads: 2,
        }
    }

    #[test]
    fn construction_matches_theory_exactly() {
        for row in run(&small()) {
            assert!(
                (row.kappa_construction - row.gamma_theory).abs() < 1e-12,
                "construction suboptimal at k={}",
                row.k
            );
        }
    }

    #[test]
    fn measured_variance_tracks_prediction() {
        for row in run(&small()) {
            let ratio = row.measured_variance / row.predicted_variance.max(1e-12);
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "variance prediction off at k={}: measured {} predicted {}",
                row.k,
                row.measured_variance,
                row.predicted_variance
            );
        }
    }

    #[test]
    fn empirical_overhead_decreases_with_k() {
        let rows = run(&small());
        assert!(
            rows[0].kappa_empirical > rows[2].kappa_empirical,
            "empirical overhead not decreasing: {} vs {}",
            rows[0].kappa_empirical,
            rows[2].kappa_empirical
        );
        // k = 1 baseline has effective overhead ≈ 1.
        assert!(
            (rows[2].kappa_empirical - 1.0).abs() < 0.35,
            "baseline effective overhead {}",
            rows[2].kappa_empirical
        );
    }

    #[test]
    fn predicted_variance_formula() {
        // Two-term spec with coefficients (1, −1), exact values (0, 0):
        // Var = 1/n₁ + 1/n₂ with n = 50/50 split of 100.
        let spec = qpd::QpdSpec::from_parts(&[(1.0, "a", 0.0), (-1.0, "b", 0.0)]);
        let v = predicted_variance(&spec, &[0.0, 0.0], 100);
        assert!((v - (1.0 / 50.0 + 1.0 / 50.0)).abs() < 1e-12);
    }
}

//! Parallel map over a work list using crossbeam scoped threads.
//!
//! The experiments are embarrassingly parallel across input states, so we
//! follow the workspace concurrency guide: a shared atomic work index
//! (work stealing at item granularity — no static partitioning, so uneven
//! item costs balance automatically), scoped threads (no `'static`
//! bounds), and a pre-sized slot vector as the result sink. Each worker
//! owns its RNG; determinism comes from seeding per *item*, not per
//! thread, so results are identical regardless of thread count.
//!
//! This is the item-level primitive; configuration-level sweeps (the
//! Cartesian (state, overlap, shots) grids of the experiments) go
//! through the richer [`crate::grid::ShardedGrid`] engine, which layers
//! per-shard counter-based RNG streams and a mergeable accumulator on
//! top of the same work-stealing loop.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `0..n` items in parallel, preserving item order in the
/// output. `f` receives the item index and must be deterministic given it
/// (seed RNGs from the index) for reproducible results.
///
/// Each result is written into its index's pre-sized slot the moment it
/// is computed, so output order is fixed by construction — *not* by the
/// order in which workers complete items. (An earlier version pushed
/// `(index, result)` pairs into a shared vector in completion order and
/// re-sorted at the end; `tests/sharding_determinism.rs` keeps a jitter
/// regression against that hazard.)
pub fn parallel_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads >= 1);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // Compute outside the lock; each slot is touched by
                // exactly one worker, so the lock is never contended.
                let value = f(i);
                *slots[i].lock() = Some(value);
            });
        }
    })
    // Re-raise a worker panic with its original payload so assertion
    // messages from parallel experiment code reach the test harness.
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .unwrap_or_else(|| panic!("slot {i} never filled"))
        })
        .collect()
}

/// Default worker count: available parallelism, capped at 16
/// (re-exported from [`qsample::grid`], where the sharding engine now
/// lives so the service layer below this crate can use it too).
pub use qsample::grid::default_threads;

/// Derives a decorrelated 64-bit seed for item `i` from a base seed
/// (splitmix64 step — avoids adjacent-seed correlations in the
/// experiment RNGs).
pub fn item_seed(base: u64, i: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(i.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_completeness() {
        let out = parallel_map_indexed(1000, 8, |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let f = |i: usize| (i as f64).sin() * item_seed(42, i as u64) as f64;
        let a = parallel_map_indexed(257, 1, f);
        let b = parallel_map_indexed(257, 7, f);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = parallel_map_indexed(0, 4, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let out = parallel_map_indexed(64, 8, |i| {
            let mut acc = 0u64;
            for k in 0..(i * 1000) {
                acc = acc.wrapping_add(k as u64);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn item_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(item_seed(7, i)), "seed collision at {i}");
        }
    }

    #[test]
    fn threads_default_positive() {
        assert!(default_threads() >= 1);
    }
}

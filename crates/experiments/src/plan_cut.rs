//! **E17 — the arbitrary-circuit cut planner, end to end** (ROADMAP
//! "Cut-planner for arbitrary circuits"): random unitary circuits are
//! fragmented under a width budget by [`wirecut::planner::CutPlanner`],
//! the derived multi-cut set (subsequent wires, repeated cuts per wire)
//! is compiled into one product-QPD execution plan, and the sampled
//! estimates are verified against the **uncut statevector expectation**
//! with the suite's 5σ Wilson-band statistics.
//!
//! The sweep axis is the resource overlap `f`: each grid row shows how
//! the planner's protocol mix (NME teleportation vs joint MUB
//! measure-and-prepare, chosen per group from the κ crossover
//! `f*(n)` — [`crate::joint_scaling::crossover_overlap`]) and the plan
//! overhead `κ = Π κ(group)` respond to the available entanglement,
//! while `plan_exact_dev` pins the compiled decomposition to the uncut
//! value exactly (≈ 1e−15, the planner's defining identity).
//!
//! Circuits ride a circuit-index-keyed shared stream so every overlap
//! plans the **same** circuit family (paired design), and the whole
//! `(f, circuit)` grid is sharded by [`crate::grid::ShardedGrid`] — the
//! CSV is byte-identical for any thread count. Unitary plans compile
//! through the **contracted fragment-block backend**
//! (`wirecut::contract`, cost `Σ variants(fragment)`), so the cut count
//! no longer drives an exponential stitching bill; circuits are still
//! deterministically resampled into a bounded cut band so the sweep's κ
//! (and hence its shot noise) stays comparable across rows (the
//! resampling happens inside the shared stream, so it is itself
//! thread-invariant). The trailing `clifford_fraction` /
//! `contracted_share` / `prefix_hit_rate` / `frontier_savings` columns
//! surface [`CompiledPlan::backend_report`]: how much of the compiled
//! work rode the stabilizer fast path, which backend compiled each
//! cell, and how much frontier work the contracted backend's
//! prefix-cached odometer sweep saved over a cache-disabled evaluation.
//!
//! Run via `cargo run --release -p experiments --bin plan_cut`
//! (writes `results/plan_cut.csv`).

use crate::csvout::Table;
use crate::grid::ShardedGrid;
use crate::stats::{qpd_wilson_band, RunningStats};
use qpd::Allocator;
use qsim::{random_unitary_circuit, Circuit, PauliString};
use wirecut::planner::{uncut_plan_expectation, CompiledPlan, CutPlan, CutPlanner, Protocol};

/// Stream tag for the circuit lane, shared across overlaps so every `f`
/// plans the same circuits.
const CIRCUIT_STREAM: u64 = 0xE17;

/// Configuration of the planner sweep.
#[derive(Clone, Debug)]
pub struct PlanCutConfig {
    /// Qubits per random circuit.
    pub num_qubits: usize,
    /// Gates per random circuit.
    pub gates: usize,
    /// Fragment-width budget handed to the planner (< `num_qubits`).
    pub width_budget: usize,
    /// Resource overlaps swept (each `∈ [1/2, 1]`).
    pub overlaps: Vec<f64>,
    /// Largest plan cut count accepted by the tractability resampler.
    pub max_cuts: usize,
    /// Shot budget per estimate.
    pub shots: u64,
    /// Random circuits per overlap.
    pub num_circuits: usize,
    /// Estimates per circuit.
    pub repetitions: usize,
    /// Wilson-band z-score (5.0 = the suite's 5σ convention).
    pub band_z: f64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for PlanCutConfig {
    fn default() -> Self {
        Self {
            num_qubits: 4,
            gates: 6,
            width_budget: 3,
            overlaps: vec![0.52, 0.62, 0.75, 0.9, 1.0],
            max_cuts: 4,
            shots: 2048,
            num_circuits: 6,
            repetitions: 16,
            band_z: 5.0,
            seed: 1701,
            threads: 0,
        }
    }
}

/// Draws random unitary circuits from `rng` until the planner produces a
/// plan with `1..=max_cuts` cuts (keeping κ — and with it the sweep's
/// shot noise — in a comparable band across cells; compilation itself is
/// no longer the binding constraint since the contracted backend).
/// Deterministic given the stream: the accepted circuit is a pure
/// function of the draws.
pub fn tractable_random_circuit<R: rand::Rng>(
    num_qubits: usize,
    gates: usize,
    planner: &CutPlanner,
    max_cuts: usize,
    rng: &mut R,
) -> (Circuit, CutPlan) {
    for _ in 0..200 {
        let circuit = random_unitary_circuit(num_qubits, gates, rng);
        let plan = planner.plan(&circuit);
        if (1..=max_cuts).contains(&plan.num_cuts()) {
            return (circuit, plan);
        }
    }
    panic!("no tractable circuit after 200 draws (qubits {num_qubits}, gates {gates})");
}

struct PlanCutCell {
    fragments: f64,
    cuts: f64,
    joint_groups: f64,
    total_groups: f64,
    kappa: f64,
    exact_dev: f64,
    mean_abs_error: f64,
    band_halfwidth: f64,
    covered_fraction: f64,
    clifford_fraction: f64,
    contracted: f64,
    prefix_hit_rate: f64,
    frontier_savings: f64,
}

/// Runs the sweep. Columns: `(f, fragments, cuts, joint_share, kappa,
/// plan_exact_dev, mean_abs_error, wilson_halfwidth, band_coverage,
/// clifford_fraction, contracted_share, prefix_hit_rate,
/// frontier_savings)`, one row per overlap, averaged over the shared
/// circuit family. `prefix_hit_rate` is the fraction of odometer digits
/// whose partial frontier the contracted sweep served from the prefix
/// cache, and `frontier_savings` the resulting
/// `frontier_ops_uncached / frontier_ops` payoff factor.
pub fn run(config: &PlanCutConfig) -> Table {
    let mut t = Table::new(&[
        "f",
        "fragments",
        "cuts",
        "joint_share",
        "kappa",
        "plan_exact_dev",
        "mean_abs_error",
        "wilson_halfwidth",
        "band_coverage",
        "clifford_fraction",
        "contracted_share",
        "prefix_hit_rate",
        "frontier_savings",
    ]);
    assert!(config.width_budget < config.num_qubits);
    let label: String = "Z".repeat(config.num_qubits);
    let cells: Vec<(f64, u64)> = config
        .overlaps
        .iter()
        .flat_map(|&f| (0..config.num_circuits as u64).map(move |s| (f, s)))
        .collect();
    let per_cell: Vec<PlanCutCell> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(f, s), ctx| {
            let planner = CutPlanner::new(config.width_budget).with_overlap(f);
            let (circuit, plan) = tractable_random_circuit(
                config.num_qubits,
                config.gates,
                &planner,
                config.max_cuts,
                &mut ctx.shared(&(CIRCUIT_STREAM, s)),
            );
            let observable = PauliString::from_label(&label);
            let uncut = uncut_plan_expectation(&circuit, &observable);
            let compiled = CompiledPlan::compile(&plan, &observable);
            let report = compiled.report().clone();
            let exact_terms = compiled.exact_terms();
            let band = qpd_wilson_band(&compiled.spec, &exact_terms, config.shots, config.band_z);
            let mut err = RunningStats::new();
            let mut covered = 0usize;
            let rng = ctx.rng();
            for _ in 0..config.repetitions {
                let est = qpd::estimate_allocated(
                    &compiled.spec,
                    &compiled.samplers(),
                    config.shots,
                    Allocator::Proportional,
                    rng,
                );
                let e = (est - uncut).abs();
                err.push(e);
                if e <= band {
                    covered += 1;
                }
            }
            let backend = compiled.backend_report();
            PlanCutCell {
                fragments: report.num_fragments as f64,
                cuts: report.num_cuts as f64,
                joint_groups: report
                    .groups
                    .iter()
                    .filter(|g| g.protocol == Protocol::JointMub)
                    .count() as f64,
                total_groups: report.groups.len() as f64,
                kappa: report.kappa,
                exact_dev: (compiled.exact_value() - uncut).abs(),
                mean_abs_error: err.mean(),
                band_halfwidth: band,
                covered_fraction: covered as f64 / config.repetitions as f64,
                clifford_fraction: backend.clifford_fraction(),
                contracted: match compiled.backend() {
                    wirecut::planner::PlanBackend::Contracted => 1.0,
                    wirecut::planner::PlanBackend::Monolithic => 0.0,
                },
                prefix_hit_rate: {
                    let touched = backend.prefix_hits + backend.prefix_rebuilds;
                    if touched == 0 {
                        0.0
                    } else {
                        backend.prefix_hits as f64 / touched as f64
                    }
                },
                frontier_savings: if backend.frontier_ops == 0 {
                    1.0
                } else {
                    backend.frontier_ops_uncached as f64 / backend.frontier_ops as f64
                },
            }
        });
    for (fi, &f) in config.overlaps.iter().enumerate() {
        let block = &per_cell[fi * config.num_circuits..(fi + 1) * config.num_circuits];
        let mut frag = RunningStats::new();
        let mut cuts = RunningStats::new();
        let mut kappa = RunningStats::new();
        let mut err = RunningStats::new();
        let mut band = RunningStats::new();
        let mut cov = RunningStats::new();
        let mut cliff = RunningStats::new();
        let mut contracted = RunningStats::new();
        let mut hit_rate = RunningStats::new();
        let mut savings = RunningStats::new();
        let mut dev = 0.0f64;
        let (mut joint, mut total) = (0.0, 0.0);
        for cell in block {
            frag.push(cell.fragments);
            cuts.push(cell.cuts);
            kappa.push(cell.kappa);
            err.push(cell.mean_abs_error);
            band.push(cell.band_halfwidth);
            cov.push(cell.covered_fraction);
            cliff.push(cell.clifford_fraction);
            contracted.push(cell.contracted);
            hit_rate.push(cell.prefix_hit_rate);
            savings.push(cell.frontier_savings);
            dev = dev.max(cell.exact_dev);
            joint += cell.joint_groups;
            total += cell.total_groups;
        }
        t.push_row(vec![
            f,
            frag.mean(),
            cuts.mean(),
            if total > 0.0 { joint / total } else { 0.0 },
            kappa.mean(),
            dev,
            err.mean(),
            band.mean(),
            cov.mean(),
            cliff.mean(),
            contracted.mean(),
            hit_rate.mean(),
            savings.mean(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PlanCutConfig {
        PlanCutConfig {
            num_qubits: 3,
            gates: 5,
            width_budget: 2,
            overlaps: vec![0.52, 0.9],
            max_cuts: 2,
            shots: 1024,
            num_circuits: 3,
            repetitions: 8,
            seed: 23,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_populates_one_row_per_overlap() {
        let t = run(&small());
        assert_eq!(t.rows().len(), 2);
        for row in t.rows() {
            assert!(row[1] >= 2.0, "fragments {row:?}");
            assert!((1.0..=2.0).contains(&row[2]), "cuts {row:?}");
            assert!(row[4] >= 1.0, "kappa {row:?}");
        }
    }

    #[test]
    fn plan_decomposition_is_exact() {
        let t = run(&small());
        for row in t.rows() {
            assert!(row[5] < 1e-8, "plan_exact_dev {} at f={}", row[5], row[0]);
        }
    }

    #[test]
    fn bands_cover_the_estimates() {
        let t = run(&small());
        for row in t.rows() {
            assert!(row[8] > 0.95, "coverage {} at f={}", row[8], row[0]);
            assert!(row[7] > 0.0, "degenerate band at f={}", row[0]);
        }
    }

    #[test]
    fn backend_columns_report_the_contracted_lift() {
        // Every sweep cell plans a unitary circuit, so every plan must
        // ride the contracted fragment-block backend, and the
        // clifford_fraction column (from `backend_report()`) must be a
        // valid fraction.
        let t = run(&small());
        for row in t.rows() {
            assert!(
                (row[10] - 1.0).abs() < 1e-12,
                "contracted_share {} at f={}",
                row[10],
                row[0]
            );
            assert!(
                (0.0..=1.0).contains(&row[9]),
                "clifford_fraction {} at f={}",
                row[9],
                row[0]
            );
            assert!(
                (0.0..=1.0).contains(&row[11]),
                "prefix_hit_rate {} at f={}",
                row[11],
                row[0]
            );
            assert!(
                row[12] >= 1.0,
                "frontier_savings {} at f={}",
                row[12],
                row[0]
            );
        }
    }

    #[test]
    fn lower_overlap_never_cheapens_the_plan() {
        // κ is non-increasing in f for the same circuit family.
        let t = run(&small());
        let rows = t.rows();
        assert!(
            rows[0][4] >= rows[1][4] - 1e-9,
            "κ at f=0.52 ({}) below κ at f=0.9 ({})",
            rows[0][4],
            rows[1][4]
        );
    }
}

//! **E18 — cutting-as-a-service under load** (ROADMAP
//! "Cutting-as-a-service: async job engine + compiled-plan cache"): a
//! fleet of estimation jobs — many seeds × two allocation modes over a
//! family of planner-cut random circuits — is pushed through one shared
//! [`wirecut::service::CutService`], exercising the compiled-plan cache
//! (each circuit compiles once, every other job is a cache hit) and the
//! work-stealing fleet scheduler end to end.
//!
//! The scientific axis is the **sequential-allocation payoff**: for each
//! circuit the realised estimator variance of
//! [`wirecut::service::AllocationMode::Sequential`] (per-batch Neyman
//! re-allocation from observed σ̂) is compared against the paper's
//! static proportional split at equal total shots. Terms of a cut plan
//! whose expectations sit near ±1 have small σ, so the sequential
//! allocator reroutes their shots to noisier terms; `var_ratio ≤ ~1`
//! quantifies the payoff per circuit.
//!
//! The CSV is deterministic — every job's result is a pure function of
//! `(seed, plan)` by the service contract, circuits ride
//! content-keyed streams, and rows aggregate in submission order — so
//! `tests/sharding_determinism.rs` pins it byte-identical across thread
//! counts. Timing/throughput figures are deliberately **not** columns
//! (they vary run to run); the binary prints them to stdout instead.
//!
//! Run via `cargo run --release -p experiments --bin service_load`
//! (writes `results/service_load.csv`).

use crate::csvout::Table;
use crate::grid::keyed_stream;
use crate::plan_cut::tractable_random_circuit;
use crate::stats::RunningStats;
use qsample::KeyHasher;
use qsim::PauliString;
use wirecut::planner::CutPlanner;
use wirecut::service::{AllocationMode, CutService, EstimationJob};

/// Stream tag for the circuit lane (disjoint from every other
/// experiment's tags).
const CIRCUIT_STREAM: u64 = 0xE18;

/// Configuration of the service-load experiment.
#[derive(Clone, Debug)]
pub struct ServiceLoadConfig {
    /// Qubits per random circuit.
    pub num_qubits: usize,
    /// Gates per random circuit.
    pub gates: usize,
    /// Fragment-width budget handed to the planner.
    pub width_budget: usize,
    /// Resource overlap assumed by the planner.
    pub overlap: f64,
    /// Largest plan cut count accepted by the tractability resampler.
    pub max_cuts: usize,
    /// Number of distinct circuits (= distinct cached plans).
    pub num_circuits: usize,
    /// Shot budget per job.
    pub shots: u64,
    /// Batches per job (sequential allocation re-plans after each).
    pub batches: u64,
    /// Jobs per (circuit, allocation mode) — the variance sample size.
    pub repetitions: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for ServiceLoadConfig {
    fn default() -> Self {
        Self {
            num_qubits: 4,
            gates: 6,
            width_budget: 3,
            overlap: 0.9,
            max_cuts: 2,
            num_circuits: 4,
            shots: 2048,
            batches: 4,
            repetitions: 24,
            seed: 0xE18,
            threads: 0,
        }
    }
}

/// Deterministic per-job seed: content hash of (base, circuit, rep).
/// The two modes of one `(circuit, rep)` cell share a seed on purpose —
/// their first batches are then identical draws (sequential allocation
/// starts proportional), so the variance comparison is a paired design.
fn job_seed(base: u64, circuit: u64, rep: u64) -> u64 {
    let mut h = KeyHasher::new();
    h.absorb(base);
    h.absorb(circuit);
    h.absorb(rep);
    h.finish()
}

/// Builds the deterministic job fleet for `config`: per circuit,
/// `repetitions` seeds × {static proportional, sequential}. Exposed so
/// the throughput benches drive the exact experiment workload.
pub fn build_jobs(config: &ServiceLoadConfig) -> Vec<EstimationJob> {
    let planner = CutPlanner::new(config.width_budget).with_overlap(config.overlap);
    let label: String = "Z".repeat(config.num_qubits);
    let observable = PauliString::from_label(&label);
    let mut jobs = Vec::new();
    for c in 0..config.num_circuits as u64 {
        let mut rng = keyed_stream(config.seed, &(CIRCUIT_STREAM, c));
        let (circuit, _plan) = tractable_random_circuit(
            config.num_qubits,
            config.gates,
            &planner,
            config.max_cuts,
            &mut rng,
        );
        for rep in 0..config.repetitions {
            for mode in [
                AllocationMode::StaticProportional,
                AllocationMode::Sequential,
            ] {
                jobs.push(
                    EstimationJob::new(
                        circuit.clone(),
                        observable.clone(),
                        config.shots,
                        job_seed(config.seed, c, rep),
                    )
                    .with_batches(config.batches)
                    .with_mode(mode),
                );
            }
        }
    }
    jobs
}

/// Runs the experiment. Columns: `(circuit, cuts, kappa, exact,
/// static_mean_err, static_var, seq_mean_err, seq_var, var_ratio,
/// contracted, compiled_units, prefix_hit_rate, frontier_savings)` —
/// one row per circuit, statistics over the job repetitions. The
/// trailing columns surface the plan's compilation backend per
/// [`wirecut::service::JobOutcome`]: whether the cached plan rode the
/// contracted fragment-block path, how many circuit units it compiled
/// (`Σ variants(fragment)` when contracted — the quantity the
/// compiled-plan cache amortises across the fleet), what fraction of
/// odometer digits its prefix-cached sweep served from the partial
/// frontier stack, and the resulting frontier-multiplication payoff
/// over a cache-disabled evaluation.
pub fn run(config: &ServiceLoadConfig) -> Table {
    let mut t = Table::new(&[
        "circuit",
        "cuts",
        "kappa",
        "exact",
        "static_mean_err",
        "static_var",
        "seq_mean_err",
        "seq_var",
        "var_ratio",
        "contracted",
        "compiled_units",
        "prefix_hit_rate",
        "frontier_savings",
    ]);
    let service =
        CutService::new(CutPlanner::new(config.width_budget).with_overlap(config.overlap));
    let jobs = build_jobs(config);
    let outcomes = service.run_jobs(&jobs, config.threads);
    let per_circuit = 2 * config.repetitions as usize;
    for c in 0..config.num_circuits {
        let block = &outcomes[c * per_circuit..(c + 1) * per_circuit];
        let exact = block[0].exact;
        let kappa = block[0].kappa;
        // Cut count from κ is ambiguous; recover it from the plan report
        // the service cached — cheapest via a fresh key lookup.
        let (plan, _, _) = service.compiled(
            &jobs[c * per_circuit].circuit,
            &jobs[c * per_circuit].observable,
        );
        let cuts = plan.report().num_cuts as f64;
        let mut stat_est = RunningStats::new();
        let mut seq_est = RunningStats::new();
        let mut stat_err = RunningStats::new();
        let mut seq_err = RunningStats::new();
        for pair in block.chunks(2) {
            // Submission order within a cell: static first, then
            // sequential (see build_jobs).
            stat_est.push(pair[0].estimate);
            stat_err.push((pair[0].estimate - exact).abs());
            seq_est.push(pair[1].estimate);
            seq_err.push((pair[1].estimate - exact).abs());
        }
        let sv = stat_est.variance();
        let qv = seq_est.variance();
        t.push_row(vec![
            c as f64,
            cuts,
            kappa,
            exact,
            stat_err.mean(),
            sv,
            seq_err.mean(),
            qv,
            if sv > 0.0 { qv / sv } else { 1.0 },
            match block[0].backend {
                wirecut::planner::PlanBackend::Contracted => 1.0,
                wirecut::planner::PlanBackend::Monolithic => 0.0,
            },
            block[0].compiled_units as f64,
            {
                let rebuilds = plan.backend_report().prefix_rebuilds;
                let touched = block[0].prefix_hits + rebuilds;
                if touched == 0 {
                    0.0
                } else {
                    block[0].prefix_hits as f64 / touched as f64
                }
            },
            if block[0].frontier_ops == 0 {
                1.0
            } else {
                block[0].frontier_ops_uncached as f64 / block[0].frontier_ops as f64
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ServiceLoadConfig {
        ServiceLoadConfig {
            num_qubits: 3,
            gates: 5,
            width_budget: 2,
            max_cuts: 2,
            num_circuits: 2,
            shots: 1024,
            repetitions: 8,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn one_row_per_circuit_with_sane_stats() {
        let t = run(&small());
        assert_eq!(t.rows().len(), 2);
        for row in t.rows() {
            assert!((1.0..=2.0).contains(&row[1]), "cuts {row:?}");
            assert!(row[2] >= 1.0, "kappa {row:?}");
            // Unitary random circuits ⇒ contracted backend everywhere.
            assert!((row[9] - 1.0).abs() < 1e-12, "backend {row:?}");
            assert!(row[10] >= 1.0, "compiled units {row:?}");
            assert!((0.0..=1.0).contains(&row[11]), "prefix_hit_rate {row:?}");
            assert!(row[12] >= 1.0, "frontier_savings {row:?}");
            assert!(row[4] >= 0.0 && row[6] >= 0.0, "errors {row:?}");
            assert!(row[5] > 0.0 && row[7] > 0.0, "variances {row:?}");
            // Realised errors stay within a few κ/√shots of exact.
            let se = row[2] / (1024f64).sqrt();
            assert!(row[4] < 6.0 * se, "static err {} vs SE {se}", row[4]);
            assert!(row[6] < 6.0 * se, "seq err {} vs SE {se}", row[6]);
        }
    }

    #[test]
    fn csv_is_thread_count_invariant() {
        let a = run(&ServiceLoadConfig {
            threads: 1,
            ..small()
        });
        let b = run(&ServiceLoadConfig {
            threads: 7,
            ..small()
        });
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn sequential_never_blows_up_the_variance() {
        // The sharp ≤-comparison lives in tests/service_determinism.rs
        // on a purpose-built asymmetric workload; random circuits have
        // near-symmetric per-term σ, so here just pin that adaptivity is
        // not pathological. 24 repetitions keep the (deterministic)
        // variance-ratio estimates out of the small-sample noise floor.
        let t = run(&ServiceLoadConfig {
            repetitions: 24,
            ..small()
        });
        for row in t.rows() {
            assert!(row[8] < 2.0, "var_ratio {} at circuit {}", row[8], row[0]);
        }
    }
}

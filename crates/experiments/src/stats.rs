//! Streaming statistics for experiment aggregation, plus the shared
//! per-cell overhead measurement (variance-ratio `κ̂` with propagated
//! Wilson bands) that E15 and E16 both ride.

use qpd::{estimate_allocated, Allocator, QpdSpec, TermSampler};
use rand::Rng;

/// Welford running mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance of a slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Wilson score confidence interval for a binomial proportion: given
/// `successes` out of `trials` and a z-score (e.g. 5.0 for a 5σ band),
/// returns `(low, high)` bounds on the true success probability.
///
/// Unlike the Wald interval, Wilson stays inside `[0, 1]` and behaves
/// sensibly at p ≈ 0 or 1 — exactly the regimes the degenerate-circuit
/// tests of the batched sampler probe.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Wilson interval on ⟨Z⟩ from a **sum** of `trials` ±1 samples (the
/// output convention of the batched `sample_z` paths): maps the sum to a
/// success count, bounds the proportion, and maps back to `[-1, 1]`.
pub fn z_expectation_interval(sum: f64, trials: u64, z: f64) -> (f64, f64) {
    let plus = ((sum + trials as f64) / 2.0)
        .round()
        .clamp(0.0, trials as f64) as u64;
    let (lo, hi) = wilson_interval(plus, trials, z);
    (2.0 * lo - 1.0, 2.0 * hi - 1.0)
}

/// Root-mean-square error against a reference value.
pub fn rmse(xs: &[f64], reference: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter()
        .map(|x| (x - reference) * (x - reference))
        .sum::<f64>()
        / xs.len() as f64)
        .sqrt()
}

// ---------------------------------------------------------------------
// The shared per-cell overhead measurement (E15/E16).
// ---------------------------------------------------------------------

/// The variance-ratio overhead estimator: `κ̂ = κ·√(Var_meas /
/// Var_pred)`. Unbiased around `κ` when the sampler family is correctly
/// calibrated, so sweeps pin `κ̂` to the closed form within standard
/// errors. Falls back to `κ` when the predicted variance vanishes (a
/// deterministic cell).
pub fn variance_ratio_kappa_hat(
    kappa: f64,
    measured_variance: f64,
    predicted_variance: f64,
) -> f64 {
    if predicted_variance > 0.0 {
        kappa * (measured_variance / predicted_variance).sqrt()
    } else {
        kappa
    }
}

/// Predicted Wilson band of one proportional-allocation estimate: each
/// term's expected ±1 counts get a Wilson interval at `z`, propagated
/// through the QPD as `Σᵢ |cᵢ|·(hiᵢ − loᵢ)`.
pub fn qpd_wilson_band(spec: &QpdSpec, exact_terms: &[f64], shots: u64, z: f64) -> f64 {
    let alloc = Allocator::Proportional.allocate(spec, shots);
    spec.coefficients()
        .iter()
        .zip(exact_terms.iter())
        .zip(alloc.iter())
        .map(|((c, &e), &n)| {
            if n == 0 {
                return 0.0;
            }
            let successes = ((n as f64) * (1.0 + e) / 2.0).round() as u64;
            let (lo, hi) = wilson_interval(successes.min(n), n, z);
            c.abs() * (hi - lo)
        })
        .sum()
}

/// One grid cell's overhead measurement — everything E15/E16 report per
/// `(parameter, state)` point.
#[derive(Clone, Copy, Debug)]
pub struct OverheadMeasurement {
    /// The variance-ratio estimate `κ̂`.
    pub kappa_hat: f64,
    /// Mean `|estimate − exact|` across repetitions.
    pub mean_abs_error: f64,
    /// The propagated Wilson band ([`qpd_wilson_band`]).
    pub band_halfwidth: f64,
    /// Fraction of estimates inside the band (≈ 1 at 5σ).
    pub covered_fraction: f64,
    /// Measured estimator variance across repetitions.
    pub measured_variance: f64,
    /// Exact proportional-allocation variance at this budget.
    pub predicted_variance: f64,
}

/// Measures one cell: `repetitions` proportional-allocation estimates of
/// `exact_value` at `shots` each, reduced to the variance-ratio `κ̂`,
/// the mean absolute error, and Wilson-band coverage at `band_z`.
///
/// `exact_terms` are the exact per-term expectations aligned with
/// `spec`; `kappa` is the closed-form overhead the ratio is anchored to.
/// Used by `werner_sweep` (E15) and `distill_cut` (E16) so both sweeps
/// share one tested implementation.
#[allow(clippy::too_many_arguments)] // one flat cell descriptor, two call sites
pub fn measure_overhead_cell<R: Rng>(
    spec: &QpdSpec,
    terms: &[&dyn TermSampler],
    exact_value: f64,
    exact_terms: &[f64],
    kappa: f64,
    shots: u64,
    repetitions: usize,
    band_z: f64,
    rng: &mut R,
) -> OverheadMeasurement {
    let predicted = crate::overhead::predicted_variance(spec, exact_terms, shots);
    let band = qpd_wilson_band(spec, exact_terms, shots, band_z);
    let mut errs = RunningStats::new();
    let mut covered = 0u64;
    let estimates: Vec<f64> = (0..repetitions)
        .map(|_| {
            let est = estimate_allocated(spec, terms, shots, Allocator::Proportional, rng);
            errs.push((est - exact_value).abs());
            if (est - exact_value).abs() <= band {
                covered += 1;
            }
            est
        })
        .collect();
    let measured = variance(&estimates);
    OverheadMeasurement {
        kappa_hat: variance_ratio_kappa_hat(kappa, measured, predicted),
        mean_abs_error: errs.mean(),
        band_halfwidth: band,
        covered_fraction: covered as f64 / repetitions.max(1) as f64,
        measured_variance: measured,
        predicted_variance: predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_match_batch_formulas() {
        let xs = [1.0, 2.5, -0.5, 4.0, 3.25, 0.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.count(), 6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn empty_and_single_are_safe() {
        let rs = RunningStats::new();
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.std_err(), 0.0);
        let mut one = RunningStats::new();
        one.push(5.0);
        assert_eq!(one.variance(), 0.0);
        assert!((one.mean() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn wilson_interval_covers_the_proportion() {
        let (lo, hi) = wilson_interval(50, 100, 2.0);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        // Degenerate endpoints stay in [0, 1].
        let (lo, hi) = wilson_interval(0, 100, 5.0);
        assert!(lo == 0.0 && hi > 0.0 && hi < 0.3);
        let (lo, hi) = wilson_interval(100, 100, 5.0);
        assert!(hi == 1.0 && lo < 1.0 && lo > 0.7);
        assert_eq!(wilson_interval(0, 0, 3.0), (0.0, 1.0));
    }

    #[test]
    fn z_expectation_interval_maps_sums() {
        // All +1: interval hugs the top of [-1, 1].
        let (lo, hi) = z_expectation_interval(1000.0, 1000, 5.0);
        assert!((hi - 1.0).abs() < 1e-12 && lo > 0.9);
        // Balanced sum: interval straddles 0.
        let (lo, hi) = z_expectation_interval(0.0, 1000, 5.0);
        assert!(lo < 0.0 && hi > 0.0 && hi < 0.2);
    }

    #[test]
    fn rmse_of_constant() {
        assert!((rmse(&[3.0, 3.0, 3.0], 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(rmse(&[], 1.0), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.mean(), a.variance());
        a.merge(&RunningStats::new());
        assert_eq!(before, (a.mean(), a.variance()));
    }

    #[test]
    fn variance_ratio_estimator_anchors_to_kappa() {
        // Matching variances reproduce κ; a 4× variance excess doubles it.
        assert!((variance_ratio_kappa_hat(2.5, 0.01, 0.01) - 2.5).abs() < 1e-12);
        assert!((variance_ratio_kappa_hat(2.5, 0.04, 0.01) - 5.0).abs() < 1e-12);
        // Degenerate prediction falls back to κ instead of NaN.
        assert!((variance_ratio_kappa_hat(2.5, 0.0, 0.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn overhead_cell_measures_a_calibrated_bernoulli_family() {
        use qpd::BernoulliTerm;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // A κ = 3 Harada-style fixture: +0.3 +0.5 −0.36 = 0.44.
        let spec = QpdSpec::from_parts(&[(1.0, "a", 0.0), (1.0, "b", 0.0), (-1.0, "c", 0.0)]);
        let terms = [
            BernoulliTerm { expectation: 0.3 },
            BernoulliTerm { expectation: 0.5 },
            BernoulliTerm { expectation: 0.36 },
        ];
        let refs: Vec<&dyn TermSampler> = terms.iter().map(|t| t as &dyn TermSampler).collect();
        let exact_terms = [0.3, 0.5, 0.36];
        let mut rng = StdRng::seed_from_u64(1605);
        let cell = measure_overhead_cell(
            &spec,
            &refs,
            0.44,
            &exact_terms,
            spec.kappa(),
            2048,
            64,
            5.0,
            &mut rng,
        );
        // κ̂ within ~25% of κ = 3 at 64 repetitions (SE of a variance
        // ratio at n = 64 is ≈ κ/√(2·63) ≈ 0.27).
        assert!((cell.kappa_hat - 3.0).abs() < 0.8, "κ̂ = {}", cell.kappa_hat);
        // 5σ bands cover essentially everything and stay informative.
        assert!(cell.covered_fraction > 0.95);
        assert!(cell.band_halfwidth > 0.0 && cell.band_halfwidth < 1.0);
        assert!(cell.mean_abs_error < cell.band_halfwidth);
        assert!(cell.predicted_variance > 0.0);
    }

    #[test]
    fn wilson_band_scales_inversely_with_shot_budget() {
        let spec = QpdSpec::from_parts(&[(1.0, "a", 0.0), (-0.5, "b", 0.0)]);
        let exact = [0.2, -0.4];
        let narrow = qpd_wilson_band(&spec, &exact, 40_000, 5.0);
        let wide = qpd_wilson_band(&spec, &exact, 400, 5.0);
        assert!(narrow > 0.0 && wide > narrow, "wide {wide} narrow {narrow}");
        // ~√100 ratio between the budgets.
        let ratio = wide / narrow;
        assert!(ratio > 6.0 && ratio < 14.0, "ratio {ratio}");
    }
}

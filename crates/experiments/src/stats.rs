//! Streaming statistics for experiment aggregation.

/// Welford running mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance of a slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Wilson score confidence interval for a binomial proportion: given
/// `successes` out of `trials` and a z-score (e.g. 5.0 for a 5σ band),
/// returns `(low, high)` bounds on the true success probability.
///
/// Unlike the Wald interval, Wilson stays inside `[0, 1]` and behaves
/// sensibly at p ≈ 0 or 1 — exactly the regimes the degenerate-circuit
/// tests of the batched sampler probe.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Wilson interval on ⟨Z⟩ from a **sum** of `trials` ±1 samples (the
/// output convention of the batched `sample_z` paths): maps the sum to a
/// success count, bounds the proportion, and maps back to `[-1, 1]`.
pub fn z_expectation_interval(sum: f64, trials: u64, z: f64) -> (f64, f64) {
    let plus = ((sum + trials as f64) / 2.0)
        .round()
        .clamp(0.0, trials as f64) as u64;
    let (lo, hi) = wilson_interval(plus, trials, z);
    (2.0 * lo - 1.0, 2.0 * hi - 1.0)
}

/// Root-mean-square error against a reference value.
pub fn rmse(xs: &[f64], reference: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter()
        .map(|x| (x - reference) * (x - reference))
        .sum::<f64>()
        / xs.len() as f64)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_match_batch_formulas() {
        let xs = [1.0, 2.5, -0.5, 4.0, 3.25, 0.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.count(), 6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn empty_and_single_are_safe() {
        let rs = RunningStats::new();
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.std_err(), 0.0);
        let mut one = RunningStats::new();
        one.push(5.0);
        assert_eq!(one.variance(), 0.0);
        assert!((one.mean() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn wilson_interval_covers_the_proportion() {
        let (lo, hi) = wilson_interval(50, 100, 2.0);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.25);
        // Degenerate endpoints stay in [0, 1].
        let (lo, hi) = wilson_interval(0, 100, 5.0);
        assert!(lo == 0.0 && hi > 0.0 && hi < 0.3);
        let (lo, hi) = wilson_interval(100, 100, 5.0);
        assert!(hi == 1.0 && lo < 1.0 && lo > 0.7);
        assert_eq!(wilson_interval(0, 0, 3.0), (0.0, 1.0));
    }

    #[test]
    fn z_expectation_interval_maps_sums() {
        // All +1: interval hugs the top of [-1, 1].
        let (lo, hi) = z_expectation_interval(1000.0, 1000, 5.0);
        assert!((hi - 1.0).abs() < 1e-12 && lo > 0.9);
        // Balanced sum: interval straddles 0.
        let (lo, hi) = z_expectation_interval(0.0, 1000, 5.0);
        assert!(lo < 0.0 && hi > 0.0 && hi < 0.2);
    }

    #[test]
    fn rmse_of_constant() {
        assert!((rmse(&[3.0, 3.0, 3.0], 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(rmse(&[], 1.0), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.mean(), a.variance());
        a.merge(&RunningStats::new());
        assert_eq!(before, (a.mean(), a.variance()));
    }
}

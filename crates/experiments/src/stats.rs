//! Streaming statistics for experiment aggregation.

/// Welford running mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance of a slice.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Root-mean-square error against a reference value.
pub fn rmse(xs: &[f64], reference: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter()
        .map(|x| (x - reference) * (x - reference))
        .sum::<f64>()
        / xs.len() as f64)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_match_batch_formulas() {
        let xs = [1.0, 2.5, -0.5, 4.0, 3.25, 0.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.count(), 6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn empty_and_single_are_safe() {
        let rs = RunningStats::new();
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.std_err(), 0.0);
        let mut one = RunningStats::new();
        one.push(5.0);
        assert_eq!(one.variance(), 0.0);
        assert!((one.mean() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn rmse_of_constant() {
        assert!((rmse(&[3.0, 3.0, 3.0], 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(rmse(&[], 1.0), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = (a.mean(), a.variance());
        a.merge(&RunningStats::new());
        assert_eq!(before, (a.mean(), a.variance()));
    }
}

//! Closed-form verification tables: **E3** (Eq. 10 / Appendix A),
//! **E4** (Eq. 55–58 Bell overlaps), **E6** (pair consumption) and
//! **E7** (endpoint degeneration).
//!
//! Each function returns a [`Table`] with both the paper's closed form
//! and this repo's independently computed value, so the CSV itself
//! documents the agreement.

use crate::csvout::Table;
use entangle::{bell_overlaps, max_overlap_pure, overlap_via_distillation_norm, schmidt, PhiK};
use wirecut::{theory, HaradaCut, NmeCut, PengCut, TeleportationPassthrough, WireCut};

/// Default `k` grid for the tables.
pub fn k_grid(points: usize) -> Vec<f64> {
    assert!(points >= 2);
    (0..points)
        .map(|i| i as f64 / (points - 1) as f64)
        .collect()
}

/// **E3** — `f(Φ_k)`: Eq. 10 closed form vs the direct maximal-overlap
/// computation (Schmidt route) vs the Appendix A distillation-norm route.
pub fn overlap_table(points: usize) -> Table {
    let mut t = Table::new(&["k", "f_closed_form", "f_schmidt", "f_distillation_norm"]);
    for k in k_grid(points) {
        let phi = PhiK::new(k);
        let sv = phi.statevector();
        let f_schmidt = max_overlap_pure(&sv);
        let dec = schmidt(&sv, 1);
        let f_dist = overlap_via_distillation_norm(&dec.coefficients);
        t.push_row(vec![k, phi.overlap(), f_schmidt, f_dist]);
    }
    t
}

/// **E4** — Bell overlaps `⟨Φ_σ|Φ_k|Φ_σ⟩` (Eq. 55–58): closed form vs
/// numeric density-operator overlaps.
pub fn bell_overlap_table(points: usize) -> Table {
    let mut t = Table::new(&[
        "k",
        "qI_closed",
        "qI_numeric",
        "qX_numeric",
        "qY_numeric",
        "qZ_closed",
        "qZ_numeric",
    ]);
    for k in k_grid(points) {
        let phi = PhiK::new(k);
        let closed = phi.bell_overlaps();
        let numeric = bell_overlaps(&phi.density());
        t.push_row(vec![
            k, closed[0], numeric[0], numeric[1], numeric[2], closed[3], numeric[3],
        ]);
    }
    t
}

/// **E6** — entangled-pair consumption: the closed form
/// `2(k²+1)/(k+1)²` vs the spec-level expectation scaled to effective
/// samples (`E[pairs per drawn sample]·κ`, since reaching a fixed
/// accuracy requires κ² samples but each sample weight is κ).
pub fn consumption_table(points: usize) -> Table {
    let mut t = Table::new(&[
        "k",
        "pairs_per_sample_theory",
        "pairs_per_drawn_sample",
        "kappa",
        "pairs_times_kappa",
    ]);
    for k in k_grid(points) {
        let cut = NmeCut::new(k);
        let spec = cut.spec();
        let per_drawn = spec.expected_pairs_per_sample();
        let kappa = spec.kappa();
        t.push_row(vec![
            k,
            theory::pairs_per_sample(k),
            per_drawn,
            kappa,
            per_drawn * kappa,
        ]);
    }
    t
}

/// **E7** — endpoint degeneration: overheads and channel distances of
/// every cut at its defining operating point.
pub fn endpoints_table() -> Table {
    let mut t = Table::new(&["cut_id", "kappa", "kappa_expected", "identity_distance"]);
    let cases: Vec<(f64, Box<dyn WireCut>, f64)> = vec![
        (0.0, Box::new(PengCut), theory::KAPPA_PENG),
        (1.0, Box::new(HaradaCut), theory::GAMMA_NO_ENTANGLEMENT),
        (
            2.0,
            Box::new(NmeCut::new(0.0)),
            theory::GAMMA_NO_ENTANGLEMENT,
        ),
        (3.0, Box::new(NmeCut::new(0.5)), theory::gamma_phi_k(0.5)),
        (4.0, Box::new(NmeCut::new(1.0)), 1.0),
        (5.0, Box::new(TeleportationPassthrough), 1.0),
    ];
    for (id, cut, expected) in cases {
        let dist = wirecut::identity_distance(cut.as_ref());
        t.push_row(vec![id, cut.kappa(), expected, dist]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_table_rows_agree_across_routes() {
        let t = overlap_table(11);
        for row in t.rows() {
            assert!(
                (row[1] - row[2]).abs() < 1e-9,
                "Schmidt route off at k={}",
                row[0]
            );
            assert!(
                (row[1] - row[3]).abs() < 1e-9,
                "distillation route off at k={}",
                row[0]
            );
        }
    }

    #[test]
    fn bell_table_x_y_vanish() {
        let t = bell_overlap_table(6);
        for row in t.rows() {
            assert!(row[3].abs() < 1e-10); // qX
            assert!(row[4].abs() < 1e-10); // qY
            assert!((row[1] - row[2]).abs() < 1e-10); // qI closed vs numeric
            assert!((row[5] - row[6]).abs() < 1e-10); // qZ closed vs numeric
                                                      // Overlaps sum to 1.
            assert!((row[2] + row[3] + row[4] + row[6] - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn consumption_identity() {
        // pairs_per_drawn_sample · κ = 2a·... equals the theory value times
        // 1 (per effective sample at unit weight): verify the product
        // relation pairs·κ = 2a·κ/κ·κ = 2a... concretely the closed chain:
        // per_drawn·κ = 2a and theory = 2a·(k+1)²/... check numerically
        // that per_drawn·κ equals 2·(k²+1)/(k+1)² · 1 ... = theory.
        let t = consumption_table(6);
        for row in t.rows() {
            assert!(
                (row[4] - row[1]).abs() < 1e-9,
                "pairs·κ ≠ theory at k={}: {} vs {}",
                row[0],
                row[4],
                row[1]
            );
        }
    }

    #[test]
    fn endpoints_all_exact() {
        let t = endpoints_table();
        for row in t.rows() {
            assert!(
                (row[1] - row[2]).abs() < 1e-10,
                "κ mismatch for case {}",
                row[0]
            );
            assert!(
                row[3] < 1e-9,
                "identity distance {} for case {}",
                row[3],
                row[0]
            );
        }
    }

    #[test]
    fn k_grid_spans_unit_interval() {
        let g = k_grid(5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.0).abs() < 1e-15);
        assert!((g[4] - 1.0).abs() < 1e-15);
    }
}

//! **E5 — teleportation channel tomography** (Eq. 22 / Eq. 59): the
//! simulated circuit-level teleportation channel versus the closed-form
//! Pauli channel, plus the resulting teleportation fidelities (related
//! work, reference \[27\]).

use crate::csvout::Table;
use entangle::{werner, PhiK};
use wirecut::teleport::{
    average_fidelity, entanglement_fidelity, phi_k_resource_prep,
    teleportation_channel_closed_form, teleportation_channel_simulated,
};

/// One row of the tomography comparison.
#[derive(Clone, Debug)]
pub struct ChannelRow {
    /// Resource parameter `k`.
    pub k: f64,
    /// Max-entry distance between simulated and closed-form channel.
    pub channel_distance: f64,
    /// PTM eigenvalue λ (X/Y sector) of the simulated channel.
    pub lambda_simulated: f64,
    /// Closed form `2k/(k²+1)`.
    pub lambda_theory: f64,
    /// Entanglement fidelity `⟨Φ_I|ρ|Φ_I⟩`.
    pub entanglement_fidelity: f64,
    /// Average output fidelity `(2F_ent + 1)/3`.
    pub average_fidelity: f64,
}

/// Runs the tomography comparison over a `k` grid.
pub fn run(points: usize) -> Vec<ChannelRow> {
    crate::tables::k_grid(points)
        .into_iter()
        .map(|k| {
            let sim = teleportation_channel_simulated(&phi_k_resource_prep(k));
            let closed = teleportation_channel_closed_form(&PhiK::new(k).density());
            let ptm = sim.pauli_transfer_matrix();
            ChannelRow {
                k,
                channel_distance: sim.distance(&closed),
                lambda_simulated: ptm[(1, 1)].re,
                lambda_theory: 2.0 * k / (k * k + 1.0),
                entanglement_fidelity: entanglement_fidelity(&PhiK::new(k).density()),
                average_fidelity: average_fidelity(&PhiK::new(k).density()),
            }
        })
        .collect()
}

/// Formats the tomography rows.
pub fn to_table(rows: &[ChannelRow]) -> Table {
    let mut t = Table::new(&[
        "k",
        "channel_distance",
        "lambda_simulated",
        "lambda_theory",
        "entanglement_fidelity",
        "average_fidelity",
    ]);
    for r in rows {
        t.push_row(vec![
            r.k,
            r.channel_distance,
            r.lambda_simulated,
            r.lambda_theory,
            r.entanglement_fidelity,
            r.average_fidelity,
        ]);
    }
    t
}

/// Werner-resource variant: depolarising teleportation channel with all
/// three Pauli eigenvalues equal to `p`.
pub fn werner_channel_table(points: usize) -> Table {
    let mut t = Table::new(&[
        "p",
        "lambda_xyz",
        "entanglement_fidelity",
        "average_fidelity",
    ]);
    for i in 0..points {
        let p = i as f64 / (points - 1) as f64;
        let rho = werner(p);
        let ch = teleportation_channel_closed_form(&rho);
        let ptm = ch.pauli_transfer_matrix();
        t.push_row(vec![
            p,
            ptm[(1, 1)].re,
            entanglement_fidelity(&rho),
            average_fidelity(&rho),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_closed_form_everywhere() {
        for row in run(9) {
            assert!(
                row.channel_distance < 1e-9,
                "Eq. 22 violated at k={}: distance {}",
                row.k,
                row.channel_distance
            );
            assert!((row.lambda_simulated - row.lambda_theory).abs() < 1e-9);
        }
    }

    #[test]
    fn fidelity_increases_with_k() {
        let rows = run(11);
        for w in rows.windows(2) {
            assert!(w[1].average_fidelity >= w[0].average_fidelity - 1e-12);
        }
        assert!((rows.last().unwrap().average_fidelity - 1.0).abs() < 1e-10);
        // Classical limit 2/3 at k = 0.
        assert!((rows[0].average_fidelity - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn werner_table_eigenvalues_equal_p() {
        let t = werner_channel_table(6);
        for row in t.rows() {
            assert!((row[1] - row[0]).abs() < 1e-9, "λ ≠ p at p={}", row[0]);
        }
    }
}

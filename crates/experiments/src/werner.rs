//! **E10 — mixed (Werner) resource states** (extension; paper §VI future
//! work): the Pauli-inversion wire cut with `ρ_W = p·Φ + (1−p)·I/4`
//! resources. Reports, per Werner parameter `p`:
//!
//! * `f(ρ_W)` — the fully entangled fraction,
//! * `γ_opt = 2/f − 1` — the Theorem 1 optimum,
//! * `κ_inv = (3/p − 1)/2` — the inversion construction's overhead
//!   (strictly suboptimal for `p < 1`; the gap is the price of losing
//!   coherence in the resource), and
//! * the measured estimation error at a fixed shot budget (served by
//!   the batched shot engine — counts per branch leaf, not per-shot
//!   tree walks).

use crate::csvout::Table;
use crate::grid::ShardedGrid;
use crate::stats::RunningStats;
use entangle::werner;
use qpd::{estimate_allocated, Allocator};
use qsim::{haar_unitary, Pauli};
use wirecut::mixed::{inversion_kappa, optimal_gamma_bell_diagonal, BellDiagonalCut};
use wirecut::PreparedCut;

/// Stream tag for the Haar-state lane, shared across Werner parameters
/// so every `p` sees the same random input states.
const STATE_STREAM: u64 = 0xE10;

/// Configuration of the Werner-resource experiment.
#[derive(Clone, Debug)]
pub struct WernerConfig {
    /// Werner parameters `p` (must keep the channel invertible: p > 0).
    pub p_values: Vec<f64>,
    /// Shot budget per estimate.
    pub shots: u64,
    /// Random states averaged over.
    pub num_states: usize,
    /// Estimates per state.
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for WernerConfig {
    fn default() -> Self {
        Self {
            p_values: vec![0.4, 0.6, 0.8, 0.9, 1.0],
            shots: 2000,
            num_states: 16,
            repetitions: 16,
            seed: 777,
            threads: 0,
        }
    }
}

/// Runs the Werner-resource experiment.
pub fn run(config: &WernerConfig) -> Table {
    let mut t = Table::new(&[
        "p",
        "fef",
        "gamma_optimal",
        "kappa_inversion",
        "mean_abs_error",
    ]);
    // One shard per (p, state) cell, p-major.
    let cells: Vec<(f64, u64)> = config
        .p_values
        .iter()
        .flat_map(|&p| (0..config.num_states as u64).map(move |s| (p, s)))
        .collect();
    let per_cell: Vec<f64> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(p, s), ctx| {
            let cut = BellDiagonalCut::werner(p);
            let w = haar_unitary(2, &mut ctx.shared(&(STATE_STREAM, s)));
            let exact = wirecut::uncut_expectation(&w, Pauli::Z);
            let prepared = PreparedCut::new(&cut, &w, Pauli::Z);
            let rng = ctx.rng();
            let mut acc = RunningStats::new();
            for _ in 0..config.repetitions {
                let est = estimate_allocated(
                    &prepared.spec,
                    &prepared.samplers(),
                    config.shots,
                    Allocator::Proportional,
                    rng,
                );
                acc.push((est - exact).abs());
            }
            acc.mean()
        });
    for (pi, &p) in config.p_values.iter().enumerate() {
        let cut = BellDiagonalCut::werner(p);
        let fef = entangle::fully_entangled_fraction(&werner(p));
        let gamma = optimal_gamma_bell_diagonal(cut.weights);
        let kappa = inversion_kappa(cut.weights);
        let mut agg = RunningStats::new();
        for &e in &per_cell[pi * config.num_states..(pi + 1) * config.num_states] {
            agg.push(e);
        }
        t.push_row(vec![p, fef, gamma, kappa, agg.mean()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WernerConfig {
        WernerConfig {
            p_values: vec![0.5, 1.0],
            shots: 1200,
            num_states: 8,
            repetitions: 10,
            seed: 2,
            threads: 2,
        }
    }

    #[test]
    fn inversion_overhead_bounded_by_optimum() {
        let t = run(&small());
        for row in t.rows() {
            assert!(
                row[3] >= row[2] - 1e-9,
                "inversion beats optimum at p={}",
                row[0]
            );
        }
    }

    #[test]
    fn error_decreases_with_p() {
        let t = run(&small());
        let e_low = t.rows()[0][4];
        let e_high = t.rows()[1][4];
        assert!(
            e_high < e_low,
            "error did not drop with purer resource: {e_high} vs {e_low}"
        );
    }

    #[test]
    fn pure_resource_recovers_teleportation() {
        let t = run(&small());
        let row = t.rows().last().unwrap();
        assert!((row[1] - 1.0).abs() < 1e-9); // FEF = 1
        assert!((row[2] - 1.0).abs() < 1e-9); // γ = 1
        assert!((row[3] - 1.0).abs() < 1e-9); // κ = 1
    }
}

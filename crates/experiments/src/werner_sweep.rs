//! **E15 — the full Werner p-sweep** (ROADMAP "Werner-state sweeps"):
//! the Pauli-inversion wire cut `κ_inv(p) = (3/p − 1)/2` swept densely
//! over `p ∈ [1/3, 1]`, with statistical confidence bands per grid
//! point, against the Theorem 1 bound `γ = 2/f − 1` for Bell-diagonal
//! states (`f(ρ_W) = (1 + 3p)/4`).
//!
//! Where E10 ([`crate::werner`]) spot-checks a handful of `p` values
//! through full 5-qubit term-circuit simulation, this sweep rides the
//! **closed-form batched sampler path**
//! ([`wirecut::mixed::BellDiagonalCut::z_samplers`]): the Werner
//! teleportation channel is Pauli, so each term's `⟨Z⟩` is known in
//! closed form and a whole shot allocation is one exact binomial draw —
//! a dense p-grid costs `O(p_steps · states · repetitions)` binomials,
//! independent of the shot budget.
//!
//! Two statistics are reported per `p`:
//!
//! * **`kappa_hat`** — the empirically measured sampling overhead
//!   `κ̂ = κ_inv · √(Var_measured / Var_predicted)`, where
//!   `Var_predicted = Σᵢ cᵢ²σᵢ²/nᵢ` is the exact proportional-allocation
//!   variance ([`crate::overhead::predicted_variance`]). `E[κ̂] ≈ κ_inv`,
//!   so `tests/werner_sweep.rs` pins `κ̂(p)` to `(3/p − 1)/2` within 5
//!   standard errors across the whole sweep.
//! * **`wilson_halfwidth`** — the per-estimate confidence band: each
//!   term's ±1 counts get a Wilson score interval
//!   ([`crate::stats::wilson_interval`]) at the configured z, and the
//!   bands propagate through the QPD as `Σᵢ |cᵢ|·(hiᵢ − loᵢ)`;
//!   `band_coverage` records the fraction of estimates inside their
//!   band (≈ 1 at 5σ).
//!
//! The whole `(p, state)` grid is sharded by
//! [`crate::grid::ShardedGrid`]; Haar states ride a state-keyed stream
//! so every `p` measures the same states (paired design), and the CSV is
//! byte-identical for any thread count.
//!
//! Run via `cargo run --release -p experiments --bin werner_sweep`
//! (writes `results/werner_sweep.csv`).

use crate::csvout::Table;
use crate::grid::ShardedGrid;
use crate::stats::{measure_overhead_cell, OverheadMeasurement, RunningStats};
use entangle::werner;
use qpd::TermSampler;
use qsim::{haar_unitary, Pauli};
use wirecut::mixed::{inversion_kappa, optimal_gamma_bell_diagonal, BellDiagonalCut};

/// Stream tag for the Haar-state lane, shared across `p` so the whole
/// sweep measures the same random states.
const STATE_STREAM: u64 = 0xE15;

/// Configuration of the Werner p-sweep.
#[derive(Clone, Debug)]
pub struct WernerSweepConfig {
    /// Lowest Werner parameter (must stay > 0 for invertibility; the
    /// default 1/3 is the separability boundary).
    pub p_min: f64,
    /// Highest Werner parameter (1 = pure Bell resource).
    pub p_max: f64,
    /// Number of grid points, inclusive of both endpoints.
    pub p_steps: usize,
    /// Shot budget per estimate.
    pub shots: u64,
    /// Random states averaged over per grid point.
    pub num_states: usize,
    /// Estimates per state (drives the variance measurement).
    pub repetitions: usize,
    /// Wilson-band z-score (5.0 = the suite's 5σ convention).
    pub band_z: f64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

impl Default for WernerSweepConfig {
    fn default() -> Self {
        Self {
            p_min: 1.0 / 3.0,
            p_max: 1.0,
            p_steps: 41,
            shots: 2048,
            num_states: 12,
            repetitions: 48,
            band_z: 5.0,
            seed: 1508,
            threads: 0,
        }
    }
}

impl WernerSweepConfig {
    /// The inclusive p-grid, ascending.
    pub fn p_grid(&self) -> Vec<f64> {
        assert!(self.p_steps >= 2, "need at least the two endpoints");
        assert!(self.p_min > 0.0 && self.p_max <= 1.0 && self.p_min < self.p_max);
        (0..self.p_steps)
            .map(|i| self.p_min + (self.p_max - self.p_min) * i as f64 / (self.p_steps - 1) as f64)
            .collect()
    }
}

/// Runs the sweep. Columns: `(p, fef, gamma_optimal, kappa_inversion,
/// kappa_hat, kappa_hat_se, mean_abs_error, wilson_halfwidth,
/// band_coverage)`.
pub fn run(config: &WernerSweepConfig) -> Table {
    let mut t = Table::new(&[
        "p",
        "fef",
        "gamma_optimal",
        "kappa_inversion",
        "kappa_hat",
        "kappa_hat_se",
        "mean_abs_error",
        "wilson_halfwidth",
        "band_coverage",
    ]);
    let p_grid = config.p_grid();
    // One shard per (p, state) cell, p-major.
    let cells: Vec<(f64, u64)> = p_grid
        .iter()
        .flat_map(|&p| (0..config.num_states as u64).map(move |s| (p, s)))
        .collect();
    let per_cell: Vec<OverheadMeasurement> = ShardedGrid::new(cells, config.seed)
        .with_threads(config.threads)
        .run(|&(p, s), ctx| {
            let cut = BellDiagonalCut::werner(p);
            let kappa = inversion_kappa(cut.weights);
            let w = haar_unitary(2, &mut ctx.shared(&(STATE_STREAM, s)));
            let z = wirecut::uncut_expectation(&w, Pauli::Z);
            // Closed-form batched sampler family — no term circuits; the
            // cell reduction (variance-ratio κ̂ + propagated Wilson band)
            // is the shared `stats::measure_overhead_cell` used by E16.
            let (spec, samplers) = cut.z_samplers(z);
            let refs: Vec<&dyn TermSampler> =
                samplers.iter().map(|t| t as &dyn TermSampler).collect();
            let exact_terms: Vec<f64> = cut.z_term_expectations(z);
            measure_overhead_cell(
                &spec,
                &refs,
                z,
                &exact_terms,
                kappa,
                config.shots,
                config.repetitions,
                config.band_z,
                ctx.rng(),
            )
        });
    for (pi, &p) in p_grid.iter().enumerate() {
        let cut = BellDiagonalCut::werner(p);
        let fef = entangle::fully_entangled_fraction(&werner(p));
        let gamma = optimal_gamma_bell_diagonal(cut.weights);
        let kappa = inversion_kappa(cut.weights);
        let block = &per_cell[pi * config.num_states..(pi + 1) * config.num_states];
        let mut kh = RunningStats::new();
        let mut err = RunningStats::new();
        let mut band = RunningStats::new();
        let mut cov = RunningStats::new();
        for cell in block {
            kh.push(cell.kappa_hat);
            err.push(cell.mean_abs_error);
            band.push(cell.band_halfwidth);
            cov.push(cell.covered_fraction);
        }
        t.push_row(vec![
            p,
            fef,
            gamma,
            kappa,
            kh.mean(),
            kh.std_err(),
            err.mean(),
            band.mean(),
            cov.mean(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WernerSweepConfig {
        WernerSweepConfig {
            p_steps: 5,
            shots: 1024,
            num_states: 6,
            repetitions: 24,
            seed: 9,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn p_grid_spans_inclusive_range() {
        let g = small().p_grid();
        assert_eq!(g.len(), 5);
        assert!((g[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((g[4] - 1.0).abs() < 1e-12);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn closed_forms_populate_the_table() {
        let t = run(&small());
        assert_eq!(t.rows().len(), 5);
        for row in t.rows() {
            let p = row[0];
            // fef = (1 + 3p)/4, γ = 2/f − 1, κ_inv = (3/p − 1)/2.
            assert!(
                (row[1] - (1.0 + 3.0 * p) / 4.0).abs() < 1e-8,
                "fef at p={p}"
            );
            let f = row[1].max(0.5);
            assert!((row[2] - (2.0 / f - 1.0)).abs() < 1e-8, "gamma at p={p}");
            assert!(
                (row[3] - (3.0 / p - 1.0) / 2.0).abs() < 1e-9,
                "kappa at p={p}"
            );
        }
    }

    #[test]
    fn kappa_hat_tracks_the_closed_form() {
        let t = run(&small());
        for row in t.rows() {
            let (kappa, kappa_hat, se) = (row[3], row[4], row[5]);
            // Loose in-module gate; the 5σ version lives in
            // tests/werner_sweep.rs at larger scale.
            assert!(
                (kappa_hat - kappa).abs() < 8.0 * se.max(0.02 * kappa),
                "κ̂ {kappa_hat} vs κ {kappa} (se {se}) at p={}",
                row[0]
            );
        }
    }

    #[test]
    fn bands_cover_the_estimates() {
        let t = run(&small());
        for row in t.rows() {
            assert!(row[8] > 0.95, "coverage {} at p={}", row[8], row[0]);
            assert!(row[7] > 0.0, "degenerate band at p={}", row[0]);
        }
    }

    #[test]
    fn error_shrinks_towards_the_pure_resource() {
        let t = run(&small());
        let first = t.rows().first().unwrap()[6];
        let last = t.rows().last().unwrap()[6];
        assert!(
            last < first,
            "error did not drop from p=1/3 ({first}) to p=1 ({last})"
        );
    }
}

//! Complex double-precision scalar.
//!
//! The whole workspace operates on `Complex64`, a minimal but complete
//! complex arithmetic type. We implement it from scratch (rather than
//! pulling `num-complex`) because the offline dependency policy of this
//! reproduction restricts external crates and the required surface is
//! small: field arithmetic, conjugation, modulus, polar form and the
//! exponential map used for phase gates.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

/// The additive identity.
pub const C_ZERO: Complex64 = c64(0.0, 0.0);
/// The multiplicative identity.
pub const C_ONE: Complex64 = c64(1.0, 0.0);
/// The imaginary unit `i`.
pub const C_I: Complex64 = c64(0.0, 1.0);

impl Complex64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// The additive identity, `0 + 0i`.
    #[inline(always)]
    pub const fn zero() -> Self {
        C_ZERO
    }

    /// The multiplicative identity, `1 + 0i`.
    #[inline(always)]
    pub const fn one() -> Self {
        C_ONE
    }

    /// The imaginary unit `i`.
    #[inline(always)]
    pub const fn i() -> Self {
        C_I
    }

    /// Complex conjugate `re - i·im`.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`. Cheaper than [`Complex64::abs`]; prefer
    /// it for probability computations where the square root is unneeded.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `√(re² + im²)`.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns NaN components for zero input.
    #[inline(always)]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Constructs `r·e^{iθ}` from polar coordinates.
    #[inline(always)]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Unit phase `e^{iθ}` — the workhorse for phase/rotation gates.
    #[inline(always)]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let (r, theta) = (self.abs(), self.arg());
        Self::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Approximate equality within an absolute tolerance per component.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Fused multiply-add: `self * b + acc`. Written out explicitly so the
    /// compiler can keep everything in registers in gate kernels.
    #[inline(always)]
    pub fn mul_add(self, b: Self, acc: Self) -> Self {
        Self {
            re: self.re * b.re - self.im * b.im + acc.re,
            im: self.re * b.im + self.im * b.re + acc.im,
        }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline(always)]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w computed as z * w^-1
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Self {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline(always)]
    fn div(self, rhs: f64) -> Self {
        Self {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(C_ZERO, |acc, x| acc + x)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.6}{:+.6}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn addition_and_subtraction_are_componentwise() {
        let a = c64(1.0, 2.0);
        let b = c64(-0.5, 3.0);
        assert!((a + b).approx_eq(c64(0.5, 5.0), TOL));
        assert!((a - b).approx_eq(c64(1.5, -1.0), TOL));
    }

    #[test]
    fn multiplication_matches_definition() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert!((a * b).approx_eq(c64(5.0, 5.0), TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!((C_I * C_I).approx_eq(c64(-1.0, 0.0), TOL));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = c64(2.5, -1.5);
        let b = c64(0.3, 0.7);
        assert!(((a * b) / b).approx_eq(a, 1e-10));
    }

    #[test]
    fn conjugation_negates_imaginary_part() {
        let a = c64(1.0, -4.0);
        assert!(a.conj().approx_eq(c64(1.0, 4.0), TOL));
        assert!((a * a.conj()).approx_eq(c64(a.norm_sqr(), 0.0), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let a = c64(-0.6, 0.8);
        let back = Complex64::from_polar(a.abs(), a.arg());
        assert!(back.approx_eq(a, 1e-12));
    }

    #[test]
    fn cis_is_unit_modulus() {
        for n in 0..32 {
            let theta = n as f64 * 0.41;
            assert!((Complex64::cis(theta).abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exp_of_pure_imaginary_is_cis() {
        let theta = 1.234;
        assert!(c64(0.0, theta).exp().approx_eq(Complex64::cis(theta), TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[c64(4.0, 0.0), c64(0.0, 2.0), c64(-1.0, 0.0), c64(3.0, -4.0)] {
            let r = z.sqrt();
            assert!((r * r).approx_eq(z, 1e-10), "sqrt failed for {z:?}");
        }
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let (a, b, c) = (c64(1.0, 2.0), c64(3.0, 4.0), c64(-1.0, 0.5));
        assert!(a.mul_add(b, c).approx_eq(a * b + c, TOL));
    }

    #[test]
    fn inv_times_self_is_one() {
        let a = c64(0.7, -0.2);
        assert!((a * a.inv()).approx_eq(C_ONE, 1e-12));
    }

    #[test]
    fn sum_iterator_accumulates() {
        let xs = [c64(1.0, 1.0), c64(2.0, -1.0), c64(-0.5, 0.25)];
        let s: Complex64 = xs.iter().copied().sum();
        assert!(s.approx_eq(c64(2.5, 0.25), TOL));
    }

    #[test]
    fn display_formats_sign_correctly() {
        assert_eq!(format!("{}", c64(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", c64(1.0, -2.0)), "1-2i");
    }
}

//! Eigendecomposition of Hermitian matrices via the complex Jacobi method.
//!
//! Density operators are Hermitian positive semidefinite; we need their
//! spectra for purity checks, fidelity computations with mixed resource
//! states (Werner/Bell-diagonal extensions), and validating that QPD
//! reconstructions are physical.

use crate::complex::Complex64;
use crate::matrix::Matrix;

/// Result of a Hermitian eigendecomposition `A = V · diag(λ) · V†`.
#[derive(Clone, Debug)]
pub struct HermitianEig {
    /// Real eigenvalues, descending.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: Matrix,
}

/// Diagonalises a Hermitian matrix by cyclic complex Jacobi rotations.
///
/// # Panics
/// Panics if `a` is not square or not Hermitian to `1e-9`.
pub fn eigh(a: &Matrix) -> HermitianEig {
    assert!(a.is_square(), "eigh requires a square matrix");
    assert!(a.is_hermitian(1e-9), "eigh requires a Hermitian matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    let max_sweeps = 80;
    for _ in 0..max_sweeps {
        // Largest off-diagonal magnitude.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(m[(i, j)].abs());
            }
        }
        if off < 1e-14 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[(p, p)].re;
                let aqq = m[(q, q)].re;
                let phase = apq * (1.0 / apq.abs());
                let tau = (aqq - app) / (2.0 * apq.abs());
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // Unitary: J = [[c, s·phase],[−s·phase†, c]] acting on (p,q).
                // Update M ← J† M J and V ← V J.
                // Row/column updates:
                for i in 0..n {
                    let mip = m[(i, p)];
                    let miq = m[(i, q)] * phase.conj();
                    m[(i, p)] = mip.scale(c) - miq.scale(s);
                    m[(i, q)] = (mip.scale(s) + miq.scale(c)) * phase;
                }
                for i in 0..n {
                    let mpi = m[(p, i)];
                    let mqi = m[(q, i)] * phase;
                    m[(p, i)] = mpi.scale(c) - mqi.scale(s);
                    m[(q, i)] = (mpi.scale(s) + mqi.scale(c)) * phase.conj();
                }
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)] * phase.conj();
                    v[(i, p)] = vip.scale(c) - viq.scale(s);
                    v[(i, q)] = (vip.scale(s) + viq.scale(c)) * phase;
                }
            }
        }
    }

    // Sort eigenpairs descending by eigenvalue.
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)].re).collect();
    idx.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).unwrap());
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in idx.iter().enumerate() {
        for i in 0..n {
            vectors[(i, dst)] = v[(i, src)];
        }
    }
    HermitianEig { values, vectors }
}

impl HermitianEig {
    /// Reconstructs `V · diag(λ) · V†`.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut vd = self.vectors.clone();
        for j in 0..n {
            for i in 0..n {
                vd[(i, j)] = vd[(i, j)].scale(self.values[j]);
            }
        }
        vd.matmul(&self.vectors.dagger())
    }

    /// Returns the eigenvector for index `k` as an owned vector.
    pub fn vector(&self, k: usize) -> Vec<Complex64> {
        self.vectors.col(k)
    }
}

/// Square root of a Hermitian PSD matrix: `√A = V·diag(√λ)·V†`.
/// Negative eigenvalues within `-1e-10` are clamped to zero; larger negative
/// values panic because the input is then not PSD.
pub fn sqrtm_psd(a: &Matrix) -> Matrix {
    let e = eigh(a);
    let n = e.values.len();
    let mut vd = e.vectors.clone();
    for j in 0..n {
        let lam = e.values[j];
        assert!(
            lam > -1e-9,
            "sqrtm_psd: matrix has negative eigenvalue {lam}"
        );
        let r = lam.max(0.0).sqrt();
        for i in 0..n {
            vd[(i, j)] = vd[(i, j)].scale(r);
        }
    }
    vd.matmul(&e.vectors.dagger())
}

/// Uhlmann fidelity between density operators:
/// `F(ρ, σ) = (Tr √(√ρ σ √ρ))²`.
pub fn fidelity(rho: &Matrix, sigma: &Matrix) -> f64 {
    let sr = sqrtm_psd(rho);
    let inner = sr.matmul(sigma).matmul(&sr);
    // inner is PSD Hermitian up to numerical noise; symmetrise first.
    let herm = inner.add(&inner.dagger()).scale_re(0.5);
    let e = eigh(&herm);
    let tr: f64 = e.values.iter().map(|&l| l.max(0.0).sqrt()).sum();
    tr * tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C_ZERO;
    use crate::complex::{c64, C_I, C_ONE};
    use crate::vector::outer;

    #[test]
    fn eigh_diagonal_matrix() {
        let a = Matrix::diag(&[c64(3.0, 0.0), c64(1.0, 0.0), c64(2.0, 0.0)]);
        let e = eigh(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigh_pauli_x_spectrum() {
        let x = Matrix::from_rows(&[vec![C_ZERO, C_ONE], vec![C_ONE, C_ZERO]]);
        let e = eigh(&x);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
        assert!(e.reconstruct().approx_eq(&x, 1e-10));
    }

    #[test]
    fn eigh_pauli_y_complex_entries() {
        let y = Matrix::from_rows(&[vec![C_ZERO, -C_I], vec![C_I, C_ZERO]]);
        let e = eigh(&y);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
        assert!(e.reconstruct().approx_eq(&y, 1e-10));
        assert!(e.vectors.is_unitary(1e-10));
    }

    #[test]
    fn eigh_random_hermitian_reconstructs() {
        // Build H = B + B† from a deterministic pseudo-random B.
        let mut s = 9u64;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let b = Matrix::from_fn(4, 4, |_, _| c64(next(), next()));
        let h = b.add(&b.dagger()).scale_re(0.5);
        let e = eigh(&h);
        assert!(e.reconstruct().approx_eq(&h, 1e-9));
        assert!(e.vectors.is_unitary(1e-9));
        // Trace equals sum of eigenvalues.
        let tr: f64 = e.values.iter().sum();
        assert!((tr - h.trace().re).abs() < 1e-9);
    }

    #[test]
    fn sqrtm_of_projector_is_projector() {
        let v = [c64(0.6, 0.0), c64(0.0, 0.8)];
        let p = outer(&v, &v);
        let r = sqrtm_psd(&p);
        assert!(r.matmul(&r).approx_eq(&p, 1e-9));
    }

    #[test]
    fn fidelity_of_identical_pure_states_is_one() {
        let v = [c64(0.6, 0.0), c64(0.8, 0.0)];
        let p = outer(&v, &v);
        assert!((fidelity(&p, &p) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = outer(&[C_ONE, C_ZERO], &[C_ONE, C_ZERO]);
        let b = outer(&[C_ZERO, C_ONE], &[C_ZERO, C_ONE]);
        assert!(fidelity(&a, &b).abs() < 1e-8);
    }

    #[test]
    fn fidelity_pure_vs_maximally_mixed() {
        let a = outer(&[C_ONE, C_ZERO], &[C_ONE, C_ZERO]);
        let mixed = Matrix::identity(2).scale_re(0.5);
        assert!((fidelity(&a, &mixed) - 0.5).abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn eigh_rejects_non_hermitian() {
        let a = Matrix::from_rows(&[vec![C_ONE, C_ONE], vec![C_ZERO, C_ONE]]);
        let _ = eigh(&a);
    }
}

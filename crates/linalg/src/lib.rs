//! # qlinalg — dense complex linear algebra substrate
//!
//! Foundation crate for the NME wire-cutting reproduction
//! (Bechtold et al., IPPS 2024, arXiv:2403.09690). Everything downstream —
//! the statevector simulator, the entanglement toolkit, QPD verification —
//! is built on the types here.
//!
//! Contents:
//!
//! * [`Complex64`] — complex double-precision scalar with the full field
//!   arithmetic, polar form and `cis` used by phase gates.
//! * [`Matrix`] — dense row-major complex matrix: `matmul`, [`Matrix::kron`],
//!   `dagger`, `trace`, Hilbert–Schmidt inner products.
//! * [`qr()`](qr())/[`QrDecomposition`] — Householder QR; with
//!   [`QrDecomposition::haar_unitary_q`] implementing the Mezzadri phase
//!   correction for exact Haar sampling (the paper's reference \[30\]).
//! * [`svd()`](svd())/[`Svd`] — one-sided Jacobi SVD, powering Schmidt
//!   decompositions (paper Eq. 3–5).
//! * [`eigh`]/[`HermitianEig`], [`sqrtm_psd`], [`fidelity`] — Hermitian
//!   spectral tools for density operators.
//! * [`vector`] — free functions over `&[Complex64]` state buffers.
//!
//! Design note: matrices here are tiny (≤ 64×64 superoperators), so the
//! implementation favours clarity and exactness over blocking/SIMD; the
//! performance-critical inner loops live in `qsim`'s strided gate kernels
//! instead, per the workspace's HPC guide split of responsibilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod complex;
pub mod eig;
pub mod matrix;
pub mod qr;
pub mod svd;
pub mod vector;

pub use complex::{c64, Complex64, C_I, C_ONE, C_ZERO};
pub use eig::{eigh, fidelity, sqrtm_psd, HermitianEig};
pub use matrix::Matrix;
pub use qr::{inverse, lstsq, qr, solve, unitary_with_first_column, QrDecomposition};
pub use svd::{svd, Svd};

//! Dense complex matrices in row-major storage.
//!
//! Every matrix in this reproduction is small (at most `4^n × 4^n` for
//! `n ≤ 3` qubits of superoperator, i.e. ≤ 64×64), so a straightforward
//! contiguous row-major `Vec<Complex64>` with cache-friendly `i-k-j`
//! multiplication is the right tool — no blocking or BLAS needed.

use crate::complex::{c64, Complex64, C_ONE, C_ZERO};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense complex matrix with row-major storage.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![C_ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C_ONE;
        }
        m
    }

    /// Builds a matrix from a row-major slice of complex entries.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_slice(rows: usize, cols: usize, data: &[Complex64]) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a matrix from a row-major vector, taking ownership.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row arrays of `(re, im)` pairs; handy in
    /// tests and gate definitions.
    pub fn from_rows(rows: &[Vec<Complex64>]) -> Self {
        let r = rows.len();
        assert!(r > 0, "empty matrix");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a real diagonal matrix from its diagonal entries.
    pub fn diag(entries: &[Complex64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for square matrices.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable raw row-major data slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Complex64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Entrywise complex conjugate.
    pub fn conj(&self) -> Self {
        let data = self.data.iter().map(|z| z.conj()).collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Conjugate transpose (Hermitian adjoint) `A†`.
    pub fn dagger(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Trace `Σᵢ Aᵢᵢ`.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `√Σ|Aᵢⱼ|²`.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum entrywise modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Entrywise approximate equality within absolute tolerance `tol`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Scales every entry by a complex scalar.
    pub fn scale(&self, s: Complex64) -> Self {
        let data = self.data.iter().map(|&z| z * s).collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scales every entry by a real scalar.
    pub fn scale_re(&self, s: f64) -> Self {
        let data = self.data.iter().map(|&z| z * s).collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place accumulate `self += s * other`, the hot path when summing
    /// weighted channel matrices for QPD reconstruction checks.
    pub fn axpy(&mut self, s: Complex64, other: &Self) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
    }

    /// Matrix product `self · rhs` with the cache-friendly i-k-j loop order.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let (m, k_dim, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Self::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k_dim..(i + 1) * k_dim];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == C_ZERO {
                    continue;
                }
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = a_ik.mul_add(b_kj, *o);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · v`.
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let row = self.row(i);
                let mut acc = C_ZERO;
                for (&a, &x) in row.iter().zip(v.iter()) {
                    acc = a.mul_add(x, acc);
                }
                acc
            })
            .collect()
    }

    /// Kronecker product `self ⊗ rhs`.
    ///
    /// Index convention: `(A ⊗ B)[(i_a·rb + i_b), (j_a·cb + j_b)] =
    /// A[i_a,j_a]·B[i_b,j_b]`, so for two-qubit operators built as
    /// `kron(op_on_qubit1, op_on_qubit0)` the *second* factor acts on the
    /// least-significant qubit, matching the simulator's bit ordering.
    pub fn kron(&self, rhs: &Self) -> Self {
        let (ra, ca) = (self.rows, self.cols);
        let (rb, cb) = (rhs.rows, rhs.cols);
        let mut out = Self::zeros(ra * rb, ca * cb);
        for ia in 0..ra {
            for ja in 0..ca {
                let a = self[(ia, ja)];
                if a == C_ZERO {
                    continue;
                }
                for ib in 0..rb {
                    let dst_row = (ia * rb + ib) * out.cols + ja * cb;
                    let src_row = ib * cb;
                    for jb in 0..cb {
                        out.data[dst_row + jb] = a * rhs.data[src_row + jb];
                    }
                }
            }
        }
        out
    }

    /// `true` when `‖A†A − I‖_∞ < tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = self.dagger().matmul(self);
        prod.sub(&Self::identity(self.rows)).max_abs() < tol
    }

    /// `true` when `‖A − A†‖_∞ < tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.sub(&self.dagger()).max_abs() < tol
    }

    /// Entrywise sum (non-operator form usable on references).
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Entrywise difference (non-operator form usable on references).
    pub fn sub(&self, other: &Self) -> Self {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Extracts column `j` as a vector.
    pub fn col(&self, j: usize) -> Vec<Complex64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Hermitian inner product `⟨self, other⟩ = Tr[self† · other]`, the
    /// Hilbert–Schmidt inner product used for operator decompositions.
    pub fn hs_inner(&self, other: &Self) -> Complex64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a.conj() * b)
            .sum()
    }

    /// Matrix power by repeated squaring (square matrices only).
    pub fn pow(&self, mut e: u32) -> Self {
        assert!(self.is_square());
        let mut base = self.clone();
        let mut acc = Self::identity(self.rows);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.matmul(&base);
            }
            base = base.matmul(&base);
            e >>= 1;
        }
        acc
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: Self) -> Matrix {
        Matrix::add(self, rhs)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: Self) -> Matrix {
        Matrix::sub(self, rhs)
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: Self) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(c64(-1.0, 0.0))
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::C_I;

    fn pauli_x() -> Matrix {
        Matrix::from_rows(&[vec![C_ZERO, C_ONE], vec![C_ONE, C_ZERO]])
    }

    fn pauli_y() -> Matrix {
        Matrix::from_rows(&[vec![C_ZERO, -C_I], vec![C_I, C_ZERO]])
    }

    fn pauli_z() -> Matrix {
        Matrix::from_rows(&[vec![C_ONE, C_ZERO], vec![C_ZERO, -C_ONE]])
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let x = pauli_x();
        let i2 = Matrix::identity(2);
        assert!(x.matmul(&i2).approx_eq(&x, 1e-14));
        assert!(i2.matmul(&x).approx_eq(&x, 1e-14));
    }

    #[test]
    fn pauli_algebra_xy_equals_iz() {
        let xy = pauli_x().matmul(&pauli_y());
        let iz = pauli_z().scale(C_I);
        assert!(xy.approx_eq(&iz, 1e-14));
    }

    #[test]
    fn paulis_are_unitary_and_hermitian() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.is_unitary(1e-12));
            assert!(p.is_hermitian(1e-12));
            assert!(p.matmul(&p).approx_eq(&Matrix::identity(2), 1e-12));
        }
    }

    #[test]
    fn trace_of_paulis_is_zero() {
        for p in [pauli_x(), pauli_y(), pauli_z()] {
            assert!(p.trace().approx_eq(C_ZERO, 1e-14));
        }
    }

    #[test]
    fn kron_dimensions_and_values() {
        let a = Matrix::from_rows(&[
            vec![C_ONE, c64(2.0, 0.0)],
            vec![c64(3.0, 0.0), c64(4.0, 0.0)],
        ]);
        let b = Matrix::identity(2);
        let k = a.kron(&b);
        assert_eq!(k.rows(), 4);
        assert_eq!(k.cols(), 4);
        assert!(k[(0, 0)].approx_eq(C_ONE, 1e-14));
        assert!(k[(1, 1)].approx_eq(C_ONE, 1e-14));
        assert!(k[(0, 2)].approx_eq(c64(2.0, 0.0), 1e-14));
        assert!(k[(2, 0)].approx_eq(c64(3.0, 0.0), 1e-14));
        assert!(k[(3, 3)].approx_eq(c64(4.0, 0.0), 1e-14));
        assert!(k[(0, 1)].approx_eq(C_ZERO, 1e-14));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = pauli_x();
        let b = pauli_y();
        let c = pauli_z();
        let d = pauli_x();
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn dagger_is_involutive_and_antimultiplicative() {
        let a = pauli_x().matmul(&pauli_y());
        assert!(a.dagger().dagger().approx_eq(&a, 1e-14));
        let b = pauli_z();
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-14));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = pauli_y();
        let v = vec![c64(0.6, 0.0), c64(0.0, 0.8)];
        let got = a.matvec(&v);
        // Y|v⟩ = (-i·v1, i·v0)
        assert!(got[0].approx_eq(c64(0.8, 0.0), 1e-14));
        assert!(got[1].approx_eq(c64(0.0, 0.6), 1e-14));
    }

    #[test]
    fn hs_inner_paulis_are_orthogonal() {
        let paulis = [Matrix::identity(2), pauli_x(), pauli_y(), pauli_z()];
        for (i, p) in paulis.iter().enumerate() {
            for (j, q) in paulis.iter().enumerate() {
                let ip = p.hs_inner(q);
                if i == j {
                    assert!(ip.approx_eq(c64(2.0, 0.0), 1e-12));
                } else {
                    assert!(ip.approx_eq(C_ZERO, 1e-12), "paulis {i},{j} not orthogonal");
                }
            }
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut acc = Matrix::zeros(2, 2);
        acc.axpy(c64(2.0, 0.0), &pauli_x());
        acc.axpy(c64(0.0, 1.0), &pauli_z());
        assert!(acc[(0, 1)].approx_eq(c64(2.0, 0.0), 1e-14));
        assert!(acc[(0, 0)].approx_eq(c64(0.0, 1.0), 1e-14));
        assert!(acc[(1, 1)].approx_eq(c64(0.0, -1.0), 1e-14));
    }

    #[test]
    fn pow_repeated_squaring() {
        let x = pauli_x();
        assert!(x.pow(0).approx_eq(&Matrix::identity(2), 1e-14));
        assert!(x.pow(1).approx_eq(&x, 1e-14));
        assert!(x.pow(2).approx_eq(&Matrix::identity(2), 1e-14));
        assert!(x.pow(5).approx_eq(&x, 1e-14));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn diag_builds_diagonal() {
        let d = Matrix::diag(&[C_ONE, c64(2.0, 0.0), C_I]);
        assert_eq!(d.rows(), 3);
        assert!(d[(2, 2)].approx_eq(C_I, 1e-14));
        assert!(d[(0, 1)].approx_eq(C_ZERO, 1e-14));
    }
}

//! Householder QR decomposition for complex matrices.
//!
//! Two consumers in this reproduction:
//!
//! 1. **Haar-random unitaries** (Mezzadri, *How to generate random matrices
//!    from the classical compact groups*, Notices AMS 54(5), 2007 — the
//!    paper's reference \[30\]): QR-factor a Ginibre matrix, then multiply Q
//!    by the phases of R's diagonal. [`QrDecomposition::haar_unitary_q`]
//!    performs that correction.
//! 2. **Least-squares solves** used to recover QPD coefficients from
//!    channel matrices in verification experiments.

use crate::complex::{Complex64, C_ONE, C_ZERO};
use crate::matrix::Matrix;

/// Result of a QR factorisation `A = Q·R` with unitary `Q` and upper
/// triangular `R`.
#[derive(Clone, Debug)]
pub struct QrDecomposition {
    /// Unitary factor (`m × m`).
    pub q: Matrix,
    /// Upper-triangular factor (`m × n`).
    pub r: Matrix,
}

/// Computes the full QR decomposition of `a` (`m × n`, `m ≥ n` expected but
/// not required) via Householder reflections.
pub fn qr(a: &Matrix) -> QrDecomposition {
    let m = a.rows();
    let n = a.cols();
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    let steps = m.min(n);

    for k in 0..steps {
        // Build the Householder vector v for column k, rows k..m.
        let mut v: Vec<Complex64> = (k..m).map(|i| r[(i, k)]).collect();
        let alpha = {
            let x0 = v[0];
            let nx = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            if nx == 0.0 {
                continue;
            }
            // Choose the sign that avoids cancellation: alpha = -e^{iθ}·‖x‖
            // where θ is the phase of x0.
            let phase = if x0.abs() > 0.0 {
                x0 * (1.0 / x0.abs())
            } else {
                C_ONE
            };
            -phase * nx
        };
        v[0] -= alpha;
        let vn2 = v.iter().map(|z| z.norm_sqr()).sum::<f64>();
        if vn2 < f64::EPSILON {
            continue;
        }
        let beta = 2.0 / vn2;

        // Apply H = I - beta·v·v† to R (rows k..m) from the left.
        for j in k..n {
            let mut dot = C_ZERO;
            for (idx, &vi) in v.iter().enumerate() {
                dot = vi.conj().mul_add(r[(k + idx, j)], dot);
            }
            let s = dot.scale(beta);
            for (idx, &vi) in v.iter().enumerate() {
                let val = r[(k + idx, j)] - vi * s;
                r[(k + idx, j)] = val;
            }
        }
        // Accumulate Q ← Q·H (apply H from the right on columns k..m).
        for i in 0..m {
            let mut dot = C_ZERO;
            for (idx, &vi) in v.iter().enumerate() {
                dot = q[(i, k + idx)].mul_add(vi, dot);
            }
            let s = dot.scale(beta);
            for (idx, &vi) in v.iter().enumerate() {
                let val = q[(i, k + idx)] - s * vi.conj();
                q[(i, k + idx)] = val;
            }
        }
    }

    // Zero out numerical noise below the diagonal of R.
    for i in 0..m {
        for j in 0..n.min(i) {
            r[(i, j)] = C_ZERO;
        }
    }

    QrDecomposition { q, r }
}

impl QrDecomposition {
    /// Returns `Q · Λ` where `Λ = diag(r_ii / |r_ii|)`.
    ///
    /// When the input to [`qr`] was a standard complex Ginibre matrix this
    /// correction makes the result exactly Haar-distributed on U(n)
    /// (Mezzadri 2007); without it the distribution is biased by the sign
    /// convention of the QR algorithm.
    pub fn haar_unitary_q(&self) -> Matrix {
        let n = self.q.rows();
        let mut out = self.q.clone();
        for j in 0..n.min(self.r.cols()) {
            let d = self.r[(j, j)];
            let phase = if d.abs() > 0.0 {
                d * (1.0 / d.abs())
            } else {
                C_ONE
            };
            for i in 0..n {
                out[(i, j)] *= phase;
            }
        }
        out
    }
}

/// Solves the least-squares problem `min ‖A·x − b‖₂` for full-column-rank
/// `A` (`m × n`, `m ≥ n`) via QR and back-substitution.
///
/// Used by verification experiments to project reconstructed channels onto
/// a basis of implementable LOCC channels and recover QPD coefficients.
pub fn lstsq(a: &Matrix, b: &[Complex64]) -> Vec<Complex64> {
    let m = a.rows();
    let n = a.cols();
    assert_eq!(b.len(), m, "lstsq rhs length mismatch");
    assert!(m >= n, "lstsq requires m >= n");
    let QrDecomposition { q, r } = qr(a);
    // y = Q†·b, take first n entries, then solve R x = y.
    let qt_b = q.dagger().matvec(b);
    let mut x = vec![C_ZERO; n];
    for i in (0..n).rev() {
        let mut acc = qt_b[i];
        for j in (i + 1)..n {
            acc -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        assert!(
            d.abs() > 1e-13,
            "lstsq: rank-deficient matrix (R[{i},{i}] ~ 0)"
        );
        x[i] = acc * d.inv();
    }
    x
}

/// Builds a unitary whose first column is the given unit vector, by
/// completing it to an orthonormal basis (Gram–Schmidt over the standard
/// basis). Used to synthesise state-preparation gates `U|0…0⟩ = |ψ⟩`.
pub fn unitary_with_first_column(column: &[Complex64]) -> Matrix {
    let n = column.len();
    let nrm = crate::vector::norm(column);
    assert!(
        (nrm - 1.0).abs() < 1e-9,
        "first column must be a unit vector"
    );
    let mut cols: Vec<Vec<Complex64>> = vec![column.to_vec()];
    for b in 0..n {
        if cols.len() == n {
            break;
        }
        let mut e = vec![C_ZERO; n];
        e[b] = C_ONE;
        for existing in &cols {
            let ov = crate::vector::inner(existing, &e);
            for (ei, &xi) in e.iter_mut().zip(existing.iter()) {
                *ei -= xi * ov;
            }
        }
        let en = crate::vector::norm(&e);
        if en > 1e-8 {
            for z in e.iter_mut() {
                *z = z.scale(1.0 / en);
            }
            cols.push(e);
        }
    }
    assert_eq!(cols.len(), n, "failed to complete basis");
    Matrix::from_fn(n, n, |i, j| cols[j][i])
}

/// Convenience: solves the square linear system `A·x = b`.
pub fn solve(a: &Matrix, b: &[Complex64]) -> Vec<Complex64> {
    assert!(a.is_square(), "solve requires a square matrix");
    lstsq(a, b)
}

/// Matrix inverse via QR (square, nonsingular). Small matrices only.
pub fn inverse(a: &Matrix) -> Matrix {
    assert!(a.is_square());
    let n = a.rows();
    let mut out = Matrix::zeros(n, n);
    for j in 0..n {
        let mut e = vec![C_ZERO; n];
        e[j] = C_ONE;
        let x = solve(a, &e);
        for i in 0..n {
            out[(i, j)] = x[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn sample_matrix(n: usize, seed: u64) -> Matrix {
        // Deterministic pseudo-random fill (splitmix64) to avoid an RNG
        // dependency inside unit tests.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z = z ^ (z >> 31);
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        Matrix::from_fn(n, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn qr_reconstructs_input() {
        for n in [1, 2, 3, 4, 8] {
            let a = sample_matrix(n, 42 + n as u64);
            let d = qr(&a);
            let back = d.q.matmul(&d.r);
            assert!(
                back.approx_eq(&a, 1e-10),
                "QR reconstruction failed for n={n}"
            );
        }
    }

    #[test]
    fn q_is_unitary() {
        for n in [2, 3, 4, 8, 16] {
            let a = sample_matrix(n, 7 + n as u64);
            let d = qr(&a);
            assert!(d.q.is_unitary(1e-9), "Q not unitary for n={n}");
        }
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = sample_matrix(5, 99);
        let d = qr(&a);
        for i in 0..5 {
            for j in 0..i {
                assert!(d.r[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn haar_q_is_unitary() {
        let a = sample_matrix(4, 1234);
        let u = qr(&a).haar_unitary_q();
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn haar_correction_makes_r_diagonal_phase_absorbed() {
        // After the correction, Q'†·A should have a positive-real diagonal
        // in its R factor — equivalently Λ†R has positive real diagonal.
        let a = sample_matrix(4, 555);
        let d = qr(&a);
        let u = d.haar_unitary_q();
        let r_new = u.dagger().matmul(&a);
        for i in 0..4 {
            let z = r_new[(i, i)];
            assert!(z.re > 0.0, "diagonal not positive-real: {z:?}");
            assert!(z.im.abs() < 1e-9);
        }
    }

    #[test]
    fn solve_square_system() {
        let a = sample_matrix(5, 2024);
        let x_true: Vec<_> = (0..5).map(|i| c64(i as f64 + 0.5, -(i as f64))).collect();
        let b = a.matvec(&x_true);
        let x = solve(&a, &b);
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!(
                got.approx_eq(*want, 1e-8),
                "solve mismatch {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn lstsq_overdetermined_consistent_system() {
        // Tall consistent system: A (6x3), b = A x.
        let mut a = Matrix::zeros(6, 3);
        let base = sample_matrix(6, 31);
        for i in 0..6 {
            for j in 0..3 {
                a[(i, j)] = base[(i, j)];
            }
        }
        let x_true = vec![c64(1.0, 2.0), c64(-0.5, 0.5), c64(0.0, -1.0)];
        let b = a.matvec(&x_true);
        let x = lstsq(&a, &b);
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!(got.approx_eq(*want, 1e-8));
        }
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = sample_matrix(4, 77);
        let inv = inverse(&a);
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(4), 1e-8));
        assert!(inv.matmul(&a).approx_eq(&Matrix::identity(4), 1e-8));
    }

    #[test]
    fn unitary_with_first_column_is_unitary() {
        let v = vec![c64(0.5, 0.0), c64(0.0, 0.5), c64(0.5, 0.0), c64(0.0, -0.5)];
        let u = unitary_with_first_column(&v);
        assert!(u.is_unitary(1e-9));
        for i in 0..4 {
            assert!(u[(i, 0)].approx_eq(v[i], 1e-12));
        }
        // Also works when the column is a standard basis vector.
        let e0 = vec![c64(1.0, 0.0), c64(0.0, 0.0)];
        let u = unitary_with_first_column(&e0);
        assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn qr_handles_rank_one_matrix() {
        // Rank-deficient input must still satisfy A = QR with unitary Q.
        let col = [c64(1.0, 0.0), c64(2.0, 0.0), c64(3.0, 0.0)];
        let a = Matrix::from_fn(3, 3, |i, j| col[i] * (j as f64 + 1.0));
        let d = qr(&a);
        assert!(d.q.is_unitary(1e-9));
        assert!(d.q.matmul(&d.r).approx_eq(&a, 1e-9));
    }
}

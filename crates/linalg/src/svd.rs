//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! The Schmidt decomposition of a bipartite pure state (paper Eq. 3–4) *is*
//! the SVD of its coefficient matrix: `|ψ⟩ = Σᵢⱼ Mᵢⱼ |i⟩|j⟩` with
//! `M = U·Σ·V†` gives Schmidt coefficients `Σᵢᵢ` and local bases from `U`
//! and `V`. One-sided Jacobi is simple, numerically robust, and plenty fast
//! for the ≤ 4×4 matrices appearing here.

use crate::complex::{Complex64, C_ONE, C_ZERO};
use crate::matrix::Matrix;

/// Result of an SVD `A = U · diag(σ) · V†` with `σ` sorted descending.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors (`m × k`, `k = min(m, n)`), orthonormal columns.
    pub u: Matrix,
    /// Singular values, non-negative, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors (`n × k`), orthonormal columns.
    pub v: Matrix,
}

/// Computes the thin SVD of `a` by one-sided Jacobi iteration on columns.
///
/// Converges when all column pairs are numerically orthogonal; for the tiny
/// matrices used in this repo a handful of sweeps suffices.
pub fn svd(a: &Matrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    // Work on the transposed problem when m < n so columns are long.
    if m < n {
        let t = svd(&a.transpose().conj());
        // A = conj(T)ᵀ where T = A†: if A† = U Σ V†, then A = V Σ U†.
        return Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        };
    }

    let mut w = a.clone(); // m × n working copy whose columns converge to U·Σ
    let mut v = Matrix::identity(n);

    let max_sweeps = 60;
    let tol = 1e-14;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for the 2×2 subproblem.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = C_ZERO;
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)];
                    app += wp.norm_sqr();
                    aqq += wq.norm_sqr();
                    apq = wp.conj().mul_add(wq, apq);
                }
                let apq_abs = apq.abs();
                off = off.max(apq_abs / (app * aqq).sqrt().max(1e-300));
                if apq_abs <= tol * (app * aqq).sqrt() {
                    continue;
                }
                // Complex Jacobi rotation diagonalising [[app, apq],[apq†, aqq]].
                let phase = apq * (1.0 / apq_abs);
                let tau = (aqq - app) / (2.0 * apq_abs);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Column update: [wp, wq] ← [c·wp − s·conj(phase)·wq?, ...]
                // Using the standard one-sided scheme:
                //   wp' = c·wp − s·phase†... derive: rotate in the (p,q) plane
                //   with complex phase applied to the q column.
                for i in 0..m {
                    let wp = w[(i, p)];
                    let wq = w[(i, q)] * phase.conj();
                    w[(i, p)] = wp.scale(c) - wq.scale(s);
                    w[(i, q)] = (wp.scale(s) + wq.scale(c)) * phase;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)] * phase.conj();
                    v[(i, p)] = vp.scale(c) - vq.scale(s);
                    v[(i, q)] = (vp.scale(s) + vq.scale(c)) * phase;
                }
            }
        }
        if off < 1e-13 {
            break;
        }
    }

    // Extract singular values and normalise columns of W into U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sig = vec![0.0f64; n];
    for j in 0..n {
        sig[j] = (0..m).map(|i| w[(i, j)].norm_sqr()).sum::<f64>().sqrt();
    }
    order.sort_by(|&i, &j| sig[j].partial_cmp(&sig[i]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (dst, &src) in order.iter().enumerate() {
        let s = sig[src];
        sigma.push(s);
        if s > 1e-300 {
            let inv = 1.0 / s;
            for i in 0..m {
                u[(i, dst)] = w[(i, src)].scale(inv);
            }
        } else {
            // Null singular value: fill with a unit vector orthogonal to the
            // others (Gram–Schmidt against previously placed columns).
            let mut e = vec![C_ZERO; m];
            'basis: for b in 0..m {
                for z in e.iter_mut() {
                    *z = C_ZERO;
                }
                e[b] = C_ONE;
                for jj in 0..dst {
                    let col: Vec<Complex64> = (0..m).map(|i| u[(i, jj)]).collect();
                    let ov = crate::vector::inner(&col, &e);
                    for i in 0..m {
                        let sub = col[i] * ov;
                        e[i] -= sub;
                    }
                }
                let nrm = crate::vector::norm(&e);
                if nrm > 1e-6 {
                    for z in e.iter_mut() {
                        *z = z.scale(1.0 / nrm);
                    }
                    break 'basis;
                }
            }
            for i in 0..m {
                u[(i, dst)] = e[i];
            }
        }
        for i in 0..n {
            v_sorted[(i, dst)] = v[(i, src)];
        }
    }

    Svd {
        u,
        sigma,
        v: v_sorted,
    }
}

impl Svd {
    /// Reconstructs `U · diag(σ) · V†`; used by tests.
    pub fn reconstruct(&self) -> Matrix {
        let k = self.sigma.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.rows() {
                us[(i, j)] = us[(i, j)].scale(self.sigma[j]);
            }
        }
        us.matmul(&self.v.dagger())
    }

    /// Numerical rank at tolerance `tol` (relative to the largest σ).
    pub fn rank(&self, tol: f64) -> usize {
        let s0 = self.sigma.first().copied().unwrap_or(0.0);
        if s0 == 0.0 {
            return 0;
        }
        self.sigma.iter().filter(|&&s| s > tol * s0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn sample(m: usize, n: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        Matrix::from_fn(m, n, |_, _| c64(next(), next()))
    }

    #[test]
    fn reconstruction_square() {
        for n in [1, 2, 3, 4] {
            let a = sample(n, n, 10 + n as u64);
            let d = svd(&a);
            assert!(
                d.reconstruct().approx_eq(&a, 1e-9),
                "SVD reconstruct failed n={n}"
            );
        }
    }

    #[test]
    fn reconstruction_tall_and_wide() {
        let a = sample(4, 2, 3);
        let d = svd(&a);
        assert!(d.reconstruct().approx_eq(&a, 1e-9));
        let b = sample(2, 4, 5);
        let db = svd(&b);
        assert!(db.reconstruct().approx_eq(&b, 1e-9));
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = sample(4, 4, 21);
        let d = svd(&a);
        for w in d.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(d.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn u_and_v_have_orthonormal_columns() {
        let a = sample(4, 3, 33);
        let d = svd(&a);
        let utu = d.u.dagger().matmul(&d.u);
        assert!(utu.approx_eq(&Matrix::identity(3), 1e-9));
        let vtv = d.v.dagger().matmul(&d.v);
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn rank_one_matrix_detected() {
        let u = [c64(0.6, 0.0), c64(0.8, 0.0)];
        let v = [c64(1.0, 0.0), c64(0.0, 1.0)];
        let a = Matrix::from_fn(2, 2, |i, j| u[i] * v[j].conj());
        let d = svd(&a);
        assert_eq!(d.rank(1e-10), 1);
        assert!((d.sigma[0] - (2.0f64).sqrt()).abs() < 1e-10);
        assert!(d.sigma[1].abs() < 1e-10);
        assert!(d.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn svd_of_unitary_has_unit_singular_values() {
        // H gate is unitary: all σ = 1.
        let h = Matrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(1.0, 0.0)],
            vec![c64(1.0, 0.0), c64(-1.0, 0.0)],
        ])
        .scale_re(std::f64::consts::FRAC_1_SQRT_2);
        let d = svd(&h);
        for s in d.sigma {
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn zero_matrix_svd() {
        let a = Matrix::zeros(3, 3);
        let d = svd(&a);
        assert!(d.sigma.iter().all(|&s| s.abs() < 1e-12));
        assert_eq!(d.rank(1e-10), 0);
        assert!(d.reconstruct().approx_eq(&a, 1e-12));
    }

    #[test]
    fn schmidt_coefficients_of_bell_state_matrix() {
        // |Φ⟩ = (|00⟩+|11⟩)/√2 has coefficient matrix diag(1/√2, 1/√2).
        let isq = std::f64::consts::FRAC_1_SQRT_2;
        let a = Matrix::from_rows(&[
            vec![c64(isq, 0.0), c64(0.0, 0.0)],
            vec![c64(0.0, 0.0), c64(isq, 0.0)],
        ]);
        let d = svd(&a);
        assert!((d.sigma[0] - isq).abs() < 1e-12);
        assert!((d.sigma[1] - isq).abs() < 1e-12);
    }
}

//! Complex vector helpers.
//!
//! State vectors live in `qsim` as plain `Vec<Complex64>` buffers; the
//! free functions here provide the algebra (inner products, norms, outer
//! products) shared by the simulator, the entanglement toolkit and tests.

use crate::complex::{Complex64, C_ZERO};
use crate::matrix::Matrix;

/// Hermitian inner product `⟨a|b⟩ = Σᵢ conj(aᵢ)·bᵢ`.
pub fn inner(a: &[Complex64], b: &[Complex64]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "inner product length mismatch");
    let mut acc = C_ZERO;
    for (&x, &y) in a.iter().zip(b.iter()) {
        acc = x.conj().mul_add(y, acc);
    }
    acc
}

/// Squared 2-norm `Σ|aᵢ|²`.
pub fn norm_sqr(a: &[Complex64]) -> f64 {
    a.iter().map(|z| z.norm_sqr()).sum()
}

/// 2-norm `√Σ|aᵢ|²`.
pub fn norm(a: &[Complex64]) -> f64 {
    norm_sqr(a).sqrt()
}

/// 1-norm `Σ|aᵢ|` (used by the distillation norm of Appendix A).
pub fn norm1(a: &[Complex64]) -> f64 {
    a.iter().map(|z| z.abs()).sum()
}

/// Rescales `a` to unit 2-norm in place. No-op on the zero vector.
pub fn normalize(a: &mut [Complex64]) {
    let n = norm(a);
    if n > 0.0 {
        let inv = 1.0 / n;
        for z in a.iter_mut() {
            *z = z.scale(inv);
        }
    }
}

/// Outer product `|a⟩⟨b|` as a dense matrix.
pub fn outer(a: &[Complex64], b: &[Complex64]) -> Matrix {
    let mut m = Matrix::zeros(a.len(), b.len());
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            m[(i, j)] = ai * bj.conj();
        }
    }
    m
}

/// Kronecker product of two state vectors: `|a⟩ ⊗ |b⟩`.
///
/// With the simulator's little-endian convention, `kron_vec(a, b)` places
/// `a` on the *more significant* qubits and `b` on the less significant
/// ones, mirroring [`Matrix::kron`].
pub fn kron_vec(a: &[Complex64], b: &[Complex64]) -> Vec<Complex64> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            out.push(x * y);
        }
    }
    out
}

/// `a + s·b` elementwise.
pub fn axpy(a: &mut [Complex64], s: Complex64, b: &[Complex64]) {
    assert_eq!(a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        *x += s * y;
    }
}

/// Entrywise approximate equality.
pub fn approx_eq(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.approx_eq(*y, tol))
}

/// Approximate equality of states *up to global phase*: computes the
/// overlap and checks `|⟨a|b⟩| ≈ ‖a‖·‖b‖`.
pub fn approx_eq_up_to_phase(a: &[Complex64], b: &[Complex64], tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let ov = inner(a, b).abs();
    (ov - norm(a) * norm(b)).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::{c64, C_I, C_ONE};

    #[test]
    fn inner_product_conjugates_left() {
        let a = vec![C_I];
        let b = vec![C_ONE];
        // ⟨i|1⟩ = conj(i)·1 = -i
        assert!(inner(&a, &b).approx_eq(c64(0.0, -1.0), 1e-14));
    }

    #[test]
    fn norms_agree() {
        let a = vec![c64(3.0, 0.0), c64(0.0, 4.0)];
        assert!((norm_sqr(&a) - 25.0).abs() < 1e-12);
        assert!((norm(&a) - 5.0).abs() < 1e-12);
        assert!((norm1(&a) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut a = vec![c64(1.0, 1.0), c64(2.0, -1.0), c64(0.0, 3.0)];
        normalize(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut a = vec![c64(0.0, 0.0); 4];
        normalize(&mut a);
        assert!(a.iter().all(|z| *z == c64(0.0, 0.0)));
    }

    #[test]
    fn outer_product_shape_and_values() {
        let a = vec![C_ONE, C_I];
        let m = outer(&a, &a);
        // |a⟩⟨a| with a=(1, i): m[0,1] = 1·conj(i) = -i; m[1,0] = i
        assert!(m[(0, 1)].approx_eq(c64(0.0, -1.0), 1e-14));
        assert!(m[(1, 0)].approx_eq(C_I, 1e-14));
        assert!(m.is_hermitian(1e-14));
        assert!(m.trace().approx_eq(c64(2.0, 0.0), 1e-14));
    }

    #[test]
    fn kron_vec_matches_matrix_kron_on_columns() {
        let a = vec![c64(1.0, 0.0), c64(2.0, 0.0)];
        let b = vec![c64(0.0, 1.0), c64(3.0, 0.0)];
        let v = kron_vec(&a, &b);
        assert_eq!(v.len(), 4);
        assert!(v[0].approx_eq(c64(0.0, 1.0), 1e-14)); // a0*b0
        assert!(v[1].approx_eq(c64(3.0, 0.0), 1e-14)); // a0*b1
        assert!(v[2].approx_eq(c64(0.0, 2.0), 1e-14)); // a1*b0
        assert!(v[3].approx_eq(c64(6.0, 0.0), 1e-14)); // a1*b1
    }

    #[test]
    fn up_to_phase_equality() {
        let a = vec![c64(1.0, 0.0), c64(0.0, 0.0)];
        let b = vec![Complex64::cis(1.3), c64(0.0, 0.0)];
        assert!(approx_eq_up_to_phase(&a, &b, 1e-12));
        let c = vec![c64(0.0, 0.0), c64(1.0, 0.0)];
        assert!(!approx_eq_up_to_phase(&a, &c, 1e-12));
    }

    #[test]
    fn axpy_vector_accumulates() {
        let mut a = vec![C_ONE, c64(0.0, 0.0)];
        axpy(&mut a, c64(2.0, 0.0), &[C_I, C_ONE]);
        assert!(a[0].approx_eq(c64(1.0, 2.0), 1e-14));
        assert!(a[1].approx_eq(c64(2.0, 0.0), 1e-14));
    }
}

//! Shot allocation strategies.
//!
//! The paper's experiment (Section IV) distributes a fixed total shot
//! budget across the three subcircuits "proportionally to their
//! coefficients". Alternatives are provided for the allocation ablation
//! (experiment E8 in DESIGN.md): uniform splitting and fully stochastic
//! per-shot term selection (the Monte Carlo scheme of Eq. 12).

use crate::spec::QpdSpec;
use rand::Rng;

/// A strategy for splitting a total shot budget across QPD terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Allocator {
    /// `nᵢ ∝ |cᵢ|` with largest-remainder rounding — the paper's choice.
    Proportional,
    /// Equal shots per term regardless of coefficients.
    Uniform,
}

/// The single panic message every allocation entry point raises for an
/// empty term list, so callers see one clear diagnosis instead of a
/// divide-by-zero or a bare slice assertion depending on the strategy.
pub(crate) const EMPTY_TERMS_MSG: &str = "cannot allocate shots across an empty QPD term list";

impl Allocator {
    /// Splits `total` shots across the terms of `spec`. The returned
    /// counts sum to exactly `total`.
    ///
    /// # Panics
    /// Panics with a uniform message if `spec` has no
    /// terms (unreachable through `QpdSpec`'s public constructors, which
    /// reject empty decompositions — the guard is for future spec
    /// sources).
    pub fn allocate(self, spec: &QpdSpec, total: u64) -> Vec<u64> {
        assert!(!spec.is_empty(), "{EMPTY_TERMS_MSG}");
        match self {
            Allocator::Proportional => largest_remainder(&spec.probabilities(), total),
            Allocator::Uniform => {
                let m = spec.len() as u64;
                let base = total / m;
                let extra = (total % m) as usize;
                (0..spec.len())
                    .map(|i| base + u64::from(i < extra))
                    .collect()
            }
        }
    }
}

/// Neyman (variance-optimal) allocation: `nᵢ ∝ |cᵢ|·σᵢ`, minimising the
/// estimator variance `Σ cᵢ²σᵢ²/nᵢ` for known per-term standard
/// deviations `σᵢ` (e.g. `√(1 − ⟨Z⟩ᵢ²)` for Pauli observables).
///
/// The paper's proportional split is the `σᵢ ≡ const` special case; when
/// a term's expectation sits near ±1 its variance vanishes and Neyman
/// reallocates its shots to noisier terms. Terms with `σᵢ = 0` still get
/// a floor of one shot each (their mean is needed, noiselessly).
pub fn neyman_allocation(spec: &QpdSpec, sigmas: &[f64], total: u64) -> Vec<u64> {
    assert!(!spec.is_empty(), "{EMPTY_TERMS_MSG}");
    assert_eq!(spec.len(), sigmas.len());
    // Reject non-finite σ up front: an `inf` here would meet a zero
    // coefficient as `inf · 0 = NaN` in the weights, which used to
    // surface as an opaque `partial_cmp` unwrap inside the remainder
    // sort rather than naming the offending input.
    assert!(
        sigmas.iter().all(|&s| s.is_finite() && s >= 0.0),
        "per-term σ must be finite and non-negative: {sigmas:?}"
    );
    let weights: Vec<f64> = spec
        .terms()
        .iter()
        .zip(sigmas.iter())
        .map(|(t, &s)| t.coefficient.abs() * s)
        .collect();
    let wsum: f64 = weights.iter().sum();
    if wsum < 1e-300 {
        // All terms noiseless: fall back to proportional.
        return Allocator::Proportional.allocate(spec, total);
    }
    let m = spec.len() as u64;
    if total <= m {
        return Allocator::Uniform.allocate(spec, total);
    }
    // Reserve one shot per term, Neyman-split the rest.
    let mut counts = largest_remainder(&weights, total - m);
    for c in counts.iter_mut() {
        *c += 1;
    }
    counts
}

/// Largest-remainder apportionment of `total` into parts proportional to
/// `weights` (finite, non-negative, any positive sum).
///
/// # Panics
/// Panics with a uniform message on an empty weight
/// vector, and with a diagnostic naming the weights if any weight is
/// non-finite or negative, or if all weights are zero.
pub fn largest_remainder(weights: &[f64], total: u64) -> Vec<u64> {
    assert!(!weights.is_empty(), "{EMPTY_TERMS_MSG}");
    // Validate before any arithmetic: a NaN weight (e.g. `inf · 0` from
    // a degenerate σ upstream) previously survived to the remainder sort
    // and died in a bare `partial_cmp(..).unwrap()`.
    assert!(
        weights.iter().all(|&w| w.is_finite() && w >= 0.0),
        "allocation weights must be finite and non-negative: {weights:?}"
    );
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "zero weight vector: {weights:?}");
    let ideal: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut counts: Vec<u64> = ideal.iter().map(|x| x.floor() as u64).collect();
    let mut assigned: u64 = counts.iter().sum();
    // Distribute the remainder to the largest fractional parts.
    // `total_cmp` keeps the sort well-defined for every float — the
    // validation above already excludes NaN, but the comparator no
    // longer has a panic path at all.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&i, &j| {
        let fi = ideal[i] - ideal[i].floor();
        let fj = ideal[j] - ideal[j].floor();
        fj.total_cmp(&fi)
    });
    let mut idx = 0;
    while assigned < total {
        counts[order[idx % order.len()]] += 1;
        assigned += 1;
        idx += 1;
    }
    counts
}

/// Samples a multinomial allocation: `total` term indices i.i.d. with
/// probabilities `pᵢ = |cᵢ|/κ` — the allocation induced by the
/// stochastic Monte Carlo estimator of Eq. 12, drawn as one batched
/// multinomial (`O(#terms)` RNG work instead of one draw per shot).
pub fn stochastic_allocation<R: Rng + ?Sized>(spec: &QpdSpec, total: u64, rng: &mut R) -> Vec<u64> {
    qsample::multinomial(total, &spec.probabilities(), rng)
}

/// Online (sequential) shot allocation: pools per-term sample statistics
/// across batches and proposes the next batch's split via
/// [`neyman_allocation`] on the *observed* standard deviations.
///
/// [`neyman_allocation`] needs the σᵢ up front, which a live estimation
/// job doesn't have. This accumulator closes that gap: the first batch
/// runs on a static split (no data yet), every later batch runs on
/// σ̂ᵢ estimated from all samples so far, and as the pooled counts grow
/// the proposals converge to the true Neyman optimum. For ±1
/// observables the per-term variance is determined by the mean
/// (`σ² = 1 − ⟨Z⟩²`), so recording each batch's **sum** is sufficient.
///
/// The σ̂ estimate is shrunk toward 1 (the maximal σ for a ±1
/// observable) with pseudo-count 1: `σ̂² = ((1 − mean²)·n + 1)/(n + 1)`.
/// Early batches therefore never zero out a term whose sample mean
/// happens to sit at ±1 — a term starved to zero shots would never be
/// re-measured and its (possibly wrong) mean would be frozen forever.
#[derive(Clone, Debug, Default)]
pub struct SequentialAllocator {
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl SequentialAllocator {
    /// An empty accumulator for `num_terms` QPD terms.
    pub fn new(num_terms: usize) -> Self {
        assert!(num_terms > 0, "{EMPTY_TERMS_MSG}");
        SequentialAllocator {
            sums: vec![0.0; num_terms],
            counts: vec![0; num_terms],
        }
    }

    /// Records one batch's result for `term`: the sum of its `shots`
    /// single-shot ±1 observations.
    pub fn record(&mut self, term: usize, sample_sum: f64, shots: u64) {
        self.sums[term] += sample_sum;
        self.counts[term] += shots;
    }

    /// Pooled shots recorded for `term` so far.
    pub fn count(&self, term: usize) -> u64 {
        self.counts[term]
    }

    /// Pooled sample mean of `term` (`0.0` before any data).
    pub fn mean(&self, term: usize) -> f64 {
        if self.counts[term] == 0 {
            0.0
        } else {
            self.sums[term] / self.counts[term] as f64
        }
    }

    /// Shrunk per-term standard-deviation estimates
    /// `σ̂ᵢ = √(((1 − meanᵢ²)·nᵢ + 1)/(nᵢ + 1))`; `1.0` for unseen terms.
    pub fn sigma_estimates(&self) -> Vec<f64> {
        self.sums
            .iter()
            .zip(self.counts.iter())
            .map(|(&sum, &n)| {
                if n == 0 {
                    1.0
                } else {
                    let mean = (sum / n as f64).clamp(-1.0, 1.0);
                    let var = (1.0 - mean * mean).max(0.0);
                    ((var * n as f64 + 1.0) / (n as f64 + 1.0)).sqrt()
                }
            })
            .collect()
    }

    /// Proposes the split of the next `batch` shots: Neyman-optimal for
    /// the current σ̂ estimates. Before any data this equals the
    /// proportional split (all σ̂ = 1). Sums to exactly `batch`.
    pub fn next_allocation(&self, spec: &QpdSpec, batch: u64) -> Vec<u64> {
        assert_eq!(spec.len(), self.sums.len());
        neyman_allocation(spec, &self.sigma_estimates(), batch)
    }

    /// The pooled estimate `Σᵢ cᵢ · meanᵢ` over everything recorded so
    /// far. Unbiased for the decomposed expectation as long as every
    /// term has at least one pooled shot (guaranteed after one batch,
    /// since [`neyman_allocation`] floors every term at one shot).
    pub fn estimate(&self, spec: &QpdSpec) -> f64 {
        assert_eq!(spec.len(), self.sums.len());
        spec.terms()
            .iter()
            .enumerate()
            .map(|(i, t)| t.coefficient * self.mean(i))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec_abc() -> QpdSpec {
        QpdSpec::from_parts(&[(0.6, "a", 1.0), (0.6, "b", 1.0), (-0.2, "c", 0.0)])
    }

    #[test]
    fn proportional_allocation_sums_to_total() {
        let spec = spec_abc();
        for total in [0u64, 1, 7, 100, 4999, 5000] {
            let alloc = Allocator::Proportional.allocate(&spec, total);
            assert_eq!(alloc.iter().sum::<u64>(), total, "total {total}");
        }
    }

    #[test]
    fn proportional_allocation_tracks_weights() {
        let spec = spec_abc();
        // κ = 1.4, probabilities (3/7, 3/7, 1/7)
        let alloc = Allocator::Proportional.allocate(&spec, 7000);
        assert_eq!(alloc, vec![3000, 3000, 1000]);
    }

    #[test]
    fn uniform_allocation_balances() {
        let spec = spec_abc();
        let alloc = Allocator::Uniform.allocate(&spec, 10);
        assert_eq!(alloc.iter().sum::<u64>(), 10);
        assert_eq!(alloc, vec![4, 3, 3]);
    }

    #[test]
    fn largest_remainder_exactness() {
        // 3 parts of weight 1/3 with total 10: counts (4, 3, 3).
        let counts = largest_remainder(&[1.0 / 3.0; 3], 10);
        assert_eq!(counts.iter().sum::<u64>(), 10);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn stochastic_allocation_concentrates() {
        let spec = spec_abc();
        let mut rng = StdRng::seed_from_u64(1);
        let alloc = stochastic_allocation(&spec, 70_000, &mut rng);
        assert_eq!(alloc.iter().sum::<u64>(), 70_000);
        let f0 = alloc[0] as f64 / 70_000.0;
        assert!((f0 - 3.0 / 7.0).abs() < 0.01, "stochastic fraction {f0}");
    }

    #[test]
    fn neyman_matches_proportional_for_equal_sigmas() {
        let spec = spec_abc();
        let ney = neyman_allocation(&spec, &[1.0, 1.0, 1.0], 7000);
        let prop = Allocator::Proportional.allocate(&spec, 7000);
        for (a, b) in ney.iter().zip(prop.iter()) {
            assert!((*a as i64 - *b as i64).abs() <= 3, "{ney:?} vs {prop:?}");
        }
        assert_eq!(ney.iter().sum::<u64>(), 7000);
    }

    #[test]
    fn neyman_starves_noiseless_terms() {
        let spec = spec_abc();
        let alloc = neyman_allocation(&spec, &[1.0, 0.0, 1.0], 1000);
        assert_eq!(alloc.iter().sum::<u64>(), 1000);
        assert_eq!(alloc[1], 1, "noiseless term should get the floor only");
        assert!(alloc[0] > 700, "noisy heavy term underfunded: {alloc:?}");
    }

    #[test]
    fn neyman_all_noiseless_falls_back() {
        let spec = spec_abc();
        let alloc = neyman_allocation(&spec, &[0.0, 0.0, 0.0], 700);
        assert_eq!(alloc.iter().sum::<u64>(), 700);
        assert_eq!(alloc, Allocator::Proportional.allocate(&spec, 700));
    }

    #[test]
    fn neyman_minimises_predicted_variance() {
        // Compare Σ c²σ²/n against the proportional split on an asymmetric
        // instance: Neyman must be no worse.
        let spec = spec_abc();
        let sigmas = [0.2, 1.0, 0.9];
        let total = 5000;
        let var = |alloc: &[u64]| -> f64 {
            spec.terms()
                .iter()
                .zip(sigmas.iter())
                .zip(alloc.iter())
                .map(|((t, &s), &n)| {
                    if n == 0 {
                        0.0
                    } else {
                        t.coefficient.powi(2) * s * s / n as f64
                    }
                })
                .sum()
        };
        let v_ney = var(&neyman_allocation(&spec, &sigmas, total));
        let v_prop = var(&Allocator::Proportional.allocate(&spec, total));
        assert!(
            v_ney <= v_prop * 1.001,
            "Neyman {v_ney} worse than proportional {v_prop}"
        );
    }

    #[test]
    fn zero_total_allocations() {
        let spec = spec_abc();
        assert_eq!(Allocator::Proportional.allocate(&spec, 0), vec![0, 0, 0]);
        assert_eq!(Allocator::Uniform.allocate(&spec, 0), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "cannot allocate shots across an empty QPD term list")]
    fn empty_weights_get_the_uniform_message() {
        largest_remainder(&[], 100);
    }

    #[test]
    #[should_panic(expected = "weights must be finite and non-negative")]
    fn nan_weight_is_named_not_an_opaque_unwrap() {
        // Regression: `inf · 0 = NaN` weights used to die inside the
        // remainder sort's `partial_cmp(..).unwrap()`.
        largest_remainder(&[0.5, f64::NAN, 0.5], 100);
    }

    #[test]
    #[should_panic(expected = "weights must be finite and non-negative")]
    fn infinite_weight_is_rejected() {
        largest_remainder(&[0.5, f64::INFINITY], 100);
    }

    #[test]
    #[should_panic(expected = "weights must be finite and non-negative")]
    fn negative_weight_is_rejected() {
        largest_remainder(&[0.5, -0.1, 0.6], 100);
    }

    #[test]
    #[should_panic(expected = "zero weight vector")]
    fn all_zero_weights_are_rejected() {
        largest_remainder(&[0.0, 0.0], 100);
    }

    #[test]
    #[should_panic(expected = "σ must be finite and non-negative")]
    fn neyman_rejects_infinite_sigma() {
        // Regression: an `inf` σ against a zero coefficient produced a
        // NaN weight and an opaque panic downstream.
        let spec = spec_abc();
        neyman_allocation(&spec, &[1.0, f64::INFINITY, 1.0], 1000);
    }

    #[test]
    #[should_panic(expected = "σ must be finite and non-negative")]
    fn neyman_rejects_nan_sigma() {
        let spec = spec_abc();
        neyman_allocation(&spec, &[1.0, f64::NAN, 1.0], 1000);
    }

    #[test]
    fn neyman_with_budget_below_term_count() {
        // total < #terms falls back to the uniform split (some terms get
        // zero shots — there is no room for the one-shot floor).
        let spec = spec_abc();
        for total in [0u64, 1, 2] {
            let alloc = neyman_allocation(&spec, &[0.3, 1.0, 0.7], total);
            assert_eq!(alloc.iter().sum::<u64>(), total, "total {total}");
            assert_eq!(alloc, Allocator::Uniform.allocate(&spec, total));
        }
        // total == #terms: everyone gets exactly one.
        assert_eq!(neyman_allocation(&spec, &[0.3, 1.0, 0.7], 3), vec![1; 3]);
    }

    #[test]
    fn sequential_starts_proportional() {
        let spec = spec_abc();
        let seq = SequentialAllocator::new(spec.len());
        assert_eq!(seq.sigma_estimates(), vec![1.0; 3]);
        let first = seq.next_allocation(&spec, 7000);
        let prop = Allocator::Proportional.allocate(&spec, 7000);
        assert_eq!(first.iter().sum::<u64>(), 7000);
        for (a, b) in first.iter().zip(prop.iter()) {
            assert!((*a as i64 - *b as i64).abs() <= 3, "{first:?} vs {prop:?}");
        }
    }

    #[test]
    fn sequential_converges_to_neyman() {
        // Feed the accumulator exact means; its proposals must approach
        // the oracle Neyman split for the implied σ.
        let spec = spec_abc();
        let means = [0.98, 0.1, 0.5];
        let mut seq = SequentialAllocator::new(spec.len());
        for (i, &m) in means.iter().enumerate() {
            let n = 100_000u64;
            seq.record(i, m * n as f64, n);
        }
        let sigmas: Vec<f64> = means.iter().map(|m| (1.0 - m * m).sqrt()).collect();
        let oracle = neyman_allocation(&spec, &sigmas, 10_000);
        let proposed = seq.next_allocation(&spec, 10_000);
        assert_eq!(proposed.iter().sum::<u64>(), 10_000);
        for (p, o) in proposed.iter().zip(oracle.iter()) {
            assert!(
                (*p as i64 - *o as i64).abs() <= 20,
                "proposal {proposed:?} far from oracle {oracle:?}"
            );
        }
    }

    #[test]
    fn sequential_shrinkage_never_starves_a_term() {
        // A term whose early mean sits exactly at +1 keeps σ̂ > 0, so it
        // keeps receiving shots beyond the one-shot floor eventually.
        let spec = spec_abc();
        let mut seq = SequentialAllocator::new(spec.len());
        seq.record(0, 4.0, 4); // mean exactly +1 → raw σ = 0
        seq.record(1, 0.0, 4);
        seq.record(2, 0.0, 4);
        let sig = seq.sigma_estimates();
        assert!(sig[0] > 0.0, "shrinkage must keep σ̂ positive: {sig:?}");
        assert!(sig[0] < sig[1], "σ̂ ordering lost: {sig:?}");
    }

    #[test]
    fn sequential_estimate_pools_batches() {
        let spec = spec_abc();
        let mut seq = SequentialAllocator::new(spec.len());
        // Two batches per term; pooled mean is the shot-weighted mean.
        for (i, mean) in [(0usize, 0.3f64), (1, 0.5), (2, 0.36)] {
            seq.record(i, mean * 100.0, 100);
            seq.record(i, mean * 300.0, 300);
            assert!((seq.mean(i) - mean).abs() < 1e-12);
            assert_eq!(seq.count(i), 400);
        }
        // 0.6·0.3 + 0.6·0.5 − 0.2·0.36 = 0.408
        assert!((seq.estimate(&spec) - 0.408).abs() < 1e-12);
    }

    #[test]
    fn sequential_realised_variance_beats_proportional_on_asymmetric_sigmas() {
        // The acceptance-criterion property at the allocator level: with
        // one near-deterministic heavy term, sequential reallocation must
        // realise no more estimator variance than the static
        // proportional split at equal total shots.
        use crate::estimator::{estimate_with_allocation, BernoulliTerm, TermSampler};
        use qsample::StreamRng;
        let spec = QpdSpec::from_parts(&[(1.0, "a", 0.0), (1.0, "b", 0.0), (-1.0, "c", 0.0)]);
        let terms = [
            BernoulliTerm { expectation: 0.99 }, // σ ≈ 0.14
            BernoulliTerm { expectation: 0.0 },  // σ = 1
            BernoulliTerm { expectation: 0.3 },  // σ ≈ 0.95
        ];
        let refs: Vec<&dyn TermSampler> = terms.iter().map(|t| t as &dyn TermSampler).collect();
        let exact = 0.99 + 0.0 - 0.3;
        let total = 1200u64;
        let batches = 4u64;
        let reps = 400;
        let mut mse_static = 0.0;
        let mut mse_seq = 0.0;
        for rep in 0..reps {
            let mut rng = StreamRng::new(0xA110C, rep);
            let est = estimate_with_allocation(
                &spec,
                &refs,
                &Allocator::Proportional.allocate(&spec, total),
                &mut rng,
            );
            mse_static += (est - exact) * (est - exact);
            let mut seq = SequentialAllocator::new(spec.len());
            let mut rng = StreamRng::new(0x5E0, rep);
            let per_batch = total / batches;
            for _ in 0..batches {
                let alloc = seq.next_allocation(&spec, per_batch);
                for (i, (&n, term)) in alloc.iter().zip(refs.iter()).enumerate() {
                    if n > 0 {
                        seq.record(i, term.sample_observable_sum(n, &mut rng), n);
                    }
                }
            }
            let est = seq.estimate(&spec);
            mse_seq += (est - exact) * (est - exact);
        }
        assert!(
            mse_seq <= mse_static,
            "sequential MSE {mse_seq} above static proportional {mse_static}"
        );
    }
}

//! Shot allocation strategies.
//!
//! The paper's experiment (Section IV) distributes a fixed total shot
//! budget across the three subcircuits "proportionally to their
//! coefficients". Alternatives are provided for the allocation ablation
//! (experiment E8 in DESIGN.md): uniform splitting and fully stochastic
//! per-shot term selection (the Monte Carlo scheme of Eq. 12).

use crate::spec::QpdSpec;
use rand::Rng;

/// A strategy for splitting a total shot budget across QPD terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Allocator {
    /// `nᵢ ∝ |cᵢ|` with largest-remainder rounding — the paper's choice.
    Proportional,
    /// Equal shots per term regardless of coefficients.
    Uniform,
}

impl Allocator {
    /// Splits `total` shots across the terms of `spec`. The returned
    /// counts sum to exactly `total`.
    pub fn allocate(self, spec: &QpdSpec, total: u64) -> Vec<u64> {
        match self {
            Allocator::Proportional => largest_remainder(&spec.probabilities(), total),
            Allocator::Uniform => {
                let m = spec.len() as u64;
                let base = total / m;
                let extra = (total % m) as usize;
                (0..spec.len())
                    .map(|i| base + u64::from(i < extra))
                    .collect()
            }
        }
    }
}

/// Neyman (variance-optimal) allocation: `nᵢ ∝ |cᵢ|·σᵢ`, minimising the
/// estimator variance `Σ cᵢ²σᵢ²/nᵢ` for known per-term standard
/// deviations `σᵢ` (e.g. `√(1 − ⟨Z⟩ᵢ²)` for Pauli observables).
///
/// The paper's proportional split is the `σᵢ ≡ const` special case; when
/// a term's expectation sits near ±1 its variance vanishes and Neyman
/// reallocates its shots to noisier terms. Terms with `σᵢ = 0` still get
/// a floor of one shot each (their mean is needed, noiselessly).
pub fn neyman_allocation(spec: &QpdSpec, sigmas: &[f64], total: u64) -> Vec<u64> {
    assert_eq!(spec.len(), sigmas.len());
    assert!(sigmas.iter().all(|&s| s >= 0.0), "negative σ");
    let weights: Vec<f64> = spec
        .terms()
        .iter()
        .zip(sigmas.iter())
        .map(|(t, &s)| t.coefficient.abs() * s)
        .collect();
    let wsum: f64 = weights.iter().sum();
    if wsum < 1e-300 {
        // All terms noiseless: fall back to proportional.
        return Allocator::Proportional.allocate(spec, total);
    }
    let m = spec.len() as u64;
    if total <= m {
        return Allocator::Uniform.allocate(spec, total);
    }
    // Reserve one shot per term, Neyman-split the rest.
    let mut counts = largest_remainder(&weights, total - m);
    for c in counts.iter_mut() {
        *c += 1;
    }
    counts
}

/// Largest-remainder apportionment of `total` into parts proportional to
/// `weights` (non-negative, summing to ~1).
pub fn largest_remainder(weights: &[f64], total: u64) -> Vec<u64> {
    assert!(!weights.is_empty());
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "zero weight vector");
    let ideal: Vec<f64> = weights.iter().map(|w| w / sum * total as f64).collect();
    let mut counts: Vec<u64> = ideal.iter().map(|x| x.floor() as u64).collect();
    let mut assigned: u64 = counts.iter().sum();
    // Distribute the remainder to the largest fractional parts.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&i, &j| {
        let fi = ideal[i] - ideal[i].floor();
        let fj = ideal[j] - ideal[j].floor();
        fj.partial_cmp(&fi).unwrap()
    });
    let mut idx = 0;
    while assigned < total {
        counts[order[idx % order.len()]] += 1;
        assigned += 1;
        idx += 1;
    }
    counts
}

/// Samples a multinomial allocation: `total` term indices i.i.d. with
/// probabilities `pᵢ = |cᵢ|/κ` — the allocation induced by the
/// stochastic Monte Carlo estimator of Eq. 12, drawn as one batched
/// multinomial (`O(#terms)` RNG work instead of one draw per shot).
pub fn stochastic_allocation<R: Rng + ?Sized>(spec: &QpdSpec, total: u64, rng: &mut R) -> Vec<u64> {
    qsample::multinomial(total, &spec.probabilities(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec_abc() -> QpdSpec {
        QpdSpec::from_parts(&[(0.6, "a", 1.0), (0.6, "b", 1.0), (-0.2, "c", 0.0)])
    }

    #[test]
    fn proportional_allocation_sums_to_total() {
        let spec = spec_abc();
        for total in [0u64, 1, 7, 100, 4999, 5000] {
            let alloc = Allocator::Proportional.allocate(&spec, total);
            assert_eq!(alloc.iter().sum::<u64>(), total, "total {total}");
        }
    }

    #[test]
    fn proportional_allocation_tracks_weights() {
        let spec = spec_abc();
        // κ = 1.4, probabilities (3/7, 3/7, 1/7)
        let alloc = Allocator::Proportional.allocate(&spec, 7000);
        assert_eq!(alloc, vec![3000, 3000, 1000]);
    }

    #[test]
    fn uniform_allocation_balances() {
        let spec = spec_abc();
        let alloc = Allocator::Uniform.allocate(&spec, 10);
        assert_eq!(alloc.iter().sum::<u64>(), 10);
        assert_eq!(alloc, vec![4, 3, 3]);
    }

    #[test]
    fn largest_remainder_exactness() {
        // 3 parts of weight 1/3 with total 10: counts (4, 3, 3).
        let counts = largest_remainder(&[1.0 / 3.0; 3], 10);
        assert_eq!(counts.iter().sum::<u64>(), 10);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn stochastic_allocation_concentrates() {
        let spec = spec_abc();
        let mut rng = StdRng::seed_from_u64(1);
        let alloc = stochastic_allocation(&spec, 70_000, &mut rng);
        assert_eq!(alloc.iter().sum::<u64>(), 70_000);
        let f0 = alloc[0] as f64 / 70_000.0;
        assert!((f0 - 3.0 / 7.0).abs() < 0.01, "stochastic fraction {f0}");
    }

    #[test]
    fn neyman_matches_proportional_for_equal_sigmas() {
        let spec = spec_abc();
        let ney = neyman_allocation(&spec, &[1.0, 1.0, 1.0], 7000);
        let prop = Allocator::Proportional.allocate(&spec, 7000);
        for (a, b) in ney.iter().zip(prop.iter()) {
            assert!((*a as i64 - *b as i64).abs() <= 3, "{ney:?} vs {prop:?}");
        }
        assert_eq!(ney.iter().sum::<u64>(), 7000);
    }

    #[test]
    fn neyman_starves_noiseless_terms() {
        let spec = spec_abc();
        let alloc = neyman_allocation(&spec, &[1.0, 0.0, 1.0], 1000);
        assert_eq!(alloc.iter().sum::<u64>(), 1000);
        assert_eq!(alloc[1], 1, "noiseless term should get the floor only");
        assert!(alloc[0] > 700, "noisy heavy term underfunded: {alloc:?}");
    }

    #[test]
    fn neyman_all_noiseless_falls_back() {
        let spec = spec_abc();
        let alloc = neyman_allocation(&spec, &[0.0, 0.0, 0.0], 700);
        assert_eq!(alloc.iter().sum::<u64>(), 700);
        assert_eq!(alloc, Allocator::Proportional.allocate(&spec, 700));
    }

    #[test]
    fn neyman_minimises_predicted_variance() {
        // Compare Σ c²σ²/n against the proportional split on an asymmetric
        // instance: Neyman must be no worse.
        let spec = spec_abc();
        let sigmas = [0.2, 1.0, 0.9];
        let total = 5000;
        let var = |alloc: &[u64]| -> f64 {
            spec.terms()
                .iter()
                .zip(sigmas.iter())
                .zip(alloc.iter())
                .map(|((t, &s), &n)| {
                    if n == 0 {
                        0.0
                    } else {
                        t.coefficient.powi(2) * s * s / n as f64
                    }
                })
                .sum()
        };
        let v_ney = var(&neyman_allocation(&spec, &sigmas, total));
        let v_prop = var(&Allocator::Proportional.allocate(&spec, total));
        assert!(
            v_ney <= v_prop * 1.001,
            "Neyman {v_ney} worse than proportional {v_prop}"
        );
    }

    #[test]
    fn zero_total_allocations() {
        let spec = spec_abc();
        assert_eq!(Allocator::Proportional.allocate(&spec, 0), vec![0, 0, 0]);
        assert_eq!(Allocator::Uniform.allocate(&spec, 0), vec![0, 0, 0]);
    }
}

//! Monte Carlo estimators for QPD expectation values.
//!
//! Implements Eq. 12 of the paper:
//!
//! `Tr[O·E(ρ)] = κ Σᵢ pᵢ · Tr[O·Fᵢ(ρ)] · sign(cᵢ)`
//!
//! in two sampling modes — per-shot stochastic term selection and the
//! paper's deterministic proportional allocation — plus a checkpointed
//! sweep that yields the estimate at many shot budgets from a single
//! sampling pass (the workhorse of the Figure 6 reproduction).
//!
//! All estimators request shots through the **batched**
//! [`TermSampler::sample_observable_sum`] entry point, so a term backed
//! by a compiled branch-tree sampler serves a whole allocation as one
//! multinomial/binomial draw (`O(#outcomes)` instead of `O(shots)` RNG
//! work) while staying identical in distribution to per-shot sampling.

use crate::allocator::Allocator;
use crate::spec::QpdSpec;
use rand::Rng;

/// One executable QPD term: draws single-shot observable samples (±1 for
/// the paper's Pauli-Z observable) and knows its exact expectation.
pub trait TermSampler {
    /// Draws a single-shot estimate of `Tr[O·Fᵢ(ρ)]` (an unbiased sample
    /// of the term's observable, e.g. ±1 for Z).
    fn sample_observable(&self, rng: &mut dyn rand::RngCore) -> f64;

    /// Draws `shots` single-shot estimates and returns their **sum**.
    ///
    /// The default walks [`sample_observable`](Self::sample_observable)
    /// `shots` times. Implementations backed by a compiled branch-tree
    /// sampler override this with a counts-based draw (multinomial over
    /// leaves, binomial within each leaf) that is identical in
    /// distribution but costs `O(#outcomes)` instead of `O(shots)` —
    /// every estimator in this module calls through here, so overriding
    /// this one method batches the whole stack.
    fn sample_observable_sum(&self, shots: u64, rng: &mut dyn rand::RngCore) -> f64 {
        let mut sum = 0.0;
        for _ in 0..shots {
            sum += self.sample_observable(rng);
        }
        sum
    }

    /// The exact term expectation `Tr[O·Fᵢ(ρ)]`.
    fn exact_expectation(&self) -> f64;
}

/// Exact (infinite-shot) value of the decomposed expectation:
/// `Σᵢ cᵢ · exactᵢ`.
pub fn exact_value(spec: &QpdSpec, terms: &[&dyn TermSampler]) -> f64 {
    assert_eq!(spec.len(), terms.len());
    spec.terms()
        .iter()
        .zip(terms.iter())
        .map(|(t, s)| t.coefficient * s.exact_expectation())
        .sum()
}

/// Stochastic Monte Carlo estimator (Eq. 12): for each shot draw a term
/// `i ~ pᵢ`, sample its observable, and weight by `κ·sign(cᵢ)`.
///
/// Shots are exchangeable, so the per-shot term draws are batched into
/// one multinomial over the term probabilities followed by one batched
/// observable draw per occupied term — the same joint distribution as
/// the shot-by-shot loop, without the per-shot dispatch.
pub fn estimate_stochastic<R: Rng>(
    spec: &QpdSpec,
    terms: &[&dyn TermSampler],
    shots: u64,
    rng: &mut R,
) -> f64 {
    assert_eq!(spec.len(), terms.len());
    if shots == 0 {
        return 0.0;
    }
    let kappa = spec.kappa();
    let probs = spec.probabilities();
    let signs = spec.signs();
    let per_term = qsample::multinomial(shots, &probs, rng);
    let mut total = 0.0;
    for ((term, &n), &sign) in terms.iter().zip(per_term.iter()).zip(signs.iter()) {
        if n == 0 {
            continue;
        }
        total += sign * kappa * term.sample_observable_sum(n, rng);
    }
    total / shots as f64
}

/// Deterministic-allocation estimator (the paper's experiment): each term
/// gets `nᵢ` shots from the chosen [`Allocator`]; the estimate is
/// `Σᵢ cᵢ · meanᵢ`. Terms allocated zero shots contribute zero (their
/// mean is undefined; with proportional allocation this only happens at
/// negligible budgets).
pub fn estimate_allocated<R: Rng>(
    spec: &QpdSpec,
    terms: &[&dyn TermSampler],
    total_shots: u64,
    allocator: Allocator,
    rng: &mut R,
) -> f64 {
    let allocation = allocator.allocate(spec, total_shots);
    estimate_with_allocation(spec, terms, &allocation, rng)
}

/// Deterministic estimator with an explicit per-term shot allocation.
pub fn estimate_with_allocation<R: Rng>(
    spec: &QpdSpec,
    terms: &[&dyn TermSampler],
    allocation: &[u64],
    rng: &mut R,
) -> f64 {
    assert_eq!(spec.len(), terms.len());
    assert_eq!(spec.len(), allocation.len());
    let mut value = 0.0;
    for ((t, s), &n) in spec.terms().iter().zip(terms.iter()).zip(allocation.iter()) {
        if n == 0 {
            continue;
        }
        value += t.coefficient * (s.sample_observable_sum(n, rng) / n as f64);
    }
    value
}

/// Sequential (variance-adaptive) estimator: spends `total_shots` in
/// `num_batches` equal batches, re-splitting each batch across terms via
/// [`crate::allocator::SequentialAllocator`] — the first batch on the
/// static proportional split, later batches Neyman-optimal for the σ̂
/// observed so far. The estimate pools all batches per term
/// (`Σᵢ cᵢ · pooled-meanᵢ`), which keeps it unbiased: a term's inclusion
/// in later batches depends only on *other* batches' samples through the
/// allocation sizes, never on the value being averaged.
///
/// With `num_batches = 1` this degenerates to
/// [`estimate_allocated`] with [`Allocator::Proportional`] (identical
/// distribution; the RNG consumption differs, so values are not
/// bit-equal). Budget remainders (`total_shots % num_batches`) are
/// folded into the final batch.
pub fn estimate_sequential<R: Rng>(
    spec: &QpdSpec,
    terms: &[&dyn TermSampler],
    total_shots: u64,
    num_batches: u64,
    rng: &mut R,
) -> f64 {
    assert_eq!(spec.len(), terms.len());
    assert!(num_batches >= 1, "need at least one batch");
    if total_shots == 0 {
        return 0.0;
    }
    let mut seq = crate::allocator::SequentialAllocator::new(spec.len());
    let per_batch = total_shots / num_batches;
    for batch in 0..num_batches {
        let budget = if batch + 1 == num_batches {
            total_shots - per_batch * (num_batches - 1)
        } else {
            per_batch
        };
        if budget == 0 {
            continue;
        }
        let alloc = seq.next_allocation(spec, budget);
        for (i, (&n, term)) in alloc.iter().zip(terms.iter()).enumerate() {
            if n > 0 {
                seq.record(i, term.sample_observable_sum(n, rng), n);
            }
        }
    }
    seq.estimate(spec)
}

/// Checkpointed proportional sweep: returns the estimate the paper's
/// procedure would produce at **every** budget in `checkpoints`
/// (ascending), reusing samples across budgets so a full error-vs-shots
/// curve costs one pass at the largest budget.
///
/// For each checkpoint `N`, the estimate uses exactly the proportional
/// allocation `nᵢ(N)` and the first `nᵢ(N)` samples of each term — the
/// same distribution as running [`estimate_allocated`] at `N` fresh.
pub fn proportional_sweep<R: Rng>(
    spec: &QpdSpec,
    terms: &[&dyn TermSampler],
    checkpoints: &[u64],
    rng: &mut R,
) -> Vec<f64> {
    assert_eq!(spec.len(), terms.len());
    assert!(
        checkpoints.windows(2).all(|w| w[0] <= w[1]),
        "checkpoints must be ascending"
    );
    let m = spec.len();
    // Per-checkpoint allocations.
    let allocations: Vec<Vec<u64>> = checkpoints
        .iter()
        .map(|&n| Allocator::Proportional.allocate(spec, n))
        .collect();
    // Per-term maximum sample count needed.
    let max_per_term: Vec<u64> = (0..m)
        .map(|i| allocations.iter().map(|a| a[i]).max().unwrap_or(0))
        .collect();
    // Draw samples, recording prefix sums at the counts each checkpoint
    // needs. Between consecutive needed counts the draws are one batched
    // call, so a full error-vs-shots curve costs O(#checkpoints) batch
    // draws per term rather than one RNG walk per shot.
    let coeffs = spec.coefficients();
    let mut estimates = vec![0.0f64; checkpoints.len()];
    for i in 0..m {
        // Sorted unique prefix counts needed for this term.
        let mut needed: Vec<u64> = allocations.iter().map(|a| a[i]).collect();
        needed.sort_unstable();
        needed.dedup();
        let mut prefix_sum_at = std::collections::HashMap::new();
        let mut sum = 0.0;
        let mut drawn = 0u64;
        for &count in &needed {
            sum += terms[i].sample_observable_sum(count - drawn, rng);
            drawn = count;
            prefix_sum_at.insert(count, sum);
        }
        debug_assert_eq!(drawn, max_per_term[i]);
        for (j, alloc) in allocations.iter().enumerate() {
            let n = alloc[i];
            if n == 0 {
                continue;
            }
            let s = prefix_sum_at[&n];
            estimates[j] += coeffs[i] * (s / n as f64);
        }
    }
    estimates
}

/// A trivial term sampler with a fixed exact value, sampling ±1 with the
/// matching bias — useful for tests and as a reference model of a
/// single-qubit Z measurement.
#[derive(Clone, Copy, Debug)]
pub struct BernoulliTerm {
    /// The exact expectation in `[-1, 1]`.
    pub expectation: f64,
}

impl TermSampler for BernoulliTerm {
    fn sample_observable(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let p_plus = (1.0 + self.expectation) / 2.0;
        if rng.gen::<f64>() < p_plus {
            1.0
        } else {
            -1.0
        }
    }

    fn sample_observable_sum(&self, shots: u64, rng: &mut dyn rand::RngCore) -> f64 {
        let p_plus = ((1.0 + self.expectation) / 2.0).clamp(0.0, 1.0);
        let plus = qsample::binomial(shots, p_plus, rng);
        // `plus` outcomes of +1, the rest −1.
        2.0 * plus as f64 - shots as f64
    }

    fn exact_expectation(&self) -> f64 {
        self.expectation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A Harada-style 3-term decomposition of a target expectation 0.44:
    /// +1·(0.3) + 1·(0.5) − 1·(0.36) = 0.44.
    fn fixture() -> (QpdSpec, Vec<BernoulliTerm>) {
        let spec = QpdSpec::from_parts(&[(1.0, "a", 0.0), (1.0, "b", 0.0), (-1.0, "c", 0.0)]);
        let terms = vec![
            BernoulliTerm { expectation: 0.3 },
            BernoulliTerm { expectation: 0.5 },
            BernoulliTerm { expectation: 0.36 },
        ];
        (spec, terms)
    }

    fn dyn_terms(terms: &[BernoulliTerm]) -> Vec<&dyn TermSampler> {
        terms.iter().map(|t| t as &dyn TermSampler).collect()
    }

    #[test]
    fn exact_value_combines_terms() {
        let (spec, terms) = fixture();
        let v = exact_value(&spec, &dyn_terms(&terms));
        assert!((v - 0.44).abs() < 1e-12);
    }

    #[test]
    fn stochastic_estimator_is_unbiased() {
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let mut rng = StdRng::seed_from_u64(42);
        let reps = 300;
        let shots = 2000;
        let mean: f64 = (0..reps)
            .map(|_| estimate_stochastic(&spec, &refs, shots, &mut rng))
            .sum::<f64>()
            / reps as f64;
        // SE of the mean ≈ κ/√(reps·shots) ≈ 3/775 ≈ 0.004
        assert!((mean - 0.44).abs() < 0.02, "stochastic mean {mean}");
    }

    #[test]
    fn stochastic_variance_scales_with_kappa_squared() {
        // Compare κ=3 decomposition against a direct κ=1 estimate of the
        // same value; variance ratio should be ≈ κ² (modulo the bounded
        // per-term variance corrections).
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let direct_spec = QpdSpec::from_parts(&[(1.0, "direct", 0.0)]);
        let direct_term = BernoulliTerm { expectation: 0.44 };
        let direct_refs: Vec<&dyn TermSampler> = vec![&direct_term];
        let mut rng = StdRng::seed_from_u64(7);
        let reps = 400;
        let shots = 500;
        let var = |spec: &QpdSpec, refs: &[&dyn TermSampler], rng: &mut StdRng| -> f64 {
            let xs: Vec<f64> = (0..reps)
                .map(|_| estimate_stochastic(spec, refs, shots, rng))
                .collect();
            let m = xs.iter().sum::<f64>() / reps as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (reps - 1) as f64
        };
        let v_qpd = var(&spec, &refs, &mut rng);
        let v_direct = var(&direct_spec, &direct_refs, &mut rng);
        let ratio = v_qpd / v_direct;
        // Theoretical: Var_qpd·shots = κ² − value² ≈ 8.81; Var_direct·shots
        // = 1 − 0.44² ≈ 0.806 → ratio ≈ 10.9. Allow wide statistical slack.
        assert!(
            ratio > 5.0 && ratio < 20.0,
            "variance ratio {ratio} outside expected band"
        );
    }

    #[test]
    fn allocated_estimator_is_unbiased() {
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let mut rng = StdRng::seed_from_u64(3);
        let reps = 300;
        let mean: f64 = (0..reps)
            .map(|_| estimate_allocated(&spec, &refs, 1500, Allocator::Proportional, &mut rng))
            .sum::<f64>()
            / reps as f64;
        assert!((mean - 0.44).abs() < 0.02, "allocated mean {mean}");
    }

    #[test]
    fn uniform_allocation_also_unbiased() {
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let mut rng = StdRng::seed_from_u64(4);
        let reps = 300;
        let mean: f64 = (0..reps)
            .map(|_| estimate_allocated(&spec, &refs, 1500, Allocator::Uniform, &mut rng))
            .sum::<f64>()
            / reps as f64;
        assert!((mean - 0.44).abs() < 0.02, "uniform mean {mean}");
    }

    #[test]
    fn sweep_matches_fresh_estimates_in_distribution() {
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let checkpoints = vec![300, 600, 1200, 2400];
        let mut rng = StdRng::seed_from_u64(5);
        // Mean over repetitions of the sweep at each checkpoint ≈ 0.44.
        let reps = 200;
        let mut means = vec![0.0f64; checkpoints.len()];
        for _ in 0..reps {
            let est = proportional_sweep(&spec, &refs, &checkpoints, &mut rng);
            for (m, e) in means.iter_mut().zip(est.iter()) {
                *m += e;
            }
        }
        for (i, m) in means.iter().enumerate() {
            let mean = m / reps as f64;
            assert!(
                (mean - 0.44).abs() < 0.03,
                "sweep checkpoint {i} mean {mean}"
            );
        }
    }

    #[test]
    fn sweep_error_decreases_with_budget() {
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let checkpoints = vec![100, 400, 1600, 6400];
        let mut rng = StdRng::seed_from_u64(6);
        let reps = 150;
        let mut mse = vec![0.0f64; checkpoints.len()];
        for _ in 0..reps {
            let est = proportional_sweep(&spec, &refs, &checkpoints, &mut rng);
            for (m, e) in mse.iter_mut().zip(est.iter()) {
                *m += (e - 0.44) * (e - 0.44);
            }
        }
        for w in mse.windows(2) {
            assert!(w[1] < w[0], "MSE not decreasing: {mse:?}");
        }
        // 4× budget → ~4× lower MSE; check within a factor of 2.
        let ratio = mse[0] / mse[1];
        assert!(ratio > 2.0 && ratio < 8.0, "MSE scaling ratio {ratio}");
    }

    #[test]
    fn zero_shots_returns_zero() {
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(estimate_stochastic(&spec, &refs, 0, &mut rng), 0.0);
        let est = estimate_with_allocation(&spec, &refs, &[0, 0, 0], &mut rng);
        assert_eq!(est, 0.0);
        assert_eq!(estimate_sequential(&spec, &refs, 0, 4, &mut rng), 0.0);
    }

    #[test]
    fn sequential_estimator_is_unbiased() {
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let mut rng = StdRng::seed_from_u64(21);
        let reps = 300;
        let mean: f64 = (0..reps)
            .map(|_| estimate_sequential(&spec, &refs, 1500, 4, &mut rng))
            .sum::<f64>()
            / reps as f64;
        assert!((mean - 0.44).abs() < 0.02, "sequential mean {mean}");
    }

    #[test]
    fn sequential_spends_the_exact_budget() {
        // A counting wrapper verifies the batches sum to total_shots even
        // when the budget does not divide the batch count.
        use std::sync::atomic::{AtomicU64, Ordering};
        struct Counting<'a>(&'a AtomicU64, BernoulliTerm);
        impl TermSampler for Counting<'_> {
            fn sample_observable(&self, rng: &mut dyn rand::RngCore) -> f64 {
                self.0.fetch_add(1, Ordering::Relaxed);
                self.1.sample_observable(rng)
            }
            fn sample_observable_sum(&self, shots: u64, rng: &mut dyn rand::RngCore) -> f64 {
                self.0.fetch_add(shots, Ordering::Relaxed);
                self.1.sample_observable_sum(shots, rng)
            }
            fn exact_expectation(&self) -> f64 {
                self.1.exact_expectation()
            }
        }
        let (spec, terms) = fixture();
        let counter = AtomicU64::new(0);
        let counting: Vec<Counting> = terms.iter().map(|&t| Counting(&counter, t)).collect();
        let refs: Vec<&dyn TermSampler> = counting.iter().map(|t| t as &dyn TermSampler).collect();
        let mut rng = StdRng::seed_from_u64(22);
        estimate_sequential(&spec, &refs, 1000, 3, &mut rng);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn sequential_single_batch_matches_proportional_in_distribution() {
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let reps = 400;
        let shots = 900;
        let mut rng = StdRng::seed_from_u64(23);
        let stats = |f: &mut dyn FnMut(&mut StdRng) -> f64, rng: &mut StdRng| -> (f64, f64) {
            let xs: Vec<f64> = (0..reps).map(|_| f(rng)).collect();
            let m = xs.iter().sum::<f64>() / reps as f64;
            let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (reps - 1) as f64;
            (m, v)
        };
        let (m_seq, v_seq) = stats(
            &mut |r| estimate_sequential(&spec, &refs, shots, 1, r),
            &mut rng,
        );
        let (m_prop, v_prop) = stats(
            &mut |r| estimate_allocated(&spec, &refs, shots, Allocator::Proportional, r),
            &mut rng,
        );
        assert!((m_seq - m_prop).abs() < 0.03, "means {m_seq} vs {m_prop}");
        let ratio = v_seq / v_prop;
        assert!(
            (0.5..2.0).contains(&ratio),
            "variance ratio {ratio} ({v_seq} vs {v_prop})"
        );
    }

    #[test]
    fn batched_sum_matches_per_shot_default_in_distribution() {
        // BernoulliTerm overrides sample_observable_sum with a binomial
        // draw; a wrapper that hides the override falls back to the
        // per-shot default. Their means and variances must agree.
        struct PerShotOnly(BernoulliTerm);
        impl TermSampler for PerShotOnly {
            fn sample_observable(&self, rng: &mut dyn rand::RngCore) -> f64 {
                self.0.sample_observable(rng)
            }
            fn exact_expectation(&self) -> f64 {
                self.0.exact_expectation()
            }
        }
        let term = BernoulliTerm { expectation: 0.37 };
        let slow = PerShotOnly(term);
        let shots = 400u64;
        let reps = 4000;
        let stats = |s: &dyn TermSampler, seed: u64| -> (f64, f64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let xs: Vec<f64> = (0..reps)
                .map(|_| s.sample_observable_sum(shots, &mut rng) / shots as f64)
                .collect();
            let m = xs.iter().sum::<f64>() / reps as f64;
            let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (reps - 1) as f64;
            (m, v)
        };
        let (m_fast, v_fast) = stats(&term, 71);
        let (m_slow, v_slow) = stats(&slow, 72);
        assert!((m_fast - 0.37).abs() < 0.01, "batched mean {m_fast}");
        assert!((m_slow - 0.37).abs() < 0.01, "per-shot mean {m_slow}");
        // Var of the mean = (1 − e²)/shots ≈ 0.00216; agreement within 15%.
        let v_true = (1.0 - 0.37f64 * 0.37) / shots as f64;
        assert!(
            (v_fast - v_true).abs() < 0.15 * v_true,
            "batched var {v_fast}"
        );
        assert!(
            (v_slow - v_true).abs() < 0.15 * v_true,
            "per-shot var {v_slow}"
        );
    }

    #[test]
    fn stochastic_estimator_consumes_terms_multinomially() {
        // With the batched path the estimator must still weight each
        // term by κ·sign and stay unbiased at tiny shot counts where the
        // multinomial is lumpy.
        let (spec, terms) = fixture();
        let refs = dyn_terms(&terms);
        let mut rng = StdRng::seed_from_u64(73);
        let reps = 6000;
        let mean: f64 = (0..reps)
            .map(|_| estimate_stochastic(&spec, &refs, 7, &mut rng))
            .sum::<f64>()
            / reps as f64;
        // SE ≈ κ/√(reps·shots) ≈ 0.0146; allow 4σ.
        assert!((mean - 0.44).abs() < 0.06, "mean {mean}");
    }

    #[test]
    fn bernoulli_term_sampling_is_calibrated() {
        let t = BernoulliTerm { expectation: -0.6 };
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| t.sample_observable(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean + 0.6).abs() < 0.02);
    }
}

//! # qpd — quasiprobability decomposition framework
//!
//! Implements Section II-B/C of Bechtold et al. (IPPS 2024): QPD
//! coefficient structures with their sampling overhead `κ = Σ|cᵢ|`
//! (Eq. 11–13), Monte Carlo estimators in both the stochastic (Eq. 12)
//! and the paper's proportional-allocation form, shot allocators, and a
//! checkpointed sweep producing full error-vs-shots curves in one pass.
//!
//! The crate is deliberately agnostic of *what* the terms are: executable
//! terms implement [`TermSampler`] (in this workspace, compiled wire-cut
//! subcircuits from the `wirecut` crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod estimator;
pub mod spec;

pub use allocator::{
    largest_remainder, neyman_allocation, stochastic_allocation, Allocator, SequentialAllocator,
};
pub use estimator::{
    estimate_allocated, estimate_sequential, estimate_stochastic, estimate_with_allocation,
    exact_value, proportional_sweep, BernoulliTerm, TermSampler,
};
pub use spec::{QpdSpec, TermSpec};

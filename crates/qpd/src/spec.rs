//! Quasiprobability decomposition specifications.
//!
//! A QPD (paper Eq. 11) writes a target operation as `E = Σᵢ cᵢ Fᵢ` with
//! implementable `Fᵢ` and real coefficients summing to 1. The sampling
//! cost is governed by `κ = Σᵢ|cᵢ|` (Eq. 12–13): reproducing `E`'s
//! expectation values to accuracy ε needs `O(κ²/ε²)` shots.

/// Metadata of one QPD term: its signed coefficient, a display label, and
/// how many pre-shared entangled pairs executing it consumes (0 for
/// measure-and-prepare terms, 1 for each teleportation).
#[derive(Clone, Debug)]
pub struct TermSpec {
    /// Signed quasiprobability coefficient `cᵢ`.
    pub coefficient: f64,
    /// Human-readable label (e.g. `"tel-H"`, `"meas-prep"`).
    pub label: String,
    /// Entangled pairs consumed per execution of this term.
    pub pairs_consumed: f64,
}

/// The coefficient structure of a quasiprobability decomposition.
#[derive(Clone, Debug)]
pub struct QpdSpec {
    terms: Vec<TermSpec>,
}

impl QpdSpec {
    /// Builds a spec from term metadata.
    ///
    /// # Panics
    /// Panics if empty or if any coefficient is non-finite.
    pub fn new(terms: Vec<TermSpec>) -> Self {
        assert!(!terms.is_empty(), "QPD needs at least one term");
        assert!(
            terms.iter().all(|t| t.coefficient.is_finite()),
            "non-finite QPD coefficient"
        );
        Self { terms }
    }

    /// Convenience constructor from `(coefficient, label, pairs)` tuples.
    pub fn from_parts(parts: &[(f64, &str, f64)]) -> Self {
        Self::new(
            parts
                .iter()
                .map(|&(c, l, p)| TermSpec {
                    coefficient: c,
                    label: l.to_string(),
                    pairs_consumed: p,
                })
                .collect(),
        )
    }

    /// The term metadata.
    pub fn terms(&self) -> &[TermSpec] {
        &self.terms
    }

    /// Number of terms `m`.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when there are no terms (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Signed coefficients `cᵢ`.
    pub fn coefficients(&self) -> Vec<f64> {
        self.terms.iter().map(|t| t.coefficient).collect()
    }

    /// `κ = Σ|cᵢ|` — the one-shot sampling overhead factor (Eq. 12).
    pub fn kappa(&self) -> f64 {
        self.terms.iter().map(|t| t.coefficient.abs()).sum()
    }

    /// `κ²` — the multiplicative shot overhead to reach fixed accuracy.
    pub fn sampling_overhead(&self) -> f64 {
        let k = self.kappa();
        k * k
    }

    /// Sum of signed coefficients; must be 1 for a valid decomposition of
    /// a trace-preserving target.
    pub fn coefficient_sum(&self) -> f64 {
        self.terms.iter().map(|t| t.coefficient).sum()
    }

    /// Sampling probabilities `pᵢ = |cᵢ|/κ` (Eq. 12).
    pub fn probabilities(&self) -> Vec<f64> {
        let k = self.kappa();
        assert!(k > 0.0, "zero-kappa QPD");
        self.terms.iter().map(|t| t.coefficient.abs() / k).collect()
    }

    /// Signs `sign(cᵢ)` as ±1.
    pub fn signs(&self) -> Vec<f64> {
        self.terms.iter().map(|t| t.coefficient.signum()).collect()
    }

    /// Expected entangled pairs consumed per QPD sample:
    /// `Σᵢ pᵢ · pairsᵢ`.
    pub fn expected_pairs_per_sample(&self) -> f64 {
        let probs = self.probabilities();
        self.terms
            .iter()
            .zip(probs.iter())
            .map(|(t, &p)| p * t.pairs_consumed)
            .sum()
    }

    /// Checks structural validity: coefficients sum to 1 within `tol`.
    pub fn validate(&self, tol: f64) -> Result<(), String> {
        let s = self.coefficient_sum();
        if (s - 1.0).abs() > tol {
            return Err(format!("QPD coefficients sum to {s}, expected 1"));
        }
        Ok(())
    }

    /// The product QPD of several independent decompositions — the
    /// coefficient structure of a whole multi-cut execution *plan*:
    /// one term per combination of one term from each factor, with
    /// coefficient `Π cᵢ`, label `l₁⊗l₂⊗…` and summed pair consumption.
    ///
    /// Terms are enumerated row-major (the **last** factor's index moves
    /// fastest), matching an odometer over `combo[g] = (i / strideᵍ) %
    /// lenᵍ`; plan compilers that enumerate stitched term circuits must
    /// use the same order so shot allocations line up term-by-term.
    /// `κ` multiplies: `κ(product) = Π κᵢ`.
    ///
    /// # Panics
    /// Panics when `specs` is empty.
    pub fn product(specs: &[QpdSpec]) -> QpdSpec {
        assert!(!specs.is_empty(), "product of zero QPDs");
        let mut terms = vec![TermSpec {
            coefficient: 1.0,
            label: String::new(),
            pairs_consumed: 0.0,
        }];
        for spec in specs {
            let mut next = Vec::with_capacity(terms.len() * spec.len());
            for acc in &terms {
                for t in spec.terms() {
                    next.push(TermSpec {
                        coefficient: acc.coefficient * t.coefficient,
                        label: if acc.label.is_empty() {
                            t.label.clone()
                        } else {
                            format!("{}⊗{}", acc.label, t.label)
                        },
                        pairs_consumed: acc.pairs_consumed + t.pairs_consumed,
                    });
                }
            }
            terms = next;
        }
        QpdSpec::new(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harada_like() -> QpdSpec {
        // The γ = 3 optimal cut: coefficients (+1, +1, −1).
        QpdSpec::from_parts(&[
            (1.0, "meas-H", 0.0),
            (1.0, "meas-SH", 0.0),
            (-1.0, "meas-prep", 0.0),
        ])
    }

    #[test]
    fn kappa_of_harada_cut_is_three() {
        let spec = harada_like();
        assert!((spec.kappa() - 3.0).abs() < 1e-14);
        assert!((spec.sampling_overhead() - 9.0).abs() < 1e-14);
        assert!(spec.validate(1e-12).is_ok());
    }

    #[test]
    fn probabilities_normalise() {
        let spec = harada_like();
        let p = spec.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-14);
        for &pi in &p {
            assert!((pi - 1.0 / 3.0).abs() < 1e-14);
        }
    }

    #[test]
    fn signs_follow_coefficients() {
        let spec = harada_like();
        assert_eq!(spec.signs(), vec![1.0, 1.0, -1.0]);
    }

    #[test]
    fn theorem2_coefficients_at_k() {
        // a = (k²+1)/(k+1)², b = (k−1)²/(k+1)²; κ = 2a + b.
        let k: f64 = 0.5;
        let a = (k * k + 1.0) / ((k + 1.0) * (k + 1.0));
        let b = (k - 1.0) * (k - 1.0) / ((k + 1.0) * (k + 1.0));
        let spec = QpdSpec::from_parts(&[
            (a, "tel-H", 1.0),
            (a, "tel-SH", 1.0),
            (-b, "meas-prep", 0.0),
        ]);
        let gamma = 4.0 * (k * k + 1.0) / ((k + 1.0) * (k + 1.0)) - 1.0;
        assert!((spec.kappa() - gamma).abs() < 1e-12);
        assert!(spec.validate(1e-12).is_ok());
        // Pair consumption: 2a/κ fraction of samples are teleportations...
        // expected pairs per sample = 2a/κ.
        let expect = 2.0 * a / spec.kappa();
        assert!((spec.expected_pairs_per_sample() - expect).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_sum() {
        let spec = QpdSpec::from_parts(&[(0.7, "a", 0.0), (0.7, "b", 0.0)]);
        assert!(spec.validate(1e-9).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_spec_panics() {
        let _ = QpdSpec::new(vec![]);
    }

    #[test]
    fn product_spec_multiplies_kappa_and_counts() {
        let a = harada_like(); // κ = 3, 3 terms
        let b = QpdSpec::from_parts(&[(0.75, "tel", 1.0), (0.25, "mp", 0.0)]); // κ = 1
        let p = QpdSpec::product(&[a.clone(), b.clone()]);
        assert_eq!(p.len(), 6);
        assert!((p.kappa() - a.kappa() * b.kappa()).abs() < 1e-12);
        assert!(p.validate(1e-12).is_ok());
        // Row-major order: last factor fastest.
        assert_eq!(p.terms()[0].label, "meas-H⊗tel");
        assert_eq!(p.terms()[1].label, "meas-H⊗mp");
        assert_eq!(p.terms()[2].label, "meas-SH⊗tel");
        // Pairs add across factors.
        assert!((p.terms()[0].pairs_consumed - 1.0).abs() < 1e-12);
        assert!((p.terms()[1].pairs_consumed - 0.0).abs() < 1e-12);
    }

    #[test]
    fn product_of_single_spec_is_identity() {
        let a = harada_like();
        let p = QpdSpec::product(std::slice::from_ref(&a));
        assert_eq!(p.len(), a.len());
        for (x, y) in p.terms().iter().zip(a.terms().iter()) {
            assert!((x.coefficient - y.coefficient).abs() < 1e-15);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    #[should_panic(expected = "product of zero QPDs")]
    fn empty_product_panics() {
        let _ = QpdSpec::product(&[]);
    }
}

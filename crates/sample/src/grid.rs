//! # Configuration-grid sharding engine
//!
//! Every headline sweep of the paper — Figure 6's (state, overlap,
//! shots) grid, the κ crossover of E13, the Werner p-sweep of E15 — is a
//! Cartesian product of *configurations*, each of which needs its own
//! randomness and produces one (or a few) CSV rows. The cutting-as-a-
//! service job engine (`wirecut::service`) schedules estimation jobs the
//! same way, which is why this engine lives here in the sampling crate,
//! below both the experiments harness and the service layer.
//! [`ShardedGrid`] shards **whole configurations** across worker
//! threads:
//!
//! * **work stealing** — workers pull the next unclaimed configuration
//!   from a shared atomic cursor, so heterogeneous config costs (an
//!   n = 4 NME solve next to an n = 1 one) balance automatically;
//! * **per-shard counter-based RNG streams** — each configuration's
//!   randomness comes from a [`StreamRng`] whose stream id is a
//!   stable hash of the configuration's *identity* (via [`GridKey`]),
//!   never of the thread id or the completion order. Stream ids select
//!   disjoint counter spaces of the underlying PRF, so shards never
//!   share randomness and the sweep's output is a pure function of
//!   `(seed, grid)`;
//! * **mergeable accumulation** — each worker fills its own
//!   [`ShardResult`] slot vector; the partial results are merged after
//!   the scope joins, and rows come out in deterministic grid order
//!   regardless of thread count. `tests/sharding_determinism.rs` pins
//!   byte-identical CSVs across thread counts for every migrated
//!   experiment.
//!
//! ## Panic contract
//!
//! A worker panic is never masked: [`ShardedGrid::run`] re-raises the
//! **original payload** of the first worker that panicked (via the
//! scoped-thread `Err` path), so an assertion message from inside a
//! shard reaches the caller verbatim. The "configuration never ran"
//! diagnostics in [`ShardResult`] only fire on work-distribution bugs,
//! never as a stand-in for a worker panic; both contracts are pinned by
//! `should_panic` tests below.
//!
//! ## Seed derivation scheme
//!
//! For a run with base seed `S` and a configuration `c`:
//!
//! ```text
//! key(c)     = FNV-1a-64 over c's identity words (GridKey::absorb)
//! rng(c)     = StreamRng::new(S, key(c))          // the sampling lane
//! lane(c, t) = rng(c).split(t)                    // extra lanes per shard
//! shared(k)  = StreamRng::new(S, key(k))          // paired across configs
//! ```
//!
//! `key` hashes the configuration's *values* (wire count, overlap bits,
//! shot budget, state index …), so inserting, removing or reordering
//! grid points never perturbs the randomness of the surviving points —
//! unlike index-derived seeding, where dropping one overlap reshuffles
//! every stream after it. The `shared` form lets paired designs draw the
//! *same* random state across configurations that differ only in the
//! swept parameter (e.g. one Haar unitary per state index, reused by all
//! six Figure 6 overlaps), which cancels state-to-state variance out of
//! cross-configuration comparisons.

use crate::stream::StreamRng;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: available parallelism, capped at 16.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16)
}

/// Incremental FNV-1a hasher over 64-bit words, used to derive stable
/// stream ids from configuration identities.
#[derive(Clone, Copy, Debug)]
pub struct KeyHasher(u64);

impl KeyHasher {
    /// Fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        KeyHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs one word (byte-wise FNV-1a, little-endian).
    pub fn absorb(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// A configuration with a stable identity hash. Implementations absorb
/// every field that *identifies* the grid point (swept parameters, state
/// index, shot budget) — and nothing that doesn't (thread counts,
/// verbosity flags).
pub trait GridKey {
    /// Feeds the configuration's identity words into `h`.
    fn absorb(&self, h: &mut KeyHasher);

    /// The stable 64-bit key (FNV-1a over [`absorb`](Self::absorb)).
    fn grid_key(&self) -> u64 {
        let mut h = KeyHasher::new();
        self.absorb(&mut h);
        h.finish()
    }
}

impl GridKey for u64 {
    fn absorb(&self, h: &mut KeyHasher) {
        h.absorb(*self);
    }
}

impl GridKey for usize {
    fn absorb(&self, h: &mut KeyHasher) {
        h.absorb(*self as u64);
    }
}

impl GridKey for u32 {
    fn absorb(&self, h: &mut KeyHasher) {
        h.absorb(u64::from(*self));
    }
}

impl GridKey for i64 {
    fn absorb(&self, h: &mut KeyHasher) {
        h.absorb(*self as u64);
    }
}

impl GridKey for f64 {
    /// Hashes the IEEE-754 bits, normalising `-0.0` to `+0.0` so the two
    /// zero encodings name the same grid point. NaN never identifies a
    /// configuration.
    fn absorb(&self, h: &mut KeyHasher) {
        debug_assert!(!self.is_nan(), "NaN cannot identify a grid point");
        let v = if *self == 0.0 { 0.0f64 } else { *self };
        h.absorb(v.to_bits());
    }
}

impl<T: GridKey + ?Sized> GridKey for &T {
    fn absorb(&self, h: &mut KeyHasher) {
        (**self).absorb(h);
    }
}

impl<A: GridKey, B: GridKey> GridKey for (A, B) {
    fn absorb(&self, h: &mut KeyHasher) {
        self.0.absorb(h);
        self.1.absorb(h);
    }
}

impl<A: GridKey, B: GridKey, C: GridKey> GridKey for (A, B, C) {
    fn absorb(&self, h: &mut KeyHasher) {
        self.0.absorb(h);
        self.1.absorb(h);
        self.2.absorb(h);
    }
}

impl<A: GridKey, B: GridKey, C: GridKey, D: GridKey> GridKey for (A, B, C, D) {
    fn absorb(&self, h: &mut KeyHasher) {
        self.0.absorb(h);
        self.1.absorb(h);
        self.2.absorb(h);
        self.3.absorb(h);
    }
}

/// The counter-based stream for an arbitrary key under `seed` — the
/// `shared(k)` form of the module-level seed-derivation scheme. Used for
/// randomness that must be *paired* across configurations (one Haar
/// state per state index, reused by every swept parameter value).
pub fn keyed_stream<K: GridKey>(seed: u64, key: &K) -> StreamRng {
    StreamRng::new(seed, key.grid_key())
}

/// Per-shard context handed to the grid closure: the configuration's
/// stream id and its sampling RNG.
#[derive(Debug)]
pub struct ShardCtx {
    seed: u64,
    key: u64,
    rng: StreamRng,
}

impl ShardCtx {
    fn new(seed: u64, key: u64) -> Self {
        ShardCtx {
            seed,
            key,
            rng: StreamRng::new(seed, key),
        }
    }

    /// The run's base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// This configuration's stable stream id.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The shard's sampling RNG (stream = the config key).
    pub fn rng(&mut self) -> &mut StreamRng {
        &mut self.rng
    }

    /// An additional independent lane for this shard (`lane(c, t)`).
    pub fn lane(&self, tag: u64) -> StreamRng {
        StreamRng::new(self.seed, self.key).split(tag)
    }

    /// A stream shared with every other shard that derives it from the
    /// same key — the paired-design hook (`shared(k)`).
    pub fn shared<K: GridKey>(&self, key: &K) -> StreamRng {
        keyed_stream(self.seed, key)
    }
}

/// A mergeable, slot-addressed accumulator of per-configuration results.
///
/// Workers fill disjoint slots of their own `ShardResult`; merging
/// asserts disjointness, and [`into_rows`](Self::into_rows) returns the
/// results in grid order — completion order never surfaces.
#[derive(Debug)]
pub struct ShardResult<R> {
    slots: Vec<Option<R>>,
    filled: usize,
}

impl<R> ShardResult<R> {
    /// An empty accumulator for a grid of `n` configurations.
    pub fn new(n: usize) -> Self {
        ShardResult {
            slots: (0..n).map(|_| None).collect(),
            filled: 0,
        }
    }

    /// Number of filled slots.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// True once every slot holds a result.
    pub fn is_complete(&self) -> bool {
        self.filled == self.slots.len()
    }

    /// Records the result of configuration `index`.
    ///
    /// # Panics
    /// Panics if the slot is already filled (a work-distribution bug).
    pub fn set(&mut self, index: usize, value: R) {
        assert!(
            self.slots[index].is_none(),
            "shard slot {index} filled twice"
        );
        self.slots[index] = Some(value);
        self.filled += 1;
    }

    /// Merges another accumulator of the same width into `self`.
    ///
    /// # Panics
    /// Panics on width mismatch or overlapping filled slots.
    pub fn merge(&mut self, other: ShardResult<R>) {
        assert_eq!(self.slots.len(), other.slots.len(), "grid width mismatch");
        for (i, slot) in other.slots.into_iter().enumerate() {
            if let Some(value) = slot {
                self.set(i, value);
            }
        }
    }

    /// Consumes the accumulator, returning results in grid order.
    ///
    /// # Panics
    /// Panics if any slot is unfilled. This only indicates a
    /// work-distribution bug (a claimed configuration whose result was
    /// dropped): a *panicking* worker never surfaces here, because
    /// [`ShardedGrid::run`] re-raises the worker's original payload
    /// before any accumulator is read.
    pub fn into_rows(self) -> Vec<R> {
        self.slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    panic!("configuration {i} never ran (work-distribution bug: the slot was claimed but its result was dropped)")
                })
            })
            .collect()
    }
}

/// The configuration-grid runner. See the module docs for the execution
/// and seed-derivation model; construct with the grid and base seed,
/// optionally override the worker count, then [`run`](Self::run).
#[derive(Debug)]
pub struct ShardedGrid<C> {
    configs: Vec<C>,
    seed: u64,
    threads: usize,
}

impl<C: GridKey + Sync> ShardedGrid<C> {
    /// A grid over `configs` with randomness derived from `seed`.
    /// Workers default to [`default_threads`].
    pub fn new(configs: Vec<C>, seed: u64) -> Self {
        ShardedGrid {
            configs,
            seed,
            threads: 0,
        }
    }

    /// Overrides the worker count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of configurations in the grid.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }

    /// Runs `f` once per configuration under work stealing and returns
    /// the results in grid order. `f` must derive all randomness from
    /// the [`ShardCtx`] for the output to be thread-count invariant.
    ///
    /// # Panics
    /// If a worker panics, the **original panic payload** is re-raised
    /// on the calling thread once all workers have joined, so the
    /// worker's own assertion message reaches the caller unmasked.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&C, &mut ShardCtx) -> R + Sync,
    {
        let n = self.configs.len();
        let threads = self.threads().min(n.max(1));
        let cursor = AtomicUsize::new(0);
        let merged: Mutex<ShardResult<R>> = Mutex::new(ShardResult::new(n));
        crossbeam::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    // Each worker accumulates into its own ShardResult and
                    // merges once at the end, keeping the shared lock cold.
                    let mut local = ShardResult::new(n);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let config = &self.configs[i];
                        let mut ctx = ShardCtx::new(self.seed, config.grid_key());
                        local.set(i, f(config, &mut ctx));
                    }
                    if local.filled() > 0 {
                        merged.lock().merge(local);
                    }
                });
            }
        })
        // Worker panics surface here with their original payload (the
        // scoped-thread shim records the first panicking worker's
        // payload); re-raise it so the caller sees the real failure, not
        // a downstream "configuration never ran" artifact.
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        let result = merged.into_inner();
        // Checked in release builds too: a worker claiming a slot and
        // exiting without filling it would otherwise only be caught by
        // the per-slot panic in into_rows.
        assert!(
            result.is_complete(),
            "grid run incomplete: {} of {n} configurations produced no result",
            n - result.filled()
        );
        result.into_rows()
    }

    /// The stream ids the grid will assign, in grid order — exposed so
    /// tests can assert pairwise distinctness (counter-space
    /// disjointness of the derived streams).
    pub fn stream_ids(&self) -> Vec<u64> {
        self.configs.iter().map(|c| c.grid_key()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn grid_order_is_preserved_under_jitter() {
        // Later items finish first (reverse-cost jitter); output order
        // must still be grid order.
        let configs: Vec<u64> = (0..48).collect();
        let grid = ShardedGrid::new(configs, 1).with_threads(8);
        let out = grid.run(|&c, _| {
            std::thread::sleep(std::time::Duration::from_micros(200 * (48 - c)));
            c * 10
        });
        assert_eq!(out, (0..48).map(|c| c * 10).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let configs: Vec<(usize, f64)> = (1..5)
            .flat_map(|n| [0.5, 0.75, 1.0].into_iter().map(move |f| (n, f)))
            .collect();
        let run = |threads| {
            ShardedGrid::new(configs.clone(), 99)
                .with_threads(threads)
                .run(|&(n, f), ctx| {
                    let x: f64 = ctx.rng().gen();
                    n as f64 * f + x
                })
        };
        let a = run(1);
        for threads in [2, 3, 7] {
            assert_eq!(a, run(threads));
        }
    }

    #[test]
    fn streams_depend_on_identity_not_position() {
        // Dropping a grid point must not perturb the others' randomness.
        let full: Vec<f64> = vec![0.5, 0.6, 0.7, 0.8];
        let pruned: Vec<f64> = vec![0.5, 0.7, 0.8];
        let draw = |grid: Vec<f64>| {
            ShardedGrid::new(grid, 7)
                .with_threads(1)
                .run(|&f, ctx| (f, ctx.rng().gen::<f64>()))
        };
        let a = draw(full);
        let b = draw(pruned);
        for (f, x) in &b {
            let (_, xa) = a.iter().find(|(fa, _)| fa == f).unwrap();
            assert_eq!(x, xa, "stream for f={f} changed when the grid shrank");
        }
    }

    #[test]
    fn shared_streams_pair_across_configs() {
        // Two configs differing in the swept parameter read the same
        // shared state stream.
        let grid: Vec<(u64, u64)> = vec![(0, 7), (1, 7)];
        let out = ShardedGrid::new(grid, 3)
            .with_threads(2)
            .run(|&(_, s), ctx| {
                let mut state = ctx.shared(&(u64::MAX, s));
                let paired: f64 = state.gen();
                let own: f64 = ctx.rng().gen();
                (paired, own)
            });
        assert_eq!(out[0].0, out[1].0, "shared stream not paired");
        assert_ne!(out[0].1, out[1].1, "sampling lanes must differ");
    }

    #[test]
    fn lanes_are_independent_of_the_sampling_stream() {
        let grid: Vec<u64> = vec![5];
        let out = ShardedGrid::new(grid, 11).with_threads(1).run(|_, ctx| {
            let a: f64 = ctx.lane(0).gen();
            let b: f64 = ctx.lane(1).gen();
            let c: f64 = ctx.rng().gen();
            (a, b, c)
        });
        let (a, b, c) = out[0];
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn grid_keys_hash_values_not_indices() {
        assert_eq!((1usize, 0.5f64).grid_key(), (1usize, 0.5f64).grid_key());
        assert_ne!((1usize, 0.5f64).grid_key(), (2usize, 0.5f64).grid_key());
        assert_ne!((1usize, 0.5f64).grid_key(), (1usize, 0.6f64).grid_key());
        // -0.0 and +0.0 name the same point.
        assert_eq!((0.0f64).grid_key(), (-0.0f64).grid_key());
    }

    #[test]
    fn shard_result_merge_is_disjoint_union() {
        let mut a: ShardResult<u32> = ShardResult::new(4);
        let mut b: ShardResult<u32> = ShardResult::new(4);
        a.set(0, 10);
        a.set(2, 30);
        b.set(1, 20);
        b.set(3, 40);
        a.merge(b);
        assert!(a.is_complete());
        assert_eq!(a.into_rows(), vec![10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "filled twice")]
    fn overlapping_merge_panics() {
        let mut a: ShardResult<u32> = ShardResult::new(2);
        let mut b: ShardResult<u32> = ShardResult::new(2);
        a.set(0, 1);
        b.set(0, 2);
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "shard worker failed on config 5")]
    fn worker_panic_reaches_caller_with_original_message() {
        // The panic payload of a shard worker must surface verbatim from
        // run() — never masked as "configuration {i} never ran".
        let configs: Vec<u64> = (0..16).collect();
        ShardedGrid::new(configs, 1).with_threads(4).run(|&c, _| {
            if c == 5 {
                panic!("shard worker failed on config {c}");
            }
            c
        });
    }

    #[test]
    #[should_panic(expected = "shard worker failed on config 0")]
    fn single_thread_worker_panic_also_propagates() {
        let configs: Vec<u64> = (0..4).collect();
        ShardedGrid::new(configs, 1).with_threads(1).run(|&c, _| {
            if c == 0 {
                panic!("shard worker failed on config {c}");
            }
            c
        });
    }

    #[test]
    #[should_panic(expected = "configuration 1 never ran")]
    fn unfilled_slot_is_reported_as_distribution_bug() {
        // Direct accumulator misuse (not a worker panic) still gets the
        // explicit work-distribution diagnostic.
        let mut a: ShardResult<u32> = ShardResult::new(2);
        a.set(0, 1);
        let _ = a.into_rows();
    }

    #[test]
    fn empty_grid_runs() {
        let grid: ShardedGrid<u64> = ShardedGrid::new(vec![], 0);
        let out: Vec<u64> = grid.run(|&c, _| c);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_costs_all_complete() {
        let configs: Vec<usize> = (0..64).collect();
        let out = ShardedGrid::new(configs, 5).with_threads(8).run(|&c, _| {
            let mut acc = 0u64;
            for k in 0..(c * 997) {
                acc = acc.wrapping_add(k as u64);
            }
            acc
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn threads_default_positive() {
        assert!(default_threads() >= 1);
    }
}

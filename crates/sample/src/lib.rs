//! Exact discrete-distribution samplers for the batched shot engine.
//!
//! The branch-tree sampler in `qsim` draws a whole batch of shots as one
//! multinomial over its leaves instead of one tree walk per shot. That
//! reduction is only sound if the underlying binomial draws are *exact*
//! (the statistical-equivalence test suite holds the batched path to the
//! same distribution as the per-shot path), so this crate implements the
//! two textbook exact algorithms rather than a normal approximation:
//!
//! * **BINV** — CDF inversion by walking the pmf from 0; expected cost
//!   `O(n·p)`, used when `n·min(p, 1−p)` is small.
//! * **BTPE** — the triangle/parallelogram/exponential-tail
//!   acceptance-rejection scheme of Kachitvichyanukul & Schmeiser
//!   (*Binomial random variate generation*, CACM 31(2), 1988); `O(1)`
//!   expected cost per draw regardless of `n`, used otherwise.
//!
//! [`multinomial`] composes [`binomial`] through the conditional-binomial
//! decomposition: `n₁ ~ B(n, p₁)`, `n₂ ~ B(n−n₁, p₂/(1−p₁))`, … which is
//! exactly multinomially distributed and costs `O(k)` binomial draws for
//! `k` categories — independent of the shot count.
//!
//! Paper tie-in: Section IV's procedure estimates `⟨Z⟩` from shot
//! budgets of 10²–10⁶ per configuration (Figure 6); these samplers are
//! what lets `qsim::CompiledSampler` (and through it every `qpd`
//! estimator and `wirecut` term sampler) serve such a budget as one draw
//! per branch leaf instead of one tree walk per shot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod stream;

pub use grid::{
    default_threads, keyed_stream, GridKey, KeyHasher, ShardCtx, ShardResult, ShardedGrid,
};
pub use stream::{stream_block, StreamRng};

use rand::Rng;

/// Below `n·min(p, 1−p)` = 10 the inversion walk is cheaper than BTPE's
/// setup (the standard crossover, as in rand_distr and NumPy).
const BINV_THRESHOLD: f64 = 10.0;

/// Longest pmf walk BINV will attempt before redrawing: at `n·p ≤ 10`
/// the mass above 110 is far below 2⁻⁵³, so a walk this long only
/// happens when floating-point underflow has exhausted the pmf.
const BINV_MAX_X: u64 = 110;

/// Draws an exact binomial variate `B(n, p)`.
///
/// Exact in distribution for every `n` and `p ∈ [0, 1]` — no normal or
/// Poisson approximation — with `O(1)` expected cost for large `n·p`
/// (BTPE) and `O(n·p)` otherwise (BINV).
///
/// # Panics
/// Panics if `p` is not in `[0, 1]` (NaN included).
pub fn binomial<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!((0.0..=1.0).contains(&p), "binomial p must be in [0,1]: {p}");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Sample the small-probability half and mirror, so both algorithms
    // only ever see p ≤ 1/2 (BTPE's geometry assumes it).
    let flipped = p > 0.5;
    let p = if flipped { 1.0 - p } else { p };
    // BINV is valid for any n (the walk length only depends on n·p);
    // BTPE's region geometry needs n·p·q large, which the threshold
    // guarantees.
    let result = if (n as f64) * p < BINV_THRESHOLD {
        binv(n, p, rng)
    } else {
        btpe(n, p, rng)
    };
    if flipped {
        n - result
    } else {
        result
    }
}

/// BINV: invert the CDF by walking the pmf upward from 0 using the
/// recurrence `f(x+1) = f(x)·(a/(x+1) − s)`.
fn binv<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    debug_assert!(p <= 0.5);
    let q = 1.0 - p;
    let s = p / q;
    let a = (n as f64 + 1.0) * s;
    // q^n via exp(n·ln q): well-conditioned here because n·p < 10 and
    // p ≤ ½ keep n·ln q > −14, and it works for any u64 n (powi would
    // overflow its i32 exponent).
    let r0 = ((n as f64) * q.ln()).exp();
    loop {
        let mut r = r0;
        let mut u: f64 = rng.gen();
        let mut x = 0u64;
        loop {
            if u < r {
                return x;
            }
            u -= r;
            x += 1;
            if x > BINV_MAX_X {
                break; // pmf exhausted by rounding — redraw
            }
            r *= a / (x as f64) - s;
        }
    }
}

/// One term of the truncated Stirling series for `ln x!`, as used in
/// BTPE's final acceptance test (step 5.3 of the paper).
fn stirling_tail(v: f64, v2: f64) -> f64 {
    (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / v2) / v2) / v2) / v2) / v / 166320.0
}

/// BTPE: acceptance-rejection from a piecewise majorizing function
/// (central triangle, side parallelograms, exponential tails) with a
/// squeeze step so most draws cost one uniform pair and no logs.
fn btpe<R: Rng + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    debug_assert!(p <= 0.5);
    // Outside this |y − m| band the squeeze bounds on ln f(y) are used;
    // inside it the pmf recurrence from the mode is cheaper (step 5.0/5.1).
    const SQUEEZE_THRESHOLD: f64 = 20.0;
    let n_f = n as f64;
    let q = 1.0 - p;
    let npq = n_f * p * q;
    let f_m = n_f * p + p;
    let m = f_m.floor(); // the mode
    let p1 = (2.195 * npq.sqrt() - 4.6 * q).floor() + 0.5;
    let x_m = m + 0.5;
    let x_l = x_m - p1;
    let x_r = x_m + p1;
    let c = 0.134 + 20.5 / (15.3 + m);
    let lambda_l = {
        let a = (f_m - x_l) / (f_m - x_l * p);
        a * (1.0 + 0.5 * a)
    };
    let lambda_r = {
        let a = (x_r - f_m) / (x_r * q);
        a * (1.0 + 0.5 * a)
    };
    let p2 = p1 * (1.0 + 2.0 * c);
    let p3 = p2 + c / lambda_l;
    let p4 = p3 + c / lambda_r;

    let y: f64 = loop {
        // Step 1: region selection by u; v decides within the region.
        let u: f64 = rng.gen::<f64>() * p4;
        let mut v: f64 = rng.gen();
        if u <= p1 {
            // Central triangle: accept immediately.
            break (x_m - p1 * v + u).floor();
        }
        let y = if u <= p2 {
            // Step 2: parallelograms.
            let x = x_l + (u - p1) / c;
            v = v * c + 1.0 - (x - x_m).abs() / p1;
            if v > 1.0 {
                continue;
            }
            x.floor()
        } else if u <= p3 {
            // Step 3: left exponential tail.
            let y = (x_l + v.ln() / lambda_l).floor();
            if y < 0.0 {
                continue;
            }
            v *= (u - p2) * lambda_l;
            y
        } else {
            // Step 4: right exponential tail.
            let y = (x_r - v.ln() / lambda_r).floor();
            if y > n_f {
                continue;
            }
            v *= (u - p3) * lambda_r;
            y
        };
        // Step 5: accept y with probability f(y)/majorizer, evaluated
        // exactly — so the returned variate is exactly binomial.
        let k = (y - m).abs();
        if !(k > SQUEEZE_THRESHOLD && k < 0.5 * npq - 1.0) {
            // Step 5.1: evaluate f(y) by the pmf recurrence from the mode.
            let s = p / q;
            let a = s * (n_f + 1.0);
            let mut f = 1.0;
            if m < y {
                let mut i = m;
                loop {
                    i += 1.0;
                    f *= a / i - s;
                    if i == y {
                        break;
                    }
                }
            } else if m > y {
                let mut i = y;
                loop {
                    i += 1.0;
                    f /= a / i - s;
                    if i == m {
                        break;
                    }
                }
            }
            if v > f {
                continue;
            }
            break y;
        }
        // Step 5.2: squeeze on ln f(y).
        let rho = (k / npq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / npq + 0.5);
        let t = -0.5 * k * k / npq;
        let alpha = v.ln();
        if alpha < t - rho {
            break y;
        }
        if alpha > t + rho {
            continue;
        }
        // Step 5.3: final test against ln f(y) via the Stirling series.
        let x1 = y + 1.0;
        let f1 = m + 1.0;
        let z = n_f + 1.0 - m;
        let w = n_f - y + 1.0;
        let accept = x_m * (f1 / x1).ln()
            + (n_f - m + 0.5) * (z / w).ln()
            + (y - m) * (w * p / (x1 * q)).ln()
            + stirling_tail(f1, f1 * f1)
            + stirling_tail(z, z * z)
            + stirling_tail(x1, x1 * x1)
            + stirling_tail(w, w * w);
        if alpha > accept {
            continue;
        }
        break y;
    };
    y as u64
}

/// Draws exact multinomial counts: `n` trials over categories with the
/// given (relative) weights. Returns one count per weight, summing to `n`.
///
/// Weights need not be normalised; zero-weight categories always get a
/// zero count. Cost is `O(weights.len())` binomial draws — independent
/// of `n` — via the conditional-binomial decomposition.
///
/// # Panics
/// Panics if any weight is negative/NaN, or if `n > 0` and all weights
/// are zero.
pub fn multinomial<R: Rng + ?Sized>(n: u64, weights: &[f64], rng: &mut R) -> Vec<u64> {
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "multinomial weights must be non-negative: {weights:?}"
    );
    let mut counts = vec![0u64; weights.len()];
    if n == 0 {
        return counts;
    }
    let mut rest: f64 = weights.iter().sum();
    assert!(
        rest > 0.0,
        "multinomial needs a positive total weight for n = {n} trials"
    );
    let mut remaining = n;
    for (i, &w) in weights.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        // Last category, or the tail beyond it carries no weight
        // numerically: give it everything that is left. This also
        // absorbs the accumulated floating-point error of `rest`.
        if i + 1 == weights.len() || w >= rest {
            counts[i] = remaining;
            break;
        }
        if w > 0.0 {
            let c = binomial(remaining, (w / rest).clamp(0.0, 1.0), rng);
            counts[i] = c;
            remaining -= c;
        }
        rest -= w;
    }
    debug_assert_eq!(counts.iter().sum::<u64>(), n);
    counts
}

/// Total-variation distance `½ Σᵢ |cᵢ/shots − pᵢ|` between empirical
/// counts and a probability vector — the statistic every equivalence
/// suite in the workspace tests sampled distributions with.
///
/// # Panics
/// Panics when `counts` and `probs` have different lengths or
/// `shots == 0`.
pub fn tv_distance(counts: &[u64], probs: &[f64], shots: u64) -> f64 {
    assert_eq!(counts.len(), probs.len(), "counts/probs length mismatch");
    assert!(shots > 0, "tv_distance of an empty sample");
    counts
        .iter()
        .zip(probs.iter())
        .map(|(&c, &p)| (c as f64 / shots as f64 - p).abs())
        .sum::<f64>()
        / 2.0
}

/// 5σ bound on the TV distance of a multinomial sample of size `shots`
/// from its generating distribution: TV = ½Σ|fᵢ − pᵢ| where each
/// marginal deviation has σᵢ = √(pᵢ(1−pᵢ)/shots). Summing 5σᵢ bounds is
/// conservative (the deviations are negatively correlated), so a
/// violation is a real distributional bug, not noise.
pub fn tv_bound_5_sigma(probs: &[f64], shots: u64) -> f64 {
    2.5 * probs
        .iter()
        .map(|&p| (p * (1.0 - p) / shots as f64).sqrt())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Exact binomial pmf by the multiplicative recurrence (stable for
    /// the moderate n used in tests).
    fn pmf(n: u64, p: f64) -> Vec<f64> {
        let mut f = (1.0 - p).powi(n as i32);
        let s = p / (1.0 - p);
        let mut out = Vec::with_capacity(n as usize + 1);
        out.push(f);
        for x in 1..=n {
            f *= ((n - x + 1) as f64 / x as f64) * s;
            out.push(f);
        }
        out
    }

    /// Draws `reps` variates and checks empirical mean and variance
    /// against n·p and n·p·q within `sigmas` standard errors.
    fn check_moments(n: u64, p: f64, reps: u64, sigmas: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..reps {
            let x = binomial(n, p, &mut rng) as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / reps as f64;
        let var = sumsq / reps as f64 - mean * mean;
        let m_true = n as f64 * p;
        let v_true = n as f64 * p * (1.0 - p);
        let mean_se = (v_true / reps as f64).sqrt();
        assert!(
            (mean - m_true).abs() < sigmas * mean_se + 1e-12,
            "B({n},{p}): mean {mean} vs {m_true} (se {mean_se})"
        );
        // Var of the sample variance ≈ (μ₄ − σ⁴)/reps; bound loosely by
        // 2·σ⁴·(1 + 6/npq)/reps which covers the binomial kurtosis.
        let var_se = (2.0 * v_true * v_true * (1.0 + 6.0 / v_true.max(1.0)) / reps as f64).sqrt();
        assert!(
            (var - v_true).abs() < sigmas * var_se + 1e-12,
            "B({n},{p}): var {var} vs {v_true} (se {var_se})"
        );
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(binomial(0, 0.3, &mut rng), 0);
        assert_eq!(binomial(100, 0.0, &mut rng), 0);
        assert_eq!(binomial(100, 1.0, &mut rng), 100);
        for _ in 0..100 {
            let x = binomial(1, 0.5, &mut rng);
            assert!(x <= 1);
        }
    }

    #[test]
    fn binv_moments_small_np() {
        // All of these hit the BINV branch (n·min(p,q) < 10).
        check_moments(20, 0.2, 40_000, 5.0, 11);
        check_moments(9, 0.5, 40_000, 5.0, 12);
        check_moments(1000, 0.004, 40_000, 5.0, 13);
        check_moments(50, 0.9, 40_000, 5.0, 14); // flipped half
    }

    #[test]
    fn binv_handles_n_beyond_i32() {
        // n > i32::MAX with tiny p must still route through BINV (BTPE's
        // geometry collapses at small n·p·q) and keep binomial moments.
        let n = 3_000_000_000u64; // > i32::MAX
        let p = 1e-9; // n·p = 3
        check_moments(n, p, 40_000, 5.0, 15);
        // Flipped half: x ~ B(n, 1−p) leaves a small complement n − x
        // with the same B(n, p) law (moments checked on the complement
        // to avoid catastrophic cancellation at x ≈ 3·10⁹).
        let mut rng = StdRng::seed_from_u64(16);
        let reps = 40_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..reps {
            let d = (n - binomial(n, 1.0 - p, &mut rng)) as f64;
            sum += d;
            sumsq += d * d;
        }
        let mean = sum / reps as f64;
        let var = sumsq / reps as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.05, "complement mean {mean}");
        assert!((var - 3.0).abs() < 0.15, "complement var {var}");
    }

    #[test]
    fn btpe_moments_large_np() {
        // All of these hit the BTPE branch.
        check_moments(1_000, 0.5, 40_000, 5.0, 21);
        check_moments(10_000, 0.037, 40_000, 5.0, 22);
        check_moments(100_000, 0.73, 40_000, 5.0, 23);
        check_moments(40, 0.45, 40_000, 5.0, 24);
    }

    /// Chi-square goodness-of-fit of the sampler against the exact pmf,
    /// pooling tail bins below an expected count of 10. The 5σ-equivalent
    /// threshold keeps the test deterministic-in-practice while still
    /// catching any distributional bug (a normal approximation, an
    /// off-by-one in the mode, a wrong tail constant…).
    fn check_chi_square(n: u64, p: f64, reps: u64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hist = vec![0u64; n as usize + 1];
        for _ in 0..reps {
            hist[binomial(n, p, &mut rng) as usize] += 1;
        }
        let probs = pmf(n, p);
        // Pool bins so every pooled bin has expectation ≥ 10.
        let mut chi2 = 0.0;
        let mut dof: i64 = -1;
        let mut acc_e = 0.0;
        let mut acc_o = 0.0;
        for x in 0..=n as usize {
            acc_e += probs[x] * reps as f64;
            acc_o += hist[x] as f64;
            if acc_e >= 10.0 {
                chi2 += (acc_o - acc_e) * (acc_o - acc_e) / acc_e;
                dof += 1;
                acc_e = 0.0;
                acc_o = 0.0;
            }
        }
        if acc_e > 0.0 {
            chi2 += (acc_o - acc_e) * (acc_o - acc_e) / acc_e;
            dof += 1;
        }
        let dof = dof.max(1) as f64;
        // χ²_k concentrates at k ± √(2k); 5σ above the mean.
        let bound = dof + 5.0 * (2.0 * dof).sqrt();
        assert!(
            chi2 < bound,
            "B({n},{p}): chi2 {chi2} over {dof} dof exceeds {bound}"
        );
    }

    #[test]
    fn binv_matches_exact_pmf() {
        check_chi_square(12, 0.3, 60_000, 31);
        check_chi_square(40, 0.1, 60_000, 32);
    }

    #[test]
    fn btpe_matches_exact_pmf() {
        check_chi_square(60, 0.4, 60_000, 33);
        check_chi_square(200, 0.25, 60_000, 34);
        check_chi_square(500, 0.5, 60_000, 35);
    }

    #[test]
    fn multinomial_counts_sum_to_n() {
        let mut rng = StdRng::seed_from_u64(41);
        for &n in &[0u64, 1, 7, 10_000] {
            let c = multinomial(n, &[0.2, 0.0, 0.5, 0.3], &mut rng);
            assert_eq!(c.iter().sum::<u64>(), n);
            assert_eq!(c[1], 0, "zero-weight category drew counts");
        }
    }

    #[test]
    fn multinomial_handles_unnormalised_weights() {
        let mut rng = StdRng::seed_from_u64(42);
        let reps = 20_000;
        let w = [2.0, 6.0];
        let mut sum0 = 0u64;
        for _ in 0..reps {
            sum0 += multinomial(4, &w, &mut rng)[0];
        }
        // E[count₀] = 4·(2/8) = 1 per draw.
        let mean = sum0 as f64 / reps as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn multinomial_single_category_gets_everything() {
        let mut rng = StdRng::seed_from_u64(43);
        assert_eq!(multinomial(1234, &[0.7], &mut rng), vec![1234]);
    }

    #[test]
    fn multinomial_marginals_are_binomial() {
        // Each marginal of a multinomial is binomial; check the moments
        // of every category at once.
        let w = [0.1, 0.25, 0.65];
        let n = 300u64;
        let reps = 30_000;
        let mut rng = StdRng::seed_from_u64(44);
        let mut sums = [0.0f64; 3];
        let mut sumsq = [0.0f64; 3];
        for _ in 0..reps {
            let c = multinomial(n, &w, &mut rng);
            for i in 0..3 {
                sums[i] += c[i] as f64;
                sumsq[i] += (c[i] * c[i]) as f64;
            }
        }
        for i in 0..3 {
            let mean = sums[i] / reps as f64;
            let var = sumsq[i] / reps as f64 - mean * mean;
            let m_true = n as f64 * w[i];
            let v_true = m_true * (1.0 - w[i]);
            let se = (v_true / reps as f64).sqrt();
            assert!(
                (mean - m_true).abs() < 5.0 * se,
                "cat {i}: mean {mean} vs {m_true}"
            );
            assert!(
                (var - v_true).abs() < 0.1 * v_true,
                "cat {i}: var {var} vs {v_true}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn multinomial_rejects_all_zero_weights() {
        let mut rng = StdRng::seed_from_u64(45);
        multinomial(5, &[0.0, 0.0], &mut rng);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn binomial_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(46);
        binomial(5, 1.5, &mut rng);
    }

    #[test]
    fn tv_distance_basics() {
        // Perfect agreement → 0; total disagreement → 1.
        assert_eq!(tv_distance(&[50, 50], &[0.5, 0.5], 100), 0.0);
        assert!((tv_distance(&[100, 0], &[0.0, 1.0], 100) - 1.0).abs() < 1e-15);
        // Half the mass misplaced → TV ½.
        assert!((tv_distance(&[75, 25], &[0.25, 0.75], 100) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn tv_bound_shrinks_with_shots() {
        let probs = [0.25, 0.25, 0.25, 0.25];
        let b100 = tv_bound_5_sigma(&probs, 100);
        let b10k = tv_bound_5_sigma(&probs, 10_000);
        assert!(
            (b100 / b10k - 10.0).abs() < 1e-9,
            "bound must scale 1/sqrt(shots)"
        );
        // Degenerate distribution has zero variance.
        assert_eq!(tv_bound_5_sigma(&[1.0, 0.0], 100), 0.0);
    }

    #[test]
    fn multinomial_tv_within_bound() {
        let mut rng = StdRng::seed_from_u64(77);
        let probs = [0.5, 0.2, 0.2, 0.1];
        let shots = 100_000;
        let counts = multinomial(shots, &probs, &mut rng);
        let tv = tv_distance(&counts, &probs, shots);
        assert!(tv < tv_bound_5_sigma(&probs, shots), "tv {tv} out of bound");
    }
}

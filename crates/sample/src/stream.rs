//! Counter-based RNG streams for configuration-grid sharding.
//!
//! Sharding a sweep across worker threads is only reproducible if the
//! randomness consumed by each shard is a pure function of *which* shard
//! it is — never of which thread picked it up or in what order shards
//! completed. A sequential generator (xoshiro, PCG, …) cannot offer that
//! without jump-ahead bookkeeping, so this module provides the standard
//! alternative: a **counter-based** generator in the Philox/Threefry
//! mould (Salmon et al., *Parallel random numbers: as easy as 1, 2, 3*,
//! SC'11), where output `i` of stream `s` under seed `k` is
//!
//! ```text
//! out(k, s, i) = prf(k, s, i)
//! ```
//!
//! where `prf` keeps the *whole* 128-bit `(s, i)` block intact: it is a
//! keyed permutation of the block space (a 4-round Feistel network over
//! the two 64-bit halves, keyed by `k`), truncated to 64 output bits.
//! Because a permutation is injective, distinct `(s, i)` blocks map to
//! distinct 128-bit images, and two streams with different `s` read
//! **disjoint** sets of input blocks for every counter value —
//! counter-space disjointness holds by construction, not
//! probabilistically. (Folding `s` and `i` into a single 64-bit word
//! before mixing would silently forfeit this: the two streams would
//! then traverse permutations of the *same* 64-bit input set.)
//!
//! The Feistel round function is the splitmix64 finalizer (Steele, Lea
//! & Flood's `mix64`, the avalanche stage of SplitMix64, which passes
//! BigCrush as `mix64(i·γ)`) applied to the right half xored with a
//! per-round key schedule. Four rounds is the Luby–Rackoff threshold
//! for a strong pseudorandom permutation from good round functions; the
//! result is statistically solid for Monte Carlo use and cheap — six
//! finalizer evaluations per 64-bit output — but, like everything in
//! this workspace's sampling stack, not cryptographically secure.

use rand::RngCore;

/// The splitmix64 avalanche finalizer (bijective on `u64`).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Weyl increment of SplitMix64 (odd, so multiplication is bijective).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;
/// Second odd constant (xxHash prime) separating the round-key schedule
/// from the Weyl sequence.
const COUNTER_GAMMA: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Round key `r` of the Feistel schedule under `seed`.
#[inline]
fn round_key(seed: u64, round: u64) -> u64 {
    mix64(seed ^ round.wrapping_mul(COUNTER_GAMMA).wrapping_add(GOLDEN_GAMMA))
}

/// The keyed PRF behind [`StreamRng`]: a 4-round Feistel permutation of
/// the 128-bit `(stream, counter)` block under `seed`, truncated to 64
/// bits by folding the output halves through one final avalanche.
///
/// For a fixed seed the permutation is injective on blocks, so distinct
/// streams read disjoint block sets at every counter — the structural
/// non-overlap guarantee the sharding engine's determinism rests on.
/// Exposed so tests (and the engine's documentation) can state the
/// exact output law.
#[inline]
pub fn stream_block(seed: u64, stream: u64, counter: u64) -> u64 {
    let (mut l, mut r) = (stream, counter);
    for round in 0..4 {
        let f = mix64(r ^ round_key(seed, round));
        (l, r) = (r, l ^ f);
    }
    mix64(l.wrapping_add(r.rotate_left(32)))
}

/// A counter-based RNG stream: output `i` is `stream_block(seed, stream,
/// i)`. Streams with distinct stream ids consume disjoint 128-bit PRF
/// input blocks under the same keyed permutation, so they are
/// non-overlapping by construction — exactly what per-shard randomness
/// in a work-stealing grid runner needs (see [`crate::grid`]).
///
/// Implements [`rand::RngCore`], so it drops into every sampler in the
/// workspace (`qsample::binomial`, `qsim::CompiledSampler`, the `qpd`
/// estimators, `qsim::haar_unitary`, …).
#[derive(Clone, Debug)]
pub struct StreamRng {
    seed: u64,
    stream: u64,
    counter: u64,
}

impl StreamRng {
    /// Creates stream `stream` under `seed`, positioned at counter 0.
    pub fn new(seed: u64, stream: u64) -> Self {
        StreamRng {
            seed,
            stream,
            counter: 0,
        }
    }

    /// The stream identifier this generator reads from.
    pub fn stream(&self) -> u64 {
        self.stream
    }

    /// How many 64-bit blocks have been consumed (the current counter).
    pub fn position(&self) -> u64 {
        self.counter
    }

    /// A sibling stream under the same seed: `split(tag)` derives a new
    /// stream id by hashing `(stream, tag)`, useful for giving one shard
    /// several independent randomness lanes (e.g. a state-preparation
    /// lane shared across configurations plus a sampling lane per
    /// configuration). Distinct tags give distinct ids up to the
    /// negligible 64-bit hash-collision probability.
    pub fn split(&self, tag: u64) -> StreamRng {
        StreamRng::new(
            self.seed,
            mix64(self.stream ^ tag.wrapping_mul(GOLDEN_GAMMA)),
        )
    }

    /// A stream addressed by a *path* of tags: `derive(&[a, b, c])` is
    /// `split(a).split(b).split(c)`. This is the hierarchical form of
    /// [`split`](Self::split) used by the service layer to key one lane
    /// per `(job, batch, term)` — every level of the path contributes to
    /// the derived stream id, so sibling paths get structurally disjoint
    /// counter spaces just like sibling splits.
    pub fn derive(&self, tags: &[u64]) -> StreamRng {
        tags.iter().fold(self.clone(), |rng, &tag| rng.split(tag))
    }
}

impl RngCore for StreamRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let out = stream_block(self.seed, self.stream, self.counter);
        self.counter = self.counter.wrapping_add(1);
        out
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_order_independent() {
        let mut a = StreamRng::new(7, 42);
        let first: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        // Replaying the stream reproduces it exactly.
        let mut b = StreamRng::new(7, 42);
        let again: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);
        // Output i is a pure function of (seed, stream, i).
        for (i, &v) in first.iter().enumerate() {
            assert_eq!(v, stream_block(7, 42, i as u64));
        }
    }

    #[test]
    fn streams_are_distinct_sequences() {
        let mut a = StreamRng::new(1, 0);
        let mut b = StreamRng::new(1, 1);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
        // Different seeds decorrelate the same stream id too.
        let mut c = StreamRng::new(2, 0);
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn split_streams_diverge_from_parent_and_each_other() {
        let parent = StreamRng::new(3, 99);
        let mut s1 = parent.split(0);
        let mut s2 = parent.split(1);
        let mut p = parent.clone();
        let v0: Vec<u64> = (0..32).map(|_| p.next_u64()).collect();
        let v1: Vec<u64> = (0..32).map(|_| s1.next_u64()).collect();
        let v2: Vec<u64> = (0..32).map(|_| s2.next_u64()).collect();
        assert_ne!(v0, v1);
        assert_ne!(v0, v2);
        assert_ne!(v1, v2);
        assert_ne!(s1.stream(), s2.stream());
    }

    #[test]
    fn derive_is_the_fold_of_split() {
        let root = StreamRng::new(9, 1234);
        let a = root.derive(&[5, 6, 7]);
        let b = root.split(5).split(6).split(7);
        assert_eq!(a.stream(), b.stream());
        // Empty path is the identity stream (fresh counter).
        assert_eq!(root.derive(&[]).stream(), root.stream());
        // Path order matters and sibling paths diverge.
        assert_ne!(root.derive(&[5, 6]).stream(), root.derive(&[6, 5]).stream());
        assert_ne!(root.derive(&[5, 6]).stream(), root.derive(&[5, 7]).stream());
    }

    #[test]
    fn uniform_f64_moments_are_sane() {
        let mut rng = StreamRng::new(11, 5);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.002, "var {var}");
    }

    #[test]
    fn pooled_streams_pass_chi_square() {
        // Pool draws from many adjacent streams into 256 byte-valued bins;
        // a per-stream bias or cross-stream correlation shows up here.
        let streams = 64;
        let per_stream = 1024;
        let mut hist = [0u64; 256];
        for s in 0..streams {
            let mut rng = StreamRng::new(12345, s);
            for _ in 0..per_stream {
                hist[(rng.next_u64() >> 56) as usize] += 1;
            }
        }
        let total = (streams * per_stream) as f64;
        let expect = total / 256.0;
        let chi2: f64 = hist
            .iter()
            .map(|&o| (o as f64 - expect) * (o as f64 - expect) / expect)
            .sum();
        // χ²_255 concentrates at 255 ± √510; allow 5σ.
        let bound = 255.0 + 5.0 * (2.0 * 255.0f64).sqrt();
        assert!(chi2 < bound, "chi2 {chi2} over 255 dof exceeds {bound}");
    }

    #[test]
    fn binomial_rides_stream_rng() {
        // The exact samplers accept any RngCore; moments stay binomial.
        let mut rng = StreamRng::new(77, 3);
        let reps = 20_000;
        let mut sum = 0.0;
        for _ in 0..reps {
            sum += crate::binomial(1000, 0.3, &mut rng) as f64;
        }
        let mean = sum / reps as f64;
        assert!((mean - 300.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut rng = StreamRng::new(5, 5);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn position_tracks_consumption() {
        let mut rng = StreamRng::new(1, 2);
        assert_eq!(rng.position(), 0);
        let _ = rng.next_u64();
        let _ = rng.next_u32();
        assert_eq!(rng.position(), 2);
    }
}

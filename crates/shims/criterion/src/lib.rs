//! In-tree stand-in for the `criterion` crate, used because this
//! workspace builds fully offline. It keeps criterion's API shape —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`criterion_group!`]/[`criterion_main!`] — but replaces the
//! statistical engine with a plain wall-clock loop: warm up, run batches
//! until a time budget is spent, report the best-batch mean per
//! iteration (the least noisy cheap estimator). Output is one line per
//! benchmark: `name ... time: <mean> (<iters> iters)` plus throughput
//! when configured.
//!
//! The shim honours criterion's CLI convention far enough for `cargo
//! test --benches` to stay quick: any `--test` argument (criterion's
//! test-mode flag) runs each benchmark exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            measurement_time: Duration::from_millis(200),
            test_mode,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks. The group inherits the
    /// driver's measurement budget; `sample_size` adjustments stay local
    /// to the group (as in real criterion).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().label();
        run_one(self.test_mode, self.measurement_time, &label, None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// setting, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count for **this group only**. The shim
    /// sizes runs by wall-clock budget instead, so this scales the
    /// group's budget mildly to respect "fewer samples = faster run"
    /// intent.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let scale = (n as f64 / 100.0).clamp(0.1, 1.0);
        self.measurement_time = Duration::from_micros((200_000.0 * scale) as u64);
        self
    }

    /// Declares the work per iteration so the report includes
    /// elements-per-second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id` within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_one(
            self.criterion.test_mode,
            self.measurement_time,
            &label,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through (criterion's
    /// parameterised form).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_one(
            self.criterion.test_mode,
            self.measurement_time,
            &label,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (output is already flushed per-benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, an optional parameter, or
/// both, mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier with only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: Some(function.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function: Some(function),
            parameter: None,
        }
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch size chosen by the harness.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_duration(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn run_one<F>(
    test_mode: bool,
    budget: Duration,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!("{label} ... ok (test mode)");
        return;
    }

    // Calibration pass: one iteration, to size batches.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let batch = (budget.as_nanos() / 8 / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    // Measurement: repeated batches within the budget; keep the best
    // (least-interference) batch.
    let mut best_nanos_per_iter = f64::INFINITY;
    let mut total = Duration::ZERO;
    let mut batches = 0u32;
    while total < budget || batches < 2 {
        let mut bencher = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total += bencher.elapsed;
        batches += 1;
        let nanos = bencher.elapsed.as_nanos() as f64 / batch as f64;
        if nanos < best_nanos_per_iter {
            best_nanos_per_iter = nanos;
        }
        if batches >= 1000 {
            break;
        }
    }

    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / (best_nanos_per_iter / 1e9);
            format!("  thrpt: {per_sec:.3e} elem/s")
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / (best_nanos_per_iter / 1e9);
            format!("  thrpt: {per_sec:.3e} B/s")
        }
        None => String::new(),
    };
    println!(
        "{label:<60} time: {:>12}  ({} × {batch} iters){rate}",
        format_duration(best_nanos_per_iter),
        batches,
    );
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`. Only the simple
/// `criterion_group!(name, fn, ...)` form is supported.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_millis(5),
            test_mode: false,
        };
        let mut ran = 0u32;
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("count", |b| {
            ran += 1;
            b.iter(|| black_box(2u64 + 2));
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.finish();
        assert!(ran >= 2, "calibration + measurement batches expected");
    }

    #[test]
    fn sample_size_is_per_group() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_millis(5),
            test_mode: false,
        };
        let mut first = criterion.benchmark_group("a");
        first.sample_size(10);
        first.finish();
        // A later group must see the driver's budget, not the previous
        // group's reduced one.
        let second = criterion.benchmark_group("b");
        assert_eq!(second.measurement_time, Duration::from_millis(5));
        second.finish();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 7).label(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").label(), "x");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut criterion = Criterion {
            measurement_time: Duration::from_secs(100),
            test_mode: true,
        };
        let mut calls = 0u32;
        criterion.bench_function("once", |b| {
            calls += 1;
            b.iter(|| ());
        });
        assert_eq!(calls, 1);
    }
}

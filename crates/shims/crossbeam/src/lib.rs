//! In-tree stand-in for the `crossbeam` crate, used because this
//! workspace builds fully offline. Only [`scope`] is provided, built on
//! `std::thread::scope` (stable since 1.63) with crossbeam's signature:
//! the closure receives a [`Scope`] handle whose `spawn` passes the scope
//! back into the worker closure, and the call returns `Err` carrying the
//! **original panic payload** of the first worker that panicked (so
//! callers can `resume_unwind` it and assertion messages survive),
//! instead of propagating the panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};

type Payload = Box<dyn Any + Send + 'static>;

/// Handle for spawning scoped worker threads, mirroring
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    first_panic: Arc<Mutex<Option<Payload>>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker thread bound to the scope. The closure receives
    /// the scope handle (crossbeam's nested-spawn signature); workers may
    /// borrow from the enclosing stack frame.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope {
            inner: self.inner,
            first_panic: Arc::clone(&self.first_panic),
        };
        let first_panic = Arc::clone(&self.first_panic);
        self.inner.spawn(move || {
            match std::panic::catch_unwind(AssertUnwindSafe(|| f(&handle))) {
                Ok(value) => value,
                Err(payload) => {
                    // Keep the first payload for scope() to return; the
                    // panic hook has already printed the message/location.
                    let message = format_payload(payload.as_ref());
                    let mut slot = first_panic
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    drop(slot);
                    // Re-panic so std::thread::scope still observes a
                    // panicked child (and joins the remaining workers).
                    std::panic::resume_unwind(Box::new(DuplicatePanic(message)))
                }
            }
        })
    }
}

/// Marker payload for the re-raised panic inside a worker; the original
/// payload travels back through [`scope`]'s `Err` instead. The carried
/// string exists for anyone downcasting the marker itself.
struct DuplicatePanic(#[allow(dead_code)] String);

fn format_payload(payload: &(dyn Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        String::from("worker panicked with a non-string payload")
    }
}

/// Creates a scope in which borrowing, joined-by-construction threads can
/// be spawned. Returns `Err` with the first worker's original panic
/// payload if any worker panicked (or the scope closure's own payload if
/// it panicked itself), matching crossbeam's contract.
pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let first_panic: Arc<Mutex<Option<Payload>>> = Arc::new(Mutex::new(None));
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            f(&Scope {
                inner: s,
                first_panic: Arc::clone(&first_panic),
            })
        })
    }));
    let recorded = first_panic
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    match (result, recorded) {
        (_, Some(payload)) => Err(payload),
        (Ok(value), None) => Ok(value),
        (Err(payload), None) => Err(payload),
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            "done"
        })
        .unwrap();
        assert_eq!(out, "done");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panic_becomes_err_with_original_payload() {
        let result = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }

    #[test]
    fn formatted_panic_payload_survives() {
        let qubit = 3;
        let payload = super::scope(|s| {
            s.spawn(move |_| panic!("bad qubit {qubit}"));
        })
        .unwrap_err();
        assert_eq!(
            payload.downcast_ref::<String>().map(String::as_str),
            Some("bad qubit 3")
        );
    }

    #[test]
    fn closure_panic_also_becomes_err() {
        let result: Result<(), _> = super::scope(|_| panic!("outer"));
        assert_eq!(result.unwrap_err().downcast_ref::<&str>(), Some(&"outer"));
    }

    #[test]
    fn nested_spawn_through_handle() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}

//! In-tree stand-in for the `parking_lot` crate, used because this
//! workspace builds fully offline. Only the surface the workspace
//! consumes is provided: a [`Mutex`] whose `lock()` returns the guard
//! directly (parking_lot's poison-free signature), implemented over
//! `std::sync::Mutex` by unwrapping poison into the inner guard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not poison
    /// the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}

//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng as _;

/// Length specification for [`vec()`]: an exact length or a half-open
/// range, mirroring `proptest::collection::SizeRange`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            start: exact,
            end: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            start: range.start,
            end: range.end,
        }
    }
}

/// Strategy for vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = if self.size.end - self.size.start == 1 {
            self.size.start
        } else {
            self.size.start + rng.gen_range(0..self.size.end - self.size.start)
        };
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            // Retry filtered elements locally so one rejection does not
            // discard the whole vector.
            let mut element = None;
            for _ in 0..100 {
                if let Some(v) = self.element.sample(rng) {
                    element = Some(v);
                    break;
                }
            }
            out.push(element?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::vec;
    use crate::rng_from_seed;
    use crate::strategy::Strategy;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = rng_from_seed(4);
        let exact = vec(0.0f64..1.0, 5).sample(&mut rng).unwrap();
        assert_eq!(exact.len(), 5);
        for _ in 0..50 {
            let ranged = vec(0.0f64..1.0, 2..6).sample(&mut rng).unwrap();
            assert!((2..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn elements_obey_inner_strategy() {
        let mut rng = rng_from_seed(5);
        let v = vec((1.0f64..2.0).prop_filter("upper", |x| *x > 1.1), 8)
            .sample(&mut rng)
            .unwrap();
        assert_eq!(v.len(), 8);
        assert!(v.iter().all(|&x| x > 1.1 && x < 2.0));
    }
}

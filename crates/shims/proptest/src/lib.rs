//! In-tree stand-in for the `proptest` crate, used because this
//! workspace builds fully offline. It keeps proptest's *surface* — the
//! [`proptest!`] macro, [`Strategy`] combinators
//! (`prop_map`, `prop_filter`), range/tuple/[`Just`]
//! strategies, [`prop_oneof!`], [`collection::vec()`] and
//! [`ProptestConfig`] — while replacing the engine with straightforward
//! seeded random sampling:
//!
//! * every case is drawn from a deterministic per-test RNG, so failures
//!   reproduce exactly across runs and machines;
//! * there is **no shrinking** — a failing case reports the sampled
//!   inputs via the panic message of the inner assertion instead;
//! * `prop_filter` rejections resample (with a global cap) rather than
//!   tracking local-rejection budgets.
//!
//! The property tests in `tests/` run unmodified against either this
//! shim or the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// proptest's default of 256 cases.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG driving sampling. Re-exported for the [`proptest!`] macro
/// expansion; not part of the public proptest API.
pub type TestRng = rand::rngs::StdRng;

/// Builds the case RNG from a seed. Re-exported for the [`proptest!`]
/// macro expansion so consumers need no direct `rand` dependency.
pub fn rng_from_seed(seed: u64) -> TestRng {
    <TestRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Derives the deterministic base seed for a named test: FNV-1a over the
/// test name, so every test gets a distinct but stable stream.
pub fn seed_for_test(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Everything a property test needs in scope, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests.
///
/// Supports the subset of the real macro's grammar used in this
/// workspace: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each test
/// samples its strategies from a deterministic per-test RNG until the
/// configured number of cases has run; `prop_filter` rejections resample
/// without consuming a case (capped at 100× the case count).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let base_seed = $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name)));
                let max_rejects = config.cases.saturating_mul(100);
                let mut rejects: u32 = 0;
                let mut case: u32 = 0;
                let mut stream: u64 = 0;
                $(let $arg = &($strat);)+
                while case < config.cases {
                    stream = stream.wrapping_add(1);
                    let mut rng = $crate::rng_from_seed(
                        base_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg = match $arg.sample(&mut rng) {
                            Some(value) => value,
                            None => {
                                rejects += 1;
                                assert!(
                                    rejects <= max_rejects,
                                    "proptest shim: too many prop_filter rejections in {}",
                                    stringify!($name),
                                );
                                continue;
                            }
                        };
                    )+
                    case += 1;
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a property holds for the sampled inputs (shim: plain
/// `assert!`; the real macro returns an `Err` that triggers shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two expressions are equal for the sampled inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two expressions are unequal for the sampled inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value
/// type (the real macro also supports weights; the uniform form is the
/// only one used in-tree).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.25f64..0.75, n in 1usize..9) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn map_filter_compose(v in crate::collection::vec((0.0f64..1.0).prop_map(|x| x * 2.0).prop_filter("nonzero", |x| *x > 0.01), 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x > 0.01 && x < 2.0));
        }

        #[test]
        fn oneof_hits_all_branches(label in prop_oneof![Just("a"), Just("b")]) {
            prop_assert!(label == "a" || label == "b");
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(super::seed_for_test("x"), super::seed_for_test("x"));
        assert_ne!(super::seed_for_test("x"), super::seed_for_test("y"));
    }
}

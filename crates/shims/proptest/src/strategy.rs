//! The [`Strategy`] trait and its combinators: ranges, tuples,
//! [`Just`], `prop_map`, `prop_filter`, boxing and [`Union`]
//! (the engine behind [`prop_oneof!`](crate::prop_oneof)).

use crate::TestRng;
use rand::Rng as _;

/// A recipe for sampling values of one type, mirroring
/// `proptest::strategy::Strategy` (without shrinking).
///
/// `sample` returns `None` when a `prop_filter` rejects the draw; the
/// test runner resamples without consuming a case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value, or `None` if a filter rejected the draw.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `predicate`; `reason` labels the filter in
    /// diagnostics (kept for API compatibility).
    fn prop_filter<R, F>(self, reason: R, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            predicate,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// A strategy that always produces a clone of its payload.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.predicate)(v))
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        self.0.sample(rng)
    }
}

/// Uniform choice among boxed strategies of one value type; the engine
/// behind [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`; must be nonempty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! requires at least one strategy"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty => $sample:expr),+ $(,)?) => {
        $(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    #[allow(clippy::redundant_closure_call)]
                    Some(($sample)(self, rng))
                }
            }
        )+
    };
}

range_strategy! {
    f64 => |r: &core::ops::Range<f64>, rng: &mut TestRng| {
        r.start + rng.gen::<f64>() * (r.end - r.start)
    },
    f32 => |r: &core::ops::Range<f32>, rng: &mut TestRng| {
        r.start + rng.gen::<f32>() * (r.end - r.start)
    },
    usize => |r: &core::ops::Range<usize>, rng: &mut TestRng| {
        rng.gen_range(r.clone())
    },
    u64 => |r: &core::ops::Range<u64>, rng: &mut TestRng| {
        r.start + rng.gen_range(0..(r.end - r.start) as usize) as u64
    },
    u32 => |r: &core::ops::Range<u32>, rng: &mut TestRng| {
        r.start + rng.gen_range(0..(r.end - r.start) as usize) as u32
    },
    i32 => |r: &core::ops::Range<i32>, rng: &mut TestRng| {
        r.start + rng.gen_range(0..(r.end - r.start) as usize) as i32
    },
    i64 => |r: &core::ops::Range<i64>, rng: &mut TestRng| {
        r.start + rng.gen_range(0..(r.end - r.start) as usize) as i64
    },
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    Some(($($name.sample(rng)?,)+))
                }
            }
        )+
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn range_and_tuple_sampling() {
        let mut rng = rng_from_seed(1);
        for _ in 0..200 {
            let x = (0.5f64..2.0).sample(&mut rng).unwrap();
            assert!((0.5..2.0).contains(&x));
            let (a, b) = ((0usize..3), (10u64..12)).sample(&mut rng).unwrap();
            assert!(a < 3 && (10..12).contains(&b));
        }
    }

    #[test]
    fn filter_rejects_as_none() {
        let strategy = (0.0f64..1.0).prop_filter("upper half", |x| *x > 0.5);
        let mut rng = rng_from_seed(2);
        let mut seen_none = false;
        let mut seen_some = false;
        for _ in 0..100 {
            match strategy.sample(&mut rng) {
                Some(x) => {
                    assert!(x > 0.5);
                    seen_some = true;
                }
                None => seen_none = true,
            }
        }
        assert!(seen_none && seen_some);
    }

    #[test]
    fn union_covers_options() {
        let union = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut rng = rng_from_seed(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[union.sample(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}

//! In-tree stand-in for the `rand` crate (0.8 API subset), used because
//! this workspace builds fully offline. It provides exactly the surface
//! the workspace consumes: [`RngCore`], [`Rng::gen`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64 — a
//! statistically solid, fast, reproducible generator; not
//! cryptographically secure, which is fine for Monte Carlo estimation).
//!
//! The API is call-compatible with rand 0.8 for every call site in-tree,
//! so swapping the real crate back in later is a one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw integer output.
///
/// Object safe, so estimators can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly from an RNG's raw bits (the rand `Standard`
/// distribution, specialised to the types the workspace draws).
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the rand convention).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
///
/// Blanket-implemented for every `RngCore` (including `&mut dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform integer in `[low, high)` (subset of rand's `gen_range`,
    /// for `usize` ranges only — the single form the workspace needs).
    fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        debug_assert!(range.start < range.end);
        let span = (range.end - range.start) as u64;
        // Lemire-style rejection keeps the draw exactly uniform.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + (v % span) as usize;
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it through
    /// splitmix64 so nearby seeds give decorrelated streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One splitmix64 step: mixes `state` forward and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++
    /// (Blackman & Vigna), seeded via splitmix64.
    ///
    /// Passes BigCrush in its published form; period `2^256 − 1`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_range_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Superoperator (channel) representation and process tomography.
//!
//! The proofs of Theorems 1 and 2 are statements about *channels*: the QPD
//! terms must sum to the identity channel (Eq. 19/27), and NME
//! teleportation must equal a concrete Pauli channel (Eq. 22/59). To verify
//! those claims exactly we represent a channel `E` acting on `d_in`-dim
//! inputs as its `d_out² × d_in²` transfer matrix on row-major-vectorised
//! density operators: `vec(E(ρ)) = S · vec(ρ)` with
//! `vec(AρB) = (A ⊗ Bᵀ)·vec(ρ)`.

use crate::density::DensityMatrix;
use qlinalg::{c64, Complex64, Matrix, C_ZERO};

/// A linear map on density operators, stored as its transfer matrix over
/// row-major vectorisation.
#[derive(Clone, Debug, PartialEq)]
pub struct Superoperator {
    d_in: usize,
    d_out: usize,
    mat: Matrix,
}

/// Row-major vectorisation `vec(ρ)`: entry `(i, j)` lands at `i·d + j`.
pub fn vec_density(rho: &Matrix) -> Vec<Complex64> {
    let d = rho.rows();
    let mut out = Vec::with_capacity(d * d);
    for i in 0..d {
        out.extend_from_slice(rho.row(i));
    }
    out
}

/// Inverse of [`vec_density`].
pub fn unvec_density(v: &[Complex64], d: usize) -> Matrix {
    assert_eq!(v.len(), d * d);
    Matrix::from_slice(d, d, v)
}

impl Superoperator {
    /// The identity channel on dimension `d`.
    pub fn identity(d: usize) -> Self {
        Self {
            d_in: d,
            d_out: d,
            mat: Matrix::identity(d * d),
        }
    }

    /// The zero map.
    pub fn zero(d_in: usize, d_out: usize) -> Self {
        Self {
            d_in,
            d_out,
            mat: Matrix::zeros(d_out * d_out, d_in * d_in),
        }
    }

    /// Channel `ρ → UρU†` from a unitary.
    pub fn from_unitary(u: &Matrix) -> Self {
        assert!(u.is_square());
        let d = u.rows();
        Self {
            d_in: d,
            d_out: d,
            mat: u.kron(&u.conj()),
        }
    }

    /// Channel `ρ → Σ_k K_k ρ K_k†` from Kraus operators (all `d_out × d_in`).
    pub fn from_kraus(kraus: &[Matrix]) -> Self {
        assert!(!kraus.is_empty());
        let d_out = kraus[0].rows();
        let d_in = kraus[0].cols();
        let mut mat = Matrix::zeros(d_out * d_out, d_in * d_in);
        for k in kraus {
            assert_eq!(k.rows(), d_out);
            assert_eq!(k.cols(), d_in);
            mat = mat.add(&k.kron(&k.conj()));
        }
        Self { d_in, d_out, mat }
    }

    /// Builds a superoperator by probing a linear map with every matrix
    /// unit `E_ij` — exact process tomography for simulated maps.
    ///
    /// `f` must be linear in its input (true for all circuit-induced maps
    /// in this workspace, including measurement branching).
    pub fn from_linear_map(
        d_in: usize,
        d_out: usize,
        mut f: impl FnMut(&Matrix) -> Matrix,
    ) -> Self {
        let mut mat = Matrix::zeros(d_out * d_out, d_in * d_in);
        for i in 0..d_in {
            for j in 0..d_in {
                let mut e = Matrix::zeros(d_in, d_in);
                e[(i, j)] = qlinalg::C_ONE;
                let out = f(&e);
                assert_eq!(out.rows(), d_out, "map output dimension mismatch");
                let col = i * d_in + j;
                let v = vec_density(&out);
                for (row, &z) in v.iter().enumerate() {
                    mat[(row, col)] = z;
                }
            }
        }
        Self { d_in, d_out, mat }
    }

    /// Input dimension (of density operators).
    pub fn dim_in(&self) -> usize {
        self.d_in
    }

    /// Output dimension.
    pub fn dim_out(&self) -> usize {
        self.d_out
    }

    /// The raw transfer matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.mat
    }

    /// Applies the channel to a density operator.
    pub fn apply(&self, rho: &Matrix) -> Matrix {
        assert_eq!(rho.rows(), self.d_in);
        let v = self.mat.matvec(&vec_density(rho));
        unvec_density(&v, self.d_out)
    }

    /// Applies the channel to a [`DensityMatrix`].
    pub fn apply_density(&self, rho: &DensityMatrix) -> DensityMatrix {
        let out = self.apply(rho.matrix());
        let n_out = (self.d_out as f64).log2().round() as usize;
        DensityMatrix::from_matrix(n_out, out)
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &Superoperator) -> Superoperator {
        assert_eq!(other.d_out, self.d_in);
        Superoperator {
            d_in: other.d_in,
            d_out: self.d_out,
            mat: self.mat.matmul(&other.mat),
        }
    }

    /// Linear combination accumulate: `self += s · other`.
    pub fn axpy(&mut self, s: f64, other: &Superoperator) {
        assert_eq!(self.d_in, other.d_in);
        assert_eq!(self.d_out, other.d_out);
        self.mat.axpy(c64(s, 0.0), &other.mat);
    }

    /// Scales the channel by a real factor.
    pub fn scale(&self, s: f64) -> Superoperator {
        Superoperator {
            d_in: self.d_in,
            d_out: self.d_out,
            mat: self.mat.scale_re(s),
        }
    }

    /// Distance to another superoperator in max-entry norm — the headline
    /// metric for "this QPD reconstructs the identity channel".
    pub fn distance(&self, other: &Superoperator) -> f64 {
        assert_eq!(self.d_in, other.d_in);
        assert_eq!(self.d_out, other.d_out);
        self.mat.sub(&other.mat).max_abs()
    }

    /// `true` when this map is trace-preserving: `Σ_k ⟨k|E(ρ)|k⟩ = Tr ρ`
    /// for all ρ, i.e. the rows of the transfer matrix corresponding to
    /// the output trace sum to the input trace functional.
    pub fn is_trace_preserving(&self, tol: f64) -> bool {
        // Trace functional on vec: sum of rows (i·d_out + i).
        // Must equal trace functional on input: 1 at columns (j·d_in + j).
        for col in 0..self.d_in * self.d_in {
            let mut acc = C_ZERO;
            for i in 0..self.d_out {
                acc += self.mat[(i * self.d_out + i, col)];
            }
            let expect = if col % (self.d_in + 1) == 0 {
                qlinalg::C_ONE
            } else {
                C_ZERO
            };
            if !acc.approx_eq(expect, tol) {
                return false;
            }
        }
        true
    }

    /// The Choi matrix `J(E) = Σ_{ij} E_ij ⊗ E(E_ij)` (row-major
    /// convention: `J[(i·d_out + k), (j·d_out + l)] = E(E_ij)[k, l]`).
    /// `E` is completely positive iff `J ⪰ 0` and trace-preserving iff
    /// `Tr_out J = I`.
    pub fn choi_matrix(&self) -> Matrix {
        let (di, do_) = (self.d_in, self.d_out);
        let mut j = Matrix::zeros(di * do_, di * do_);
        for i in 0..di {
            for jj in 0..di {
                let mut e = Matrix::zeros(di, di);
                e[(i, jj)] = qlinalg::C_ONE;
                let out = self.apply(&e);
                for k in 0..do_ {
                    for l in 0..do_ {
                        j[(i * do_ + k, jj * do_ + l)] = out[(k, l)];
                    }
                }
            }
        }
        j
    }

    /// `true` when the channel is completely positive: the Choi matrix is
    /// Hermitian with eigenvalues ≥ −tol.
    pub fn is_completely_positive(&self, tol: f64) -> bool {
        let j = self.choi_matrix();
        if !j.is_hermitian(tol) {
            return false;
        }
        let eig = qlinalg::eigh(&j);
        eig.values.iter().all(|&l| l > -tol)
    }

    /// `true` when the channel is CPTP (a physical quantum channel).
    pub fn is_cptp(&self, tol: f64) -> bool {
        self.is_completely_positive(tol) && self.is_trace_preserving(tol)
    }

    /// Pauli transfer matrix `R[a,b] = Tr[P_a E(P_b)] / d` for `n`-qubit
    /// channels (square channels only) — a real matrix exposing the Pauli
    /// error structure of Eq. 22 directly.
    pub fn pauli_transfer_matrix(&self) -> Matrix {
        assert_eq!(self.d_in, self.d_out, "PTM of non-square channel");
        let n = (self.d_in as f64).log2().round() as usize;
        let total = 4usize.pow(n as u32);
        let norm = 1.0 / self.d_in as f64;
        let mut r = Matrix::zeros(total, total);
        for b in 0..total {
            let pb = crate::pauli::pauli_string_from_code(b, n).matrix();
            let out = self.apply(&pb);
            for a in 0..total {
                let pa = crate::pauli::pauli_string_from_code(a, n).matrix();
                r[(a, b)] = pa.matmul(&out).trace().scale(norm);
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::pauli::Pauli;
    use qlinalg::C_ONE;

    #[test]
    fn identity_channel_fixes_everything() {
        let id = Superoperator::identity(2);
        let rho = Matrix::from_rows(&[
            vec![c64(0.7, 0.0), c64(0.1, 0.2)],
            vec![c64(0.1, -0.2), c64(0.3, 0.0)],
        ]);
        assert!(id.apply(&rho).approx_eq(&rho, 1e-14));
        assert!(id.is_trace_preserving(1e-12));
    }

    #[test]
    fn unitary_channel_conjugates() {
        let h = Gate::H.matrix();
        let s = Superoperator::from_unitary(&h);
        let z = Pauli::Z.matrix();
        let out = s.apply(&z);
        assert!(
            out.approx_eq(&Pauli::X.matrix(), 1e-12),
            "HZH ≠ X via channel"
        );
        assert!(s.is_trace_preserving(1e-12));
    }

    #[test]
    fn kraus_channel_matches_direct_application() {
        let p: f64 = 0.2;
        let kraus = vec![
            Pauli::I.matrix().scale_re((1.0 - p).sqrt()),
            Pauli::X.matrix().scale_re(p.sqrt()),
        ];
        let s = Superoperator::from_kraus(&kraus);
        let mut rho = DensityMatrix::new(1);
        rho.apply_gate(&Gate::Ry(0.9), &[0]);
        let via_channel = s.apply(rho.matrix());
        let mut direct = rho.clone();
        direct.apply_kraus(&kraus, &[0]);
        assert!(via_channel.approx_eq(direct.matrix(), 1e-12));
        assert!(s.is_trace_preserving(1e-12));
    }

    #[test]
    fn from_linear_map_reproduces_unitary_channel() {
        let u = Gate::S.matrix();
        let direct = Superoperator::from_unitary(&u);
        let probed = Superoperator::from_linear_map(2, 2, |rho| u.matmul(rho).matmul(&u.dagger()));
        assert!(probed.matrix().approx_eq(direct.matrix(), 1e-12));
    }

    #[test]
    fn composition_matches_sequential_application() {
        let s1 = Superoperator::from_unitary(&Gate::H.matrix());
        let s2 = Superoperator::from_unitary(&Gate::S.matrix());
        let comp = s2.compose(&s1);
        let rho = Pauli::Z.matrix();
        let a = comp.apply(&rho);
        let b = s2.apply(&s1.apply(&rho));
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn ptm_of_identity_is_identity() {
        let id = Superoperator::identity(2);
        let ptm = id.pauli_transfer_matrix();
        assert!(ptm.approx_eq(&Matrix::identity(4), 1e-12));
    }

    #[test]
    fn ptm_of_phase_flip_channel() {
        // Z-flip with prob p: PTM = diag(1, 1-2p, 1-2p, 1).
        let p: f64 = 0.25;
        let kraus = vec![
            Pauli::I.matrix().scale_re((1.0 - p).sqrt()),
            Pauli::Z.matrix().scale_re(p.sqrt()),
        ];
        let s = Superoperator::from_kraus(&kraus);
        let ptm = s.pauli_transfer_matrix();
        let expect = Matrix::diag(&[
            C_ONE,
            c64(1.0 - 2.0 * p, 0.0),
            c64(1.0 - 2.0 * p, 0.0),
            C_ONE,
        ]);
        assert!(ptm.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn vec_round_trip() {
        let rho = Matrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(2.0, 1.0)],
            vec![c64(2.0, -1.0), c64(3.0, 0.0)],
        ]);
        let v = vec_density(&rho);
        let back = unvec_density(&v, 2);
        assert!(back.approx_eq(&rho, 1e-14));
    }

    #[test]
    fn axpy_combines_channels() {
        // (1/2)·U_X + (1/2)·U_I applied to Z gives 0 (X anticommutes with Z).
        let ux = Superoperator::from_unitary(&Pauli::X.matrix());
        let ui = Superoperator::identity(2);
        let mut mix = Superoperator::zero(2, 2);
        mix.axpy(0.5, &ux);
        mix.axpy(0.5, &ui);
        let out = mix.apply(&Pauli::Z.matrix());
        assert!(out.max_abs() < 1e-12);
    }

    #[test]
    fn choi_matrix_of_identity_is_maximally_entangled_projector() {
        let id = Superoperator::identity(2);
        let j = id.choi_matrix();
        // J(I) = Σ_ij E_ij ⊗ E_ij = d·|Ω⟩⟨Ω| with |Ω⟩ = Σ|ii⟩/√d.
        assert!(j.is_hermitian(1e-12));
        let eig = qlinalg::eigh(&j);
        assert!((eig.values[0] - 2.0).abs() < 1e-10);
        for &l in &eig.values[1..] {
            assert!(l.abs() < 1e-10);
        }
        assert!(id.is_cptp(1e-9));
    }

    #[test]
    fn unitary_and_kraus_channels_are_cptp() {
        assert!(Superoperator::from_unitary(&Gate::H.matrix()).is_cptp(1e-9));
        let p: f64 = 0.3;
        let kraus = vec![
            Pauli::I.matrix().scale_re((1.0 - p).sqrt()),
            Pauli::X.matrix().scale_re(p.sqrt()),
        ];
        assert!(Superoperator::from_kraus(&kraus).is_cptp(1e-9));
    }

    #[test]
    fn transpose_map_is_positive_but_not_cp() {
        // The canonical non-CP example: ρ → ρᵀ.
        let t = Superoperator::from_linear_map(2, 2, |rho| rho.transpose());
        assert!(t.is_trace_preserving(1e-10));
        assert!(!t.is_completely_positive(1e-9), "transpose map wrongly CP");
    }

    #[test]
    fn negative_quasi_combination_is_not_cp() {
        // 2·I − X-conjugation has a negative Choi eigenvalue.
        let mut m = Superoperator::identity(2).scale(2.0);
        m.axpy(-1.0, &Superoperator::from_unitary(&Pauli::X.matrix()));
        assert!(!m.is_completely_positive(1e-9));
        // …but it is trace-preserving (coefficients sum to 1).
        assert!(m.is_trace_preserving(1e-9));
    }

    #[test]
    fn distance_is_zero_for_equal_channels() {
        let s = Superoperator::from_unitary(&Gate::T.matrix());
        assert!(s.distance(&s.clone()) < 1e-15);
        let id = Superoperator::identity(2);
        assert!(s.distance(&id) > 0.1);
    }
}

//! Quantum circuit intermediate representation.
//!
//! The paper's cut circuits (Figures 2, 3, 5) need three features beyond
//! plain unitary sequences: mid-circuit measurement into classical bits,
//! classically-controlled gates (the teleportation feed-forward `X`/`Z`
//! corrections), and qubit reset/initialisation (the measure-and-prepare
//! QPD term). This IR supports all three and both simulators execute it.

use crate::gate::Gate;
use qlinalg::Matrix;
use std::fmt;

/// A quantum operation in a circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// A gate applied to the listed qubits (length must equal the arity).
    Gate(Gate, Vec<usize>),
    /// Projective Z-basis measurement of `qubit` into classical bit `clbit`.
    Measure {
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        clbit: usize,
    },
    /// Resets `qubit` to `|0⟩` (measure and conditionally flip, discarding
    /// the outcome).
    Reset(usize),
    /// No-op marker useful for visual grouping in printed circuits.
    Barrier,
}

/// A classical condition attached to an instruction: the instruction runs
/// only when classical bit `bit` equals `value`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Condition {
    /// Classical bit index consulted.
    pub bit: usize,
    /// Required value.
    pub value: bool,
}

/// One instruction: an operation plus an optional classical condition.
#[derive(Clone, Debug, PartialEq)]
pub struct Instruction {
    /// The operation.
    pub op: Op,
    /// Optional classical control.
    pub condition: Option<Condition>,
}

/// A quantum circuit over `num_qubits` qubits and `num_clbits` classical
/// bits. Qubit 0 is the least significant statevector bit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        Self {
            num_qubits,
            num_clbits,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a raw instruction after validating indices.
    pub fn push(&mut self, instr: Instruction) -> &mut Self {
        self.validate(&instr);
        self.instructions.push(instr);
        self
    }

    fn validate(&self, instr: &Instruction) {
        match &instr.op {
            Op::Gate(g, qs) => {
                assert_eq!(qs.len(), g.arity(), "operand count mismatch for {g}");
                for &q in qs {
                    assert!(q < self.num_qubits, "qubit {q} out of range");
                }
                for (i, &a) in qs.iter().enumerate() {
                    for &b in &qs[i + 1..] {
                        assert_ne!(a, b, "duplicate operand for {g}");
                    }
                }
            }
            Op::Measure { qubit, clbit } => {
                assert!(*qubit < self.num_qubits, "qubit {qubit} out of range");
                assert!(*clbit < self.num_clbits, "clbit {clbit} out of range");
            }
            Op::Reset(q) => assert!(*q < self.num_qubits, "qubit {q} out of range"),
            Op::Barrier => {}
        }
        if let Some(c) = instr.condition {
            assert!(
                c.bit < self.num_clbits,
                "condition bit {} out of range",
                c.bit
            );
        }
    }

    /// Appends an unconditioned gate.
    pub fn gate(&mut self, g: Gate, qubits: &[usize]) -> &mut Self {
        self.push(Instruction {
            op: Op::Gate(g, qubits.to_vec()),
            condition: None,
        })
    }

    /// Appends a gate conditioned on classical `bit == value`.
    pub fn gate_if(&mut self, g: Gate, qubits: &[usize], bit: usize, value: bool) -> &mut Self {
        self.push(Instruction {
            op: Op::Gate(g, qubits.to_vec()),
            condition: Some(Condition { bit, value }),
        })
    }

    // ---- fluent single-qubit helpers ----

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H, &[q])
    }
    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X, &[q])
    }
    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Y, &[q])
    }
    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Z, &[q])
    }
    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::S, &[q])
    }
    /// Inverse phase gate S† on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Sdg, &[q])
    }
    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::T, &[q])
    }
    /// Rotation about Y by `theta` on `q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Ry(theta), &[q])
    }
    /// Rotation about X by `theta` on `q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Rx(theta), &[q])
    }
    /// Rotation about Z by `theta` on `q`.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(Gate::Rz(theta), &[q])
    }
    /// Arbitrary single-qubit unitary from a 2×2 matrix on `q`.
    pub fn unitary1(&mut self, m: Matrix, q: usize) -> &mut Self {
        self.gate(Gate::Unitary1(m), &[q])
    }
    /// Arbitrary `k`-qubit unitary from a `2^k × 2^k` matrix; `qubits[i]`
    /// carries bit `i` of the matrix index. Dispatches to the dedicated
    /// 1-/2-qubit gate variants for small `k`.
    pub fn unitary(&mut self, m: Matrix, qubits: &[usize]) -> &mut Self {
        let g = match qubits.len() {
            1 => Gate::Unitary1(m),
            2 => Gate::Unitary2(m),
            _ => Gate::Unitary(m),
        };
        self.gate(g, qubits)
    }

    // ---- two-qubit helpers ----

    /// CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.gate(Gate::CX, &[control, target])
    }
    /// Controlled-Z on `a`, `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::CZ, &[a, b])
    }
    /// SWAP of `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Swap, &[a, b])
    }

    // ---- non-unitary helpers ----

    /// Z-basis measurement of `qubit` into `clbit`.
    pub fn measure(&mut self, qubit: usize, clbit: usize) -> &mut Self {
        self.push(Instruction {
            op: Op::Measure { qubit, clbit },
            condition: None,
        })
    }
    /// Reset `qubit` to |0⟩.
    pub fn reset(&mut self, q: usize) -> &mut Self {
        self.push(Instruction {
            op: Op::Reset(q),
            condition: None,
        })
    }
    /// Barrier marker.
    pub fn barrier(&mut self) -> &mut Self {
        self.push(Instruction {
            op: Op::Barrier,
            condition: None,
        })
    }
    /// X on `q` conditioned on classical bit `bit` being 1 — the
    /// teleportation feed-forward correction.
    pub fn x_if(&mut self, q: usize, bit: usize) -> &mut Self {
        self.gate_if(Gate::X, &[q], bit, true)
    }
    /// Z on `q` conditioned on classical bit `bit` being 1.
    pub fn z_if(&mut self, q: usize, bit: usize) -> &mut Self {
        self.gate_if(Gate::Z, &[q], bit, true)
    }

    /// Appends all instructions of `other` with qubits mapped through
    /// `qubit_map` and classical bits through `clbit_map`
    /// (`new_index = map[old_index]`).
    pub fn compose_mapped(
        &mut self,
        other: &Circuit,
        qubit_map: &[usize],
        clbit_map: &[usize],
    ) -> &mut Self {
        assert!(qubit_map.len() >= other.num_qubits, "qubit map too short");
        assert!(clbit_map.len() >= other.num_clbits, "clbit map too short");
        for instr in &other.instructions {
            let op = match &instr.op {
                Op::Gate(g, qs) => Op::Gate(g.clone(), qs.iter().map(|&q| qubit_map[q]).collect()),
                Op::Measure { qubit, clbit } => Op::Measure {
                    qubit: qubit_map[*qubit],
                    clbit: clbit_map[*clbit],
                },
                Op::Reset(q) => Op::Reset(qubit_map[*q]),
                Op::Barrier => Op::Barrier,
            };
            let condition = instr.condition.map(|c| Condition {
                bit: clbit_map[c.bit],
                value: c.value,
            });
            self.push(Instruction { op, condition });
        }
        self
    }

    /// Appends all instructions of `other` one-to-one (same indices).
    pub fn compose(&mut self, other: &Circuit) -> &mut Self {
        let qmap: Vec<usize> = (0..other.num_qubits).collect();
        let cmap: Vec<usize> = (0..other.num_clbits).collect();
        self.compose_mapped(other, &qmap, &cmap)
    }

    /// The inverse of a purely unitary circuit (reversed gate order with
    /// each gate inverted).
    ///
    /// # Panics
    /// Panics if the circuit contains measurements, resets or conditions.
    pub fn inverse(&self) -> Circuit {
        let mut out = Circuit::new(self.num_qubits, self.num_clbits);
        for instr in self.instructions.iter().rev() {
            assert!(
                instr.condition.is_none(),
                "cannot invert conditioned instruction"
            );
            match &instr.op {
                Op::Gate(g, qs) => {
                    out.gate(g.inverse(), qs);
                }
                Op::Barrier => {
                    out.barrier();
                }
                _ => panic!("cannot invert non-unitary circuit"),
            }
        }
        out
    }

    /// `true` when the circuit is purely unitary (no measurement, reset or
    /// classical condition).
    pub fn is_unitary(&self) -> bool {
        self.instructions
            .iter()
            .all(|i| i.condition.is_none() && matches!(i.op, Op::Gate(..) | Op::Barrier))
    }

    /// Number of measurement instructions.
    pub fn num_measurements(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i.op, Op::Measure { .. }))
            .count()
    }

    /// Dense unitary matrix of a purely unitary circuit (`2^n × 2^n`).
    /// Exponential in qubit count; intended for verification of small
    /// circuits.
    pub fn to_matrix(&self) -> Matrix {
        assert!(self.is_unitary(), "to_matrix requires a unitary circuit");
        let dim = 1usize << self.num_qubits;
        let mut u = Matrix::identity(dim);
        for instr in &self.instructions {
            if let Op::Gate(g, qs) = &instr.op {
                let full = embed_unitary(&g.matrix(), qs, self.num_qubits);
                u = full.matmul(&u);
            }
        }
        u
    }

    /// Widens the circuit to `n` qubits / `c` clbits without remapping.
    pub fn widened(&self, n: usize, c: usize) -> Circuit {
        assert!(n >= self.num_qubits && c >= self.num_clbits);
        let mut out = Circuit::new(n, c);
        out.compose(self);
        out
    }
}

/// Embeds a `2^k × 2^k` unitary acting on the listed qubits into the full
/// `2^n × 2^n` space. `qubits[i]` carries bit `i` of the small-matrix index.
pub fn embed_unitary(m: &Matrix, qubits: &[usize], n: usize) -> Matrix {
    let k = qubits.len();
    assert_eq!(m.rows(), 1 << k);
    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim, dim);
    let rest_mask: usize = {
        let mut mask = dim - 1;
        for &q in qubits {
            mask &= !(1 << q);
        }
        mask
    };
    // Iterate over all basis columns of the full space.
    for col in 0..dim {
        let rest = col & rest_mask;
        let mut sub_col = 0usize;
        for (i, &q) in qubits.iter().enumerate() {
            sub_col |= ((col >> q) & 1) << i;
        }
        for sub_row in 0..(1 << k) {
            let amp = m[(sub_row, sub_col)];
            if amp == qlinalg::C_ZERO {
                continue;
            }
            let mut row = rest;
            for (i, &q) in qubits.iter().enumerate() {
                row |= ((sub_row >> i) & 1) << q;
            }
            out[(row, col)] = amp;
        }
    }
    out
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} clbits):",
            self.num_qubits, self.num_clbits
        )?;
        for instr in &self.instructions {
            if let Some(c) = instr.condition {
                write!(f, "  if c{}=={} ", c.bit, c.value as u8)?;
            } else {
                write!(f, "  ")?;
            }
            match &instr.op {
                Op::Gate(g, qs) => {
                    write!(f, "{g} ")?;
                    for q in qs {
                        write!(f, "q{q} ")?;
                    }
                    writeln!(f)?;
                }
                Op::Measure { qubit, clbit } => writeln!(f, "measure q{qubit} -> c{clbit}")?,
                Op::Reset(q) => writeln!(f, "reset q{q}")?,
                Op::Barrier => writeln!(f, "barrier")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlinalg::{c64, C_ONE, C_ZERO};

    #[test]
    fn builder_validates_qubit_range() {
        let mut c = Circuit::new(2, 0);
        c.h(0).cx(0, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut c = Circuit::new(1, 0);
        c.h(1);
    }

    #[test]
    #[should_panic(expected = "duplicate operand")]
    fn duplicate_two_qubit_operand_panics() {
        let mut c = Circuit::new(2, 0);
        c.cx(1, 1);
    }

    #[test]
    fn bell_circuit_matrix() {
        let mut c = Circuit::new(2, 0);
        c.h(0).cx(0, 1);
        let u = c.to_matrix();
        // Column for |00⟩ must be the Bell state (|00⟩+|11⟩)/√2.
        let s2 = std::f64::consts::FRAC_1_SQRT_2;
        assert!(u[(0, 0)].approx_eq(c64(s2, 0.0), 1e-12));
        assert!(u[(3, 0)].approx_eq(c64(s2, 0.0), 1e-12));
        assert!(u[(1, 0)].approx_eq(C_ZERO, 1e-12));
        assert!(u[(2, 0)].approx_eq(C_ZERO, 1e-12));
    }

    #[test]
    fn inverse_circuit_gives_identity_matrix() {
        let mut c = Circuit::new(2, 0);
        c.h(0).s(1).cx(0, 1).t(0).rz(0.3, 1);
        let mut round = c.clone();
        round.compose(&c.inverse());
        let u = round.to_matrix();
        assert!(u.approx_eq(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn embed_unitary_on_high_qubit() {
        // X on qubit 1 of 2: matrix must map |00⟩→|10⟩ i.e. col 0 → row 2.
        let x = Gate::X.matrix();
        let full = embed_unitary(&x, &[1], 2);
        assert!(full[(2, 0)].approx_eq(C_ONE, 1e-14));
        assert!(full[(0, 2)].approx_eq(C_ONE, 1e-14));
        assert!(full[(1, 3)].approx_eq(C_ONE, 1e-14));
        assert!(full[(3, 1)].approx_eq(C_ONE, 1e-14));
    }

    #[test]
    fn embed_matches_kron_for_adjacent_qubits() {
        // CX on qubits [0,1] of a 2-qubit system is the raw matrix.
        let cx = Gate::CX.matrix();
        let full = embed_unitary(&cx, &[0, 1], 2);
        assert!(full.approx_eq(&cx, 1e-14));
        // On reversed operands [1,0] control becomes qubit 1.
        let rev = embed_unitary(&cx, &[1, 0], 2);
        // |10⟩ (ctrl q1=1) → |11⟩: col 2 → row 3
        assert!(rev[(3, 2)].approx_eq(C_ONE, 1e-14));
        assert!(rev[(1, 1)].approx_eq(C_ONE, 1e-14));
    }

    #[test]
    fn compose_mapped_remaps_indices() {
        let mut inner = Circuit::new(2, 1);
        inner.h(0).cx(0, 1).measure(1, 0);
        let mut outer = Circuit::new(4, 2);
        outer.compose_mapped(&inner, &[2, 3], &[1]);
        match &outer.instructions()[2].op {
            Op::Measure { qubit, clbit } => {
                assert_eq!(*qubit, 3);
                assert_eq!(*clbit, 1);
            }
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn is_unitary_detects_measurement() {
        let mut c = Circuit::new(1, 1);
        c.h(0);
        assert!(c.is_unitary());
        c.measure(0, 0);
        assert!(!c.is_unitary());
    }

    #[test]
    fn conditioned_gate_recorded() {
        let mut c = Circuit::new(2, 1);
        c.measure(0, 0).x_if(1, 0);
        let instr = &c.instructions()[1];
        assert_eq!(
            instr.condition,
            Some(Condition {
                bit: 0,
                value: true
            })
        );
    }

    #[test]
    fn display_renders_instructions() {
        let mut c = Circuit::new(2, 1);
        c.h(0).cx(0, 1).measure(1, 0).x_if(0, 0);
        let s = format!("{c}");
        assert!(s.contains("h q0"));
        assert!(s.contains("measure q1 -> c0"));
        assert!(s.contains("if c0==1 x q0"));
    }
}

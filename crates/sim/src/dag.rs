//! Circuit DAG analysis for the cut planner: wire lifetimes, dependency
//! edges, greedy width-bounded fragment extraction, and the topological
//! checks the planner's recompilation correctness rests on.
//!
//! The planner (`wirecut::planner`) needs three facts about an arbitrary
//! [`Circuit`] that the flat instruction list does not expose directly:
//!
//! * **wire lifetimes** — the first/last instruction touching each qubit,
//!   which bounds where a wire can be cut,
//! * **dependency structure** — instruction `j` depends on the latest
//!   earlier instruction sharing a qubit or classical bit with it; program
//!   order is one valid topological order of this DAG by construction,
//! * **fragments** — maximal consecutive instruction runs whose *active
//!   wire set* fits a width budget. Cutting every wire that crosses a
//!   fragment boundary makes each fragment executable on a
//!   `budget`-qubit device.
//!
//! Fragmentation here is deliberately program-order greedy: it never
//! reorders instructions, so every fragment sequence is trivially a
//! topological recompilation of the original circuit — a property the
//! planner proptests pin via [`CircuitDag::is_topological_order`] and
//! gate-count preservation of [`fragment_circuit`].

use crate::circuit::{Circuit, Instruction, Op};

/// First/last instruction indices touching one qubit (`None` for a wire
/// the circuit never uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireLifetime {
    /// Qubit index.
    pub wire: usize,
    /// Index of the first instruction touching the wire.
    pub first: Option<usize>,
    /// Index of the last instruction touching the wire.
    pub last: Option<usize>,
}

/// Dependency DAG over a circuit's instructions.
#[derive(Clone, Debug)]
pub struct CircuitDag {
    num_qubits: usize,
    /// Per instruction: qubits it touches.
    qubits: Vec<Vec<usize>>,
    /// Per instruction: indices of the instructions it depends on
    /// (strictly smaller, deduplicated, ascending).
    deps: Vec<Vec<usize>>,
}

/// Qubits touched by one instruction (gate operands, measured/reset
/// qubit; barriers touch nothing).
pub fn instruction_qubits(instr: &Instruction) -> Vec<usize> {
    match &instr.op {
        Op::Gate(_, qs) => qs.clone(),
        Op::Measure { qubit, .. } => vec![*qubit],
        Op::Reset(q) => vec![*q],
        Op::Barrier => vec![],
    }
}

/// Classical bits an instruction reads or writes (measurement target,
/// condition bit).
pub fn instruction_clbits(instr: &Instruction) -> Vec<usize> {
    let mut bits = Vec::new();
    if let Op::Measure { clbit, .. } = instr.op {
        bits.push(clbit);
    }
    if let Some(c) = instr.condition {
        if !bits.contains(&c.bit) {
            bits.push(c.bit);
        }
    }
    bits
}

impl CircuitDag {
    /// Builds the dependency DAG: instruction `j` depends on the latest
    /// earlier instruction touching any of its qubits or classical bits.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut qubits = Vec::with_capacity(n);
        let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        let mut last_on_clbit: Vec<Option<usize>> = vec![None; circuit.num_clbits()];
        for (i, instr) in circuit.instructions().iter().enumerate() {
            let qs = instruction_qubits(instr);
            let cs = instruction_clbits(instr);
            let mut d: Vec<usize> = qs
                .iter()
                .filter_map(|&q| last_on_qubit[q])
                .chain(cs.iter().filter_map(|&c| last_on_clbit[c]))
                .collect();
            d.sort_unstable();
            d.dedup();
            for &q in &qs {
                last_on_qubit[q] = Some(i);
            }
            for &c in &cs {
                last_on_clbit[c] = Some(i);
            }
            qubits.push(qs);
            deps.push(d);
        }
        Self {
            num_qubits: circuit.num_qubits(),
            qubits,
            deps,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.qubits.len()
    }

    /// `true` when the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.qubits.is_empty()
    }

    /// Qubits touched by instruction `i`.
    pub fn qubits_of(&self, i: usize) -> &[usize] {
        &self.qubits[i]
    }

    /// Dependencies of instruction `i` (ascending instruction indices).
    pub fn dependencies(&self, i: usize) -> &[usize] {
        &self.deps[i]
    }

    /// `true` when every dependency edge points backwards in program
    /// order — the DAG invariant (`dep < i` for every edge). Holds by
    /// construction; exposed so recompiled orderings can be re-checked.
    pub fn is_acyclic(&self) -> bool {
        self.deps
            .iter()
            .enumerate()
            .all(|(i, d)| d.iter().all(|&dep| dep < i))
    }

    /// `true` when `order` is a permutation of all instructions that
    /// respects every dependency edge — i.e. a valid topological
    /// recompilation of the circuit.
    pub fn is_topological_order(&self, order: &[usize]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut position = vec![usize::MAX; self.len()];
        for (pos, &i) in order.iter().enumerate() {
            if i >= self.len() || position[i] != usize::MAX {
                return false;
            }
            position[i] = pos;
        }
        self.deps
            .iter()
            .enumerate()
            .all(|(i, d)| d.iter().all(|&dep| position[dep] < position[i]))
    }

    /// First/last touching instruction per wire.
    pub fn wire_lifetimes(&self) -> Vec<WireLifetime> {
        let mut lifetimes: Vec<WireLifetime> = (0..self.num_qubits)
            .map(|wire| WireLifetime {
                wire,
                first: None,
                last: None,
            })
            .collect();
        for (i, qs) in self.qubits.iter().enumerate() {
            for &q in qs {
                let lt = &mut lifetimes[q];
                if lt.first.is_none() {
                    lt.first = Some(i);
                }
                lt.last = Some(i);
            }
        }
        lifetimes
    }
}

/// An instruction run whose active wires fit the width budget.
///
/// Greedy packing produces consecutive runs; the merge post-pass of
/// [`fragments_by_width`] may splice a later independent run into an
/// earlier fragment, so `instructions` is ascending but not necessarily
/// consecutive. Fragment-by-fragment concatenation is always a valid
/// topological order of the circuit DAG
/// ([`CircuitDag::is_topological_order`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Instruction indices into the original circuit (ascending).
    pub instructions: Vec<usize>,
    /// Distinct wires touched by the fragment's instructions, ascending.
    pub wires: Vec<usize>,
}

impl Fragment {
    /// Fragment width: number of distinct wires the fragment touches.
    pub fn width(&self) -> usize {
        self.wires.len()
    }
}

/// Greedy program-order fragmentation: pack instructions into the
/// current fragment until admitting the next one would push the active
/// wire set past `budget`, then close it and start a new fragment.
/// Barriers never open a fragment on their own and carry no wires.
///
/// A **merge post-pass** ([`merge_fragments`]) then hoists later
/// fragments back into earlier ones when their combined wires still fit
/// the budget and every fragment in between is independent of the
/// hoisted one — greedy packing alone can leave one wire cut across
/// three fragments where two suffice, inflating plan κ for nothing.
///
/// Returns at least one fragment for a non-empty circuit; every
/// fragment's width is ≤ `budget`.
///
/// # Panics
/// Panics if any single instruction touches more than `budget` qubits
/// (such a gate cannot execute on a `budget`-wide device at all) or if
/// `budget` is 0.
pub fn fragments_by_width(circuit: &Circuit, budget: usize) -> Vec<Fragment> {
    assert!(budget >= 1, "width budget must be at least 1");
    merge_fragments(circuit, greedy_fragments(circuit, budget), budget)
}

/// The greedy pass of [`fragments_by_width`], without the merge
/// post-pass — kept separate so the merge pass is differentially
/// testable against the pure program-order packing.
pub fn greedy_fragments(circuit: &Circuit, budget: usize) -> Vec<Fragment> {
    assert!(budget >= 1, "width budget must be at least 1");
    let mut fragments = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    let mut wires: Vec<usize> = Vec::new();
    for (i, instr) in circuit.instructions().iter().enumerate() {
        let qs = instruction_qubits(instr);
        assert!(
            qs.len() <= budget,
            "instruction {i} touches {} qubits, exceeding the width budget {budget}",
            qs.len()
        );
        let added: Vec<usize> = qs.iter().copied().filter(|q| !wires.contains(q)).collect();
        if !current.is_empty() && wires.len() + added.len() > budget {
            wires.sort_unstable();
            fragments.push(Fragment {
                instructions: std::mem::take(&mut current),
                wires: std::mem::take(&mut wires),
            });
        }
        current.push(i);
        for q in instruction_qubits(instr) {
            if !wires.contains(&q) {
                wires.push(q);
            }
        }
    }
    if !current.is_empty() {
        wires.sort_unstable();
        fragments.push(Fragment {
            instructions: current,
            wires,
        });
    }
    fragments
}

/// The merge post-pass: hoists fragment `j` into an earlier fragment `i`
/// whenever (a) their merged wire set still fits `budget` and (b) every
/// fragment strictly between them is independent of `j` — disjoint
/// qubits *and* classical bits, so no dependency edge can point from the
/// skipped fragments into `j` and the hoist is a valid topological
/// reordering of the circuit DAG. Repeats to a fixed point.
///
/// Adjacent greedy fragments can never merge (the greedy pass only
/// closes a fragment when the next instruction would overflow the
/// budget), so every merge here removes a *repeated* cut — a wire routed
/// through three fragments where two suffice.
pub fn merge_fragments(
    circuit: &Circuit,
    mut fragments: Vec<Fragment>,
    budget: usize,
) -> Vec<Fragment> {
    let instrs = circuit.instructions();
    let footprint = |f: &Fragment| -> (Vec<usize>, Vec<usize>) {
        let mut clbits: Vec<usize> = f
            .instructions
            .iter()
            .flat_map(|&i| instruction_clbits(&instrs[i]))
            .collect();
        clbits.sort_unstable();
        clbits.dedup();
        (f.wires.clone(), clbits)
    };
    let mut prints: Vec<(Vec<usize>, Vec<usize>)> = fragments.iter().map(footprint).collect();
    let disjoint = |a: &[usize], b: &[usize]| a.iter().all(|x| !b.contains(x));
    'scan: loop {
        for i in 0..fragments.len() {
            for j in i + 1..fragments.len() {
                let merged_width = prints[i]
                    .0
                    .iter()
                    .chain(prints[j].0.iter())
                    .collect::<std::collections::BTreeSet<_>>()
                    .len();
                if merged_width > budget {
                    continue;
                }
                let independent = (i + 1..j).all(|k| {
                    disjoint(&prints[k].0, &prints[j].0) && disjoint(&prints[k].1, &prints[j].1)
                });
                if !independent {
                    continue;
                }
                let Fragment {
                    instructions,
                    wires,
                } = fragments.remove(j);
                prints.remove(j);
                fragments[i].instructions.extend(instructions);
                // Keep ascending program order inside the merged fragment
                // (a prior merge may have left later indices in `i`), so
                // intra-fragment dependencies stay respected.
                fragments[i].instructions.sort_unstable();
                fragments[i].wires.extend(wires);
                fragments[i].wires.sort_unstable();
                fragments[i].wires.dedup();
                prints[i] = footprint(&fragments[i]);
                continue 'scan;
            }
        }
        break;
    }
    fragments
}

/// Extracts a fragment as a standalone circuit over its own wires
/// (fragment wire `wires[i]` becomes local qubit `i`; classical bits are
/// kept one-to-one so feed-forward conditions survive). Barriers are
/// preserved; the result's instruction count equals the fragment's.
pub fn fragment_circuit(circuit: &Circuit, fragment: &Fragment) -> Circuit {
    let mut local = vec![usize::MAX; circuit.num_qubits()];
    for (i, &w) in fragment.wires.iter().enumerate() {
        local[w] = i;
    }
    let mut out = Circuit::new(fragment.wires.len().max(1), circuit.num_clbits());
    for &idx in &fragment.instructions {
        let instr = &circuit.instructions()[idx];
        let op = match &instr.op {
            Op::Gate(g, qs) => Op::Gate(g.clone(), qs.iter().map(|&q| local[q]).collect()),
            Op::Measure { qubit, clbit } => Op::Measure {
                qubit: local[*qubit],
                clbit: *clbit,
            },
            Op::Reset(q) => Op::Reset(local[*q]),
            Op::Barrier => Op::Barrier,
        };
        out.push(Instruction {
            op,
            condition: instr.condition,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder(n: usize) -> Circuit {
        // h(0); cx(0,1); cx(1,2); …; cx(n−2, n−1)
        let mut c = Circuit::new(n, 0);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c
    }

    #[test]
    fn dag_edges_point_backwards_and_track_wires() {
        let c = ladder(4);
        let dag = CircuitDag::new(&c);
        assert!(dag.is_acyclic());
        assert_eq!(dag.len(), 4);
        // cx(0,1) depends on h(0); cx(1,2) on cx(0,1); etc.
        assert_eq!(dag.dependencies(1), &[0]);
        assert_eq!(dag.dependencies(2), &[1]);
        assert_eq!(dag.dependencies(3), &[2]);
        assert_eq!(dag.qubits_of(3), &[2, 3]);
    }

    #[test]
    fn classical_bits_create_dependencies() {
        let mut c = Circuit::new(2, 1);
        c.h(0).measure(0, 0).x_if(1, 0);
        let dag = CircuitDag::new(&c);
        // The conditioned X on a *different* qubit still depends on the
        // measurement through the classical bit.
        assert_eq!(dag.dependencies(2), &[1]);
    }

    #[test]
    fn program_order_is_topological_and_violations_are_caught() {
        let c = ladder(4);
        let dag = CircuitDag::new(&c);
        let order: Vec<usize> = (0..dag.len()).collect();
        assert!(dag.is_topological_order(&order));
        assert!(!dag.is_topological_order(&[1, 0, 2, 3]));
        assert!(!dag.is_topological_order(&[0, 1, 2])); // not a permutation
        assert!(!dag.is_topological_order(&[0, 0, 2, 3]));
    }

    #[test]
    fn wire_lifetimes_span_first_to_last_touch() {
        let mut c = Circuit::new(3, 0);
        c.h(0).cx(0, 1).cx(1, 2).h(0);
        let lt = CircuitDag::new(&c).wire_lifetimes();
        assert_eq!(
            lt[0],
            WireLifetime {
                wire: 0,
                first: Some(0),
                last: Some(3)
            }
        );
        assert_eq!(
            lt[1],
            WireLifetime {
                wire: 1,
                first: Some(1),
                last: Some(2)
            }
        );
        assert_eq!(
            lt[2],
            WireLifetime {
                wire: 2,
                first: Some(2),
                last: Some(2)
            }
        );
    }

    #[test]
    fn unused_wire_has_empty_lifetime() {
        let mut c = Circuit::new(2, 0);
        c.h(0);
        let lt = CircuitDag::new(&c).wire_lifetimes();
        assert_eq!(lt[1].first, None);
        assert_eq!(lt[1].last, None);
    }

    #[test]
    fn ladder_fragments_respect_budget() {
        let c = ladder(5);
        let frags = fragments_by_width(&c, 2);
        assert!(frags.len() >= 3, "5-qubit ladder at budget 2: {frags:?}");
        for f in &frags {
            assert!(f.width() <= 2);
        }
        // All instructions covered exactly once, in order.
        let all: Vec<usize> = frags.iter().flat_map(|f| f.instructions.clone()).collect();
        assert_eq!(all, (0..c.len()).collect::<Vec<_>>());
    }

    #[test]
    fn wide_budget_gives_single_fragment() {
        let c = ladder(4);
        let frags = fragments_by_width(&c, 4);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].wires, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceeding the width budget")]
    fn oversized_gate_panics() {
        let c = ladder(3);
        fragments_by_width(&c, 1);
    }

    #[test]
    fn fragment_circuits_preserve_gate_counts() {
        let c = ladder(6);
        let frags = fragments_by_width(&c, 3);
        let total: usize = frags.iter().map(|f| fragment_circuit(&c, f).len()).sum();
        assert_eq!(total, c.len());
        for f in &frags {
            let sub = fragment_circuit(&c, f);
            assert!(CircuitDag::new(&sub).is_acyclic());
            assert_eq!(sub.num_qubits(), f.width());
        }
    }

    #[test]
    fn merge_pass_reunites_a_wire_split_across_three_fragments() {
        // g(0,1); g(2,3); g(0,1): greedy at budget 2 puts the two (0,1)
        // gates in fragments 0 and 2 — wires 0 and 1 would each be cut
        // even though both (0,1) gates fit one 2-wide fragment. The merge
        // pass hoists fragment 2 past the independent (2,3) fragment.
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(2, 3).cx(0, 1);
        let greedy = greedy_fragments(&c, 2);
        assert_eq!(greedy.len(), 3, "{greedy:?}");
        let frags = fragments_by_width(&c, 2);
        assert_eq!(frags.len(), 2, "{frags:?}");
        assert_eq!(frags[0].instructions, vec![0, 2]);
        assert_eq!(frags[0].wires, vec![0, 1]);
        assert_eq!(frags[1].instructions, vec![1]);
        // No wire appears in more than one fragment ⇒ zero cuts.
        for w in 0..4 {
            let visits = frags.iter().filter(|f| f.wires.contains(&w)).count();
            assert!(visits <= 1, "wire {w} still split: {frags:?}");
        }
        // The merged concatenation is a valid topological order.
        let dag = CircuitDag::new(&c);
        let order: Vec<usize> = frags.iter().flat_map(|f| f.instructions.clone()).collect();
        assert!(dag.is_topological_order(&order));
    }

    #[test]
    fn merge_pass_respects_dependencies_through_shared_wires() {
        // cx(0,1); cx(1,2); cx(0,2): fragment 2 shares wire 2 with
        // fragment 1, so it must NOT hoist past it.
        let mut c = Circuit::new(3, 0);
        c.cx(0, 1).cx(1, 2).cx(0, 2);
        let frags = fragments_by_width(&c, 2);
        assert_eq!(frags, greedy_fragments(&c, 2));
    }

    #[test]
    fn merge_pass_respects_classical_dependencies() {
        // Fragment 1 measures into bit 0; fragment 2's gate is
        // conditioned on bit 0 — qubit-disjoint but classically chained,
        // so no hoist.
        let mut c = Circuit::new(4, 1);
        c.cx(0, 1)
            .h(2)
            .measure(2, 0)
            .gate_if(crate::gate::Gate::X, &[3], 0, true);
        c.cx(0, 1);
        let frags = fragments_by_width(&c, 2);
        let dag = CircuitDag::new(&c);
        let order: Vec<usize> = frags.iter().flat_map(|f| f.instructions.clone()).collect();
        assert!(dag.is_topological_order(&order));
        // The final cx(0,1) may only merge backwards into the first
        // fragment (qubit-disjoint from the measure block) — never past
        // a fragment it depends on.
        for f in &frags {
            assert!(f.width() <= 2);
        }
    }

    #[test]
    fn merged_fragment_circuits_stay_consistent() {
        let mut c = Circuit::new(4, 0);
        c.cx(0, 1).cx(2, 3).cx(0, 1).cx(2, 3).cx(0, 1);
        let frags = fragments_by_width(&c, 2);
        let total: usize = frags.iter().map(|f| f.instructions.len()).sum();
        assert_eq!(total, c.len());
        for f in &frags {
            let sub = fragment_circuit(&c, f);
            assert_eq!(sub.len(), f.instructions.len());
            assert!(CircuitDag::new(&sub).is_acyclic());
        }
    }

    #[test]
    fn repeated_wire_use_across_fragments() {
        // Wire 0 used in multiple fragments ⇒ its fragment list has
        // repeats — the "repeated cuts on one wire" scenario's substrate.
        let mut c = Circuit::new(3, 0);
        c.cx(0, 1).cx(1, 2).cx(0, 2);
        let frags = fragments_by_width(&c, 2);
        assert!(frags.len() >= 2);
        let touching: Vec<usize> = frags
            .iter()
            .enumerate()
            .filter(|(_, f)| f.wires.contains(&0))
            .map(|(i, _)| i)
            .collect();
        assert!(
            touching.len() >= 2,
            "wire 0 should span fragments: {frags:?}"
        );
    }
}

//! Density-matrix simulation.
//!
//! The channel-level verification of the paper's QPDs (does the weighted
//! sum of term channels equal the identity channel? does the teleportation
//! channel match Eq. 22?) needs exact, deterministic mixed-state evolution:
//! unitaries, Kraus channels, projective measurement branches and partial
//! traces. Dimensions stay tiny (≤ 4 qubits), so dense matrices suffice.

use crate::gate::Gate;
use crate::pauli::PauliString;
use crate::statevector::StateVector;
use qlinalg::{c64, Complex64, Matrix, C_ZERO};

/// A (possibly unnormalised) density operator over `n` qubits.
///
/// Unnormalised operators arise naturally while accumulating measurement
/// branches: each branch carries trace = branch probability.
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    n: usize,
    mat: Matrix,
}

impl DensityMatrix {
    /// Widest register the dense `2^n × 2^n` representation supports:
    /// the buffer grows as `4^n`, so the guard sits at half the
    /// statevector's 30-qubit limit.
    pub const MAX_QUBITS: usize = 15;

    /// `|0…0⟩⟨0…0|` on `n` qubits.
    pub fn new(n: usize) -> Self {
        assert!(n <= Self::MAX_QUBITS, "density matrix too large");
        let dim = 1usize << n;
        let mut mat = Matrix::zeros(dim, dim);
        mat[(0, 0)] = qlinalg::C_ONE;
        Self { n, mat }
    }

    /// Builds from an explicit matrix (must be `2^n × 2^n`).
    pub fn from_matrix(n: usize, mat: Matrix) -> Self {
        assert_eq!(mat.rows(), 1 << n);
        assert_eq!(mat.cols(), 1 << n);
        Self { n, mat }
    }

    /// `|ψ⟩⟨ψ|` from a pure state.
    pub fn from_statevector(sv: &StateVector) -> Self {
        Self {
            n: sv.num_qubits(),
            mat: sv.to_density(),
        }
    }

    /// The maximally mixed state `I/2^n`.
    pub fn maximally_mixed(n: usize) -> Self {
        assert!(n <= Self::MAX_QUBITS, "density matrix too large");
        let dim = 1usize << n;
        Self {
            n,
            mat: Matrix::identity(dim).scale_re(1.0 / dim as f64),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.mat
    }

    /// Consumes self, returning the matrix.
    pub fn into_matrix(self) -> Matrix {
        self.mat
    }

    /// Trace (1 for normalised states; branch probability otherwise).
    pub fn trace(&self) -> f64 {
        self.mat.trace().re
    }

    /// Purity `Tr[ρ²]` (of the normalised operator).
    pub fn purity(&self) -> f64 {
        let t = self.trace();
        assert!(t > 1e-12, "purity of zero operator");
        self.mat.matmul(&self.mat).trace().re / (t * t)
    }

    /// Rescales to unit trace.
    pub fn normalise(&mut self) {
        let t = self.trace();
        assert!(t > 1e-12, "cannot normalise zero operator");
        self.mat = self.mat.scale_re(1.0 / t);
    }

    /// `true` when Hermitian, PSD (eigenvalues ≥ −tol) and unit trace.
    pub fn is_physical(&self, tol: f64) -> bool {
        if !self.mat.is_hermitian(tol) {
            return false;
        }
        if (self.trace() - 1.0).abs() > tol {
            return false;
        }
        let eig = qlinalg::eigh(&self.mat);
        eig.values.iter().all(|&l| l > -tol)
    }

    /// Applies a unitary matrix on the listed qubits: `ρ → UρU†`.
    pub fn apply_unitary(&mut self, u: &Matrix, qubits: &[usize]) {
        let full = crate::circuit::embed_unitary(u, qubits, self.n);
        self.mat = full.matmul(&self.mat).matmul(&full.dagger());
    }

    /// Applies a gate.
    pub fn apply_gate(&mut self, g: &Gate, qubits: &[usize]) {
        self.apply_unitary(&g.matrix(), qubits);
    }

    /// Applies a channel given by Kraus operators on the listed qubits:
    /// `ρ → Σ_k K_k ρ K_k†`.
    pub fn apply_kraus(&mut self, kraus: &[Matrix], qubits: &[usize]) {
        let dim = 1usize << self.n;
        let mut out = Matrix::zeros(dim, dim);
        for k in kraus {
            let full = crate::circuit::embed_unitary(k, qubits, self.n);
            out = out.add(&full.matmul(&self.mat).matmul(&full.dagger()));
        }
        self.mat = out;
    }

    /// Projects qubit `q` onto `outcome` **without renormalising**; returns
    /// the branch probability (trace of the projected operator divided by
    /// the incoming trace is the conditional probability).
    pub fn project(&mut self, q: usize, outcome: bool) -> f64 {
        let bit = 1usize << q;
        let want = if outcome { bit } else { 0 };
        let dim = 1usize << self.n;
        for r in 0..dim {
            for c in 0..dim {
                if (r & bit) != want || (c & bit) != want {
                    self.mat[(r, c)] = C_ZERO;
                }
            }
        }
        self.trace()
    }

    /// Partial trace keeping the listed qubits (ordered; `keep[i]` becomes
    /// qubit `i` of the result).
    pub fn partial_trace(&self, keep: &[usize]) -> DensityMatrix {
        let k = keep.len();
        let kd = 1usize << k;
        let rest: Vec<usize> = (0..self.n).filter(|q| !keep.contains(q)).collect();
        let rd = 1usize << rest.len();
        let mut out = Matrix::zeros(kd, kd);
        let index_of = |kept_bits: usize, rest_bits: usize| -> usize {
            let mut idx = 0usize;
            for (b, &q) in keep.iter().enumerate() {
                idx |= ((kept_bits >> b) & 1) << q;
            }
            for (b, &q) in rest.iter().enumerate() {
                idx |= ((rest_bits >> b) & 1) << q;
            }
            idx
        };
        for r in 0..kd {
            for c in 0..kd {
                let mut acc = C_ZERO;
                for e in 0..rd {
                    acc += self.mat[(index_of(r, e), index_of(c, e))];
                }
                out[(r, c)] = acc;
            }
        }
        DensityMatrix { n: k, mat: out }
    }

    /// Expectation value `Tr[P·ρ]` of a Pauli string (normalised by trace
    /// only if the operator has unit trace — the caller handles weights for
    /// unnormalised branches).
    pub fn expval_pauli(&self, p: &PauliString) -> f64 {
        assert_eq!(p.num_qubits(), self.n);
        let m = p.matrix();
        m.matmul(&self.mat).trace().re
    }

    /// Fidelity with another density operator.
    pub fn fidelity(&self, other: &DensityMatrix) -> f64 {
        qlinalg::fidelity(&self.mat, &other.mat)
    }

    /// Adds `s · other` into this operator (branch accumulation).
    pub fn axpy(&mut self, s: f64, other: &DensityMatrix) {
        assert_eq!(self.n, other.n);
        self.mat.axpy(c64(s, 0.0), &other.mat);
    }

    /// Tensor product `self ⊗ other`, `other` on the lower qubit indices.
    pub fn tensor(&self, other: &DensityMatrix) -> DensityMatrix {
        DensityMatrix {
            n: self.n + other.n,
            mat: self.mat.kron(&other.mat),
        }
    }

    /// Entrywise approximate equality of the raw matrices.
    pub fn approx_eq(&self, other: &DensityMatrix, tol: f64) -> bool {
        self.n == other.n && self.mat.approx_eq(&other.mat, tol)
    }
}

/// Builds a two-qubit density operator from amplitudes of a pure state.
pub fn pure_two_qubit(amps: [Complex64; 4]) -> DensityMatrix {
    let sv = StateVector::from_amplitudes_normalised(2, amps.to_vec());
    DensityMatrix::from_statevector(&sv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pauli::Pauli;
    use qlinalg::C_ONE;

    #[test]
    fn new_density_is_ground_state() {
        let rho = DensityMatrix::new(2);
        assert!((rho.trace() - 1.0).abs() < 1e-14);
        assert!((rho.purity() - 1.0).abs() < 1e-14);
        assert!(rho.matrix()[(0, 0)].approx_eq(C_ONE, 1e-14));
    }

    #[test]
    fn unitary_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::new(2);
        rho.apply_gate(&Gate::H, &[0]);
        rho.apply_gate(&Gate::CX, &[0, 1]);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_statevector_evolution() {
        let mut rho = DensityMatrix::new(2);
        let mut sv = StateVector::new(2);
        for (g, qs) in [
            (Gate::H, vec![0]),
            (Gate::CX, vec![0, 1]),
            (Gate::T, vec![1]),
            (Gate::Ry(0.7), vec![0]),
        ] {
            rho.apply_gate(&g, &qs);
            sv.apply_gate(&g, &qs);
        }
        let expect = DensityMatrix::from_statevector(&sv);
        assert!(rho.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn depolarising_channel_mixes_state() {
        // Kraus: {√(1-p)·I, √(p/3)·X, √(p/3)·Y, √(p/3)·Z} with p = 3/4
        // sends any state to the maximally mixed state.
        let p: f64 = 0.75;
        let kraus: Vec<Matrix> = [
            Pauli::I.matrix().scale_re((1.0 - p).sqrt()),
            Pauli::X.matrix().scale_re((p / 3.0).sqrt()),
            Pauli::Y.matrix().scale_re((p / 3.0).sqrt()),
            Pauli::Z.matrix().scale_re((p / 3.0).sqrt()),
        ]
        .to_vec();
        let mut rho = DensityMatrix::new(1);
        rho.apply_kraus(&kraus, &[0]);
        assert!(rho.approx_eq(&DensityMatrix::maximally_mixed(1), 1e-12));
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kraus_preserves_trace_for_cptp() {
        let p: f64 = 0.3;
        let kraus = vec![
            Pauli::I.matrix().scale_re((1.0 - p).sqrt()),
            Pauli::Z.matrix().scale_re(p.sqrt()),
        ];
        let mut rho = DensityMatrix::new(1);
        rho.apply_gate(&Gate::H, &[0]);
        rho.apply_kraus(&kraus, &[0]);
        assert!((rho.trace() - 1.0).abs() < 1e-12);
        assert!(rho.is_physical(1e-10));
        // Phase damping shrinks off-diagonals by (1-2p).
        assert!((rho.matrix()[(0, 1)].re - 0.5 * (1.0 - 2.0 * p)).abs() < 1e-12);
    }

    #[test]
    fn projection_probabilities_sum_to_one() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_gate(&Gate::Ry(1.1), &[0]);
        let mut b0 = rho.clone();
        let p0 = b0.project(0, false);
        let mut b1 = rho.clone();
        let p1 = b1.project(0, true);
        assert!((p0 + p1 - 1.0).abs() < 1e-12);
        // Collapsed branches are the projectors scaled by probabilities.
        assert!((b0.trace() - p0).abs() < 1e-12);
        assert!((b1.trace() - p1).abs() < 1e-12);
    }

    #[test]
    fn partial_trace_of_bell_is_mixed() {
        let mut rho = DensityMatrix::new(2);
        rho.apply_gate(&Gate::H, &[0]);
        rho.apply_gate(&Gate::CX, &[0, 1]);
        let red = rho.partial_trace(&[1]);
        assert!(red.approx_eq(&DensityMatrix::maximally_mixed(1), 1e-12));
    }

    #[test]
    fn partial_trace_matches_statevector_reduction() {
        let mut sv = StateVector::new(3);
        sv.apply_gate(&Gate::H, &[0]);
        sv.apply_gate(&Gate::CX, &[0, 2]);
        sv.apply_gate(&Gate::Ry(0.4), &[1]);
        let rho = DensityMatrix::from_statevector(&sv);
        let red = rho.partial_trace(&[2, 0]);
        let expect = sv.reduced_density(&[2, 0]);
        assert!(red.matrix().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn expval_matches_statevector() {
        let mut sv = StateVector::new(2);
        sv.apply_gate(&Gate::Ry(0.9), &[0]);
        sv.apply_gate(&Gate::CX, &[0, 1]);
        let rho = DensityMatrix::from_statevector(&sv);
        for label in ["ZI", "IZ", "XX", "ZZ"] {
            let ps = PauliString::from_label(label);
            assert!((rho.expval_pauli(&ps) - sv.expval_pauli(&ps)).abs() < 1e-12);
        }
    }

    #[test]
    fn tensor_and_trace_round_trip() {
        let mut a = DensityMatrix::new(1);
        a.apply_gate(&Gate::Ry(0.6), &[0]);
        let b = DensityMatrix::maximally_mixed(1);
        let ab = a.tensor(&b); // a on qubit 1, b on qubit 0
        let back = ab.partial_trace(&[1]);
        assert!(back.approx_eq(&a, 1e-12));
        let back_b = ab.partial_trace(&[0]);
        assert!(back_b.approx_eq(&b, 1e-12));
    }

    #[test]
    fn physicality_check() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!(rho.is_physical(1e-10));
        let bad = DensityMatrix::from_matrix(1, Matrix::diag(&[c64(1.5, 0.0), c64(-0.5, 0.0)]));
        assert!(!bad.is_physical(1e-10));
    }

    #[test]
    #[should_panic(expected = "density matrix too large")]
    fn oversized_register_panics() {
        let _ = DensityMatrix::new(DensityMatrix::MAX_QUBITS + 1);
    }

    #[test]
    #[should_panic(expected = "density matrix too large")]
    fn oversized_mixed_state_panics() {
        let _ = DensityMatrix::maximally_mixed(16);
    }
}

//! Circuit execution: per-shot statevector runs, exact measurement-branch
//! enumeration, and a compiled branch-tree sampler.
//!
//! Three execution strategies, all agreeing on semantics:
//!
//! * [`run_shot`] — honest per-shot statevector simulation with stochastic
//!   measurement collapse (what a QPU does shot by shot).
//! * [`execute_density`] — exact, deterministic evolution of a density
//!   operator through the *same* circuit by enumerating every measurement
//!   branch. Linear in its input, so it doubles as process tomography for
//!   circuits containing measurement and feed-forward. This is how the
//!   channel-level claims of the paper (Eq. 19/22/27) are verified.
//! * [`CompiledSampler`] — precomputes the measurement branch tree for a
//!   fixed input state, then draws shots from the leaf distribution. This
//!   is the Aer-style "shot branching" optimisation: statistically
//!   identical to [`run_shot`] but orders of magnitude faster for the
//!   paper's experiment, which takes millions of shots on the same
//!   subcircuits.
//!
//! # The two sampling paths of [`CompiledSampler`]
//!
//! * **Per-shot** — [`CompiledSampler::sample_leaf`] /
//!   [`CompiledSampler::sample_z`] draw one shot at a time (one uniform
//!   plus a binary search over the cumulative leaf probabilities per
//!   shot). Use it when shots must interleave with other sampling, when
//!   consumers need the individual collapsed states in sequence, or as
//!   the reference implementation in equivalence tests.
//! * **Batched** — [`CompiledSampler::sample_batch`] /
//!   [`CompiledSampler::sample_counts`] / [`CompiledSampler::sample_z_batch`]
//!   draw a whole shot budget as one exact multinomial over the leaves
//!   (conditional-binomial decomposition from [`qsample`]), returning
//!   per-leaf **counts** in `O(#leaves)` RNG work regardless of the shot
//!   count. Identical in distribution to repeating the per-shot path —
//!   the statistical-equivalence test suite (`tests/`) pins this — and
//!   ≥10× faster at the paper's 10⁴–10⁶-shot budgets. This is the
//!   default path for every estimator and experiment in the workspace.
//!
//! Both paths consume the RNG differently, so fixed-seed runs of the two
//! paths give different (equally valid) draws.

use crate::circuit::{Circuit, Instruction, Op};
use crate::density::DensityMatrix;
use crate::fuse::{fuse_single_qubit_runs, FusionStats};
use crate::stabilizer::{CliffordPrefix, Tableau};
use crate::statevector::StateVector;
use rand::Rng;
use std::collections::HashMap;

/// Outcome of a single shot: the classical bit register (bit `i` =
/// classical bit `i`) and the final collapsed state.
#[derive(Clone, Debug)]
pub struct Shot {
    /// Final classical register contents.
    pub clbits: u64,
    /// Final (collapsed, normalised) statevector.
    pub state: StateVector,
}

/// Executes one shot of `circuit` starting from `input` (or `|0…0⟩`).
pub fn run_shot<R: Rng + ?Sized>(
    circuit: &Circuit,
    input: Option<&StateVector>,
    rng: &mut R,
) -> Shot {
    assert!(
        circuit.num_clbits() <= 64,
        "at most 64 classical bits supported"
    );
    let mut state = match input {
        Some(sv) => {
            assert_eq!(sv.num_qubits(), circuit.num_qubits());
            sv.clone()
        }
        None => StateVector::new(circuit.num_qubits()),
    };
    let mut clbits: u64 = 0;
    for instr in circuit.instructions() {
        if let Some(cond) = instr.condition {
            let bit = (clbits >> cond.bit) & 1 == 1;
            if bit != cond.value {
                continue;
            }
        }
        match &instr.op {
            Op::Gate(g, qs) => state.apply_gate(g, qs),
            Op::Measure { qubit, clbit } => {
                let outcome = state.measure(*qubit, rng);
                if outcome {
                    clbits |= 1 << clbit;
                } else {
                    clbits &= !(1 << clbit);
                }
            }
            Op::Reset(q) => state.reset(*q, rng),
            Op::Barrier => {}
        }
    }
    Shot { clbits, state }
}

/// Histogram of classical outcomes over many shots.
#[derive(Clone, Debug, Default)]
pub struct Counts {
    map: HashMap<u64, u64>,
    total: u64,
}

impl Counts {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one outcome.
    pub fn record(&mut self, key: u64) {
        *self.map.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records `n` occurrences of one outcome at once (the batched
    /// counterpart of [`record`](Self::record)). Recording zero
    /// occurrences leaves the histogram untouched, so batched and
    /// per-shot histograms expose identical key sets.
    pub fn record_n(&mut self, key: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.map.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// Count for a specific outcome.
    pub fn get(&self, key: u64) -> u64 {
        self.map.get(&key).copied().unwrap_or(0)
    }

    /// Total number of recorded shots.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical probability of an outcome.
    pub fn frequency(&self, key: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.get(key) as f64 / self.total as f64
        }
    }

    /// Iterator over `(outcome, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &u64)> {
        self.map.iter()
    }
}

/// Runs `shots` independent shots, histogramming the classical register.
pub fn run_shots<R: Rng + ?Sized>(
    circuit: &Circuit,
    input: Option<&StateVector>,
    shots: u64,
    rng: &mut R,
) -> Counts {
    let mut counts = Counts::new();
    for _ in 0..shots {
        counts.record(run_shot(circuit, input, rng).clbits);
    }
    counts
}

/// One unnormalised measurement branch during exact density execution.
#[derive(Clone, Debug)]
pub struct DensityBranch {
    /// Classical register contents along this branch.
    pub clbits: u64,
    /// Unnormalised density operator (trace = branch weight for physical
    /// inputs).
    pub rho: DensityMatrix,
}

/// Exactly evolves a density operator through `circuit`, enumerating all
/// measurement branches. Returns the list of final branches; their sum is
/// the output state of the induced channel.
///
/// The computation is **linear** in `input`, so probing with matrix units
/// performs process tomography of circuits with measurement and classical
/// feed-forward.
pub fn execute_density_branches(circuit: &Circuit, input: &DensityMatrix) -> Vec<DensityBranch> {
    assert_eq!(input.num_qubits(), circuit.num_qubits());
    assert!(circuit.num_clbits() <= 64);
    let mut branches = vec![DensityBranch {
        clbits: 0,
        rho: input.clone(),
    }];
    for instr in circuit.instructions() {
        match &instr.op {
            Op::Gate(g, qs) => {
                let m = g.matrix();
                for b in branches.iter_mut() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            continue;
                        }
                    }
                    b.rho.apply_unitary(&m, qs);
                }
            }
            Op::Measure { qubit, clbit } => {
                let mut next = Vec::with_capacity(branches.len() * 2);
                for b in branches.into_iter() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            next.push(b);
                            continue;
                        }
                    }
                    let mut b0 = b.clone();
                    b0.rho.project(*qubit, false);
                    b0.clbits &= !(1 << clbit);
                    let mut b1 = b;
                    b1.rho.project(*qubit, true);
                    b1.clbits |= 1 << clbit;
                    next.push(b0);
                    next.push(b1);
                }
                branches = next;
            }
            Op::Reset(q) => {
                // Reset = measure (discard) + conditional X; as a channel:
                // ρ → |0⟩⟨0| P0 ρ P0 |0⟩⟨0| + X P1 ρ P1 X — no classical split.
                let x = crate::gate::Gate::X.matrix();
                for b in branches.iter_mut() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            continue;
                        }
                    }
                    let mut r0 = b.rho.clone();
                    r0.project(*q, false);
                    let mut r1 = b.rho.clone();
                    r1.project(*q, true);
                    r1.apply_unitary(&x, &[*q]);
                    r0.axpy(1.0, &r1);
                    b.rho = r0;
                }
            }
            Op::Barrier => {}
        }
    }
    branches
}

/// Exactly evolves a density operator through `circuit`, summing all
/// measurement branches — the induced CPTP map on the full register.
pub fn execute_density(circuit: &Circuit, input: &DensityMatrix) -> DensityMatrix {
    let branches = execute_density_branches(circuit, input);
    let n = circuit.num_qubits();
    let mut acc = DensityMatrix::from_matrix(n, qlinalg::Matrix::zeros(1 << n, 1 << n));
    for b in branches {
        acc.axpy(1.0, &b.rho);
    }
    acc
}

/// A leaf of the compiled measurement branch tree: a classical outcome
/// pattern with its probability and the post-measurement pure state.
#[derive(Clone, Debug)]
pub struct BranchLeaf {
    /// Probability of this classical outcome path.
    pub probability: f64,
    /// Classical register contents on this path.
    pub clbits: u64,
    /// Final normalised state on this path.
    pub state: StateVector,
}

/// A partially-evolved measurement branch during compilation.
struct Branch {
    p: f64,
    clbits: u64,
    state: StateVector,
}

/// Advances `branches` through `instrs` on the dense backend, splitting
/// at measurements/resets and pruning numerically-dead branches.
fn dense_branches(instrs: &[Instruction], mut branches: Vec<Branch>) -> Vec<Branch> {
    for instr in instrs {
        match &instr.op {
            Op::Gate(g, qs) => {
                for b in branches.iter_mut() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            continue;
                        }
                    }
                    b.state.apply_gate(g, qs);
                }
            }
            Op::Measure { qubit, clbit } => {
                let mut next = Vec::with_capacity(branches.len() * 2);
                for b in branches.into_iter() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            next.push(b);
                            continue;
                        }
                    }
                    let p1 = b.state.prob_one(*qubit);
                    if p1 < 1.0 - 1e-14 {
                        let mut s0 = b.state.clone();
                        s0.collapse(*qubit, false);
                        next.push(Branch {
                            p: b.p * (1.0 - p1),
                            clbits: b.clbits & !(1 << clbit),
                            state: s0,
                        });
                    }
                    if p1 > 1e-14 {
                        let mut s1 = b.state;
                        s1.collapse(*qubit, true);
                        next.push(Branch {
                            p: b.p * p1,
                            clbits: b.clbits | (1 << clbit),
                            state: s1,
                        });
                    }
                }
                branches = next;
            }
            Op::Reset(q) => {
                let mut next = Vec::with_capacity(branches.len() * 2);
                for b in branches.into_iter() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            next.push(b);
                            continue;
                        }
                    }
                    let p1 = b.state.prob_one(*q);
                    if p1 < 1.0 - 1e-14 {
                        let mut s0 = b.state.clone();
                        s0.collapse(*q, false);
                        next.push(Branch {
                            p: b.p * (1.0 - p1),
                            clbits: b.clbits,
                            state: s0,
                        });
                    }
                    if p1 > 1e-14 {
                        let mut s1 = b.state;
                        s1.collapse(*q, true);
                        s1.apply_gate(&crate::gate::Gate::X, &[*q]);
                        next.push(Branch {
                            p: b.p * p1,
                            clbits: b.clbits,
                            state: s1,
                        });
                    }
                }
                branches = next;
            }
            Op::Barrier => {}
        }
    }
    branches
}

/// A measurement branch evolving on the stabilizer tableau. Branch
/// probabilities are exact dyadics (products of ½ from random
/// measurements), so no pruning is ever needed.
struct TableauBranch {
    p: f64,
    clbits: u64,
    tab: Tableau,
}

/// Advances tableau branches through a fully-Clifford instruction run.
fn tableau_branches(
    instrs: &[Instruction],
    mut branches: Vec<TableauBranch>,
) -> Vec<TableauBranch> {
    for instr in instrs {
        match &instr.op {
            Op::Gate(g, qs) => {
                for b in branches.iter_mut() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            continue;
                        }
                    }
                    b.tab.apply_gate(g, qs);
                }
            }
            Op::Measure { qubit, clbit } => {
                let mut next = Vec::with_capacity(branches.len() * 2);
                for b in branches.into_iter() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            next.push(b);
                            continue;
                        }
                    }
                    match b.tab.deterministic_outcome(*qubit) {
                        Some(outcome) => {
                            let clbits = if outcome {
                                b.clbits | (1 << clbit)
                            } else {
                                b.clbits & !(1 << clbit)
                            };
                            next.push(TableauBranch { clbits, ..b });
                        }
                        None => {
                            let mut t0 = b.tab.clone();
                            t0.collapse(*qubit, false);
                            next.push(TableauBranch {
                                p: b.p * 0.5,
                                clbits: b.clbits & !(1 << clbit),
                                tab: t0,
                            });
                            let mut t1 = b.tab;
                            t1.collapse(*qubit, true);
                            next.push(TableauBranch {
                                p: b.p * 0.5,
                                clbits: b.clbits | (1 << clbit),
                                tab: t1,
                            });
                        }
                    }
                }
                branches = next;
            }
            Op::Reset(q) => {
                let mut next = Vec::with_capacity(branches.len() * 2);
                for b in branches.into_iter() {
                    if let Some(cond) = instr.condition {
                        if ((b.clbits >> cond.bit) & 1 == 1) != cond.value {
                            next.push(b);
                            continue;
                        }
                    }
                    match b.tab.deterministic_outcome(*q) {
                        Some(outcome) => {
                            let mut t = b.tab;
                            if outcome {
                                t.apply_x(*q);
                            }
                            next.push(TableauBranch { tab: t, ..b });
                        }
                        None => {
                            let mut t0 = b.tab.clone();
                            t0.collapse(*q, false);
                            next.push(TableauBranch {
                                p: b.p * 0.5,
                                clbits: b.clbits,
                                tab: t0,
                            });
                            let mut t1 = b.tab;
                            t1.collapse(*q, true);
                            t1.apply_x(*q);
                            next.push(TableauBranch {
                                p: b.p * 0.5,
                                clbits: b.clbits,
                                tab: t1,
                            });
                        }
                    }
                }
                branches = next;
            }
            Op::Barrier => {}
        }
    }
    branches
}

/// `Some(i)` when `sv` is *exactly* the computational basis state `|i⟩`
/// — one amplitude exactly `1 + 0i`, every other exactly zero. The check
/// is bit-strict on purpose: only then is the tableau-seeded hybrid
/// compilation byte-identical to the dense path on the same input, which
/// the compiled-plan determinism contract relies on.
pub fn computational_basis_index(sv: &StateVector) -> Option<usize> {
    let mut idx = None;
    for (i, a) in sv.amplitudes().iter().enumerate() {
        if a.re == 0.0 && a.im == 0.0 {
            continue;
        }
        if a.re == 1.0 && a.im == 0.0 && idx.is_none() {
            idx = Some(i);
        } else {
            return None;
        }
    }
    idx
}

/// Pre-enumerated measurement branch tree for a circuit and fixed input.
///
/// Compiling costs one statevector simulation per measurement branch
/// (≤ `2^m` for `m` measurements); sampling a shot afterwards is O(#leaves)
/// with no gate application at all. Exactly equivalent in distribution to
/// [`run_shot`] — asserted by tests.
///
/// # Backends
///
/// [`compile`](Self::compile) is a hybrid: starting from `|0…0⟩` or any
/// exact computational-basis input ([`computational_basis_index`]), the
/// maximal Clifford prefix of the circuit rides a stabilizer
/// [`Tableau`] (`O(n²)` per gate, exact dyadic branch probabilities)
/// and is converted to a dense state only at the first non-Clifford
/// gate; the dense suffix then runs with adjacent single-qubit gates
/// fused per wire ([`fuse_single_qubit_runs`]). The backend choice
/// depends only on the circuit, never on runtime state, so compiled
/// plans stay byte-deterministic. [`compile_dense`](Self::compile_dense)
/// is the pristine all-dense, no-fusion reference path the differential
/// suite checks the hybrid against.
#[derive(Clone, Debug)]
pub struct CompiledSampler {
    leaves: Vec<BranchLeaf>,
    cumulative: Vec<f64>,
    prefix: CliffordPrefix,
    fusion: FusionStats,
}

impl CompiledSampler {
    /// Minimum Clifford-prefix length before the tableau path is worth
    /// the conversion cost at the split point.
    const HYBRID_THRESHOLD: usize = 4;

    /// Enumerates all measurement branches of `circuit` on `input`,
    /// choosing the backend per the type-level docs.
    ///
    /// The hybrid tableau path accepts `None` **and** any exact
    /// computational-basis `input` (one amplitude exactly `1 + 0i`, the
    /// rest exactly zero): basis states are stabilizer states, seeded by
    /// X gates on the tableau. Cut-planner term circuits start their
    /// carriers in `|0…0⟩` or a prep basis state, so refusing every
    /// supplied input (the old behaviour) silently forced those plans
    /// dense.
    pub fn compile(circuit: &Circuit, input: Option<&StateVector>) -> Self {
        assert!(circuit.num_clbits() <= 64);
        let basis = match input {
            None => Some(0usize),
            Some(sv) => {
                assert_eq!(sv.num_qubits(), circuit.num_qubits());
                computational_basis_index(sv)
            }
        };
        if circuit.num_qubits() <= 30 {
            if let Some(idx) = basis {
                let prefix = CliffordPrefix::split(circuit);
                if prefix.prefix_len >= Self::HYBRID_THRESHOLD {
                    return Self::compile_hybrid(circuit, prefix, idx);
                }
            }
        }
        let init = match input {
            Some(sv) => {
                assert_eq!(sv.num_qubits(), circuit.num_qubits());
                sv.clone()
            }
            None => StateVector::new(circuit.num_qubits()),
        };
        let (fused, fusion) = fuse_single_qubit_runs(circuit);
        let branches = dense_branches(
            fused.instructions(),
            vec![Branch {
                p: 1.0,
                clbits: 0,
                state: init,
            }],
        );
        Self::finalize(
            branches,
            CliffordPrefix {
                prefix_len: 0,
                total: circuit.len(),
            },
            fusion,
        )
    }

    /// The all-dense, fusion-free reference compilation: the exact code
    /// path every estimator rode before the hybrid backend existed.
    /// Differential tests compare [`compile`](Self::compile) against it.
    pub fn compile_dense(circuit: &Circuit, input: Option<&StateVector>) -> Self {
        assert!(circuit.num_clbits() <= 64);
        let init = match input {
            Some(sv) => {
                assert_eq!(sv.num_qubits(), circuit.num_qubits());
                sv.clone()
            }
            None => StateVector::new(circuit.num_qubits()),
        };
        let branches = dense_branches(
            circuit.instructions(),
            vec![Branch {
                p: 1.0,
                clbits: 0,
                state: init,
            }],
        );
        Self::finalize(
            branches,
            CliffordPrefix {
                prefix_len: 0,
                total: circuit.len(),
            },
            FusionStats {
                input_len: circuit.len(),
                output_len: circuit.len(),
                ..FusionStats::default()
            },
        )
    }

    /// Clifford prefix on the tableau, fused dense suffix from the
    /// converted branch states. `basis` is the computational input state
    /// `|basis⟩`, seeded onto the tableau as X gates.
    fn compile_hybrid(circuit: &Circuit, prefix: CliffordPrefix, basis: usize) -> Self {
        let n = circuit.num_qubits();
        let instrs = circuit.instructions();
        let mut tab = Tableau::new(n);
        for q in 0..n {
            if (basis >> q) & 1 == 1 {
                tab.apply_x(q);
            }
        }
        let tb = tableau_branches(
            &instrs[..prefix.prefix_len],
            vec![TableauBranch {
                p: 1.0,
                clbits: 0,
                tab,
            }],
        );
        let mut suffix = Circuit::new(n, circuit.num_clbits());
        for instr in &instrs[prefix.prefix_len..] {
            suffix.push(instr.clone());
        }
        let (fused, fusion) = fuse_single_qubit_runs(&suffix);
        let branches = tb
            .into_iter()
            .map(|b| Branch {
                p: b.p,
                clbits: b.clbits,
                state: b.tab.to_statevector(),
            })
            .collect();
        Self::finalize(
            dense_branches(fused.instructions(), branches),
            prefix,
            fusion,
        )
    }

    /// Sorts, renormalises and indexes the final branches.
    fn finalize(branches: Vec<Branch>, prefix: CliffordPrefix, fusion: FusionStats) -> Self {
        let mut leaves: Vec<BranchLeaf> = branches
            .into_iter()
            .map(|b| BranchLeaf {
                probability: b.p,
                clbits: b.clbits,
                state: b.state,
            })
            .collect();
        // Deterministic order helps reproducibility of seeded sampling.
        leaves.sort_by_key(|l| l.clbits);
        let mut cumulative = Vec::with_capacity(leaves.len());
        let mut acc = 0.0;
        for l in &leaves {
            acc += l.probability;
            cumulative.push(acc);
        }
        debug_assert!(
            (acc - 1.0).abs() < 1e-9,
            "branch probabilities sum to {acc}"
        );
        // Accumulated floating-point error leaves the sum at 1 ± ε.
        // Renormalise so batched draws (which hand any numerically
        // missing mass to the last leaf) cannot systematically over- or
        // under-draw it, and exact_expval_z is exactly a convex average.
        if acc > 0.0 && acc != 1.0 {
            let inv = 1.0 / acc;
            for l in &mut leaves {
                l.probability *= inv;
            }
            for c in &mut cumulative {
                *c *= inv;
            }
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self {
            leaves,
            cumulative,
            prefix,
            fusion,
        }
    }

    /// The Clifford prefix the compiler actually ran on the tableau
    /// (`prefix_len` is 0 when the circuit compiled all-dense — custom
    /// input state, short prefix, or the reference path).
    pub fn clifford_prefix(&self) -> CliffordPrefix {
        self.prefix
    }

    /// What single-qubit gate fusion did to the dense portion.
    pub fn fusion_stats(&self) -> FusionStats {
        self.fusion
    }

    /// The enumerated leaves.
    pub fn leaves(&self) -> &[BranchLeaf] {
        &self.leaves
    }

    /// Draws one leaf according to the branch probabilities.
    pub fn sample_leaf<R: Rng + ?Sized>(&self, rng: &mut R) -> &BranchLeaf {
        let r: f64 = rng.gen::<f64>() * self.cumulative.last().copied().unwrap_or(1.0);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&r).unwrap())
        {
            Ok(i) => &self.leaves[(i + 1).min(self.leaves.len() - 1)],
            Err(i) => &self.leaves[i.min(self.leaves.len() - 1)],
        }
    }

    /// Exact expectation of Z on `qubit` over the full branch distribution.
    pub fn exact_expval_z(&self, qubit: usize) -> f64 {
        self.leaves
            .iter()
            .map(|l| l.probability * l.state.expval_z(qubit))
            .sum()
    }

    /// One single-shot estimate of Z on `qubit`: draw a branch, then a
    /// terminal measurement outcome; returns ±1.
    pub fn sample_z<R: Rng + ?Sized>(&self, qubit: usize, rng: &mut R) -> f64 {
        let leaf = self.sample_leaf(rng);
        let p1 = leaf.state.prob_one(qubit);
        if rng.gen::<f64>() < p1 {
            -1.0
        } else {
            1.0
        }
    }

    /// Draws `shots` shots at once, returning per-leaf counts aligned
    /// with [`leaves`](Self::leaves).
    ///
    /// Exactly multinomially distributed over the leaf probabilities —
    /// the same joint distribution as `shots` independent
    /// [`sample_leaf`](Self::sample_leaf) draws — but costs `O(#leaves)`
    /// RNG work instead of `O(shots)`. `shots == 0` returns all-zero
    /// counts without touching the RNG.
    pub fn sample_batch<R: Rng + ?Sized>(&self, shots: u64, rng: &mut R) -> Vec<u64> {
        let probs: Vec<f64> = self.leaves.iter().map(|l| l.probability).collect();
        qsample::multinomial(shots, &probs, rng)
    }

    /// Draws `shots` shots at once and histograms the classical
    /// registers — the batched counterpart of recording
    /// [`sample_leaf`](Self::sample_leaf)`.clbits` per shot. Leaves
    /// sharing a classical outcome are merged.
    pub fn sample_counts<R: Rng + ?Sized>(&self, shots: u64, rng: &mut R) -> Counts {
        let mut counts = Counts::new();
        for (leaf, &n) in self.leaves.iter().zip(self.sample_batch(shots, rng).iter()) {
            counts.record_n(leaf.clbits, n);
        }
        counts
    }

    /// Batched counterpart of [`sample_z`](Self::sample_z): draws
    /// `shots` single-shot ±1 estimates of Z on `qubit` and returns
    /// their **sum** (divide by `shots` for the mean).
    ///
    /// Leaf occupancies come from one multinomial draw; the terminal
    /// measurement within each occupied leaf is one binomial draw on
    /// that leaf's `P(1)`. Identical in distribution to summing `shots`
    /// calls to [`sample_z`](Self::sample_z), in `O(#leaves)` RNG work.
    pub fn sample_z_batch<R: Rng + ?Sized>(&self, qubit: usize, shots: u64, rng: &mut R) -> f64 {
        let mut sum = 0.0;
        for (leaf, &n) in self.leaves.iter().zip(self.sample_batch(shots, rng).iter()) {
            if n == 0 {
                continue;
            }
            let p1 = leaf.state.prob_one(qubit).clamp(0.0, 1.0);
            let ones = qsample::binomial(n, p1, rng);
            // n − ones outcomes of +1, ones outcomes of −1.
            sum += n as f64 - 2.0 * ones as f64;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell_measure_circuit() -> Circuit {
        let mut c = Circuit::new(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        c
    }

    #[test]
    fn bell_shots_are_correlated() {
        let c = bell_measure_circuit();
        let mut rng = StdRng::seed_from_u64(1);
        let counts = run_shots(&c, None, 4000, &mut rng);
        assert_eq!(
            counts.get(0b01) + counts.get(0b10),
            0,
            "anticorrelated outcomes seen"
        );
        let f00 = counts.frequency(0b00);
        assert!((f00 - 0.5).abs() < 0.05);
    }

    #[test]
    fn feed_forward_teleport_identity() {
        // Teleport |ψ⟩ = Ry(0.9)|0⟩ from qubit 0 to qubit 2 and check ⟨Z⟩.
        let mut c = Circuit::new(3, 2);
        c.ry(0.9, 0);
        c.h(1).cx(1, 2); // Bell pair on (1,2)
        c.cx(0, 1).h(0);
        c.measure(0, 0).measure(1, 1);
        c.x_if(2, 1).z_if(2, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let expect = (0.9f64).cos();
        // Exact via compiled sampler:
        let sampler = CompiledSampler::compile(&c, None);
        assert!((sampler.exact_expval_z(2) - expect).abs() < 1e-10);
        // Statistical via per-shot simulation:
        let mut acc = 0.0;
        let shots = 20_000;
        for _ in 0..shots {
            let shot = run_shot(&c, None, &mut rng);
            acc += shot.state.expval_z(2);
        }
        assert!((acc / shots as f64 - expect).abs() < 0.02);
    }

    #[test]
    fn compiled_sampler_matches_run_shot_distribution() {
        let c = bell_measure_circuit();
        let sampler = CompiledSampler::compile(&c, None);
        assert_eq!(sampler.leaves().len(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = Counts::new();
        for _ in 0..4000 {
            counts.record(sampler.sample_leaf(&mut rng).clbits);
        }
        assert!((counts.frequency(0b00) - 0.5).abs() < 0.05);
        assert_eq!(counts.get(0b01), 0);
    }

    #[test]
    fn conditioned_measurement_branches() {
        // Measure q0; only if it is 1, flip and measure q1.
        let mut c = Circuit::new(2, 2);
        c.h(0).measure(0, 0);
        c.gate_if(Gate::X, &[1], 0, true);
        c.measure(1, 1);
        let sampler = CompiledSampler::compile(&c, None);
        // Outcomes: c=00 (q0=0, q1 stays 0) and c=11.
        let probs: Vec<(u64, f64)> = sampler
            .leaves()
            .iter()
            .map(|l| (l.clbits, l.probability))
            .collect();
        assert_eq!(probs.len(), 2);
        assert!(probs
            .iter()
            .any(|&(c, p)| c == 0b00 && (p - 0.5).abs() < 1e-12));
        assert!(probs
            .iter()
            .any(|&(c, p)| c == 0b11 && (p - 0.5).abs() < 1e-12));
    }

    #[test]
    fn density_execution_matches_compiled_expectation() {
        let mut c = Circuit::new(3, 2);
        c.ry(1.3, 0);
        c.h(1).cx(1, 2);
        c.cx(0, 1).h(0);
        c.measure(0, 0).measure(1, 1);
        c.x_if(2, 1).z_if(2, 0);
        let rho_out = execute_density(&c, &DensityMatrix::new(3));
        assert!((rho_out.trace() - 1.0).abs() < 1e-10);
        let reduced = rho_out.partial_trace(&[2]);
        let z = reduced.expval_pauli(&crate::pauli::PauliString::single(
            1,
            0,
            crate::pauli::Pauli::Z,
        ));
        let sampler = CompiledSampler::compile(&c, None);
        assert!((z - sampler.exact_expval_z(2)).abs() < 1e-10);
        assert!((z - (1.3f64).cos()).abs() < 1e-10);
    }

    #[test]
    fn density_branches_carry_probabilities() {
        let c = bell_measure_circuit();
        let branches = execute_density_branches(&c, &DensityMatrix::new(2));
        let total: f64 = branches.iter().map(|b| b.rho.trace()).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let nonzero: Vec<_> = branches.iter().filter(|b| b.rho.trace() > 1e-12).collect();
        assert_eq!(nonzero.len(), 2);
        for b in nonzero {
            assert!((b.rho.trace() - 0.5).abs() < 1e-12);
            assert!(b.clbits == 0b00 || b.clbits == 0b11);
        }
    }

    #[test]
    fn reset_channel_in_density_execution() {
        let mut c = Circuit::new(1, 0);
        c.h(0);
        c.reset(0);
        let out = execute_density(&c, &DensityMatrix::new(1));
        // Reset sends everything to |0⟩⟨0|.
        assert!(out.approx_eq(&DensityMatrix::new(1), 1e-12));
    }

    #[test]
    fn reset_in_shot_execution() {
        let mut c = Circuit::new(1, 1);
        c.h(0);
        c.reset(0);
        c.measure(0, 0);
        let mut rng = StdRng::seed_from_u64(9);
        let counts = run_shots(&c, None, 500, &mut rng);
        assert_eq!(counts.get(1), 0);
        assert_eq!(counts.get(0), 500);
    }

    #[test]
    fn counts_bookkeeping() {
        let mut c = Counts::new();
        c.record(3);
        c.record(3);
        c.record(1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.get(3), 2);
        assert!((c.frequency(1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.get(7), 0);
    }

    #[test]
    fn custom_input_state_is_used() {
        let mut input = StateVector::new(1);
        input.apply_gate(&Gate::X, &[0]);
        let mut c = Circuit::new(1, 1);
        c.measure(0, 0);
        let mut rng = StdRng::seed_from_u64(2);
        let counts = run_shots(&c, Some(&input), 100, &mut rng);
        assert_eq!(counts.get(1), 100);
    }

    #[test]
    fn sample_batch_counts_align_with_leaves() {
        let c = bell_measure_circuit();
        let sampler = CompiledSampler::compile(&c, None);
        let mut rng = StdRng::seed_from_u64(21);
        let shots = 100_000;
        let counts = sampler.sample_batch(shots, &mut rng);
        assert_eq!(counts.len(), sampler.leaves().len());
        assert_eq!(counts.iter().sum::<u64>(), shots);
        for (leaf, &n) in sampler.leaves().iter().zip(counts.iter()) {
            let f = n as f64 / shots as f64;
            assert!(
                (f - leaf.probability).abs() < 0.01,
                "leaf {:b}: frequency {f} vs probability {}",
                leaf.clbits,
                leaf.probability
            );
        }
    }

    #[test]
    fn sample_counts_matches_per_shot_histogram_keys() {
        let c = bell_measure_circuit();
        let sampler = CompiledSampler::compile(&c, None);
        let mut rng = StdRng::seed_from_u64(22);
        let counts = sampler.sample_counts(4000, &mut rng);
        assert_eq!(counts.total(), 4000);
        assert_eq!(counts.get(0b01) + counts.get(0b10), 0);
        assert!((counts.frequency(0b00) - 0.5).abs() < 0.05);
    }

    #[test]
    fn sample_z_batch_agrees_with_exact_expectation() {
        let mut c = Circuit::new(3, 2);
        c.ry(1.1, 0);
        c.h(1).cx(1, 2);
        c.cx(0, 1).h(0);
        c.measure(0, 0).measure(1, 1);
        c.x_if(2, 1).z_if(2, 0);
        let sampler = CompiledSampler::compile(&c, None);
        let exact = sampler.exact_expval_z(2);
        let mut rng = StdRng::seed_from_u64(23);
        let shots = 200_000;
        let mean = sampler.sample_z_batch(2, shots, &mut rng) / shots as f64;
        // SE = sqrt((1 − exact²)/shots) ≈ 0.0018; allow 5σ.
        assert!((mean - exact).abs() < 0.01, "mean {mean} vs exact {exact}");
    }

    #[test]
    fn batched_and_per_shot_z_estimates_agree() {
        let mut c = Circuit::new(2, 1);
        c.ry(0.8, 0).cx(0, 1).measure(0, 0);
        let sampler = CompiledSampler::compile(&c, None);
        let shots = 50_000;
        let mut rng_a = StdRng::seed_from_u64(24);
        let per_shot: f64 = (0..shots).map(|_| sampler.sample_z(1, &mut rng_a)).sum();
        let mut rng_b = StdRng::seed_from_u64(25);
        let batched = sampler.sample_z_batch(1, shots, &mut rng_b);
        let diff = (per_shot - batched).abs() / shots as f64;
        // Two independent unbiased estimates of the same mean: the
        // difference has SE ≤ 2/√shots ≈ 0.009.
        assert!(diff < 0.045, "paths disagree by {diff}");
    }

    #[test]
    fn zero_shot_batch_is_empty_and_skips_rng() {
        let c = bell_measure_circuit();
        let sampler = CompiledSampler::compile(&c, None);
        let mut rng = StdRng::seed_from_u64(26);
        let before = rng.gen::<u64>();
        let mut rng = StdRng::seed_from_u64(26);
        assert_eq!(sampler.sample_batch(0, &mut rng), vec![0, 0]);
        assert_eq!(sampler.sample_z_batch(0, 0, &mut rng), 0.0);
        assert_eq!(sampler.sample_counts(0, &mut rng).total(), 0);
        assert_eq!(rng.gen::<u64>(), before, "n = 0 batch consumed RNG state");
    }

    #[test]
    fn single_leaf_sampler_batches_deterministically() {
        // No measurement → exactly one leaf with probability 1.
        let mut c = Circuit::new(1, 0);
        c.ry(0.4, 0);
        let sampler = CompiledSampler::compile(&c, None);
        assert_eq!(sampler.leaves().len(), 1);
        let mut rng = StdRng::seed_from_u64(27);
        assert_eq!(sampler.sample_batch(777, &mut rng), vec![777]);
    }

    #[test]
    fn leaf_probabilities_are_renormalised() {
        // A deep feed-forward circuit accumulates floating-point error
        // in the branch weights; compile() must hand back exactly
        // normalised probabilities with the last cumulative pinned at 1.
        let mut c = Circuit::new(4, 4);
        for q in 0..4 {
            c.ry(0.3 + q as f64, q);
        }
        for q in 0..3 {
            c.cx(q, q + 1);
        }
        for q in 0..4 {
            c.measure(q, q);
        }
        let sampler = CompiledSampler::compile(&c, None);
        let total: f64 = sampler.leaves().iter().map(|l| l.probability).sum();
        assert!((total - 1.0).abs() < 1e-15, "sum {total}");
        let mut rng = StdRng::seed_from_u64(28);
        let shots = 10_000;
        assert_eq!(
            sampler.sample_batch(shots, &mut rng).iter().sum::<u64>(),
            shots
        );
    }

    #[test]
    fn sample_z_is_unbiased() {
        let mut c = Circuit::new(1, 0);
        c.ry(1.0, 0);
        let sampler = CompiledSampler::compile(&c, None);
        let exact = sampler.exact_expval_z(0);
        assert!((exact - (1.0f64).cos()).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| sampler.sample_z(0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - exact).abs() < 0.02);
    }

    fn basis_state(n: usize, idx: usize) -> StateVector {
        let mut amps = vec![qlinalg::c64(0.0, 0.0); 1 << n];
        amps[idx] = qlinalg::c64(1.0, 0.0);
        StateVector::from_amplitudes(n, amps)
    }

    #[test]
    fn basis_index_detects_exact_basis_states_only() {
        assert_eq!(computational_basis_index(&StateVector::new(3)), Some(0));
        assert_eq!(computational_basis_index(&basis_state(3, 5)), Some(5));
        let mut plus = StateVector::new(1);
        plus.apply_gate(&Gate::H, &[0]);
        assert_eq!(computational_basis_index(&plus), None);
        // A global phase disqualifies: not bit-exactly 1 + 0i.
        let mut phased = StateVector::new(1);
        phased.apply_gate(&Gate::X, &[0]);
        phased.apply_gate(&Gate::Z, &[0]);
        phased.apply_gate(&Gate::X, &[0]);
        assert_eq!(computational_basis_index(&phased), None);
    }

    #[test]
    fn basis_inputs_ride_the_hybrid_path() {
        // A Clifford-heavy circuit with a basis input: before the fix
        // any supplied input forced the dense path.
        let mut c = Circuit::new(3, 1);
        c.h(0).cx(0, 1).cx(1, 2).s(2).measure(2, 0);
        for idx in 0..8usize {
            let input = basis_state(3, idx);
            let hybrid = CompiledSampler::compile(&c, Some(&input));
            assert!(
                hybrid.clifford_prefix().prefix_len >= 4,
                "basis input |{idx}⟩ compiled dense"
            );
            let dense = CompiledSampler::compile_dense(&c, Some(&input));
            assert_eq!(hybrid.leaves().len(), dense.leaves().len());
            for (h, d) in hybrid.leaves().iter().zip(dense.leaves().iter()) {
                assert_eq!(h.clbits, d.clbits);
                assert!((h.probability - d.probability).abs() < 1e-12);
                let fidelity: f64 = h
                    .state
                    .amplitudes()
                    .iter()
                    .zip(d.state.amplitudes().iter())
                    .map(|(a, b)| a.conj() * *b)
                    .fold(qlinalg::c64(0.0, 0.0), |acc, z| acc + z)
                    .abs();
                assert!(
                    (fidelity - 1.0).abs() < 1e-10,
                    "leaf state mismatch on |{idx}⟩: fidelity {fidelity}"
                );
            }
        }
    }

    #[test]
    fn non_basis_inputs_still_compile_dense() {
        let mut c = Circuit::new(2, 0);
        c.h(0).cx(0, 1).s(1).cx(1, 0);
        let mut input = StateVector::new(2);
        input.apply_gate(&Gate::H, &[0]);
        let sampler = CompiledSampler::compile(&c, Some(&input));
        assert_eq!(sampler.clifford_prefix().prefix_len, 0);
    }
}

//! Single-qubit gate fusion.
//!
//! Runs of adjacent unconditioned single-qubit gates on the same wire
//! are multiplied into one [`Gate::Unitary1`] before execution, so the
//! dense backend makes one strided pass over the amplitudes instead of
//! one per gate. Basis-rotation chains (MUB conjugations, distillation
//! twirls, Euler-angle `Rz·Ry·Rz` decompositions) collapse 3–6× here.
//!
//! Contract — [`fuse_single_qubit_runs`] output is *unitarily
//! identical* to its input (`tests/fuse_equivalence.rs` fences this
//! with proptests), and conservative beyond that:
//!
//! * runs of length 1 are emitted **verbatim** (same `Gate` variant, so
//!   circuits with nothing to fuse round-trip byte-identically and keep
//!   their named fast paths in the statevector kernels);
//! * fused products within `1e-12` of the identity are **eliminated**
//!   (up to global phase — the product of a gate and its inverse);
//! * conditioned gates, measurements, resets, barriers and multi-qubit
//!   gates flush the pending runs on the wires they touch and pass
//!   through unchanged, preserving program order across them.

use crate::circuit::{Circuit, Instruction, Op};
use crate::gate::Gate;
use qlinalg::Matrix;

/// What [`fuse_single_qubit_runs`] did, for plan reports and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Instructions in the input circuit.
    pub input_len: usize,
    /// Instructions in the fused circuit.
    pub output_len: usize,
    /// Single-qubit gates absorbed into `Unitary1` products.
    pub gates_fused: usize,
    /// Fused runs whose product collapsed to the identity and vanished.
    pub runs_eliminated: usize,
}

impl FusionStats {
    /// `true` when fusion changed nothing (output is the input verbatim).
    pub fn is_noop(&self) -> bool {
        self.input_len == self.output_len && self.gates_fused == 0
    }
}

/// `true` when `m` is the 2×2 identity up to global phase, within `tol`
/// per entry.
fn is_identity_up_to_phase(m: &Matrix, tol: f64) -> bool {
    let d00 = m.row(0)[0];
    let d11 = m.row(1)[1];
    if m.row(0)[1].abs() > tol || m.row(1)[0].abs() > tol {
        return false;
    }
    // Diagonal: both entries unit-modulus and equal ⇒ phase · I.
    (d00 - d11).abs() <= tol && (d00.abs() - 1.0).abs() <= tol
}

/// A pending run of unconditioned single-qubit gates on one wire.
struct PendingRun {
    /// Accumulated product (left-multiplied: later gates on the left).
    product: Matrix,
    /// The original instructions, kept so singletons emit verbatim.
    gates: Vec<Gate>,
    /// Arrival index of the run's first gate, for stable ordering.
    first_seen: usize,
}

/// Fuses runs of adjacent unconditioned single-qubit gates per wire into
/// single [`Gate::Unitary1`] instructions. Returns the fused circuit and
/// a [`FusionStats`] summary. See the module docs for the exact contract.
pub fn fuse_single_qubit_runs(circuit: &Circuit) -> (Circuit, FusionStats) {
    let mut out = Circuit::new(circuit.num_qubits(), circuit.num_clbits());
    let mut stats = FusionStats {
        input_len: circuit.len(),
        ..FusionStats::default()
    };
    let mut pending: Vec<Option<PendingRun>> = (0..circuit.num_qubits()).map(|_| None).collect();

    // Flush helper: emit the pending run on wire `q` (if any) in arrival
    // order relative to other flushed wires — callers collect-and-sort.
    fn take(pending: &mut [Option<PendingRun>], q: usize) -> Option<(usize, usize, PendingRun)> {
        pending[q].take().map(|run| (run.first_seen, q, run))
    }
    fn emit(out: &mut Circuit, stats: &mut FusionStats, q: usize, run: PendingRun) {
        const ID_TOL: f64 = 1e-12;
        if run.gates.len() == 1 {
            out.gate(run.gates.into_iter().next().unwrap(), &[q]);
            return;
        }
        if is_identity_up_to_phase(&run.product, ID_TOL) {
            stats.gates_fused += run.gates.len();
            stats.runs_eliminated += 1;
            return;
        }
        stats.gates_fused += run.gates.len();
        out.gate(Gate::Unitary1(run.product), &[q]);
    }
    let flush_wires = |out: &mut Circuit,
                       stats: &mut FusionStats,
                       pending: &mut [Option<PendingRun>],
                       wires: &[usize]| {
        let mut runs: Vec<(usize, usize, PendingRun)> =
            wires.iter().filter_map(|&q| take(pending, q)).collect();
        runs.sort_by_key(|&(first_seen, _, _)| first_seen);
        for (_, q, run) in runs {
            emit(out, stats, q, run);
        }
    };
    let all_wires: Vec<usize> = (0..circuit.num_qubits()).collect();

    for (idx, instr) in circuit.instructions().iter().enumerate() {
        match (&instr.op, instr.condition) {
            (Op::Gate(g, qs), None) if g.arity() == 1 => {
                let q = qs[0];
                match &mut pending[q] {
                    Some(run) => {
                        run.product = g.matrix().matmul(&run.product);
                        run.gates.push(g.clone());
                    }
                    slot @ None => {
                        *slot = Some(PendingRun {
                            product: g.matrix(),
                            gates: vec![g.clone()],
                            first_seen: idx,
                        });
                    }
                }
            }
            (op, _) => {
                // Anything else flushes the wires it touches (a barrier
                // or wide instruction flushes everything), then passes
                // through unchanged.
                match op {
                    Op::Gate(_, qs) => flush_wires(&mut out, &mut stats, &mut pending, qs),
                    Op::Measure { qubit, .. } | Op::Reset(qubit) => {
                        flush_wires(&mut out, &mut stats, &mut pending, &[*qubit]);
                    }
                    Op::Barrier => flush_wires(&mut out, &mut stats, &mut pending, &all_wires),
                }
                out.push(Instruction {
                    op: instr.op.clone(),
                    condition: instr.condition,
                });
            }
        }
    }
    flush_wires(&mut out, &mut stats, &mut pending, &all_wires);
    stats.output_len = out.len();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_4;

    #[test]
    fn singleton_runs_round_trip_verbatim() {
        let mut c = Circuit::new(2, 1);
        c.h(0).cx(0, 1).t(1).measure(1, 0);
        let (fused, stats) = fuse_single_qubit_runs(&c);
        assert_eq!(fused.instructions(), c.instructions());
        assert!(stats.is_noop());
    }

    #[test]
    fn adjacent_run_fuses_to_one_unitary() {
        let mut c = Circuit::new(1, 0);
        c.h(0).s(0).t(0);
        let (fused, stats) = fuse_single_qubit_runs(&c);
        assert_eq!(fused.len(), 1);
        assert_eq!(stats.gates_fused, 3);
        let expect = Gate::T
            .matrix()
            .matmul(&Gate::S.matrix())
            .matmul(&Gate::H.matrix());
        match &fused.instructions()[0].op {
            Op::Gate(Gate::Unitary1(m), qs) => {
                assert_eq!(qs, &[0]);
                assert!(m.approx_eq(&expect, 1e-12));
            }
            other => panic!("expected fused Unitary1, got {other:?}"),
        }
    }

    #[test]
    fn inverse_pair_is_eliminated() {
        let mut c = Circuit::new(1, 0);
        c.h(0).h(0);
        let (fused, stats) = fuse_single_qubit_runs(&c);
        assert_eq!(fused.len(), 0);
        assert_eq!(stats.runs_eliminated, 1);
        // T·Tdg differs from I only by bookkeeping; also eliminated.
        let mut c2 = Circuit::new(1, 0);
        c2.t(0).gate(Gate::Tdg, &[0]);
        let (fused2, _) = fuse_single_qubit_runs(&c2);
        assert_eq!(fused2.len(), 0);
        // S·S = Z is NOT identity and must survive.
        let mut c3 = Circuit::new(1, 0);
        c3.s(0).s(0);
        let (fused3, _) = fuse_single_qubit_runs(&c3);
        assert_eq!(fused3.len(), 1);
    }

    #[test]
    fn global_phase_identity_is_eliminated() {
        // Rz(π/4)·T† = e^{−iπ/8}·I: identity up to global phase.
        let mut c = Circuit::new(1, 0);
        c.gate(Gate::Rz(FRAC_PI_4), &[0]).gate(Gate::Tdg, &[0]);
        let (fused, stats) = fuse_single_qubit_runs(&c);
        assert_eq!(fused.len(), 0);
        assert_eq!(stats.runs_eliminated, 1);
    }

    #[test]
    fn boundaries_flush_in_program_order() {
        let mut c = Circuit::new(2, 1);
        c.t(0).s(0); // run on wire 0
        c.h(1); // singleton on wire 1
        c.cx(0, 1); // flushes both, wire-0 run first (arrived first)
        c.measure(0, 0);
        c.x_if(1, 0); // conditioned: passes through, not fused
        c.t(1).t(1); // trailing run flushed at end
        let (fused, stats) = fuse_single_qubit_runs(&c);
        let kinds: Vec<String> = fused
            .instructions()
            .iter()
            .map(|i| match &i.op {
                Op::Gate(g, qs) => format!("{}{:?}{}", g.name(), qs, i.condition.is_some() as u8),
                Op::Measure { .. } => "measure".into(),
                Op::Reset(_) => "reset".into(),
                Op::Barrier => "barrier".into(),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                "u1q[0]0",
                "h[1]0",
                "cx[0, 1]0",
                "measure",
                "x[1]1",
                "u1q[1]0",
            ]
        );
        assert_eq!(stats.gates_fused, 4);
        assert_eq!(stats.output_len, 6);
    }

    #[test]
    fn conditioned_single_qubit_gate_is_never_fused() {
        let mut c = Circuit::new(1, 1);
        c.h(0).measure(0, 0);
        c.gate_if(Gate::S, &[0], 0, true);
        c.gate_if(Gate::S, &[0], 0, true);
        let (fused, stats) = fuse_single_qubit_runs(&c);
        assert_eq!(fused.len(), 4);
        assert_eq!(stats.gates_fused, 0);
    }

    #[test]
    fn barrier_splits_runs() {
        let mut c = Circuit::new(1, 0);
        c.h(0).barrier().h(0);
        let (fused, stats) = fuse_single_qubit_runs(&c);
        // Two singleton H runs split by the barrier: nothing fused,
        // nothing eliminated.
        assert_eq!(fused.len(), 3);
        assert_eq!(stats.runs_eliminated, 0);
    }
}

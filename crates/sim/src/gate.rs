//! Gate library.
//!
//! Covers every gate the paper's circuits need (Figures 2, 3 and 5): the
//! Cliffords `H`, `S`, `S†`, Paulis, the `R_y` rotation used to prepare
//! `|Φ_k⟩`, CNOT/CZ for Bell preparation and measurement, plus a general
//! single- and two-qubit unitary escape hatch.

use crate::pauli::Pauli;
use qlinalg::{c64, Complex64, Matrix, C_I, C_ONE, C_ZERO};
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// A quantum gate with a fixed arity.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Identity (1 qubit).
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, −i)`.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X.
    SX,
    /// Rotation about X: `exp(−iθX/2)`.
    Rx(f64),
    /// Rotation about Y: `exp(−iθY/2)`.
    Ry(f64),
    /// Rotation about Z: `exp(−iθZ/2)`.
    Rz(f64),
    /// Phase rotation `diag(1, e^{iλ})`.
    Phase(f64),
    /// General single-qubit unitary `U(θ, φ, λ)` (OpenQASM 3 convention).
    U(f64, f64, f64),
    /// Arbitrary single-qubit unitary given by its matrix.
    Unitary1(Matrix),
    /// CNOT; first operand is control, second is target.
    CX,
    /// Controlled-Z (symmetric).
    CZ,
    /// Controlled-Y.
    CY,
    /// SWAP.
    Swap,
    /// Controlled phase `diag(1,1,1,e^{iλ})`.
    CPhase(f64),
    /// Arbitrary two-qubit unitary given by its 4×4 matrix; operand order
    /// `[q0, q1]` maps to matrix index bit 0 = `q0`, bit 1 = `q1`.
    Unitary2(Matrix),
    /// Arbitrary `k`-qubit unitary given by its `2^k × 2^k` matrix; operand
    /// order `[q0, …, q_{k−1}]` maps to matrix index bit `i` = `qᵢ`. This is
    /// the escape hatch the joint multi-wire cut ([`crate::Circuit`] users
    /// building MUB rotations over `n > 2` qubits) relies on; the
    /// statevector backend applies it with the generic strided kernel
    /// rather than materialising the full `2^n × 2^n` embedding.
    Unitary(Matrix),
}

impl Gate {
    /// Number of qubit operands.
    pub fn arity(&self) -> usize {
        use Gate::*;
        match self {
            I | X | Y | Z | H | S | Sdg | T | Tdg | SX | Rx(_) | Ry(_) | Rz(_) | Phase(_)
            | U(..) | Unitary1(_) => 1,
            CX | CZ | CY | Swap | CPhase(_) | Unitary2(_) => 2,
            Unitary(m) => {
                let k = m.rows().trailing_zeros() as usize;
                assert_eq!(m.rows(), 1 << k, "Unitary matrix dim not a power of 2");
                k
            }
        }
    }

    /// Dense matrix representation (`2×2` or `4×4`).
    ///
    /// For two-qubit gates the matrix index convention is little-endian in
    /// the operand list: bit 0 of the index is the first operand.
    pub fn matrix(&self) -> Matrix {
        use Gate::*;
        let s2 = FRAC_1_SQRT_2;
        match self {
            I => Matrix::identity(2),
            X => Pauli::X.matrix(),
            Y => Pauli::Y.matrix(),
            Z => Pauli::Z.matrix(),
            H => Matrix::from_rows(&[
                vec![c64(s2, 0.0), c64(s2, 0.0)],
                vec![c64(s2, 0.0), c64(-s2, 0.0)],
            ]),
            S => Matrix::from_rows(&[vec![C_ONE, C_ZERO], vec![C_ZERO, C_I]]),
            Sdg => Matrix::from_rows(&[vec![C_ONE, C_ZERO], vec![C_ZERO, -C_I]]),
            T => Matrix::from_rows(&[
                vec![C_ONE, C_ZERO],
                vec![C_ZERO, Complex64::cis(std::f64::consts::FRAC_PI_4)],
            ]),
            Tdg => Matrix::from_rows(&[
                vec![C_ONE, C_ZERO],
                vec![C_ZERO, Complex64::cis(-std::f64::consts::FRAC_PI_4)],
            ]),
            SX => Matrix::from_rows(&[
                vec![c64(0.5, 0.5), c64(0.5, -0.5)],
                vec![c64(0.5, -0.5), c64(0.5, 0.5)],
            ]),
            Rx(theta) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                Matrix::from_rows(&[
                    vec![c64(c, 0.0), c64(0.0, -s)],
                    vec![c64(0.0, -s), c64(c, 0.0)],
                ])
            }
            Ry(theta) => {
                let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                Matrix::from_rows(&[
                    vec![c64(c, 0.0), c64(-s, 0.0)],
                    vec![c64(s, 0.0), c64(c, 0.0)],
                ])
            }
            Rz(theta) => Matrix::from_rows(&[
                vec![Complex64::cis(-theta / 2.0), C_ZERO],
                vec![C_ZERO, Complex64::cis(theta / 2.0)],
            ]),
            Phase(lam) => {
                Matrix::from_rows(&[vec![C_ONE, C_ZERO], vec![C_ZERO, Complex64::cis(*lam)]])
            }
            U(theta, phi, lam) => {
                let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                Matrix::from_rows(&[
                    vec![c64(ct, 0.0), -Complex64::cis(*lam) * st],
                    vec![Complex64::cis(*phi) * st, Complex64::cis(phi + lam) * ct],
                ])
            }
            Unitary1(m) => {
                assert_eq!(m.rows(), 2);
                m.clone()
            }
            // Little-endian operand convention: for CX with operands
            // [control=first, target=second], basis index bit0 = control.
            CX => Matrix::from_fn(4, 4, |r, c| {
                let (ctrl, tgt) = (c & 1, (c >> 1) & 1);
                let out = if ctrl == 1 {
                    (ctrl, tgt ^ 1)
                } else {
                    (ctrl, tgt)
                };
                if r == out.0 | (out.1 << 1) {
                    C_ONE
                } else {
                    C_ZERO
                }
            }),
            CZ => Matrix::from_fn(4, 4, |r, c| {
                if r != c {
                    C_ZERO
                } else if c == 0b11 {
                    -C_ONE
                } else {
                    C_ONE
                }
            }),
            CY => Matrix::from_fn(4, 4, |r, c| {
                let (ctrl, tgt) = (c & 1, (c >> 1) & 1);
                if ctrl == 0 {
                    if r == c {
                        C_ONE
                    } else {
                        C_ZERO
                    }
                } else {
                    // Y on target: |0⟩→i|1⟩, |1⟩→−i|0⟩
                    let out = ctrl | ((tgt ^ 1) << 1);
                    if r == out {
                        if tgt == 0 {
                            C_I
                        } else {
                            -C_I
                        }
                    } else {
                        C_ZERO
                    }
                }
            }),
            Swap => Matrix::from_fn(4, 4, |r, c| {
                let swapped = ((c & 1) << 1) | ((c >> 1) & 1);
                if r == swapped {
                    C_ONE
                } else {
                    C_ZERO
                }
            }),
            CPhase(lam) => Matrix::from_fn(4, 4, |r, c| {
                if r != c {
                    C_ZERO
                } else if c == 0b11 {
                    Complex64::cis(*lam)
                } else {
                    C_ONE
                }
            }),
            Unitary2(m) => {
                assert_eq!(m.rows(), 4);
                m.clone()
            }
            Unitary(m) => m.clone(),
        }
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        use Gate::*;
        match self {
            I | X | Y | Z | H | CX | CZ | CY | Swap => self.clone(),
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            SX => Unitary1(self.matrix().dagger()),
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            Phase(l) => Phase(-l),
            U(t, p, l) => U(-t, -l, -p),
            CPhase(l) => CPhase(-l),
            Unitary1(m) => Unitary1(m.dagger()),
            Unitary2(m) => Unitary2(m.dagger()),
            Unitary(m) => Unitary(m.dagger()),
        }
    }

    /// Short mnemonic for display/debugging.
    pub fn name(&self) -> String {
        use Gate::*;
        match self {
            I => "i".into(),
            X => "x".into(),
            Y => "y".into(),
            Z => "z".into(),
            H => "h".into(),
            S => "s".into(),
            Sdg => "sdg".into(),
            T => "t".into(),
            Tdg => "tdg".into(),
            SX => "sx".into(),
            Rx(t) => format!("rx({t:.4})"),
            Ry(t) => format!("ry({t:.4})"),
            Rz(t) => format!("rz({t:.4})"),
            Phase(l) => format!("p({l:.4})"),
            U(t, p, l) => format!("u({t:.4},{p:.4},{l:.4})"),
            Unitary1(_) => "u1q".into(),
            CX => "cx".into(),
            CZ => "cz".into(),
            CY => "cy".into(),
            Swap => "swap".into(),
            CPhase(l) => format!("cp({l:.4})"),
            Unitary2(_) => "u2q".into(),
            Unitary(m) => format!("u{}q", m.rows().trailing_zeros()),
        }
    }

    /// Gate for a bare Pauli operator.
    pub fn from_pauli(p: Pauli) -> Gate {
        match p {
            Pauli::I => Gate::I,
            Pauli::X => Gate::X,
            Pauli::Y => Gate::Y,
            Pauli::Z => Gate::Z,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fixed_gates_are_unitary() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SX,
            Gate::Rx(0.7),
            Gate::Ry(-1.1),
            Gate::Rz(2.3),
            Gate::Phase(0.4),
            Gate::U(0.3, 1.2, -0.8),
            Gate::CX,
            Gate::CZ,
            Gate::CY,
            Gate::Swap,
            Gate::CPhase(1.0),
        ];
        for g in gates {
            assert!(g.matrix().is_unitary(1e-12), "{g} not unitary");
        }
    }

    #[test]
    fn inverse_matrices_multiply_to_identity() {
        let gates = [
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::SX,
            Gate::Rx(0.7),
            Gate::Ry(-1.1),
            Gate::Rz(2.3),
            Gate::Phase(0.4),
            Gate::U(0.3, 1.2, -0.8),
            Gate::CX,
            Gate::CPhase(1.0),
        ];
        for g in gates {
            let m = g.matrix();
            let minv = g.inverse().matrix();
            let n = m.rows();
            assert!(
                m.matmul(&minv).approx_eq(&Matrix::identity(n), 1e-12),
                "{g} inverse wrong"
            );
        }
    }

    #[test]
    fn hzh_equals_x() {
        let h = Gate::H.matrix();
        let z = Gate::Z.matrix();
        let x = Gate::X.matrix();
        assert!(h.matmul(&z).matmul(&h).approx_eq(&x, 1e-12));
    }

    #[test]
    fn sh_z_hs_dagger_equals_y() {
        // U2 = S·H conjugation of Z gives Y (paper Eq. 65):
        // (SH) Z (SH)† = Y
        let sh = Gate::S.matrix().matmul(&Gate::H.matrix());
        let z = Gate::Z.matrix();
        let y = Gate::Y.matrix();
        assert!(sh.matmul(&z).matmul(&sh.dagger()).approx_eq(&y, 1e-12));
    }

    #[test]
    fn cx_flips_target_when_control_set() {
        let cx = Gate::CX.matrix();
        // control = bit0 (first operand), target = bit1.
        // |01⟩ (ctrl=1, tgt=0) → |11⟩  [index 1 → 3]
        assert!(cx[(3, 1)].approx_eq(C_ONE, 1e-14));
        assert!(cx[(1, 1)].approx_eq(C_ZERO, 1e-14));
        // |00⟩ fixed
        assert!(cx[(0, 0)].approx_eq(C_ONE, 1e-14));
        // |11⟩ → |01⟩
        assert!(cx[(1, 3)].approx_eq(C_ONE, 1e-14));
    }

    #[test]
    fn swap_exchanges_bits() {
        let sw = Gate::Swap.matrix();
        assert!(sw[(2, 1)].approx_eq(C_ONE, 1e-14)); // |01⟩→|10⟩
        assert!(sw[(1, 2)].approx_eq(C_ONE, 1e-14));
        assert!(sw[(0, 0)].approx_eq(C_ONE, 1e-14));
        assert!(sw[(3, 3)].approx_eq(C_ONE, 1e-14));
    }

    #[test]
    fn ry_prepares_weighted_superposition() {
        // Ry(θ)|0⟩ = cos(θ/2)|0⟩ + sin(θ/2)|1⟩ — used for |Φk⟩ preparation.
        let theta = 1.234f64;
        let m = Gate::Ry(theta).matrix();
        assert!(m[(0, 0)].approx_eq(c64((theta / 2.0).cos(), 0.0), 1e-14));
        assert!(m[(1, 0)].approx_eq(c64((theta / 2.0).sin(), 0.0), 1e-14));
    }

    #[test]
    fn u_gate_reduces_to_known_gates() {
        use std::f64::consts::PI;
        // U(π/2, 0, π) = H
        let u = Gate::U(PI / 2.0, 0.0, PI).matrix();
        assert!(u.approx_eq(&Gate::H.matrix(), 1e-12));
        // U(0, 0, λ) = Phase(λ)
        let u = Gate::U(0.0, 0.0, 0.77).matrix();
        assert!(u.approx_eq(&Gate::Phase(0.77).matrix(), 1e-12));
    }

    #[test]
    fn sxsx_equals_x() {
        let sx = Gate::SX.matrix();
        assert!(sx.matmul(&sx).approx_eq(&Gate::X.matrix(), 1e-12));
    }

    #[test]
    fn arity_is_consistent_with_matrix_size() {
        for g in [Gate::H, Gate::CX, Gate::Swap, Gate::Rz(0.1)] {
            assert_eq!(g.matrix().rows(), 1 << g.arity());
        }
    }

    #[test]
    fn n_qubit_unitary_gate_roundtrips() {
        // An 8×8 unitary (CX ⊗ H up to ordering) through the generic
        // variant: arity 3, inverse multiplies to identity.
        let u = Gate::CX.matrix().kron(&Gate::H.matrix());
        let g = Gate::Unitary(u.clone());
        assert_eq!(g.arity(), 3);
        assert_eq!(g.name(), "u3q");
        let m = g.matrix().matmul(&g.inverse().matrix());
        assert!(m.approx_eq(&Matrix::identity(8), 1e-12));
    }
}

//! # qsim — quantum circuit simulator substrate
//!
//! A from-scratch statevector and density-matrix simulator replacing the
//! Qiskit Aer backend used by the paper (Bechtold et al., IPPS 2024,
//! arXiv:2403.09690 — reference \[31\]). It supports everything the paper's
//! cut circuits require:
//!
//! * mid-circuit Z-basis **measurement** into classical bits,
//! * **classically-controlled gates** (teleportation feed-forward),
//! * **reset**/initialisation (the measure-and-prepare QPD term),
//! * exact expectation values and Born-rule shot sampling.
//!
//! Modules:
//!
//! * [`gate`] / [`circuit`] — gate library and circuit IR.
//! * [`dag`] — circuit DAG analysis (wire lifetimes, dependency edges,
//!   width-bounded fragment extraction) for the `wirecut` cut planner.
//! * [`statevector`] — in-place strided gate kernels.
//! * [`density`] — exact mixed-state evolution (Kraus, partial trace).
//! * [`channel`] — superoperators and process tomography, used to verify
//!   the paper's channel identities (Eq. 19, 22, 27) exactly.
//! * [`executor`] — per-shot runs, exact branch enumeration, and the
//!   compiled branch-tree sampler used by the experiment harness.
//! * [`random`] — Haar-random unitaries/states (Mezzadri, reference \[30\]).
//! * [`pauli`] — Pauli strings and Pauli-basis expansions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod circuit;
pub mod dag;
pub mod density;
pub mod executor;
pub mod fuse;
pub mod gate;
pub mod noise;
pub mod pauli;
pub mod random;
pub mod stabilizer;
pub mod statevector;

pub use channel::Superoperator;
pub use circuit::{embed_unitary, Circuit, Condition, Instruction, Op};
pub use dag::{
    fragment_circuit, fragments_by_width, greedy_fragments, merge_fragments, CircuitDag, Fragment,
    WireLifetime,
};
pub use density::DensityMatrix;
pub use executor::{
    computational_basis_index, execute_density, execute_density_branches, run_shot, run_shots,
    BranchLeaf, CompiledSampler, Counts, DensityBranch, Shot,
};
pub use fuse::{fuse_single_qubit_runs, FusionStats};
pub use gate::Gate;
pub use noise::{execute_density_noisy, NoiseChannel, NoiseModel};
pub use pauli::{Pauli, PauliString};
pub use random::{
    ginibre, haar_single_qubit_workload, haar_state, haar_unitary, random_unitary_circuit,
    standard_normal,
};
pub use stabilizer::{clifford_prefix_len, is_clifford_gate, CliffordPrefix, Tableau};
pub use statevector::StateVector;
